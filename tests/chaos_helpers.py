"""Shared machinery for the fault-injection (chaos) test suites.

``run_chaos`` drives a BatchMaker server through a fixed-seed Poisson
workload under a fault plan and returns every submitted request, so the
suites can assert *global* invariants rather than sampled behaviours.
``CHAOS_SEEDS`` (comma-separated ints, env var) lets CI fan the randomized
suites out over several seeds without editing the tests.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

from repro.core import BatchMakerServer, BatchingConfig
from repro.core.request import RequestState
from repro.faults import FaultPlan, SLAConfig
from repro.models import LSTMChainModel
from repro.workload import SequenceDataset
from repro.workload.arrivals import PoissonArrivals


def chaos_seeds(default: str = "7,23,51") -> List[int]:
    """Seeds for the randomized suites; CI overrides via CHAOS_SEEDS."""
    raw = os.environ.get("CHAOS_SEEDS", default)
    return [int(s) for s in raw.split(",") if s.strip()]


def build_server(
    fault_plan: Optional[FaultPlan] = None,
    sla: Optional[SLAConfig] = None,
    num_gpus: int = 1,
    max_batch: int = 64,
    fast_path: bool = True,
    model=None,
    **config_kwargs,
) -> BatchMakerServer:
    return BatchMakerServer(
        model if model is not None else LSTMChainModel(),
        config=BatchingConfig.with_max_batch(
            max_batch, fast_path=fast_path, **config_kwargs
        ),
        num_gpus=num_gpus,
        fault_plan=fault_plan,
        sla=sla,
    )


def run_chaos(
    server: BatchMakerServer,
    rate: float = 3000.0,
    num_requests: int = 300,
    arrival_seed: int = 7,
    deadline: Optional[float] = None,
    dataset_seed: int = 1,
) -> List:
    """Submit a fixed-seed workload, drain, return the submitted requests."""
    dataset = SequenceDataset(seed=dataset_seed)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(
            server.submit(dataset.sample_one(), arrival_time=when, deadline=deadline)
        )
    server.drain()
    return submitted


def assert_invariants(server: BatchMakerServer, submitted: List) -> None:
    """The chaos invariants every run must satisfy, faults or not.

    1. Every submitted request reaches exactly one terminal state and is
       reported in exactly one of finished/timed_out/rejected.
    2. Nothing leaks: no pending events, no queued subgraphs, and the fast
       path's incremental ready counters match a brute-force recount.
    3. Engine counters reconcile with per-request outcomes.
    4. A finished request with a deadline met it.
    """
    # -- exactly-once terminal status ------------------------------------
    by_state = {
        RequestState.FINISHED: server.finished,
        RequestState.TIMED_OUT: server.timed_out,
        RequestState.REJECTED: server.rejected,
    }
    reported_ids = []
    for state, bucket in by_state.items():
        for request in bucket:
            assert request.state is state, (request, state)
            reported_ids.append(request.request_id)
    assert len(reported_ids) == len(set(reported_ids)), "request reported twice"
    assert sorted(reported_ids) == sorted(r.request_id for r in submitted), (
        "hung or unreported requests: "
        f"{set(r.request_id for r in submitted) ^ set(reported_ids)}"
    )
    for request in submitted:
        assert request.terminal, f"request {request.request_id} never terminal"
        assert request.terminal_time is not None

    # -- no leaks ---------------------------------------------------------
    loop = server.loop
    assert loop.pending() == 0 == loop.recount_pending(), "leaked events"
    scheduler = server.manager.scheduler
    for queue in scheduler._queues.values():
        assert not queue.subgraphs, f"leaked subgraphs in {queue!r}"
        assert queue.num_ready_nodes() == 0
        assert queue.recount_ready_nodes() == 0
        assert queue.running_tasks == 0, f"running-task leak in {queue!r}"
    for worker in server.manager.workers:
        assert worker.outstanding == 0, f"in-flight leak on {worker!r}"

    # -- counters reconcile ----------------------------------------------
    counters = server.fault_counters()
    assert counters.requests_completed == len(server.finished)
    assert counters.requests_timed_out == len(server.timed_out)
    assert counters.requests_rejected == len(server.rejected)
    assert counters.tasks_failed == sum(
        w.tasks_failed for w in server.manager.workers
    )

    # -- deadline-met requests really met it ------------------------------
    for request in server.finished:
        if request.deadline is not None:
            assert request.finish_time <= request.deadline, (
                f"request {request.request_id} finished past its deadline"
            )


def outcome_fingerprint(server: BatchMakerServer) -> Tuple:
    """Bit-comparable digest of a run: per-request terminal outcomes (with
    exact timestamps and retry counts), engine counters, task count."""
    statuses = tuple(
        (r.request_id, r.state.value, r.terminal_time, r.retries)
        for r in sorted(
            server.terminal_requests(), key=lambda r: r.request_id
        )
    )
    return (
        statuses,
        tuple(sorted(server.fault_counters().as_dict().items())),
        server.tasks_submitted(),
        tuple(sorted(server.manager.scheduler.batch_size_counts.items())),
    )

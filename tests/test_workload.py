"""Tests for workload generation: lengths, arrivals, trees, datasets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    FixedLengthDataset,
    PoissonArrivals,
    Seq2SeqDataset,
    SequenceDataset,
    TreeDataset,
    WMTLengthSampler,
)
from repro.workload.lengths import length_cdf
from repro.workload.trees import TreeBankSampler, random_parse_tree


class TestWMTLengths:
    def test_calibration_matches_paper_statistics(self):
        lengths = WMTLengthSampler(seed=0).sample(100000)
        assert np.mean(lengths) == pytest.approx(24, abs=1.5)
        assert np.percentile(lengths, 99) <= 110
        assert lengths.max() <= 330
        assert lengths.min() >= 1
        assert np.mean(lengths < 100) > 0.985

    def test_seeded_determinism(self):
        a = WMTLengthSampler(seed=3).sample(100)
        b = WMTLengthSampler(seed=3).sample(100)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = WMTLengthSampler(seed=1).sample(100)
        b = WMTLengthSampler(seed=2).sample(100)
        assert not np.array_equal(a, b)

    def test_clipping_to_max_length(self):
        lengths = WMTLengthSampler(seed=0, max_length=50).sample(10000)
        assert lengths.max() <= 50

    def test_invalid_max_length_raises(self):
        with pytest.raises(ValueError):
            WMTLengthSampler(max_length=0)
        with pytest.raises(ValueError):
            WMTLengthSampler(max_length=500)

    def test_sample_requires_positive_n(self):
        with pytest.raises(ValueError):
            WMTLengthSampler().sample(0)

    def test_length_cdf_shape(self):
        points = length_cdf([1, 1, 2, 3])
        assert points[0] == (1, 0.5)
        assert points[-1] == (3, 1.0)

    def test_length_cdf_empty_raises(self):
        with pytest.raises(ValueError):
            length_cdf([])


class TestPoissonArrivals:
    def test_mean_rate(self):
        times = PoissonArrivals(rate=1000, seed=0).times(20000)
        assert times[-1] == pytest.approx(20.0, rel=0.05)

    def test_times_are_increasing(self):
        times = PoissonArrivals(rate=50, seed=1).times(500)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_start_offset(self):
        times = PoissonArrivals(rate=10, seed=0, start=5.0).times(10)
        assert times[0] > 5.0

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0)

    def test_stream_matches_times(self):
        gen = PoissonArrivals(rate=10, seed=4)
        fixed = PoissonArrivals(rate=10, seed=4).times(5)
        stream = gen.stream()
        streamed = [next(stream) for _ in range(5)]
        np.testing.assert_allclose(streamed, fixed)


class TestTrees:
    def test_random_parse_tree_leaf_count(self):
        rng = np.random.default_rng(0)
        for leaves in (1, 2, 7, 20):
            payload = random_parse_tree(rng, leaves)
            assert payload.num_leaves() == leaves
            assert payload.num_nodes() == 2 * leaves - 1

    def test_invalid_leaf_count_raises(self):
        with pytest.raises(ValueError):
            random_parse_tree(np.random.default_rng(0), 0)

    def test_treebank_sampler_statistics(self):
        sampler = TreeBankSampler(seed=0)
        leaves = [sampler.sample_one().num_leaves() for _ in range(2000)]
        assert 15 < np.mean(leaves) < 25
        assert max(leaves) <= 70

    def test_fixed_leaves(self):
        sampler = TreeBankSampler(seed=0, fixed_leaves=12)
        assert all(
            sampler.sample_one().num_leaves() == 12 for _ in range(5)
        )


class TestDatasets:
    def test_sequence_dataset_lengths(self):
        dataset = SequenceDataset(seed=0)
        samples = [dataset.sample_one() for _ in range(100)]
        assert all(isinstance(s, (int, np.integer)) and s >= 1 for s in samples)

    def test_sequence_dataset_tokens_mode(self):
        dataset = SequenceDataset(seed=0, emit_tokens=True, vocab_size=100)
        sample = dataset.sample_one()
        assert isinstance(sample, list)
        assert all(0 <= t < 100 for t in sample)

    def test_fixed_length_dataset(self):
        dataset = FixedLengthDataset(24)
        assert dataset.sample_one() == 24
        with pytest.raises(ValueError):
            FixedLengthDataset(0)

    def test_seq2seq_dataset_payloads(self):
        dataset = Seq2SeqDataset(seed=0)
        for _ in range(50):
            payload = dataset.sample_one()
            assert payload["src"] >= 1
            assert payload["tgt_len"] >= 1
            # Translations are roughly length preserving.
            assert payload["tgt_len"] <= 2 * payload["src"] + 2

    def test_tree_dataset_random(self):
        dataset = TreeDataset(seed=0)
        payload = dataset.sample_one()
        assert payload.num_leaves() >= 1

    def test_tree_dataset_fixed_complete(self):
        dataset = TreeDataset(seed=0, fixed_complete_leaves=16)
        a, b = dataset.sample_one(), dataset.sample_one()
        assert a.num_leaves() == b.num_leaves() == 16
        assert a.num_nodes() == 31


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10000), n=st.integers(1, 200))
def test_length_sampler_always_in_range(seed, n):
    lengths = WMTLengthSampler(seed=seed).sample(n)
    assert lengths.min() >= 1
    assert lengths.max() <= 330

"""Graceful shutdown and kill-and-replay crash recovery.

The invariant under test (ISSUE satellite 2): across any combination of
graceful drains, hard kills, and journal replays, every accepted request
reaches **exactly one** terminal state — nothing lost, nothing
double-terminal."""

import http.client
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.registry.presets import lstm_serve_spec
from repro.serve.frontend import start_in_thread
from repro.serve.store import (
    ABORTED,
    SUCCEEDED,
    TERMINAL_STATES,
    RequestStore,
)

pytestmark = pytest.mark.timing

LONG_REQUEST = 60000  # keeps the engine busy for O(seconds)


def _submit(port, payload):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request("POST", "/v1/requests", body=json.dumps({"payload": payload}))
    response = conn.getresponse()
    record = json.loads(response.read())
    conn.close()
    assert response.status == 201
    return record["rid"]


def test_graceful_stop_terminalises_every_request(tmp_path):
    """Drain finishes quick work, aborts stragglers, and the journal a
    later process replays agrees record for record."""
    journal = str(tmp_path / "journal.jsonl")
    spec = lstm_serve_spec(port=0, journal=journal).replace(drain_grace=0.5)
    handle = start_in_thread(spec)
    rids = [_submit(handle.port, 10) for _ in range(5)]
    rids += [_submit(handle.port, LONG_REQUEST) for _ in range(3)]
    handle.stop()
    assert not handle.thread.is_alive()

    store = RequestStore(journal)
    assert len(store) == len(rids)
    states = {rid: store.get(rid).state for rid in rids}
    assert all(state in TERMINAL_STATES for state in states.values()), states
    # The short requests finished inside the grace; the long stragglers
    # were aborted rather than left dangling.
    assert sum(1 for s in states.values() if s == SUCCEEDED) >= 5
    assert all(
        store.get(rid).reason == "shutdown"
        for rid, state in states.items()
        if state == ABORTED
    )
    store.close()


def test_kill_and_replay_never_loses_or_double_terminates(tmp_path):
    """Hard-kill the server mid-flight; a new life over the same journal
    must (a) see every accepted request, (b) abort the in-flight ones
    exactly once, and (c) leave already-terminal records untouched."""
    journal = str(tmp_path / "journal.jsonl")
    spec = lstm_serve_spec(port=0, journal=journal)
    handle = start_in_thread(spec)
    fast = [_submit(handle.port, 8) for _ in range(4)]
    # Give the fast ones time to finish before the kill.
    time.sleep(1.0)
    slow = [_submit(handle.port, LONG_REQUEST) for _ in range(3)]
    handle.kill()
    assert not handle.thread.is_alive()

    # Second life: replay + crash recovery (what ServeApp does at boot).
    store = RequestStore(journal)
    assert len(store) == len(fast) + len(slow)
    non_terminal_before = [
        rid for rid in fast + slow if not store.get(rid).terminal
    ]
    recovered = store.abort_non_terminal(99.0, reason="crash_recovered")
    assert {r.rid for r in recovered} == set(non_terminal_before)
    for rid in fast + slow:
        assert store.get(rid).terminal
    succeeded_states = {
        rid: store.get(rid).state
        for rid in fast
        if store.get(rid).state == SUCCEEDED
    }
    store.close()

    # Third life: replay again — idempotent, nothing moves twice.
    replay = RequestStore(journal)
    assert replay.terminal_count() == len(fast) + len(slow)
    for rid, state in succeeded_states.items():
        assert replay.get(rid).state == state  # crash recovery kept wins
    assert all(
        replay.get(r.rid).state == ABORTED
        and replay.get(r.rid).reason == "crash_recovered"
        for r in recovered
    )
    replay.close()


def test_serve_app_boot_recovers_crashed_journal(tmp_path):
    """A real ServeApp over a crashed journal aborts the orphans itself."""
    journal = str(tmp_path / "journal.jsonl")
    handle = start_in_thread(lstm_serve_spec(port=0, journal=journal))
    _submit(handle.port, LONG_REQUEST)
    handle.kill()

    second = start_in_thread(lstm_serve_spec(port=0, journal=journal))
    try:
        assert len(second.app.recovered) == 1
        assert second.app.recovered[0].state == ABORTED
        assert second.app.recovered[0].reason == "crash_recovered"
        # The recovered record is visible over HTTP in its terminal state.
        conn = http.client.HTTPConnection("127.0.0.1", second.port, timeout=10)
        conn.request("GET", f"/v1/requests/{second.app.recovered[0].rid}")
        response = conn.getresponse()
        assert json.loads(response.read())["state"] == ABORTED
        conn.close()
    finally:
        second.stop()


def test_sigterm_drains_and_exits_zero(tmp_path):
    """The real process contract: SIGTERM -> drain -> exit code 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve",
            "--port",
            "0",
            "--journal",
            str(tmp_path / "journal.jsonl"),
            "--drain-grace",
            "1.0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        text=True,
    )
    try:
        announce = process.stdout.readline()
        assert "listening on" in announce, announce
        port = int(announce.split(":")[-1].split(" ")[0].split("/")[-1])
        for _ in range(3):
            _submit(port, 10)
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=15) == 0
    finally:
        if process.poll() is None:
            process.kill()

    store = RequestStore(str(tmp_path / "journal.jsonl"))
    assert len(store) == 3
    assert store.terminal_count() == 3
    store.close()

"""Tests for the load generator and the common server interface."""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel
from repro.workload import FixedLengthDataset, LoadGenerator, SequenceDataset


def make_server():
    return BatchMakerServer(
        LSTMChainModel(), config=BatchingConfig.with_max_batch(64)
    )


class TestLoadGenerator:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenerator(rate=100, num_requests=0)
        with pytest.raises(ValueError):
            LoadGenerator(rate=100, num_requests=10, warmup_fraction=1.0)

    def test_run_finishes_all_requests(self):
        generator = LoadGenerator(rate=2000, num_requests=500, seed=0)
        result = generator.run(make_server(), SequenceDataset(seed=1))
        assert len(result.server.finished) == 500

    def test_warmup_requests_excluded(self):
        generator = LoadGenerator(
            rate=2000, num_requests=100, seed=0, warmup_fraction=0.2
        )
        result = generator.run(make_server(), FixedLengthDataset(5))
        assert result.stats.count() == 80

    def test_throughput_close_to_offered_under_light_load(self):
        generator = LoadGenerator(rate=1000, num_requests=2000, seed=0)
        result = generator.run(make_server(), FixedLengthDataset(10))
        assert result.summary.throughput == pytest.approx(1000, rel=0.15)

    def test_summary_system_name(self):
        generator = LoadGenerator(rate=500, num_requests=100, seed=0)
        result = generator.run(make_server(), FixedLengthDataset(3))
        assert result.summary.system == "BatchMaker"

    def test_deterministic_given_seed(self):
        def once():
            generator = LoadGenerator(rate=3000, num_requests=400, seed=9)
            return generator.run(make_server(), SequenceDataset(seed=2))

        a, b = once(), once()
        assert a.summary.p90_ms == b.summary.p90_ms
        assert a.summary.throughput == b.summary.throughput

    def test_deadline_cuts_run_short(self):
        generator = LoadGenerator(rate=100, num_requests=50, seed=0)
        server = make_server()
        result = generator.run(server, FixedLengthDataset(5), deadline=0.1)
        assert len(server.finished) < 50


class TestServerInterface:
    def test_request_ids_are_sequential(self):
        server = make_server()
        first = server.submit(3, arrival_time=0.0)
        second = server.submit(3, arrival_time=0.1)
        assert (first.request_id, second.request_id) == (0, 1)

    def test_submit_default_arrival_is_now(self):
        server = make_server()
        request = server.submit(3)
        assert request.arrival_time == server.loop.now()

    def test_repr_mentions_name(self):
        assert "BatchMaker" in repr(make_server())

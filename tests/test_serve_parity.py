"""Sim-vs-live parity gate (the tentpole's acceptance test).

Same seeded plan, two worlds: the virtual-clock simulator and a real
localhost server on the wall clock.  Every request must reach the same
terminal outcome in both, and live p50/p99 must land inside the
calibrated tolerance bands (set ``REPRO_SERVE_RELAXED=1`` to widen them
on noisy shared runners — CI does)."""

import os
import subprocess
import sys

import pytest

from repro.serve.parity import compare, run_live, run_parity, run_sim

pytestmark = pytest.mark.timing

RELAXED = os.environ.get("REPRO_SERVE_RELAXED", "") not in ("", "0")


def test_simulated_runs_never_import_repro_serve():
    """Simulated mode must stay bit-identical with repro.serve absent —
    so a plain sim run must not even import it (the fingerprint suites
    guard the bit-identity half)."""
    code = (
        "import sys\n"
        "from repro.experiments import common\n"
        "from repro.workload.loadgen import LoadGenerator\n"
        "from repro.workload.datasets import SequenceDataset\n"
        "server = common.lstm_batchmaker()\n"
        "LoadGenerator(rate=2000.0, num_requests=50).run(\n"
        "    server, SequenceDataset(seed=1))\n"
        "bad = [m for m in sys.modules\n"
        "       if m == 'repro.serve' or m.startswith('repro.serve.')]\n"
        "assert not bad, bad\n"
    )
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    subprocess.run(
        [sys.executable, "-c", code], check=True, env=env, cwd=root
    )


def test_sim_world_is_deterministic():
    first = run_sim(rate=500.0, num_requests=100)
    second = run_sim(rate=500.0, num_requests=100)
    assert first.outcomes == second.outcomes
    assert first.latencies == second.latencies
    assert len(first.outcomes) == 100


def test_parity_same_seed_same_outcomes():
    """The gate: 200 requests, one seed, both worlds."""
    result = run_parity(rate=200.0, num_requests=200, seed=3, relaxed=RELAXED)
    assert result.sim.outcomes == {
        index: state
        for index, state in result.live.outcomes.items()
    }, result.describe()
    assert result.ok, result.describe()


def test_parity_detects_outcome_divergence():
    """The comparator itself must flag a world that disagrees — guard
    against a vacuously green gate."""
    sim = run_sim(rate=500.0, num_requests=50)
    live = run_live(rate=500.0, num_requests=50)
    broken = dict(live.outcomes)
    broken[0] = "FAILED" if broken[0] != "FAILED" else "SUCCEEDED"
    live.outcomes = broken
    result = compare(sim, live)
    assert not result.ok
    assert any("index 0" in m for m in result.mismatches)


def test_parity_detects_latency_band_violation():
    sim = run_sim(rate=500.0, num_requests=50)
    live = run_live(rate=500.0, num_requests=50)
    live.latencies = {i: value + 10.0 for i, value in live.latencies.items()}
    result = compare(sim, live)
    assert not result.ok
    assert any("exceeds band" in m for m in result.mismatches)

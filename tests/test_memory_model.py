"""Unit tests for the device memory model (``repro.gpu.memory``).

The model's contract is what the rest of the memory stack leans on:
``reserve`` refuses rather than overcommits (so ``reserved <= capacity``
holds by construction), ``release`` is strict (underflow raises at the
fault site), and the accounting telescopes to zero when every request
terminates.  ``MemorySpec`` is plain declarative data with an exact JSON
round trip, the same contract as ``SLAConfig``.
"""

import pytest

from repro.gpu import GPUDevice
from repro.gpu.memory import DEFAULT_STATE_BYTES, MemoryModel, MemorySpec
from repro.sim.events import EventLoop


# -- MemorySpec -------------------------------------------------------------


class TestMemorySpec:
    def test_round_trip(self):
        spec = MemorySpec(
            capacity=1 << 20,
            state_bytes=4096,
            weights={"encoder": 65536, "decoder": 98304},
            admission_free_bytes=16384,
        )
        assert MemorySpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_minimal(self):
        spec = MemorySpec(capacity=8192)
        data = spec.to_dict()
        assert data == {"capacity": 8192, "state_bytes": DEFAULT_STATE_BYTES}
        assert MemorySpec.from_dict(data) == spec
        assert spec.weights == {}
        assert spec.admission_free_bytes is None

    def test_replace(self):
        spec = MemorySpec(capacity=8192, admission_free_bytes=1024)
        bigger = spec.replace(capacity=16384)
        assert bigger.capacity == 16384
        assert bigger.admission_free_bytes == 1024
        # None removes the key.
        assert spec.replace(admission_free_bytes=None).admission_free_bytes is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"capacity": -1},
            {"capacity": 8192, "state_bytes": 0},
            {"capacity": 8192, "weights": {"cell": -1}},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MemorySpec(**kwargs)


# -- MemoryModel ------------------------------------------------------------


class TestMemoryModel:
    def test_reserve_refuses_overcommit_with_no_partial_effect(self):
        mem = MemoryModel(capacity=100)
        assert mem.reserve(1, 60)
        assert not mem.reserve(2, 50)  # would hit 110
        assert mem.state_reserved == 60
        assert mem.holds(2) == 0
        assert mem.reserve(2, 40)  # exactly full is fine
        assert mem.free() == 0
        assert mem.reserved == mem.capacity

    def test_release_is_strict(self):
        mem = MemoryModel(capacity=100)
        mem.reserve(1, 30)
        with pytest.raises(ValueError):
            mem.release(1, 31)
        with pytest.raises(ValueError):
            mem.release(2, 1)  # never reserved anything
        mem.release(1, 30)
        assert mem.state_reserved == 0
        assert mem.holds(1) == 0

    def test_telescoping_to_zero(self):
        mem = MemoryModel(capacity=1000)
        for rid in range(5):
            for _ in range(rid + 1):  # growing footprints
                assert mem.reserve(rid, 10)
        assert mem.live_requests() == 5
        assert mem.state_reserved == sum(10 * (r + 1) for r in range(5))
        for rid in range(5):
            freed = mem.release_request(rid)
            assert freed == 10 * (rid + 1)
        assert mem.state_reserved == 0
        assert mem.live_requests() == 0
        assert mem.release_request(99) == 0  # no reservation frees nothing

    def test_weights_count_against_capacity(self):
        mem = MemoryModel(capacity=100)
        mem.load_weights("encoder", 40)
        assert mem.weight_bytes == 40
        assert mem.free() == 60
        assert not mem.reserve(1, 61)
        # Reloading the same cell type replaces, not accumulates.
        mem.load_weights("encoder", 50)
        assert mem.weight_bytes == 50
        with pytest.raises(ValueError):
            mem.load_weights("decoder", 51)  # config error, not back-pressure

    def test_peak_reserved_high_water(self):
        mem = MemoryModel(capacity=100)
        mem.load_weights("cell", 20)
        mem.reserve(1, 50)
        mem.reserve(2, 30)
        mem.release_request(1)
        assert mem.peak_reserved == 100
        assert mem.reserved == 50

    def test_reset_clears_state_and_weights(self):
        mem = MemoryModel(capacity=100)
        mem.load_weights("cell", 20)
        mem.reserve(1, 30)
        mem.reset()
        assert mem.reserved == 0
        assert mem.weight_bytes == 0
        assert mem.holds(1) == 0
        assert mem.free() == mem.capacity

    def test_from_spec(self):
        spec = MemorySpec(
            capacity=1000, state_bytes=10, weights={"a": 100, "b": 200}
        )
        mem = MemoryModel.from_spec(spec)
        assert mem.capacity == 1000
        assert mem.weight_bytes == 300
        assert mem.weights == {"a": 100, "b": 200}
        assert mem.free() == 700

    def test_negative_amounts_raise(self):
        mem = MemoryModel(capacity=100)
        with pytest.raises(ValueError):
            mem.reserve(1, -1)
        with pytest.raises(ValueError):
            mem.release(1, -1)
        with pytest.raises(ValueError):
            mem.load_weights("cell", -1)
        with pytest.raises(ValueError):
            MemoryModel(capacity=0)


def test_device_memory_defaults_to_none():
    """The time-only device model is untouched: no memory model unless a
    MemorySpec installs one."""
    device = GPUDevice(EventLoop(), device_id=0)
    assert device.memory is None

"""Integration correctness: batched serving must produce bit-identical
results to direct per-request model evaluation, regardless of batching,
arrival order, scheduling or multi-GPU placement."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models.tree_lstm import TreePayload, TreeNodeSpec
from tests.conftest import random_tree


def scalar(x):
    return int(np.asarray(x).reshape(()))


class TestLSTMChain:
    def test_serving_matches_reference(self, small_lstm_model, rng):
        server = BatchMakerServer(
            small_lstm_model,
            config=BatchingConfig.with_max_batch(4),
            real_compute=True,
        )
        payloads = [
            [int(t) for t in rng.integers(0, 50, size=rng.integers(1, 15))]
            for _ in range(12)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            assert scalar(request.result[0]) == scalar(
                small_lstm_model.reference_forward(payload)[0]
            )

    def test_results_independent_of_batch_size(self, rng):
        from repro.models import LSTMChainModel

        payloads = [
            [int(t) for t in rng.integers(0, 50, size=rng.integers(1, 10))]
            for _ in range(8)
        ]
        outcomes = []
        for max_batch in (1, 4, 64):
            model = LSTMChainModel(
                hidden_dim=16, vocab_size=50, embed_dim=8, real=True,
                project_output=True, seed=5,
            )
            server = BatchMakerServer(
                model,
                config=BatchingConfig.with_max_batch(max_batch),
                real_compute=True,
            )
            requests = [
                server.submit(p, arrival_time=i * 1e-4)
                for i, p in enumerate(payloads)
            ]
            server.drain()
            outcomes.append([scalar(r.result[0]) for r in requests])
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_results_independent_of_gpu_count(self, rng):
        from repro.models import LSTMChainModel

        payloads = [
            [int(t) for t in rng.integers(0, 50, size=rng.integers(2, 12))]
            for _ in range(10)
        ]
        outcomes = []
        for num_gpus in (1, 3):
            model = LSTMChainModel(
                hidden_dim=16, vocab_size=50, embed_dim=8, real=True,
                project_output=True, seed=5,
            )
            server = BatchMakerServer(
                model,
                config=BatchingConfig.with_max_batch(4),
                num_gpus=num_gpus,
                real_compute=True,
            )
            requests = [
                server.submit(p, arrival_time=i * 1e-4)
                for i, p in enumerate(payloads)
            ]
            server.drain()
            outcomes.append([scalar(r.result[0]) for r in requests])
        assert outcomes[0] == outcomes[1]


class TestSeq2Seq:
    def test_static_decoding_matches_reference(self, small_seq2seq_model, rng):
        server = BatchMakerServer(
            small_seq2seq_model,
            config=BatchingConfig.with_max_batch(4),
            real_compute=True,
        )
        payloads = [
            {
                "src": [int(t) for t in rng.integers(0, 40, size=rng.integers(1, 9))],
                "tgt_len": int(rng.integers(1, 7)),
            }
            for _ in range(10)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            got = [scalar(x) for x in request.result]
            assert got == small_seq2seq_model.reference_forward(payload)

    def test_dynamic_decoding_matches_reference(self, small_seq2seq_model, rng):
        server = BatchMakerServer(
            small_seq2seq_model,
            config=BatchingConfig.with_max_batch(4),
            real_compute=True,
        )
        payloads = [
            {
                "src": [int(t) for t in rng.integers(0, 40, size=rng.integers(1, 9))],
                "dynamic": True,
                "max_decode": 8,
            }
            for _ in range(10)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            got = [scalar(x) for x in request.result]
            assert got == small_seq2seq_model.reference_forward(payload)


class TestTreeLSTM:
    def test_random_trees_match_reference(self, small_tree_model, rng):
        server = BatchMakerServer(
            small_tree_model,
            config=BatchingConfig.with_max_batch(8),
            real_compute=True,
        )
        payloads = [
            TreePayload(TreeNodeSpec(left=random_tree(rng), right=random_tree(rng)))
            for _ in range(8)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            ref = small_tree_model.reference_forward(payload)
            np.testing.assert_allclose(
                np.asarray(request.result[0]), np.asarray(ref[0]), atol=1e-6
            )

    def test_paper_example_tree_16_leaves(self, small_tree_model):
        server = BatchMakerServer(
            small_tree_model,
            config=BatchingConfig.with_max_batch(64),
            real_compute=True,
        )
        payload = TreePayload(TreeNodeSpec.complete(16, token=3))
        request = server.submit(payload)
        server.drain()
        ref = small_tree_model.reference_forward(payload)
        np.testing.assert_allclose(
            np.asarray(request.result[0]), np.asarray(ref[0]), atol=1e-6
        )

"""Unit tests for ``repro.gpu.energy`` (DESIGN.md §17).

The value objects and physics in isolation: EnergySpec validation and the
JSON round trip, EnergyModel's joule bookkeeping (charge / attribute /
idle / reset), the structured ``{base}@x{factor}`` names DVFS-scaled
latency tables carry, and the three governors' decision rules — including
the time-weighted utilization EWMA that makes one long idle gap outweigh
a burst of back-to-back busy samples.
"""

import pytest

from repro.gpu.costmodel import LatencyTable
from repro.models import LSTMChainModel
from repro.gpu.energy import (
    GOVERNORS,
    EnergyModel,
    EnergySpec,
    FixedGovernor,
    HeadroomGovernor,
    RaceToIdleGovernor,
    _UtilizationEWMA,
    make_governor,
)

# -- EnergySpec --------------------------------------------------------------


def test_spec_round_trip():
    spec = EnergySpec(
        idle_watts=30.0,
        active_watts=200.0,
        frequencies=(0.6, 0.8, 1.0),
        governor="race_to_idle",
        governor_params={"tau": 5e-3},
        power_exponent=2.5,
    )
    restored = EnergySpec.from_dict(spec.to_dict())
    assert restored == spec
    assert restored.frequencies == (0.6, 0.8, 1.0)
    assert restored.governor_params == {"tau": 5e-3}


def test_spec_sorts_and_dedups_frequencies():
    spec = EnergySpec(frequencies=(1.0, 0.6, 0.6, 0.8))
    assert spec.frequencies == (0.6, 0.8, 1.0)


def test_spec_replace():
    spec = EnergySpec(frequencies=(0.5, 1.0), governor="race_to_idle")
    pinned = spec.replace(governor="fixed")
    assert pinned.governor == "fixed"
    assert pinned.frequencies == spec.frequencies
    assert spec.governor == "race_to_idle"  # original untouched


@pytest.mark.parametrize(
    "kwargs",
    [
        {"idle_watts": -1.0},
        {"active_watts": 0.0},
        {"frequencies": ()},
        {"frequencies": (0.0, 1.0)},
        {"frequencies": (-0.5,)},
        {"governor": "turbo"},
        {"power_exponent": 0.5},
    ],
)
def test_spec_validation(kwargs):
    with pytest.raises(ValueError):
        EnergySpec(**kwargs)


def test_spec_rejects_bad_governor_params_eagerly():
    """A fixed frequency outside the state set fails at spec construction,
    not at the first batch boundary."""
    with pytest.raises(ValueError, match="not in states"):
        EnergySpec(
            frequencies=(0.6, 1.0),
            governor="fixed",
            governor_params={"frequency": 0.9},
        )


# -- EnergyModel -------------------------------------------------------------


def test_charge_splits_evenly_and_telescopes():
    model = EnergyModel(active_watts=100.0, frequency=1.0)
    joules = model.charge_task(2.0, [1, 2, 3, 4])
    assert joules == pytest.approx(200.0)
    assert model.active_joules == pytest.approx(200.0)
    assert model.request_joules(2) == pytest.approx(50.0)
    assert model.attributed_joules() == pytest.approx(200.0)
    assert model.unattributed_joules == 0.0
    # A memberless charge (can't happen from the engine, but the books
    # must still balance) lands in the unattributed bucket.
    model.charge_task(1.0, [])
    assert model.unattributed_joules == pytest.approx(100.0)
    assert model.attributed_joules() + model.unattributed_joules == (
        pytest.approx(model.active_joules)
    )
    assert model.tasks_charged == 2


def test_dynamic_power_scales_superlinearly():
    model = EnergyModel(active_watts=100.0, power_exponent=3.0, frequency=1.0)
    assert model.dynamic_watts == pytest.approx(100.0)
    model.set_frequency(0.5)
    assert model.dynamic_watts == pytest.approx(12.5)  # 100 * 0.5^3
    assert model.frequency_changes == 1
    model.set_frequency(0.5)  # no-op: same state
    assert model.frequency_changes == 1
    # Energy per unit of *work*: a kernel at half clock runs twice as long
    # at an eighth of the power — a quarter of the joules.
    slow = model.charge_task(2.0, [1])
    model.set_frequency(1.0)
    fast = model.charge_task(1.0, [2])
    assert slow == pytest.approx(fast / 4)


def test_idle_and_integrated_joules():
    model = EnergyModel(idle_watts=10.0, active_watts=100.0, start_time=1.0)
    model.charge_task(0.5, [7])
    # 3 s span, 0.5 s busy: 2.5 s of idle draw.
    assert model.idle_joules(4.0, 0.5) == pytest.approx(25.0)
    assert model.integrated_joules(4.0, 0.5) == pytest.approx(
        model.active_joules + 25.0
    )


def test_reset_starts_a_fresh_window():
    model = EnergyModel(idle_watts=10.0, start_time=0.0)
    model.charge_task(1.0, [1, 2])
    model.set_frequency(0.5)
    model.reset(5.0)
    assert model.active_joules == 0.0
    assert model.tasks_charged == 0
    assert model.attributed_joules() == 0.0
    assert model.request_joules(1) == 0.0
    assert model.start_time == 5.0
    assert model.idle_joules(6.0, 0.0) == pytest.approx(10.0)
    # The DVFS state survives a reset (it's the board's clock, not a book).
    assert model.frequency == 0.5


def test_charge_rejects_negative_duration():
    with pytest.raises(ValueError):
        EnergyModel().charge_task(-1.0, [1])


# -- DVFS table names --------------------------------------------------------


def test_scaled_table_gets_structured_name():
    table = LatencyTable({1: 10.0, 64: 100.0}, "v100-test")
    scaled = table.scale(1.25)
    assert scaled.name == "v100-test@x1.25"
    assert scaled(64) == pytest.approx(table(64) * 1.25)
    assert table.scale(2.0, name="custom").name == "custom"
    with pytest.raises(ValueError):
        table.scale(0.0)


def test_scaled_cost_model_keeps_names_and_overheads():
    model = LSTMChainModel().default_cost_model()
    scaled = model.scaled(1.0 / 0.8)
    for cell, table in scaled.tables().items():
        assert table.name == f"{model.tables()[cell].name}@x1.25"
        assert table(64) == pytest.approx(model.tables()[cell](64) * 1.25)
    # Overheads are host-side, not clocked by the accelerator.
    assert scaled.per_task_overhead == model.per_task_overhead
    assert scaled.gather_overhead == model.gather_overhead


# -- governors ---------------------------------------------------------------


def test_registry_and_make_governor():
    assert set(GOVERNORS) == {"fixed", "race_to_idle", "headroom"}
    governor = make_governor("fixed", (0.5, 1.0))
    assert isinstance(governor, FixedGovernor)
    with pytest.raises(ValueError, match="unknown governor"):
        make_governor("turbo", (1.0,))


def test_fixed_governor_pins():
    governor = FixedGovernor((0.6, 0.8, 1.0))
    assert governor.initial_frequency() == 1.0  # default: the top state
    assert governor.decide(1.0, 0.5) == 1.0
    pinned = FixedGovernor((0.6, 0.8, 1.0), frequency=0.8)
    assert pinned.decide(10.0, 10.0) == 0.8
    with pytest.raises(ValueError, match="not in states"):
        FixedGovernor((0.6, 1.0), frequency=0.7)


def test_ewma_is_time_weighted_not_sample_weighted():
    """Fifty back-to-back fully-busy 0.2 ms windows then one 50 ms idle
    gap: the gap spans far more wall time, so it must dominate.  (A
    constant-alpha EWMA over the same samples would stay pinned near 1.)"""
    ewma = _UtilizationEWMA(tau=10e-3)
    now, busy = 0.0, 0.0
    ewma.observe(now, busy)  # baseline
    for _ in range(50):
        now += 0.2e-3
        busy += 0.2e-3
        ewma.observe(now, busy)
    assert ewma.utilization > 0.4  # the burst registered
    ewma.observe(now + 50e-3, busy)  # one long idle window
    assert ewma.utilization < 0.25


def test_ewma_validation_and_clamping():
    with pytest.raises(ValueError):
        _UtilizationEWMA(tau=0.0)
    ewma = _UtilizationEWMA(tau=1e-3)
    ewma.observe(0.0, 0.0)
    # busy_time deltas beyond wall time (stragglers overlapping windows)
    # clamp to a busy fraction of 1.
    ewma.observe(1.0, 5.0)
    assert ewma.utilization <= 1.0


def test_race_to_idle_hysteresis():
    governor = RaceToIdleGovernor((0.5, 1.0), tau=1e-3, low=0.25, high=0.75)
    assert governor.initial_frequency() == 1.0
    # First decision: no utilization history yet -> estimate 0 -> min state.
    assert governor.decide(0.0, 0.0) == 0.5
    # A saturated window races back to the top state.
    assert governor.decide(10e-3, 10e-3) == 1.0
    assert governor.utilization >= 0.75
    # A middling window holds the current state (no chatter).
    assert governor.decide(20e-3, 15e-3) == 1.0
    # A long idle stretch drops to the bottom state.
    assert governor.decide(120e-3, 15e-3) == 0.5
    assert governor.utilization <= 0.25


def test_race_to_idle_validates_thresholds():
    with pytest.raises(ValueError):
        RaceToIdleGovernor((1.0,), low=0.8, high=0.5)
    with pytest.raises(ValueError):
        RaceToIdleGovernor((1.0,), low=-0.1, high=0.5)


def test_headroom_picks_slowest_state_meeting_target():
    governor = HeadroomGovernor((0.5, 1.0), tau=1e-3, target=0.8)
    assert governor.initial_frequency() == 1.0
    # No demand: the lowest state trivially satisfies the target.
    assert governor.decide(0.0, 0.0) == 0.5
    # Saturated windows at half clock: each is normalised by f/f_max, so
    # demand climbs toward 0.5 -> predicted busy fraction at f=0.5 is 1.0
    # (over target) while f=1.0 predicts 0.5 -> the governor moves up.
    for step in range(1, 30):
        frequency = governor.decide(step * 1e-3, step * 1e-3)
    assert frequency == 1.0
    # Demand drains away: back down to the efficient state.
    busy = 29e-3
    for step in range(1, 10):
        frequency = governor.decide(29e-3 + step * 20e-3, busy)
    assert frequency == 0.5
    assert governor.demand < 0.4


def test_headroom_validates_target():
    with pytest.raises(ValueError):
        HeadroomGovernor((1.0,), target=0.0)
    with pytest.raises(ValueError):
        HeadroomGovernor((1.0,), target=1.5)

"""Tests for the cell library: LSTM, GRU, embedding, projection, TreeLSTM,
composite and graph-defined cells.  Each cell is checked for shape
discipline, determinism, and the batch-commutation property."""

import numpy as np
import pytest

from repro.cells import (
    CompositeCell,
    EmbeddingCell,
    GraphCell,
    GRUCell,
    LSTMCell,
    ProjectionCell,
    TreeInternalCell,
    TreeLeafCell,
)
from repro.tensor.graph import DataflowGraph
from repro.tensor.parameters import ParameterStore


@pytest.fixture
def params():
    return ParameterStore(seed=0)


class TestLSTMCell:
    def test_output_shapes(self, params):
        cell = LSTMCell("l", 4, 6, params)
        state = cell.zero_state(3)
        out = cell({"x": np.zeros((3, 4), np.float32), **state})
        assert out["h"].shape == (3, 6)
        assert out["c"].shape == (3, 6)

    def test_zero_input_zero_state_gives_bounded_output(self, params):
        cell = LSTMCell("l", 4, 6, params)
        out = cell({"x": np.zeros((1, 4), np.float32), **cell.zero_state(1)})
        assert np.all(np.abs(out["h"]) < 1.0)

    def test_wrong_input_dim_raises(self, params):
        cell = LSTMCell("l", 4, 6, params)
        with pytest.raises(ValueError, match="expected 4"):
            cell({"x": np.zeros((1, 5), np.float32), **cell.zero_state(1)})

    def test_missing_input_raises(self, params):
        cell = LSTMCell("l", 4, 6, params)
        with pytest.raises(KeyError, match="missing inputs"):
            cell({"x": np.zeros((1, 4), np.float32)})

    def test_state_evolves_with_input(self, params):
        cell = LSTMCell("l", 4, 6, params)
        rng = np.random.default_rng(0)
        state = cell.zero_state(1)
        x1 = rng.standard_normal((1, 4)).astype(np.float32)
        out1 = cell({"x": x1, **state})
        out2 = cell({"x": x1, "h": out1["h"], "c": out1["c"]})
        assert not np.allclose(out1["h"], out2["h"])

    def test_batch_commutation(self, params):
        cell = LSTMCell("l", 4, 6, params)
        rng = np.random.default_rng(0)
        xs = rng.standard_normal((5, 4)).astype(np.float32)
        hs = rng.standard_normal((5, 6)).astype(np.float32)
        cs = rng.standard_normal((5, 6)).astype(np.float32)
        batched = cell({"x": xs, "h": hs, "c": cs})
        for i in range(5):
            single = cell(
                {"x": xs[i : i + 1], "h": hs[i : i + 1], "c": cs[i : i + 1]}
            )
            np.testing.assert_allclose(batched["h"][i], single["h"][0], atol=1e-6)
            np.testing.assert_allclose(batched["c"][i], single["c"][0], atol=1e-6)

    def test_invalid_dims_raise(self, params):
        with pytest.raises(ValueError):
            LSTMCell("l", 0, 6, params)

    def test_forget_bias_keeps_memory(self, params):
        cell = LSTMCell("l", 2, 3, params, forget_bias=100.0)
        c = np.ones((1, 3), np.float32)
        out = cell({"x": np.zeros((1, 2), np.float32), "h": np.zeros((1, 3), np.float32), "c": c})
        # With an overwhelming forget bias, c is carried through (plus input).
        assert np.all(out["c"] > 0.5)


class TestGRUCell:
    def test_output_shape(self, params):
        cell = GRUCell("g", 3, 5, params)
        out = cell({"x": np.zeros((2, 3), np.float32), **cell.zero_state(2)})
        assert out["h"].shape == (2, 5)

    def test_batch_commutation(self, params):
        cell = GRUCell("g", 3, 5, params)
        rng = np.random.default_rng(0)
        xs = rng.standard_normal((4, 3)).astype(np.float32)
        hs = rng.standard_normal((4, 5)).astype(np.float32)
        batched = cell({"x": xs, "h": hs})
        for i in range(4):
            single = cell({"x": xs[i : i + 1], "h": hs[i : i + 1]})
            np.testing.assert_allclose(batched["h"][i], single["h"][0], atol=1e-6)

    def test_wrong_dim_raises(self, params):
        cell = GRUCell("g", 3, 5, params)
        with pytest.raises(ValueError, match="expected 3"):
            cell({"x": np.zeros((1, 4), np.float32), **cell.zero_state(1)})


class TestEmbeddingCell:
    def test_lookup_shape(self, params):
        cell = EmbeddingCell("e", 10, 4, params)
        out = cell({"ids": np.array([1, 2, 3])})
        assert out["emb"].shape == (3, 4)

    def test_same_id_same_row(self, params):
        cell = EmbeddingCell("e", 10, 4, params)
        out = cell({"ids": np.array([7, 7])})
        np.testing.assert_array_equal(out["emb"][0], out["emb"][1])

    def test_2d_ids_are_flattened(self, params):
        cell = EmbeddingCell("e", 10, 4, params)
        out = cell({"ids": np.array([[1], [2]])})
        assert out["emb"].shape == (2, 4)


class TestProjectionCell:
    def test_outputs(self, params):
        cell = ProjectionCell("p", 6, 11, params)
        out = cell({"h": np.zeros((3, 6), np.float32)})
        assert out["logits"].shape == (3, 11)
        assert out["token"].shape == (3,)

    def test_token_is_argmax_of_logits(self, params):
        cell = ProjectionCell("p", 6, 11, params)
        h = np.random.default_rng(0).standard_normal((4, 6)).astype(np.float32)
        out = cell({"h": h})
        np.testing.assert_array_equal(out["token"], np.argmax(out["logits"], axis=-1))

    def test_wrong_hidden_dim_raises(self, params):
        cell = ProjectionCell("p", 6, 11, params)
        with pytest.raises(ValueError, match="expected 6"):
            cell({"h": np.zeros((1, 7), np.float32)})


class TestTreeCells:
    def test_leaf_shapes(self, params):
        cell = TreeLeafCell("leaf", 20, 4, 6, params)
        out = cell({"ids": np.array([3, 5])})
        assert out["h"].shape == (2, 6)
        assert out["c"].shape == (2, 6)

    def test_internal_shapes(self, params):
        cell = TreeInternalCell("int", 6, params)
        z = np.zeros((2, 6), np.float32)
        out = cell({"h_l": z, "c_l": z, "h_r": z, "c_r": z})
        assert out["h"].shape == (2, 6)

    def test_internal_is_order_sensitive(self, params):
        cell = TreeInternalCell("int", 6, params)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((1, 6)).astype(np.float32)
        b = rng.standard_normal((1, 6)).astype(np.float32)
        z = np.zeros((1, 6), np.float32)
        left_right = cell({"h_l": a, "c_l": z, "h_r": b, "c_r": z})
        right_left = cell({"h_l": b, "c_l": z, "h_r": a, "c_r": z})
        assert not np.allclose(left_right["h"], right_left["h"])

    def test_batch_commutation_internal(self, params):
        cell = TreeInternalCell("int", 5, params)
        rng = np.random.default_rng(0)
        inputs = {
            k: rng.standard_normal((3, 5)).astype(np.float32)
            for k in ("h_l", "c_l", "h_r", "c_r")
        }
        batched = cell(inputs)
        for i in range(3):
            single = cell({k: v[i : i + 1] for k, v in inputs.items()})
            np.testing.assert_allclose(batched["h"][i], single["h"][0], atol=1e-6)


class TestCompositeCell:
    def build(self, params):
        embed = EmbeddingCell("e", 10, 4, params)
        lstm = LSTMCell("l", 4, 6, params)
        return CompositeCell(
            "step",
            input_names=("ids", "h", "c"),
            output_names=("h", "c"),
            stages=[
                (embed, {"ids": ("external", "ids")}),
                (
                    lstm,
                    {
                        "x": ("stage", 0, "emb"),
                        "h": ("external", "h"),
                        "c": ("external", "c"),
                    },
                ),
            ],
            exports={"h": ("stage", 1, "h"), "c": ("stage", 1, "c")},
        ), embed, lstm

    def test_composite_equals_manual_chain(self, params):
        composite, embed, lstm = self.build(params)
        ids = np.array([3, 7])
        h = np.zeros((2, 6), np.float32)
        c = np.zeros((2, 6), np.float32)
        out = composite({"ids": ids, "h": h, "c": c})
        manual = lstm({"x": embed({"ids": ids})["emb"], "h": h, "c": c})
        np.testing.assert_allclose(out["h"], manual["h"])

    def test_num_operators_sums_stages(self, params):
        composite, embed, lstm = self.build(params)
        assert composite.num_operators() == embed.num_operators() + lstm.num_operators()

    def test_input_shape_delegates(self, params):
        composite, _, _ = self.build(params)
        assert composite.input_shape("h") == (6,)
        assert composite.input_shape("ids") == ()

    def test_unwired_input_raises(self, params):
        lstm = LSTMCell("l2", 4, 6, params)
        with pytest.raises(ValueError, match="unwired"):
            CompositeCell(
                "bad",
                input_names=("x",),
                output_names=("h",),
                stages=[(lstm, {"x": ("external", "x")})],
                exports={"h": ("stage", 0, "h")},
            )

    def test_forward_stage_reference_raises(self, params):
        embed = EmbeddingCell("e2", 10, 4, params)
        with pytest.raises(ValueError, match="out of range"):
            CompositeCell(
                "bad",
                input_names=("ids",),
                output_names=("emb",),
                stages=[(embed, {"ids": ("stage", 0, "emb")})],
                exports={"emb": ("stage", 0, "emb")},
            )

    def test_unexported_output_raises(self, params):
        embed = EmbeddingCell("e3", 10, 4, params)
        with pytest.raises(ValueError, match="unexported"):
            CompositeCell(
                "bad",
                input_names=("ids",),
                output_names=("emb",),
                stages=[(embed, {"ids": ("external", "ids")})],
                exports={},
            )


class TestGraphCell:
    def test_graph_cell_computes(self, params):
        params.create("W", (3, 2))
        g = DataflowGraph("dense")
        g.placeholder("x")
        g.parameter("W")
        g.op("y", "matmul", "x", "W")
        g.output("y")
        cell = GraphCell(g, params)
        out = cell({"x": np.ones((2, 3), np.float32)})
        np.testing.assert_allclose(out["y"], np.ones((2, 3)) @ params.get("W"))

    def test_missing_weights_raise(self, params):
        g = DataflowGraph("dense")
        g.placeholder("x")
        g.parameter("missing")
        g.op("y", "sigmoid", "x")
        g.output("y")
        with pytest.raises(KeyError, match="missing weights"):
            GraphCell(g, params)

    def test_from_json(self, params):
        params.create("W", (2, 2))
        g = DataflowGraph("d")
        g.placeholder("x")
        g.parameter("W")
        g.op("y", "matmul", "x", "W")
        g.output("y")
        cell = GraphCell.from_json(g.to_json(), params, input_shapes={"x": (2,)})
        assert cell.input_shape("x") == (2,)
        assert cell.num_operators() == 1

"""Equivalence of the scheduler's O(1) fast path and the brute-force
reference.

The incremental ready-count accounting and eligibility indexes must change
*nothing* about Algorithm 1's decisions: with a fixed seed, a mid-load
simulation run with ``fast_path=True`` must be bit-identical — same
``tasks_submitted``, same ``batch_size_counts`` histogram, same
``RunSummary`` — to one run with the retained O(queue) scans
(``fast_path=False``).
"""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.workload import (
    LoadGenerator,
    Seq2SeqDataset,
    SequenceDataset,
    TreeDataset,
)


def _run(server_factory, dataset, rate, num_requests):
    server = server_factory()
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=7)
    result = generator.run(server, dataset)
    scheduler = server.manager.scheduler
    summary = result.summary
    return {
        "tasks_submitted": scheduler.tasks_submitted,
        "batch_size_counts": dict(scheduler.batch_size_counts),
        "mean_batch_size": scheduler.mean_batch_size(),
        "offered_rate": summary.offered_rate,
        "throughput": summary.throughput,
        "p50_ms": summary.p50_ms,
        "p90_ms": summary.p90_ms,
        "p99_ms": summary.p99_ms,
        # Bit-exact per-request latencies, not just the percentiles.
        "latencies": tuple(summary.stats.latencies),
        "queuing": tuple(summary.stats.queuing),
    }


def _compare(make_server, make_dataset, rate, num_requests):
    fast = _run(lambda: make_server(True), make_dataset(), rate, num_requests)
    brute = _run(lambda: make_server(False), make_dataset(), rate, num_requests)
    assert fast == brute


class TestFastPathEquivalence:
    def test_lstm_mid_load_one_gpu(self):
        """Chain LSTM at a rate where the queue holds hundreds of released
        subgraphs — the regime the fast path exists for."""

        def make_server(fast_path):
            return BatchMakerServer(
                LSTMChainModel(),
                config=BatchingConfig.with_max_batch(512, fast_path=fast_path),
            )

        _compare(make_server, lambda: SequenceDataset(seed=1), 8000, 1500)

    def test_tree_lstm_two_gpus(self):
        """TreeLSTM on 2 GPUs: exercises pinned-elsewhere skipping, the
        leaf/internal priority split, and exhausted-subgraph removal."""

        def make_server(fast_path):
            return BatchMakerServer(
                TreeLSTMModel(),
                config=BatchingConfig.with_max_batch(
                    64,
                    per_cell_priority={"tree_internal": 1, "tree_leaf": 0},
                    fast_path=fast_path,
                ),
                num_gpus=2,
            )

        _compare(make_server, lambda: TreeDataset(seed=2), 500, 400)

    def test_seq2seq_two_gpus_per_cell_batches(self):
        """Seq2Seq with per-cell-type max batches and decoder priority:
        exercises the three-tier candidate selection across queues."""

        def make_server(fast_path):
            return BatchMakerServer(
                Seq2SeqModel(),
                config=BatchingConfig.with_max_batch(
                    512,
                    per_cell_max={"decoder": 256},
                    per_cell_priority={"decoder": 1, "encoder": 0},
                    fast_path=fast_path,
                ),
                num_gpus=2,
            )

        _compare(make_server, lambda: Seq2SeqDataset(seed=5), 3000, 600)

    def test_unpinned_ablation_equivalence(self):
        """pinning=False flips subgraphs to non-optimistic readiness (deps
        advance on completion) — the counters must track that path too."""

        def make_server(fast_path):
            return BatchMakerServer(
                LSTMChainModel(),
                config=BatchingConfig.with_max_batch(
                    512, pinning=False, fast_path=fast_path
                ),
                num_gpus=2,
            )

        _compare(make_server, lambda: SequenceDataset(seed=1), 5000, 800)

    def test_fast_path_is_the_default(self):
        assert BatchingConfig().fast_path is True
        assert BatchingConfig.with_max_batch(512).fast_path is True
        assert BatchingConfig(fast_path=False).fast_path is False

"""SLO admission-control chaos tests at the cluster front door.

Admission shedding (``ClusterSpec.sla``) interacts with every other
front-end mechanism — routing, replica loss, re-routing, autoscaling and
deadline eviction — so these tests drive the combinations under the
chaos seeds and hold the conservation invariants: every logical request
terminal exactly once, shed arrivals counted exactly once under
``sla_rejections`` with the ``sla_reject`` cancel reason, and no replica
left owning a shadow after the drain.
"""

import pytest

from tests.chaos_helpers import chaos_seeds
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.cluster import DEAD, AutoscalerConfig
from repro.core.request import RequestState

pytestmark = pytest.mark.chaos

# A deliberately tight SLA: at the overload rates below, the predicted
# completion of a fresh arrival overshoots this budget once queues build,
# so the front door must start shedding.
TIGHT_SLA = {"default_deadline": 6e-3}


@pytest.mark.parametrize("seed", chaos_seeds())
def test_admission_shedding_counters_reconcile(seed):
    """Overload a small cluster behind the predicted_delay router: the
    shed arrivals all carry the sla_reject reason and the counter matches
    the rejected list exactly."""
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="predicted_delay",
        seed=seed,
        max_batch=16,
        sla=TIGHT_SLA,
    )
    submitted = run_cluster(
        cluster, rate=16000.0, num_requests=800, arrival_seed=seed
    )
    assert_cluster_invariants(cluster, submitted)
    shed = [r for r in cluster.rejected if r.cancel_reason == "sla_reject"]
    assert shed, "overload never triggered admission shedding"
    assert cluster.cluster_counters.sla_rejections == len(shed)
    for request in shed:
        assert request.state is RequestState.REJECTED
        assert request.terminal_time == request.arrival_time
    # Shedding is an admission decision: a shed request consumed no
    # routing decision and owns no shadow anywhere.
    assert cluster.router.decisions == sum(r.routed for r in cluster.replicas)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_shedding_survives_replica_loss(seed):
    """Kill a replica mid-overload: the survivor's load spikes, shedding
    keeps the front door honest, and the counters still conserve."""
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="predicted_delay",
        seed=seed,
        max_batch=16,
        sla=TIGHT_SLA,
        replica_failures=[(0.015, 1)],
    )
    submitted = run_cluster(
        cluster, rate=14000.0, num_requests=700, arrival_seed=seed
    )
    assert_cluster_invariants(cluster, submitted)
    assert cluster.replicas[1].state == DEAD
    assert cluster.cluster_counters.replicas_lost == 1
    counters = cluster.cluster_counters
    reasons = {r.cancel_reason for r in cluster.rejected}
    assert reasons <= {"sla_reject", "no_replicas", "queue_full"}, reasons
    assert counters.sla_rejections == sum(
        1 for r in cluster.rejected if r.cancel_reason == "sla_reject"
    )
    assert counters.sla_rejections > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_shedding_composes_with_autoscaler(seed):
    """Autoscaling adds and retires replicas while the SLA sheds: the
    terminal accounting must stay exact through both."""
    autoscaler = AutoscalerConfig(
        min_replicas=1,
        max_replicas=3,
        high_watermark=16.0,
        low_watermark=1.0,
        alpha=0.3,
        warmup=2e-3,
        cooldown=4e-3,
    ).to_dict()
    cluster = build_lstm_cluster(
        num_replicas=1,
        router="predicted_delay",
        seed=seed,
        max_batch=16,
        sla=TIGHT_SLA,
        autoscaler=autoscaler,
    )
    submitted = run_cluster(
        cluster, rate=12000.0, num_requests=900, arrival_seed=seed
    )
    assert_cluster_invariants(cluster, submitted)
    counters = cluster.cluster_counters
    assert counters.replicas_spawned > 0, "load never tripped the scaler"
    assert counters.sla_rejections == sum(
        1 for r in cluster.rejected if r.cancel_reason == "sla_reject"
    )
    # Scale-up relieves pressure: with fresh replicas absorbing load,
    # plenty of requests must still complete.
    assert len(cluster.finished) > len(cluster.rejected)


@pytest.mark.parametrize("seed", chaos_seeds())
def test_cross_replica_deadline_eviction(seed):
    """Requests re-routed across a replica failure keep their absolute
    deadline: whichever replica ends up owning the shadow must evict at
    that instant, exactly once, with no orphaned shadows left behind."""
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="round_robin",
        seed=seed,
        max_batch=16,
        replica_failures=[(0.02, 0)],
    )
    submitted = run_cluster(
        cluster,
        rate=9000.0,
        num_requests=500,
        arrival_seed=seed,
        deadline=8e-3,
    )
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.requests_rerouted > 0
    assert cluster.timed_out, "overloaded survivor never evicted anyone"
    for request in cluster.timed_out:
        # Evicted at the deadline the arrival carried, never before, and
        # not silently re-run past it by the re-route.
        assert request.deadline is not None
        assert request.terminal_time == pytest.approx(request.deadline)
    for request in cluster.finished:
        assert request.finish_time <= request.deadline

"""Request-status store: lifecycle legality, journal replay idempotence,
torn-tail tolerance, and random-interleaving properties."""

import json
import random

import pytest

from repro.serve.store import (
    ABORTED,
    FAILED,
    LEGAL_TRANSITIONS,
    PENDING,
    RUNNING,
    STATES,
    SUCCEEDED,
    TERMINAL_STATES,
    IllegalTransition,
    JournalCorrupt,
    RequestStore,
)


def _drive_to(store, rid, state):
    """Move a fresh PENDING record to ``state`` via legal steps."""
    if state == PENDING:
        return
    if state == RUNNING:
        store.transition(rid, RUNNING, 1.0)
        return
    store.transition(rid, RUNNING, 1.0)
    store.transition(rid, state, 2.0)


# -- lifecycle legality ----------------------------------------------------


@pytest.mark.parametrize("source", STATES)
@pytest.mark.parametrize("target", STATES)
def test_transition_legality_matches_relation(source, target):
    """Every (source, target) pair behaves exactly as LEGAL_TRANSITIONS
    says — in particular no terminal state ever moves again (the
    SUCCEEDED -> RUNNING resurrection the issue forbids)."""
    store = RequestStore()
    record = store.create(payload=7, now=0.0)
    _drive_to(store, record.rid, source)
    assert record.state == source
    if target in LEGAL_TRANSITIONS[source]:
        store.transition(record.rid, target, 5.0)
        assert record.state == target
    else:
        with pytest.raises(IllegalTransition):
            store.transition(record.rid, target, 5.0)
        assert record.state == source  # rejected moves change nothing


def test_terminal_states_have_no_successors():
    for state in TERMINAL_STATES:
        assert LEGAL_TRANSITIONS[state] == frozenset()


def test_unknown_rid_and_unknown_state():
    store = RequestStore()
    with pytest.raises(KeyError):
        store.transition(99, RUNNING, 0.0)
    record = store.create(payload=1, now=0.0)
    with pytest.raises(ValueError):
        store.transition(record.rid, "EXPLODED", 0.0)


def test_latency_only_for_succeeded():
    store = RequestStore()
    ok = store.create(payload=1, now=1.0)
    store.transition(ok.rid, RUNNING, 1.5)
    store.transition(ok.rid, SUCCEEDED, 3.0)
    assert ok.latency == pytest.approx(2.0)
    bad = store.create(payload=2, now=1.0)
    store.transition(bad.rid, FAILED, 2.0, reason="deadline")
    assert bad.latency is None
    assert bad.reason == "deadline"


def test_abort_non_terminal_touches_only_live_records():
    store = RequestStore()
    done = store.create(payload=0, now=0.0)
    store.transition(done.rid, RUNNING, 0.1)
    store.transition(done.rid, SUCCEEDED, 0.2)
    queued = store.create(payload=1, now=0.0)
    running = store.create(payload=2, now=0.0)
    store.transition(running.rid, RUNNING, 0.1)
    aborted = store.abort_non_terminal(1.0, reason="shutdown")
    assert {r.rid for r in aborted} == {queued.rid, running.rid}
    assert done.state == SUCCEEDED  # untouched
    assert queued.state == ABORTED and queued.reason == "shutdown"
    assert store.terminal_count() == 3


# -- journal persistence and replay ---------------------------------------


def _lifecycle(store):
    a = store.create(payload=10, now=0.0, tag="a")
    store.transition(a.rid, RUNNING, 0.5)
    store.transition(a.rid, SUCCEEDED, 1.0)
    b = store.create(payload=20, now=0.2, tag="b", deadline=0.5)
    store.transition(b.rid, RUNNING, 0.4)
    store.transition(b.rid, FAILED, 0.7, reason="deadline")
    c = store.create(payload=30, now=0.3, tag="c")
    return a, b, c


def test_journal_replay_restores_state(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    first = RequestStore(path)
    _lifecycle(first)
    first.close()

    replayed = RequestStore(path)
    assert len(replayed) == 3
    assert replayed.get(0).state == SUCCEEDED
    assert replayed.get(0).latency == pytest.approx(1.0)
    assert replayed.get(1).state == FAILED
    assert replayed.get(1).reason == "deadline"
    assert replayed.get(2).state == PENDING
    assert replayed.get(2).tag == "c"
    assert not replayed.torn_tail
    assert replayed.skipped_entries == 0
    # New rids continue after the replayed ones — no reuse.
    fresh = replayed.create(payload=40, now=2.0)
    assert fresh.rid == 3
    replayed.close()


def test_replay_is_idempotent(tmp_path):
    """Replaying the same journal any number of times converges: a
    doubled journal yields exactly the same records, with the second copy
    skipped rather than applied."""
    path = str(tmp_path / "journal.jsonl")
    store = RequestStore(path)
    _lifecycle(store)
    store.close()

    entries = [
        json.loads(line)
        for line in open(path, encoding="utf-8")
        if line.strip()
    ]
    once = RequestStore()
    once.replay_entries(entries)
    twice = RequestStore()
    twice.replay_entries(entries + entries)
    assert {r: twice.get(r).state for r in twice.records} == {
        r: once.get(r).state for r in once.records
    }
    assert twice.replayed_entries == once.replayed_entries
    assert twice.skipped_entries == len(entries)


def test_torn_final_line_is_tolerated_and_truncated(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    store = RequestStore(path)
    _lifecycle(store)
    store.close()
    with open(path, "ab") as fh:
        fh.write(b'{"op":"state","rid":2,"sta')  # crash mid-append

    recovered = RequestStore(path)
    assert recovered.torn_tail
    assert recovered.get(2).state == PENDING  # the torn entry never applied
    # The fragment was physically cut, so appends from this life cannot
    # weld onto it: a third replay must be clean.
    recovered.transition(2, ABORTED, 9.0, reason="crash_recovered")
    recovered.close()
    third = RequestStore(path)
    assert not third.torn_tail
    assert third.get(2).state == ABORTED
    third.close()


def test_malformed_mid_file_line_raises(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    store = RequestStore(path)
    _lifecycle(store)
    store.close()
    lines = open(path, "rb").read().splitlines()
    lines[1] = b'{"op": not json at all'
    with open(path, "wb") as fh:
        fh.write(b"\n".join(lines) + b"\n")
    with pytest.raises(JournalCorrupt):
        RequestStore(path)


def test_replay_skips_duplicate_and_illegal_entries():
    store = RequestStore()
    store.replay_entries(
        [
            {"op": "create", "rid": 0, "t": 0.0, "payload": 1},
            {"op": "create", "rid": 0, "t": 0.0, "payload": 1},  # dup
            {"op": "state", "rid": 0, "state": SUCCEEDED, "t": 1.0},
            {"op": "state", "rid": 0, "state": RUNNING, "t": 2.0},  # illegal
            {"op": "state", "rid": 5, "state": RUNNING, "t": 2.0},  # unknown
            {"op": "???", "rid": 0},  # unknown op
        ]
    )
    assert store.get(0).state == SUCCEEDED
    assert store.replayed_entries == 2
    assert store.skipped_entries == 4


# -- property test: random interleavings ----------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_random_interleavings_replay_exactly(tmp_path, seed):
    """Drive a journal-backed store through a random interleaving of
    creates and legal/illegal transition attempts, then replay the
    journal from scratch: the replica must match the original record for
    record — and every record must have reached at most one terminal
    state along the way."""
    rng = random.Random(seed)
    path = str(tmp_path / f"journal-{seed}.jsonl")
    store = RequestStore(path)
    terminal_hits = {}
    now = 0.0
    for _ in range(300):
        now += rng.random()
        action = rng.random()
        if action < 0.3 or not store.records:
            store.create(payload=rng.randrange(100), now=now)
            continue
        rid = rng.choice(list(store.records))
        target = rng.choice(STATES)
        before = store.get(rid).state
        try:
            store.transition(rid, target, now)
        except IllegalTransition:
            assert target not in LEGAL_TRANSITIONS[before]
            continue
        except ValueError:
            continue
        assert target in LEGAL_TRANSITIONS[before]
        if target in TERMINAL_STATES:
            terminal_hits[rid] = terminal_hits.get(rid, 0) + 1
    store.close()

    assert all(count == 1 for count in terminal_hits.values())
    replica = RequestStore(path)
    assert len(replica) == len(store)
    for rid, record in store.records.items():
        copy = replica.get(rid)
        assert copy.state == record.state
        assert copy.submitted_at == record.submitted_at
        assert copy.terminal_at == record.terminal_at
    assert replica.skipped_entries == 0
    replica.close()

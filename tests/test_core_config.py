"""Tests for the batching configuration."""

import pytest

from repro.core.config import BatchingConfig, CellTypeConfig


class TestCellTypeConfig:
    def test_max_and_min(self):
        config = CellTypeConfig(batch_sizes=(1, 4, 16, 64))
        assert config.max_batch == 64
        assert config.min_batch == 1

    def test_sizes_are_sorted_and_deduped(self):
        config = CellTypeConfig(batch_sizes=(8, 2, 8, 4))
        assert config.batch_sizes == (2, 4, 8)

    def test_empty_sizes_raise(self):
        with pytest.raises(ValueError):
            CellTypeConfig(batch_sizes=())

    def test_nonpositive_sizes_raise(self):
        with pytest.raises(ValueError):
            CellTypeConfig(batch_sizes=(0, 2))


class TestBatchingConfig:
    def test_default_for_unknown_cell(self):
        config = BatchingConfig()
        assert config.for_cell("anything").max_batch == 512

    def test_per_cell_override(self):
        config = BatchingConfig(
            per_cell={"decoder": CellTypeConfig(batch_sizes=(1, 256), priority=1)}
        )
        assert config.for_cell("decoder").max_batch == 256
        assert config.for_cell("decoder").priority == 1
        assert config.for_cell("encoder").max_batch == 512

    def test_invalid_max_tasks_raises(self):
        with pytest.raises(ValueError):
            BatchingConfig(max_tasks_to_submit=0)

    def test_with_max_batch_builds_power_of_two_ladder(self):
        config = BatchingConfig.with_max_batch(64)
        assert config.default.batch_sizes == (1, 2, 4, 8, 16, 32, 64)

    def test_with_max_batch_non_power_of_two(self):
        config = BatchingConfig.with_max_batch(48)
        assert config.default.batch_sizes[-1] == 48

    def test_with_max_batch_per_cell_overrides(self):
        config = BatchingConfig.with_max_batch(
            512,
            per_cell_max={"decoder": 256},
            per_cell_priority={"decoder": 2, "encoder": 1},
        )
        assert config.for_cell("decoder").max_batch == 256
        assert config.for_cell("decoder").priority == 2
        assert config.for_cell("encoder").max_batch == 512
        assert config.for_cell("encoder").priority == 1

    def test_paper_default_max_tasks_is_five(self):
        assert BatchingConfig().max_tasks_to_submit == 5

    def test_pinning_default_on(self):
        assert BatchingConfig().pinning is True

"""Tests for the deterministic event loop."""

import pytest

from repro.sim.events import EventLoop


class TestScheduling:
    def test_call_at_runs_at_the_right_time(self):
        loop = EventLoop()
        seen = []
        loop.call_at(2.0, lambda: seen.append(loop.now()))
        loop.run()
        assert seen == [2.0]

    def test_call_after_is_relative(self):
        loop = EventLoop()
        seen = []
        loop.call_at(1.0, lambda: loop.call_after(0.5, lambda: seen.append(loop.now())))
        loop.run()
        assert seen == [1.5]

    def test_call_soon_runs_at_current_time(self):
        loop = EventLoop()
        seen = []
        loop.call_at(1.0, lambda: loop.call_soon(lambda: seen.append(loop.now())))
        loop.run()
        assert seen == [1.0]

    def test_scheduling_in_the_past_raises(self):
        loop = EventLoop()
        loop.call_at(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError, match="past"):
            loop.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventLoop().call_after(-1.0, lambda: None)


class TestOrdering:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.call_at(3.0, lambda: seen.append(3))
        loop.call_at(1.0, lambda: seen.append(1))
        loop.call_at(2.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2, 3]

    def test_same_time_events_fire_in_scheduling_order(self):
        loop = EventLoop()
        seen = []
        for i in range(10):
            loop.call_at(1.0, lambda i=i: seen.append(i))
        loop.run()
        assert seen == list(range(10))

    def test_nested_same_time_events_run_after_earlier_ones(self):
        loop = EventLoop()
        seen = []
        loop.call_at(1.0, lambda: (seen.append("a"), loop.call_soon(lambda: seen.append("c"))))
        loop.call_at(1.0, lambda: seen.append("b"))
        loop.run()
        assert seen == ["a", "b", "c"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        loop = EventLoop()
        seen = []
        event = loop.call_at(1.0, lambda: seen.append("x"))
        event.cancel()
        loop.run()
        assert seen == []

    def test_pending_ignores_cancelled(self):
        loop = EventLoop()
        keep = loop.call_at(1.0, lambda: None)
        drop = loop.call_at(2.0, lambda: None)
        drop.cancel()
        assert loop.pending() == 1

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        first = loop.call_at(1.0, lambda: None)
        loop.call_at(2.0, lambda: None)
        first.cancel()
        assert loop.peek_time() == 2.0

    def test_cancel_then_pending_counter_stays_consistent(self):
        """pending() is a maintained counter, not a heap scan: it must stay
        exact through every push/pop/cancel interleaving."""
        loop = EventLoop()
        events = [loop.call_at(float(i), lambda: None) for i in range(5)]
        assert loop.pending() == 5
        events[1].cancel()
        events[3].cancel()
        assert loop.pending() == 3
        # Double-cancel must not double-decrement.
        events[1].cancel()
        assert loop.pending() == 3
        # peek_time discards cancelled heads without touching the count.
        events[0].cancel()
        assert loop.peek_time() == 2.0
        assert loop.pending() == 2
        loop.step()  # runs t=2.0
        assert loop.pending() == 1
        # Cancelling an event that already ran is a no-op for the counter.
        events[2].cancel()
        assert loop.pending() == 1
        loop.run()
        assert loop.pending() == 0

    def test_cancel_after_run_does_not_underflow_pending(self):
        loop = EventLoop()
        event = loop.call_at(1.0, lambda: None)
        loop.run()
        assert loop.pending() == 0
        event.cancel()
        assert loop.pending() == 0


class TestRun:
    def test_run_returns_number_of_events(self):
        loop = EventLoop()
        for i in range(5):
            loop.call_at(float(i), lambda: None)
        assert loop.run() == 5

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        seen = []
        loop.call_at(1.0, lambda: seen.append(1))
        loop.call_at(5.0, lambda: seen.append(5))
        loop.run(until=3.0)
        assert seen == [1]
        assert loop.now() == 3.0
        assert loop.pending() == 1

    def test_run_until_advances_clock_even_with_no_events(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now() == 7.0

    def test_run_max_events(self):
        loop = EventLoop()
        seen = []
        for i in range(5):
            loop.call_at(float(i), lambda i=i: seen.append(i))
        loop.run(max_events=2)
        assert seen == [0, 1]

    def test_step_on_empty_queue_returns_false(self):
        assert EventLoop().step() is False

    def test_reentrant_run_raises(self):
        loop = EventLoop()
        def reenter():
            loop.run()
        loop.call_at(1.0, reenter)
        with pytest.raises(RuntimeError, match="already running"):
            loop.run()

    def test_events_scheduled_during_run_execute(self):
        loop = EventLoop()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 4:
                loop.call_after(1.0, lambda: chain(n + 1))

        loop.call_at(0.0, lambda: chain(0))
        loop.run()
        assert seen == [0, 1, 2, 3, 4]
        assert loop.now() == 4.0


class TestCancelDuringDrain:
    """Regression tests for cancel/fire interleavings while the loop drains.

    The fault-injection layer cancels events aggressively (timeout handles
    on request completion, in-flight completions on device loss), often from
    callbacks running inside ``run()`` at the same virtual time as the event
    being cancelled.  ``pending()`` must stay exact through all of it.
    """

    def test_cancel_already_fired_event_during_drain_is_a_noop(self):
        loop = EventLoop()
        first = loop.call_at(1.0, lambda: None)
        # Fires after `first` at the same time and cancels it retroactively.
        loop.call_at(1.0, lambda: first.cancel())
        tail = loop.call_at(2.0, lambda: None)
        loop.run(until=1.0)
        # `first` fired, then was "cancelled": only `tail` is pending.
        assert first.fired and not first.cancelled
        assert loop.pending() == 1 == loop.recount_pending()
        loop.run()
        assert loop.pending() == 0 == loop.recount_pending()

    def test_cancel_of_fired_event_reports_no_effect(self):
        loop = EventLoop()
        event = loop.call_at(1.0, lambda: None)
        loop.run()
        assert event.fired
        assert event.cancel() is False
        assert loop.pending() == 0 == loop.recount_pending()

    def test_cancel_of_pending_event_reports_effect_exactly_once(self):
        loop = EventLoop()
        event = loop.call_at(1.0, lambda: None)
        assert event.cancel() is True
        assert event.cancel() is False  # second cancel: no-op
        assert loop.pending() == 0 == loop.recount_pending()

    def test_callback_cancelling_its_own_event_does_not_double_decrement(self):
        loop = EventLoop()
        handle = []

        def self_cancel():
            # A timeout handler naively cancelling its own handle.
            assert handle[0].cancel() is False

        handle.append(loop.call_at(1.0, self_cancel))
        loop.call_at(2.0, lambda: None)
        loop.run()
        assert loop.pending() == 0 == loop.recount_pending()

    def test_mutual_cancellation_at_same_timestamp(self):
        """Two same-time events each try to cancel the other: exactly one
        callback runs, exactly one cancel takes effect."""
        loop = EventLoop()
        ran = []
        events = {}

        def make(name, other):
            def cb():
                ran.append(name)
                events[other].cancel()
            return cb

        events["a"] = loop.call_at(1.0, make("a", "b"))
        events["b"] = loop.call_at(1.0, make("b", "a"))
        loop.run()
        assert ran == ["a"]
        assert events["b"].cancelled and not events["b"].fired
        assert loop.pending() == 0 == loop.recount_pending()

    def test_cancel_during_drain_storm_keeps_counter_exact(self):
        """Property-style sweep: a driver event at each tick cancels an
        arbitrary mix of fired, pending and already-cancelled events; the
        O(1) counter must match a brute-force heap recount throughout."""
        loop = EventLoop()
        targets = [loop.call_at(float(t), lambda: None) for t in range(0, 20, 2)]

        def chaos(i):
            # Cancel one fired, one pending and one arbitrary target.
            for j in (i - 1, i + 1, (i * 7) % len(targets)):
                if 0 <= j < len(targets):
                    targets[j].cancel()
            assert loop.pending() == loop.recount_pending()

        for i in range(len(targets)):
            loop.call_at(float(2 * i) + 0.5, lambda i=i: chaos(i))
        loop.run()
        assert loop.pending() == 0 == loop.recount_pending()

    def test_peek_time_after_head_cancel_during_drain(self):
        loop = EventLoop()
        seen = []
        second = loop.call_at(2.0, lambda: seen.append(2))
        third = loop.call_at(3.0, lambda: seen.append(3))
        loop.call_at(1.0, lambda: second.cancel())
        loop.run(until=1.0)
        assert loop.peek_time() == 3.0
        assert loop.pending() == 1 == loop.recount_pending()
        loop.run()
        assert seen == [3]

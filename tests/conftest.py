"""Shared fixtures: small real-compute models and seeded RNGs."""

import numpy as np
import pytest

from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_lstm_model():
    return LSTMChainModel(
        hidden_dim=16, vocab_size=50, embed_dim=8, real=True, project_output=True
    )


@pytest.fixture
def small_seq2seq_model():
    return Seq2SeqModel(
        hidden_dim=12, src_vocab_size=40, tgt_vocab_size=40, embed_dim=6, real=True
    )


@pytest.fixture
def small_tree_model():
    return TreeLSTMModel(hidden_dim=10, vocab_size=30, embed_dim=5, real=True)


def random_tree(rng, depth=3, vocab=30, leaf_prob=0.3):
    """A random binary TreeNodeSpec of bounded depth."""
    if depth == 0 or rng.random() < leaf_prob:
        return TreeNodeSpec(token=int(rng.integers(0, vocab)))
    return TreeNodeSpec(
        left=random_tree(rng, depth - 1, vocab, leaf_prob),
        right=random_tree(rng, depth - 1, vocab, leaf_prob),
    )


@pytest.fixture
def random_tree_payloads(rng):
    return [
        TreePayload(
            TreeNodeSpec(left=random_tree(rng), right=random_tree(rng))
        )
        for _ in range(6)
    ]

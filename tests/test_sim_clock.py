"""Tests for repro.sim.clock."""

import time

import pytest

from repro.sim.clock import RealClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance_to(3.5)
        assert clock.now() == 3.5

    def test_advance_to_same_time_is_allowed(self):
        clock = VirtualClock()
        clock.advance_to(1.0)
        clock.advance_to(1.0)
        assert clock.now() == 1.0

    def test_advance_backwards_raises(self):
        clock = VirtualClock()
        clock.advance_to(2.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(1.0)

    def test_is_virtual(self):
        assert VirtualClock().is_virtual() is True


class TestRealClock:
    def test_starts_near_zero(self):
        clock = RealClock()
        assert 0.0 <= clock.now() < 0.5

    def test_time_moves_forward(self):
        clock = RealClock()
        first = clock.now()
        time.sleep(0.01)
        assert clock.now() > first

    def test_is_not_virtual(self):
        assert RealClock().is_virtual() is False

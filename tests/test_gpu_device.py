"""Tests for the simulated GPU device and kernel abstractions."""

import pytest

from repro.gpu.device import DeviceTimeline, GPUDevice
from repro.gpu.kernel import Kernel, SignalKernel
from repro.sim.events import EventLoop


@pytest.fixture
def loop():
    return EventLoop()


@pytest.fixture
def device(loop):
    return GPUDevice(loop, device_id=0)


class TestKernel:
    def test_negative_duration_raises(self):
        with pytest.raises(ValueError):
            Kernel(-1.0)

    def test_signal_kernel_is_zero_cost(self):
        k = SignalKernel(lambda: None)
        assert k.duration == 0.0


class TestFIFOExecution:
    def test_single_kernel_retires_after_duration(self, loop, device):
        done = []
        device.run_for(2.0, on_complete=lambda: done.append(loop.now()))
        loop.run()
        assert done == [2.0]

    def test_kernels_run_back_to_back(self, loop, device):
        done = []
        device.run_for(1.0, on_complete=lambda: done.append(("a", loop.now())))
        device.run_for(2.0, on_complete=lambda: done.append(("b", loop.now())))
        loop.run()
        assert done == [("a", 1.0), ("b", 3.0)]

    def test_fifo_order_is_submission_order(self, loop, device):
        done = []
        for i in range(5):
            device.run_for(0.5, on_complete=lambda i=i: done.append(i))
        loop.run()
        assert done == [0, 1, 2, 3, 4]

    def test_submission_after_idle_starts_at_now(self, loop, device):
        done = []
        device.run_for(1.0, on_complete=lambda: None)
        loop.call_at(5.0, lambda: device.run_for(1.0, on_complete=lambda: done.append(loop.now())))
        loop.run()
        assert done == [6.0]

    def test_empty_submission_raises(self, device):
        with pytest.raises(ValueError, match="empty"):
            device.submit([])

    def test_multi_kernel_sequence_signals_mid_stream(self, loop, device):
        seen = []
        device.submit(
            [
                Kernel(1.0),
                SignalKernel(lambda: seen.append(("mid", loop.now()))),
                Kernel(2.0),
                SignalKernel(lambda: seen.append(("end", loop.now()))),
            ]
        )
        loop.run()
        assert seen == [("mid", 1.0), ("end", 3.0)]


class TestDeviceIntrospection:
    def test_free_at_tracks_backlog(self, loop, device):
        device.run_for(3.0)
        assert device.free_at == 3.0
        assert device.backlog() == 3.0
        assert not device.is_idle()

    def test_idle_after_drain(self, loop, device):
        device.run_for(1.0, on_complete=lambda: None)
        loop.run()
        assert device.is_idle()
        assert device.backlog() == 0.0

    def test_kernels_launched_counts(self, loop, device):
        device.run_for(1.0, on_complete=lambda: None)  # compute + signal
        device.run_for(1.0)  # compute only
        assert device.kernels_launched == 3


class TestCopyCost:
    def test_zero_bytes_is_free(self, device):
        assert device.copy_cost(0) == 0.0

    def test_cost_has_latency_floor(self, device):
        assert device.copy_cost(1) >= device.copy_latency

    def test_cost_scales_with_size(self, device):
        small = device.copy_cost(10_000)
        large = device.copy_cost(10_000_000)
        assert large > small

    def test_negative_bytes_raise(self, device):
        with pytest.raises(ValueError):
            device.copy_cost(-1)


class TestTimeline:
    def test_busy_time_accumulates(self, loop, device):
        device.run_for(1.0)
        device.run_for(2.0)
        loop.run()
        assert device.timeline.busy_time() == pytest.approx(3.0)

    def test_busy_time_window(self):
        timeline = DeviceTimeline()
        timeline.record(0.0, 2.0, None)
        timeline.record(5.0, 6.0, None)
        assert timeline.busy_time(since=1.0, until=5.5) == pytest.approx(1.5)

    def test_utilization(self):
        timeline = DeviceTimeline()
        timeline.record(0.0, 1.0, None)
        assert timeline.utilization(0.0, 4.0) == pytest.approx(0.25)

    def test_utilization_empty_window_raises(self):
        with pytest.raises(ValueError):
            DeviceTimeline().utilization(1.0, 1.0)

"""Property-based tests on LatencyTable with randomly generated anchors."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpu.costmodel import LatencyTable


@st.composite
def monotone_anchor_tables(draw):
    """Random tables whose anchors are monotone in time and non-increasing
    in per-item time — the physical regime all real devices live in."""
    n = draw(st.integers(min_value=2, max_value=6))
    batches = sorted(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=4096),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    times = [float(draw(st.floats(min_value=10.0, max_value=100.0)))]
    for b_prev, b_next in zip(batches, batches[1:]):
        # Grow total time by a factor in [1, batch ratio]: keeps per-item
        # time non-increasing while total time is non-decreasing.
        ratio = b_next / b_prev
        growth = draw(st.floats(min_value=1.0, max_value=ratio))
        times.append(times[-1] * growth)
    return LatencyTable(dict(zip(batches, times)))


@settings(max_examples=80, deadline=None)
@given(table=monotone_anchor_tables(), batch=st.integers(1, 8192))
def test_interpolated_times_positive_and_finite(table, batch):
    value = table(batch)
    assert value > 0
    assert math.isfinite(value)


@settings(max_examples=80, deadline=None)
@given(table=monotone_anchor_tables(), b1=st.integers(1, 8192), b2=st.integers(1, 8192))
def test_interpolation_preserves_anchor_monotonicity(table, b1, b2):
    lo, hi = sorted((b1, b2))
    assert table(hi) >= table(lo) - 1e-15
    assert table(hi) / hi <= table(lo) / lo + 1e-12


@settings(max_examples=50, deadline=None)
@given(table=monotone_anchor_tables())
def test_best_batch_is_supported_and_sane(table):
    anchors = [b for b, _ in table.anchors()]
    best = table.best_batch(anchors)
    assert best in anchors
    top = max(table.throughput(b) for b in anchors)
    assert table.throughput(best) >= 0.999 * top


@settings(max_examples=50, deadline=None)
@given(table=monotone_anchor_tables(), factor=st.floats(0.1, 10.0))
def test_scale_is_uniform(table, factor):
    scaled = table.scale(factor)
    for batch in (1, 7, 100, 5000):
        assert scaled(batch) == pytest.approx(table(batch) * factor, rel=1e-9)

"""Property-based invariant checks on the full serving pipeline.

For randomly generated workloads (model, lengths/shapes, arrival times) and
randomly drawn scheduler configurations (max batch, MaxTasksToSubmit, GPU
count, pinning on/off), instrument every submitted task and assert the
invariants the paper's design depends on:

1.  every request finishes, with arrival <= start <= finish;
2.  every unfolded cell executes in exactly one batched task;
3.  every task is homogeneous in cell type and within the type's max batch;
4.  dependencies are respected: a node's predecessor task either retired
    before the node's task was submitted, or was submitted earlier to the
    *same* worker (whose FIFO stream then orders them) — the exact
    correctness argument of §4.3;
5.  with pinning disabled, only the strict completion-order variant of (4)
    is allowed across workers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


def instrument(server):
    """Record (submit_index, submit_time, worker, task) for every task."""
    records = []
    scheduler = server.manager.scheduler
    original = scheduler._submit

    def recording_submit(task, worker):
        records.append(task)
        original(task, worker)

    scheduler._submit = recording_submit
    return records


def payloads_for(kind, lengths, rng):
    if kind == "lstm":
        return LSTMChainModel(), list(lengths)
    if kind == "seq2seq":
        model = Seq2SeqModel()
        return model, [
            {"src": n, "tgt_len": 1 + (n % 4)} for n in lengths
        ]
    if kind == "seq2seq-dynamic":
        model = Seq2SeqModel()
        return model, [
            {"src": n, "dynamic": True, "max_decode": 1 + (n % 5)} for n in lengths
        ]
    if kind == "tree":
        model = TreeLSTMModel()

        def tree(leaves):
            def build(count):
                if count == 1:
                    return TreeNodeSpec(token=0)
                split = 1 + int(rng.integers(0, count - 1))
                return TreeNodeSpec(left=build(split), right=build(count - split))

            return TreePayload(build(leaves))

        return model, [tree(n) for n in lengths]
    raise AssertionError(kind)


workload_strategy = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(["lstm", "seq2seq", "seq2seq-dynamic", "tree"]),
        "lengths": st.lists(st.integers(1, 10), min_size=1, max_size=12),
        "max_batch": st.sampled_from([1, 2, 4, 8]),
        "max_tasks": st.sampled_from([1, 2, 5]),
        "num_gpus": st.integers(1, 3),
        "pinning": st.booleans(),
        "seed": st.integers(0, 10000),
        "spread": st.floats(0.0, 0.01),
    }
)


@settings(max_examples=60, deadline=None)
@given(spec=workload_strategy)
def test_serving_invariants(spec):
    rng = np.random.default_rng(spec["seed"])
    model, payloads = payloads_for(spec["kind"], spec["lengths"], rng)
    config = BatchingConfig.with_max_batch(
        spec["max_batch"],
        max_tasks_to_submit=spec["max_tasks"],
        pinning=spec["pinning"],
    )
    server = BatchMakerServer(model, config=config, num_gpus=spec["num_gpus"])
    tasks = instrument(server)

    requests = []
    t = 0.0
    for payload in payloads:
        t += float(rng.uniform(0, spec["spread"]))
        requests.append(server.submit(payload, arrival_time=t))
    server.drain()

    # Invariant 1: completion and time ordering.
    assert len(server.finished) == len(requests)
    for request in requests:
        assert request.arrival_time <= request.start_time <= request.finish_time

    # Invariant 2: each node in exactly one task.
    node_to_task = {}
    for task in tasks:
        for subgraph, node in task.entries:
            key = (subgraph.request.request_id, node.node_id)
            assert key not in node_to_task, "node executed twice"
            node_to_task[key] = task
    total_nodes = sum(len(r.graph) for r in requests)
    assert len(node_to_task) == total_nodes

    # Invariant 3: homogeneity and batch caps.
    for task in tasks:
        assert task.batch_size <= config.for_cell(task.cell_type.name).max_batch
        assert all(
            node.cell_type.name == task.cell_type.name for _, node in task.entries
        )

    # Invariants 4/5: dependency ordering.
    submit_index = {id(task): i for i, task in enumerate(tasks)}
    for task in tasks:
        for subgraph, node in task.entries:
            for pred_id in node.predecessors():
                pred_key = (subgraph.request.request_id, pred_id)
                pred_task = node_to_task[pred_key]
                if pred_task is task:
                    continue  # same task: impossible for dependent cells
                same_worker = pred_task.worker_id == task.worker_id
                retired_first = pred_task.finish_time <= task.submit_time + 1e-12
                if same_worker:
                    assert submit_index[id(pred_task)] < submit_index[id(task)]
                else:
                    assert retired_first, (
                        "cross-worker dependency not serialised by completion"
                    )

    # No dependent cells may share one task (a cell's input cannot be
    # produced by the same kernel launch).
    for task in tasks:
        ids_in_task = {
            (sg.request.request_id, node.node_id) for sg, node in task.entries
        }
        for subgraph, node in task.entries:
            for pred_id in node.predecessors():
                assert (subgraph.request.request_id, pred_id) not in ids_in_task


@settings(max_examples=20, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 30), min_size=2, max_size=15),
    seed=st.integers(0, 1000),
)
def test_real_compute_matches_reference_randomised(lengths, seed):
    """Random lengths + random arrivals: batched results == direct forward."""
    model = LSTMChainModel(
        hidden_dim=8, vocab_size=20, embed_dim=4, real=True,
        project_output=True, seed=3,
    )
    server = BatchMakerServer(
        model, config=BatchingConfig.with_max_batch(4), real_compute=True
    )
    rng = np.random.default_rng(seed)
    payloads = [
        [int(x) for x in rng.integers(0, 20, size=n)] for n in lengths
    ]
    requests = [
        server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
    ]
    server.drain()
    for request, payload in zip(requests, payloads):
        expected = model.reference_forward(payload)[0]
        got = int(np.asarray(request.result[0]).reshape(()))
        assert got == int(expected)

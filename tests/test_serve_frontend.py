"""HTTP front end: round trips, error statuses, metrics, cancel."""

import http.client
import json
import time

import pytest

from repro.registry.presets import lstm_serve_spec
from repro.serve.frontend import start_in_thread
from repro.serve.store import ABORTED, SUCCEEDED

pytestmark = pytest.mark.timing

# A payload this long keeps the engine busy for O(seconds) of wall time,
# so cancel/drain tests act while it is still in flight.
LONG_REQUEST = 60000


@pytest.fixture
def live_server():
    handle = start_in_thread(lstm_serve_spec(port=0))
    yield handle
    handle.stop()


def _call(port, method, path, obj=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    body = None if obj is None else json.dumps(obj)
    conn.request(method, path, body=body)
    response = conn.getresponse()
    payload = json.loads(response.read() or b"{}")
    conn.close()
    return response.status, payload


def _await_state(port, rid, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, record = _call(port, "GET", f"/v1/requests/{rid}")
        assert status == 200
        if record["state"] == state:
            return record
        time.sleep(0.01)
    raise AssertionError(f"request {rid} never reached {state}")


def test_healthz(live_server):
    status, payload = _call(live_server.port, "GET", "/healthz")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["now"] >= 0.0


def test_submit_status_result_round_trip(live_server):
    port = live_server.port
    status, record = _call(
        port, "POST", "/v1/requests", {"payload": 12, "tag": "t0"}
    )
    assert status == 201
    assert record["tag"] == "t0"
    rid = record["rid"]
    final = _await_state(port, rid, SUCCEEDED)
    assert final["latency"] is not None and final["latency"] > 0.0
    assert final["started_at"] is not None
    status, result = _call(port, "GET", f"/v1/requests/{rid}/result")
    assert status == 200
    assert result["rid"] == rid


def test_cancel_aborts_inflight_request(live_server):
    port = live_server.port
    _, record = _call(port, "POST", "/v1/requests", {"payload": LONG_REQUEST})
    rid = record["rid"]
    status, cancelled = _call(port, "POST", f"/v1/requests/{rid}/cancel")
    assert status == 200
    assert cancelled["state"] == ABORTED
    assert cancelled["reason"] == "client_cancel"
    # Result of a non-SUCCEEDED request is a conflict, and cancelling a
    # terminal record again is too (no double-terminal via the API).
    assert _call(port, "GET", f"/v1/requests/{rid}/result")[0] == 409
    assert _call(port, "POST", f"/v1/requests/{rid}/cancel")[0] == 409


def test_error_statuses(live_server):
    port = live_server.port
    assert _call(port, "GET", "/v1/requests/424242")[0] == 404
    assert _call(port, "GET", "/no/such/route")[0] == 404
    assert _call(port, "POST", "/healthz", {})[0] == 405
    assert _call(port, "GET", "/v1/requests/nonsense")[0] == 404
    status, payload = _call(port, "POST", "/v1/requests", {"tag": "no-payload"})
    assert status == 400 and "payload" in payload["error"]
    assert (
        _call(port, "POST", "/v1/requests", {"payload": 3, "deadline": -1})[0]
        == 400
    )
    # Raw bad JSON.
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.request("POST", "/v1/requests", body="{not json")
    assert conn.getresponse().status == 400
    conn.close()


def test_metrics_shape_and_counts(live_server):
    port = live_server.port
    _, record = _call(port, "POST", "/v1/requests", {"payload": 8})
    _await_state(port, record["rid"], SUCCEEDED)
    status, metrics = _call(port, "GET", "/metrics")
    assert status == 200
    for key in (
        "store",
        "terminal",
        "records",
        "engine",
        "bridge",
        "http_requests",
        "late_terminals",
        "crash_recovered",
        "draining",
        "uptime_s",
    ):
        assert key in metrics, key
    assert metrics["store"][SUCCEEDED] >= 1
    assert metrics["engine"]["finished"] >= 1
    assert metrics["bridge"]["events_fired"] > 0
    assert metrics["http_requests"] >= 2


def test_keep_alive_serves_multiple_requests_per_connection(live_server):
    conn = http.client.HTTPConnection("127.0.0.1", live_server.port, timeout=10)
    for _ in range(3):
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        assert response.status == 200
        response.read()
    conn.close()


def test_shutdown_endpoint_drains_and_refuses_new_work(live_server):
    port = live_server.port
    status, payload = _call(port, "POST", "/v1/shutdown")
    assert status == 200 and payload["status"] == "draining"
    live_server.thread.join(10)
    assert not live_server.thread.is_alive()

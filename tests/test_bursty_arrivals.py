"""Tests for the bursty (MMPP) arrival process extension."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel
from repro.workload import SequenceDataset
from repro.workload.arrivals import BurstyArrivals, PoissonArrivals


class TestBurstyArrivals:
    def test_mean_rate_preserved(self):
        arrivals = BurstyArrivals(rate=2000, seed=0)
        times = arrivals.times(40000)
        assert times[-1] == pytest.approx(20.0, rel=0.15)

    def test_times_strictly_increasing(self):
        times = BurstyArrivals(rate=100, seed=1).times(500)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_burstier_than_poisson(self):
        """Coefficient of variation of arrival counts per window must exceed
        the Poisson baseline's."""
        def window_counts(times, width=10e-3):
            edges = np.arange(0.0, times[-1], width)
            counts, _ = np.histogram(times, bins=edges)
            return counts

        bursty = window_counts(BurstyArrivals(rate=5000, seed=2).times(20000))
        poisson = window_counts(PoissonArrivals(rate=5000, seed=2).times(20000))
        cv_bursty = bursty.std() / bursty.mean()
        cv_poisson = poisson.std() / poisson.mean()
        assert cv_bursty > 1.3 * cv_poisson

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(rate=0)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=100, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=100, burst_fraction=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(rate=100, mean_dwell=0.0)
        with pytest.raises(ValueError, match="calm-state"):
            BurstyArrivals(rate=100, burst_factor=10.0, burst_fraction=0.5)

    def test_seeded_determinism(self):
        a = BurstyArrivals(rate=1000, seed=9).times(100)
        b = BurstyArrivals(rate=1000, seed=9).times(100)
        assert a == b

    def test_serving_under_bursts_still_completes(self):
        """End-to-end: cellular batching absorbs bursts (all requests finish,
        latency bounded well below the burst dwell scale at this load)."""
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(512)
        )
        dataset = SequenceDataset(seed=1)
        for t in BurstyArrivals(rate=5000, seed=3).times(4000):
            server.submit(dataset.sample_one(), arrival_time=t)
        server.drain()
        assert len(server.finished) == 4000
        p99 = sorted(r.latency for r in server.finished)[int(0.99 * 4000)]
        assert p99 < 0.2

"""Tests for the timeout-batching baseline and request-trace replay."""

import pytest

from repro.baselines import PaddedServer, TimeoutPaddedServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel, TreeLSTMModel
from repro.workload import LoadGenerator, RequestTrace, SequenceDataset, TreeDataset


class TestTimeoutServer:
    def test_negative_timeout_raises(self):
        with pytest.raises(ValueError):
            TimeoutPaddedServer(LSTMChainModel(), timeout=-1.0)

    def test_batch_waits_for_timeout(self):
        server = TimeoutPaddedServer(
            LSTMChainModel(), bucket_width=10, max_batch=8, timeout=5e-3
        )
        request = server.submit(5, arrival_time=0.0)
        server.drain()
        # Not dispatched until the 5 ms timeout expired.
        assert request.start_time == pytest.approx(5e-3)

    def test_full_batch_dispatches_immediately(self):
        server = TimeoutPaddedServer(
            LSTMChainModel(), bucket_width=10, max_batch=2, timeout=1.0
        )
        a = server.submit(5, arrival_time=0.0)
        b = server.submit(6, arrival_time=0.0)
        server.drain()
        assert a.start_time == 0.0  # bucket filled: no waiting
        assert a.finish_time < 1.0

    def test_late_requests_batch_with_waiting_head(self):
        server = TimeoutPaddedServer(
            LSTMChainModel(), bucket_width=10, max_batch=8, timeout=5e-3
        )
        first = server.submit(5, arrival_time=0.0)
        second = server.submit(6, arrival_time=4e-3)  # joins before timeout
        server.drain()
        assert first.start_time == second.start_time == pytest.approx(5e-3)
        assert server.batches_executed == 1

    def test_paper_claim_no_timeout_beats_timeouts(self):
        """§7.1: dispatch-on-idle "achieves lower latency than any
        configuration of the timeout-based strategy".  In this model the
        reproducible form of the claim is: no timeout configuration offers
        a meaningful advantage at any load (short timeouts are a wash,
        within a few percent), while long timeouts clearly hurt at low
        load — so dispatch-on-idle dominates once a single configuration
        must be picked without knowing the load."""
        def p90(server, rate):
            generator = LoadGenerator(rate=rate, num_requests=3000, seed=5)
            return generator.run(server, SequenceDataset(seed=1)).summary.p90_ms

        for rate in (800, 3000):
            baseline = p90(PaddedServer(LSTMChainModel(), bucket_width=10), rate)
            timed = {
                timeout: p90(
                    TimeoutPaddedServer(
                        LSTMChainModel(), bucket_width=10, timeout=timeout
                    ),
                    rate,
                )
                for timeout in (1e-3, 5e-3, 100e-3)
            }
            # No timeout config meaningfully beats dispatch-on-idle...
            assert baseline <= min(timed.values()) * 1.10
            if rate == 800:
                # ...and a long timeout is clearly worse at low load.
                assert timed[100e-3] > 2 * baseline


class TestRequestTrace:
    def test_record_is_sorted_and_sized(self):
        trace = RequestTrace.record(SequenceDataset(seed=1), rate=1000, num_requests=50)
        assert len(trace) == 50
        times = [t for t, _ in trace.entries]
        assert times == sorted(times)
        assert trace.duration() == times[-1]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RequestTrace([(-1.0, 5)])

    def test_replay_reproduces_loadgen_results(self):
        trace = RequestTrace.record(
            SequenceDataset(seed=1), rate=2000, num_requests=300, seed=7
        )

        def run():
            server = BatchMakerServer(
                LSTMChainModel(), config=BatchingConfig.with_max_batch(64)
            )
            requests = trace.replay(server)
            return [r.latency for r in requests]

        assert run() == run()  # identical replays

    def test_same_trace_across_servers_is_apples_to_apples(self):
        trace = RequestTrace.record(
            SequenceDataset(seed=1), rate=2000, num_requests=300, seed=7
        )
        bm = BatchMakerServer(LSTMChainModel())
        padded = PaddedServer(LSTMChainModel(), bucket_width=10)
        bm_requests = trace.replay(bm)
        padded_requests = trace.replay(padded)
        # Same payloads, same arrival times.
        for a, b in zip(bm_requests, padded_requests):
            assert a.arrival_time == b.arrival_time
            assert a.payload == b.payload

    def test_json_roundtrip_sequences(self, tmp_path):
        trace = RequestTrace.record(
            SequenceDataset(seed=2), rate=500, num_requests=20
        )
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = RequestTrace.load(path)
        assert loaded.entries == trace.entries

    def test_json_roundtrip_trees(self, tmp_path):
        trace = RequestTrace.record(TreeDataset(seed=3), rate=500, num_requests=10)
        path = tmp_path / "trees.jsonl"
        trace.save(path)
        loaded = RequestTrace.load(path)
        assert len(loaded) == len(trace)
        for (t1, p1), (t2, p2) in zip(trace.entries, loaded.entries):
            assert t1 == t2
            assert p1.num_nodes() == p2.num_nodes()
            assert p1.depth() == p2.depth()
        # Replaying a loaded tree trace works end to end.
        server = BatchMakerServer(
            TreeLSTMModel(), config=BatchingConfig.with_max_batch(64)
        )
        loaded.replay(server)
        assert len(server.finished) == len(loaded)

    def test_json_roundtrip_dict_payloads(self, tmp_path):
        trace = RequestTrace([(0.0, {"src": 4, "tgt_len": 2})])
        path = tmp_path / "dict.jsonl"
        trace.save(path)
        assert RequestTrace.load(path).entries[0][1] == {"src": 4, "tgt_len": 2}

"""Differential conformance suite for energy accounting and DVFS (§17).

Same contract shape as ``tests/test_memory_policies.py``:

1. **No-spec / inert-spec bit-identity** — an engine with ``energy=None``
   is the PR-9 engine by construction (every energy branch is gated on
   the spec), and an engine carrying a *single-state* spec at the native
   clock (``frequencies=(1.0,)``, fixed governor) must be
   outcome-fingerprint-identical to it: at f=1.0 the manager reuses the
   unscaled cost model and charging is observation-only, so joule
   accounting can never move a timestamp.
2. **Telescoping** — with a spec, across every chaos seed and under a
   fault storm (kernel faults, stragglers, a device loss): on every alive
   device, attributed + unattributed joules equal the active total within
   1e-9 at drain, and integrated energy is exactly active + idle.
3. **Physics** — a pinned lower clock burns fewer active joules on the
   same workload (energy/kernel goes as f^(exponent-1)); the adaptive
   governors actually move the knob; DVFS trace instants carry the
   ``@x``-named scaled tables.
4. **Registry plumbing** — EnergySpec rides ServerSpec through the JSON
   round trip, a non-batchmaker spec carrying one is rejected at build
   time, and a runtime override beats the spec.
"""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.faults import DeviceFailure, FaultPlan
from repro.gpu.energy import EnergySpec
from repro.models import LSTMChainModel
from repro.registry import ServerSpec, build_server
from repro.registry.presets import lstm_energy_spec, v100_energy_spec
from repro.trace import TraceRecorder
from repro.trace import events as trace_events

from .chaos_helpers import (
    assert_invariants,
    chaos_seeds,
    outcome_fingerprint,
    run_chaos,
)


def _server(energy=None, fast_path=True, num_gpus=2, fault_plan=None):
    return BatchMakerServer(
        LSTMChainModel(),
        config=BatchingConfig.with_max_batch(64, fast_path=fast_path),
        num_gpus=num_gpus,
        fault_plan=fault_plan,
        energy=energy,
    )


def _native_clock_spec(governor="fixed"):
    """A spec that observes but cannot steer: one state, the native clock."""
    return EnergySpec(frequencies=(1.0,), governor=governor)


def _storm_plan(seed):
    return FaultPlan(
        seed=seed,
        kernel_failure_rate=0.05,
        straggler_rate=0.08,
        straggler_multiplier=4.0,
        device_failures=[DeviceFailure(15e-3, 1)],
    )


def _telescope(server):
    """Assert the §17 energy invariant on every device, return the fleet's
    active joules (for non-vacuousness checks at the call site)."""
    now = server.loop.now()
    total_active = 0.0
    for worker in server.manager.workers:
        model = worker.device.energy
        assert model is not None
        assert abs(
            model.attributed_joules()
            + model.unattributed_joules
            - model.active_joules
        ) < 1e-9, f"device {worker.worker_id} books don't telescope"
        busy = worker.device.timeline.busy_time(
            since=model.start_time, until=now
        )
        assert model.integrated_joules(now, busy) == pytest.approx(
            model.active_joules + model.idle_joules(now, busy)
        )
        total_active += model.active_joules
    return total_active


# -- 1. bit-identity --------------------------------------------------------


@pytest.mark.parametrize("fast_path", [True, False])
@pytest.mark.parametrize("seed", chaos_seeds())
def test_native_clock_spec_is_bit_identical_to_no_spec(seed, fast_path):
    """Energy accounting at the native clock is pure observation: same
    terminal outcomes, timestamps, counters and batch compositions as the
    energy-blind engine, for both formation paths and every chaos seed."""
    fingerprints = []
    for energy in (None, _native_clock_spec()):
        server = _server(energy=energy, fast_path=fast_path)
        submitted = run_chaos(
            server, rate=4000.0, num_requests=400, arrival_seed=seed
        )
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1], (
        f"energy accounting perturbed the schedule (seed={seed}, "
        f"fast_path={fast_path})"
    )
    # ...and it really was watching, not disabled.
    assert _telescope(server) > 0
    assert all(
        w.device.energy.tasks_charged > 0 for w in server.manager.workers
    )


@pytest.mark.parametrize("seed", chaos_seeds())
def test_native_clock_bit_identity_survives_fault_storm(seed):
    """Same equivalence under kernel faults, stragglers and a device loss:
    retries and reroutes are charged, never rescheduled."""
    fingerprints = []
    for energy in (None, _native_clock_spec()):
        server = _server(energy=energy, fault_plan=_storm_plan(seed))
        submitted = run_chaos(server, num_requests=300, arrival_seed=seed)
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1]


def test_no_spec_leaves_devices_energy_blind():
    server = _server(energy=None)
    run_chaos(server, num_requests=50)
    assert server.manager.energy_spec is None
    assert server.energy_joules() == 0.0
    for worker in server.manager.workers:
        assert worker.device.energy is None


# -- 2. telescoping under chaos ---------------------------------------------


@pytest.mark.parametrize("governor", ["race_to_idle", "headroom"])
@pytest.mark.parametrize("seed", chaos_seeds())
def test_books_telescope_at_drain(seed, governor):
    server = _server(energy=v100_energy_spec(governor=governor))
    submitted = run_chaos(
        server, rate=2000.0, num_requests=400, arrival_seed=seed
    )
    assert_invariants(server, submitted)
    assert _telescope(server) > 0
    assert server.energy_joules() > 0
    # The adaptive governor actually moved the knob (else the test says
    # nothing about frequency-scaled charging).
    assert any(
        w.device.energy.frequency_changes > 0 for w in server.manager.workers
    ), f"{governor} never changed frequency — deaden the workload less"


@pytest.mark.parametrize("seed", chaos_seeds())
def test_books_telescope_under_fault_storm(seed):
    """Faults included: straggler-stretched kernels charge their real
    duration, retries charge again, and a dead device's books reset."""
    server = _server(
        energy=v100_energy_spec(), fault_plan=_storm_plan(seed)
    )
    submitted = run_chaos(server, num_requests=300, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert _telescope(server) > 0
    dead = [w for w in server.manager.workers if not w.alive]
    assert dead, "the storm's device failure never fired"
    for worker in dead:
        # reset() at death: the dead board's books restarted and nothing
        # ran on it afterwards.
        assert worker.device.energy.active_joules == 0.0
        assert worker.device.energy.tasks_charged == 0
    # Fleet totals skip dead boards.
    assert server.energy_joules() == pytest.approx(
        sum(
            w.device.energy.integrated_joules(
                server.loop.now(),
                w.device.timeline.busy_time(
                    since=w.device.energy.start_time, until=server.loop.now()
                ),
            )
            for w in server.manager.workers
            if w.alive
        )
    )


def test_per_request_attribution_sums_to_attributed():
    server = _server(energy=_native_clock_spec())
    submitted = run_chaos(server, num_requests=200)
    assert_invariants(server, submitted)
    for worker in server.manager.workers:
        model = worker.device.energy
        per_request = model.per_request_joules()
        assert sum(per_request.values()) == pytest.approx(
            model.attributed_joules()
        )
        assert set(per_request) <= {r.request_id for r in submitted}


# -- 3. physics and DVFS plumbing -------------------------------------------


def test_lower_pinned_clock_burns_fewer_active_joules():
    """Same workload, half the clock: kernels stretch 2x but dynamic power
    drops 8x (cubic), so active joules land at a quarter."""
    active = {}
    for frequency in (1.0, 0.5):
        spec = EnergySpec(
            frequencies=(frequency,), governor="fixed", active_watts=200.0
        )
        server = _server(energy=spec, num_gpus=1)
        submitted = run_chaos(server, rate=500.0, num_requests=200)
        assert_invariants(server, submitted)
        active[frequency] = _telescope(server)
    assert active[0.5] < 0.5 * active[1.0]


def test_dvfs_trace_instants_carry_scaled_table_names():
    server = _server(energy=v100_energy_spec(governor="race_to_idle"))
    recorder = TraceRecorder(server.loop)
    server.attach_trace(recorder)
    submitted = run_chaos(server, rate=2000.0, num_requests=300)
    assert_invariants(server, submitted)
    changes = recorder.events(name=trace_events.DVFS_FREQUENCY)
    assert changes, "governor never changed frequency under this workload"
    for event in changes:
        frequency = event.args["frequency"]
        assert frequency in (0.6, 0.8, 1.0)
        for table_name in event.args["tables"]:
            if frequency == 1.0:
                assert "@x" not in table_name  # the unscaled native table
            else:
                assert table_name.endswith(f"@x{1.0 / frequency:g}")


def test_worker_cost_model_follows_the_governor():
    """After a run, each worker's installed cost model matches its device's
    final frequency (the pointer swap really happened)."""
    server = _server(energy=v100_energy_spec(governor="race_to_idle"))
    submitted = run_chaos(server, rate=2000.0, num_requests=300)
    assert_invariants(server, submitted)
    for worker in server.manager.workers:
        frequency = worker.device.energy.frequency
        expected = server.manager._freq_cost_models[frequency]
        assert worker.cost_model is expected


# -- 4. registry plumbing ---------------------------------------------------


def test_server_spec_energy_round_trip():
    spec = lstm_energy_spec()
    assert spec.energy is not None
    restored = ServerSpec.from_dict(spec.to_dict())
    assert restored.energy == spec.energy
    server = build_server(restored)
    assert server.manager.energy_spec == EnergySpec.from_dict(spec.energy)
    for worker in server.manager.workers:
        assert worker.device.energy is not None
        assert worker.device.energy.idle_watts == 50.0


def test_energy_on_baseline_engine_rejected():
    """The graph-batching baselines have no per-kernel submission point to
    charge; an energy spec on one is a config error caught at build time."""
    spec = ServerSpec(
        kind="padded",
        model="lstm",
        energy=v100_energy_spec().to_dict(),
    )
    with pytest.raises(ValueError, match="batchmaker"):
        build_server(spec)


def test_runtime_energy_override_wins():
    spec = lstm_energy_spec()
    override = EnergySpec(idle_watts=1.0, active_watts=10.0)
    server = build_server(spec, energy=override)
    assert server.manager.energy_spec == override

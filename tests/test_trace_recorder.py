"""Unit tests for the trace recorder, scopes, sampling, and timebase."""

import pytest

from repro.sim.timebase import (
    measure_best,
    seconds_to_ms,
    seconds_to_us,
    sim_now,
)
from repro.trace import DEFAULT_CAPACITY, TraceRecorder
from repro.trace import events as ev


class FixedClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


def test_recorder_records_instants_and_spans():
    clock = FixedClock(1.5)
    recorder = TraceRecorder(clock)
    scope = recorder.scope()
    scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=3)
    scope.span(ev.TASK, ev.COMPUTE, ts=1.0, dur=0.25, device_id=0, task_id=9)
    events = list(recorder)
    assert len(recorder) == 2
    assert events[0].kind == ev.INSTANT
    assert events[0].ts == 1.5  # stamped from the clock
    assert events[0].request_id == 3
    assert events[1].kind == ev.SPAN
    assert events[1].end == pytest.approx(1.25)
    assert events[1].device_id == 0 and events[1].task_id == 9


def test_scope_stamps_replica_id():
    recorder = TraceRecorder(FixedClock())
    recorder.scope(replica_id=2).instant("x", ev.SCHED)
    recorder.scope().instant("y", ev.SCHED)
    xs = recorder.events(name="x")
    ys = recorder.events(name="y")
    assert xs[0].replica_id == 2
    assert ys[0].replica_id is None
    assert recorder.events(replica_id=2) == xs


def test_sampling_is_deterministic_on_request_id():
    recorder = TraceRecorder(FixedClock(), sample_every=2)
    scope = recorder.scope()
    scope.instant("a", ev.LIFECYCLE, request_id=3)  # dropped
    scope.instant("b", ev.LIFECYCLE, request_id=4)  # kept
    scope.instant("c", ev.SCHED)  # no request id: always kept
    assert [e.name for e in recorder] == ["b", "c"]
    assert recorder.sampled(None)
    assert recorder.sampled(6)
    assert not recorder.sampled(7)


def test_capacity_bounds_buffer_and_counts_dropped():
    recorder = TraceRecorder(FixedClock(), capacity=3)
    scope = recorder.scope()
    for i in range(5):
        scope.instant(f"e{i}", ev.SCHED)
    assert len(recorder) == 3
    assert recorder.dropped == 2
    # Ring semantics: the most recent events survive.
    assert [e.name for e in recorder] == ["e2", "e3", "e4"]
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.dropped == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        TraceRecorder(FixedClock(), capacity=0)
    with pytest.raises(ValueError):
        TraceRecorder(FixedClock(), sample_every=0)
    assert TraceRecorder(FixedClock()).capacity == DEFAULT_CAPACITY


def test_empty_recorder_is_falsy_so_guards_must_use_is_not_none():
    # A recorder defines __len__, so an *empty* recorder is falsy.  Any
    # attach/guard code must therefore test `recorder is not None`, never
    # truthiness — this pin documents the trap.
    recorder = TraceRecorder(FixedClock())
    assert not recorder
    assert recorder is not None


def test_events_filter_by_name_and_cat():
    recorder = TraceRecorder(FixedClock())
    scope = recorder.scope()
    scope.instant(ev.SCHED_EVICT, ev.SCHED, request_id=1)
    scope.span(ev.TASK, ev.COMPUTE, ts=0.0, dur=1.0)
    scope.span(ev.TASK, ev.RETRY, ts=0.0, dur=1.0)
    assert len(recorder.events(name=ev.TASK)) == 2
    assert len(recorder.events(name=ev.TASK, cat=ev.RETRY)) == 1
    assert len(recorder.events(cat=ev.SCHED)) == 1


# -- shared timebase (used by trace, profiler, metrics) ----------------------


def test_timebase_conversions():
    assert seconds_to_ms(0.25) == pytest.approx(250.0)
    assert seconds_to_us(2e-3) == pytest.approx(2000.0)
    assert sim_now(FixedClock(4.5)) == 4.5


def test_measure_best_takes_minimum_and_validates():
    calls = []

    def fn():
        calls.append(1)

    elapsed = measure_best(fn, repeats=3)
    assert len(calls) == 3
    assert elapsed >= 0.0
    with pytest.raises(ValueError):
        measure_best(fn, repeats=0)

"""Tests for the graph-batching baseline servers."""

import pytest

from repro.baselines import FoldServer, IdealServer, PaddedServer
from repro.baselines.fold import level_census
from repro.core.cell_graph import CellGraph
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


class TestPaddedBucketing:
    def test_bucket_key_is_ceiling(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10)
        assert server.bucket_key(21) == (30,)
        assert server.bucket_key(30) == (30,)
        assert server.bucket_key(1) == (10,)

    def test_bucket_width_one_means_exact(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=1)
        assert server.bucket_key(17) == (17,)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PaddedServer(LSTMChainModel(), bucket_width=0)
        with pytest.raises(ValueError):
            PaddedServer(LSTMChainModel(), max_batch=0)

    def test_same_bucket_requests_batch_together(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10)
        a = server.submit(21, arrival_time=0.0)
        b = server.submit(25, arrival_time=0.0)
        server.drain()
        assert a.finish_time == b.finish_time  # graph batching: leave together
        assert server.batches_executed == 1

    def test_different_buckets_execute_separately(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10)
        server.submit(5, arrival_time=0.0)
        server.submit(25, arrival_time=0.0)
        server.drain()
        assert server.batches_executed == 2

    def test_padding_charges_bucket_ceiling(self):
        """A length-21 request in a width-10 bucket pays for 30 steps."""
        server = PaddedServer(
            LSTMChainModel(), bucket_width=10,
            per_batch_overhead=0.0, per_step_overhead=0.0,
        )
        short = PaddedServer(
            LSTMChainModel(), bucket_width=1,
            per_batch_overhead=0.0, per_step_overhead=0.0,
        )
        a = server.submit(21, arrival_time=0.0)
        b = short.submit(21, arrival_time=0.0)
        server.drain()
        short.drain()
        assert a.computation_time == pytest.approx(b.computation_time * 30 / 21)

    def test_round_robin_across_buckets(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10)
        first = server.submit(5, arrival_time=0.0)
        second = server.submit(15, arrival_time=0.0)
        third = server.submit(6, arrival_time=0.0)  # joins first's bucket
        server.drain()
        # Bucket (10,) runs first with both its requests, then bucket (20,).
        assert first.start_time == third.start_time == 0.0
        assert second.start_time > 0.0

    def test_max_batch_respected(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10, max_batch=2)
        for i in range(5):
            server.submit(5, arrival_time=0.0)
        server.drain()
        assert server.batches_executed == 3
        assert max(server.batch_sizes) == 2

    def test_seq2seq_buckets_on_source_and_pads_decode_to_batch_max(self):
        server = PaddedServer(
            Seq2SeqModel(), bucket_width=10,
            per_batch_overhead=0.0, per_step_overhead=0.0,
        )
        a = server.submit({"src": 8, "tgt_len": 3}, arrival_time=0.0)
        b = server.submit({"src": 4, "tgt_len": 11}, arrival_time=0.0)
        server.drain()
        assert server.batches_executed == 1  # same source bucket
        cost = server.cost_model
        expected = 10 * cost.kernel_time("encoder", 2) + 20 * cost.kernel_time(
            "decoder", 2
        )
        assert a.computation_time == pytest.approx(expected)
        assert a.finish_time == b.finish_time

    def test_mean_batch_size(self):
        server = PaddedServer(LSTMChainModel(), bucket_width=10)
        assert server.mean_batch_size() == 0.0
        server.submit(5, arrival_time=0.0)
        server.submit(6, arrival_time=0.0)
        server.drain()
        assert server.mean_batch_size() == 2.0


class TestFoldMerging:
    def test_level_census_chain(self):
        model = LSTMChainModel()
        graph = CellGraph()
        model.unfold(graph, 4)
        census = level_census(graph)
        assert census == {i: {"lstm": 1} for i in range(4)}

    def test_level_census_tree(self):
        model = TreeLSTMModel()
        graph = CellGraph()
        model.unfold(graph, TreePayload(TreeNodeSpec.complete(4)))
        census = level_census(graph)
        assert census[0] == {"tree_leaf": 4}
        assert census[1] == {"tree_internal": 2}
        assert census[2] == {"tree_internal": 1}

    def test_batch_merges_levels_across_requests(self):
        server = FoldServer(TreeLSTMModel(), per_level_overhead=0.0)
        a = server.submit(TreePayload(TreeNodeSpec.complete(4)), arrival_time=0.0)
        b = server.submit(TreePayload(TreeNodeSpec.complete(4)), arrival_time=0.0)
        server.drain()
        cost = server.cost_model
        expected = (
            cost.kernel_time("tree_leaf", 8)
            + cost.kernel_time("tree_internal", 4)
            + cost.kernel_time("tree_internal", 2)
        )
        assert a.computation_time == pytest.approx(expected)
        assert a.finish_time == b.finish_time

    def test_merge_overhead_serial(self):
        base = FoldServer(TreeLSTMModel(), merge_overhead_per_request=0.0)
        loaded = FoldServer(
            TreeLSTMModel(), merge_overhead_per_request=1e-3, overlap_merge=False
        )
        payload = TreePayload(TreeNodeSpec.complete(4))
        a = base.submit(payload, arrival_time=0.0)
        b = loaded.submit(payload, arrival_time=0.0)
        base.drain()
        loaded.drain()
        assert b.computation_time == pytest.approx(a.computation_time + 1e-3)

    def test_merge_overhead_overlapped_takes_max(self):
        server = FoldServer(
            TreeLSTMModel(),
            merge_overhead_per_request=1.0,  # absurdly large: dominates
            overlap_merge=True,
        )
        request = server.submit(TreePayload(TreeNodeSpec.complete(4)), arrival_time=0.0)
        server.drain()
        assert request.computation_time == pytest.approx(1.0)

    def test_max_requests_cap(self):
        server = FoldServer(TreeLSTMModel(), max_requests=2)
        for i in range(5):
            server.submit(TreePayload(TreeNodeSpec.complete(2)), arrival_time=0.0)
        server.drain()
        assert server.batches_executed == 3

    def test_published_configurations(self):
        fold = FoldServer.tensorflow_fold(TreeLSTMModel())
        dynet = FoldServer.dynet(TreeLSTMModel())
        assert fold.name == "TF Fold"
        assert dynet.name == "DyNet"
        assert fold.merge_overhead_per_request > dynet.merge_overhead_per_request
        assert fold.overlap_merge and not dynet.overlap_merge

    def test_works_for_chains_too(self):
        server = FoldServer(LSTMChainModel())
        a = server.submit(3, arrival_time=0.0)
        b = server.submit(7, arrival_time=0.0)
        server.drain()
        assert a.finish_time == b.finish_time


class TestIdealServer:
    def payload(self):
        return TreePayload(TreeNodeSpec.complete(4))

    def test_requires_identical_structure(self):
        server = IdealServer(TreeLSTMModel(), self.payload())
        with pytest.raises(ValueError, match="differs from the template"):
            server.submit(TreePayload(TreeNodeSpec.complete(8)), arrival_time=0.0)
            server.drain()

    def test_duration_is_one_kernel_per_template_node(self):
        server = IdealServer(TreeLSTMModel(), self.payload())
        request = server.submit(self.payload(), arrival_time=0.0)
        server.drain()
        cost = server.cost_model
        expected = 4 * cost.kernel_time("tree_leaf", 1) + 3 * cost.kernel_time(
            "tree_internal", 1
        )
        assert request.computation_time == pytest.approx(expected)

    def test_batches_up_to_max(self):
        server = IdealServer(TreeLSTMModel(), self.payload(), max_batch=3)
        for i in range(7):
            server.submit(self.payload(), arrival_time=0.0)
        server.drain()
        assert server.batch_sizes == [3, 3, 1]

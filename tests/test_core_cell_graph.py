"""Tests for CellGraph construction and partitioning into subgraphs."""

import pytest

from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.core.request import InferenceRequest
from repro.core.subgraph import partition_into_subgraphs
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


@pytest.fixture
def lstm_type():
    return CellType("lstm", ("ids", "h", "c"), ("h", "c"))


def build_chain(lstm_type, length):
    graph = CellGraph()
    prev = None
    for t in range(length):
        inputs = {"ids": ValueInput(t)}
        if prev is None:
            inputs["h"] = ValueInput(None)
            inputs["c"] = ValueInput(None)
        else:
            inputs["h"] = NodeOutput(prev.node_id, "h")
            inputs["c"] = NodeOutput(prev.node_id, "c")
        prev = graph.add_node(lstm_type, inputs)
    graph.mark_result(prev, "h")
    return graph


class TestGraphConstruction:
    def test_missing_input_raises(self, lstm_type):
        graph = CellGraph()
        with pytest.raises(ValueError, match="missing inputs"):
            graph.add_node(lstm_type, {"ids": ValueInput(0)})

    def test_unknown_node_reference_raises(self, lstm_type):
        graph = CellGraph()
        with pytest.raises(ValueError, match="unknown node"):
            graph.add_node(
                lstm_type,
                {
                    "ids": ValueInput(0),
                    "h": NodeOutput(42, "h"),
                    "c": ValueInput(None),
                },
            )

    def test_unknown_output_reference_raises(self, lstm_type):
        graph = build_chain(lstm_type, 1)
        with pytest.raises(ValueError, match="no output"):
            graph.add_node(
                lstm_type,
                {
                    "ids": ValueInput(0),
                    "h": NodeOutput(0, "bogus"),
                    "c": NodeOutput(0, "c"),
                },
            )

    def test_bad_input_type_raises(self, lstm_type):
        graph = CellGraph()
        with pytest.raises(TypeError):
            graph.add_node(
                lstm_type, {"ids": 5, "h": ValueInput(None), "c": ValueInput(None)}
            )

    def test_predecessors_are_deduped(self, lstm_type):
        graph = build_chain(lstm_type, 2)
        # Node 1 consumes both h and c of node 0 — one unique predecessor.
        assert graph.node(1).predecessors() == [0]

    def test_successors(self, lstm_type):
        graph = build_chain(lstm_type, 3)
        assert list(graph.successors(0)) == [1]
        assert list(graph.successors(2)) == []

    def test_mark_result_validates_output_name(self, lstm_type):
        graph = build_chain(lstm_type, 1)
        with pytest.raises(ValueError, match="no output"):
            graph.mark_result(graph.node(0), "bogus")

    def test_census(self, lstm_type):
        graph = build_chain(lstm_type, 4)
        assert graph.cell_type_census() == {"lstm": 4}

    def test_collect_results_requires_execution(self, lstm_type):
        graph = build_chain(lstm_type, 1)
        with pytest.raises(RuntimeError, match="not been executed"):
            graph.collect_results()


class TestPartitioning:
    def _partition(self, model, payload):
        graph = CellGraph()
        model.unfold(graph, payload)
        request = InferenceRequest(0, payload, 0.0)
        request.graph = graph
        return graph, partition_into_subgraphs(graph, request)

    def test_lstm_chain_is_one_subgraph(self):
        model = LSTMChainModel()
        graph, subgraphs = self._partition(model, 10)
        assert len(subgraphs) == 1
        assert len(subgraphs[0].node_ids) == 10
        assert subgraphs[0].cell_type_name == "lstm"

    def test_seq2seq_yields_encoder_and_decoder_subgraphs(self):
        model = Seq2SeqModel()
        graph, subgraphs = self._partition(model, {"src": 6, "tgt_len": 4})
        by_type = {sg.cell_type_name: sg for sg in subgraphs}
        assert set(by_type) == {"encoder", "decoder"}
        assert len(by_type["encoder"].node_ids) == 6
        assert len(by_type["decoder"].node_ids) == 4

    def test_complete_tree_partition_matches_paper_example(self):
        # §4.4: a complete binary tree with 16 leaves -> 17 subgraphs: one
        # with the 15 internal nodes (31-node tree) and 16 leaf singletons.
        model = TreeLSTMModel()
        payload = TreePayload(TreeNodeSpec.complete(16))
        graph, subgraphs = self._partition(model, payload)
        leaf_sgs = [s for s in subgraphs if s.cell_type_name == "tree_leaf"]
        internal_sgs = [s for s in subgraphs if s.cell_type_name == "tree_internal"]
        assert len(leaf_sgs) == 16
        assert all(len(s.node_ids) == 1 for s in leaf_sgs)
        assert len(internal_sgs) == 1
        assert len(internal_sgs[0].node_ids) == 15

    def test_external_dependencies_counted(self):
        model = Seq2SeqModel()
        graph, subgraphs = self._partition(model, {"src": 3, "tgt_len": 2})
        by_type = {sg.cell_type_name: sg for sg in subgraphs}
        assert by_type["encoder"].external_pending == 0
        assert by_type["encoder"].is_releasable()
        # Decoder's first cell waits on the encoder's final state.
        assert by_type["decoder"].external_pending == 1
        assert not by_type["decoder"].is_releasable()

    def test_initial_ready_nodes_are_sources_only(self):
        model = TreeLSTMModel()
        payload = TreePayload(TreeNodeSpec.complete(4))
        graph, subgraphs = self._partition(model, payload)
        internal = next(
            s for s in subgraphs if s.cell_type_name == "tree_internal"
        )
        # Bottom internal level (2 nodes) depends only on leaves (external),
        # so both are ready within the subgraph; the root is not.
        assert internal.ready_count() == 2

    def test_subgraph_ids_are_assigned(self):
        model = LSTMChainModel()
        graph, subgraphs = self._partition(model, 5)
        for node in graph.nodes():
            assert node.subgraph_id == subgraphs[0].subgraph_id

"""Edge-case tests filling coverage gaps across modules."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel
from repro.tensor.graph import DataflowGraph
from repro.workload import FixedLengthDataset, LoadGenerator


class TestDataflowGraphCycles:
    def test_cycle_detected(self):
        g = DataflowGraph("loop")
        g.placeholder("x")
        g.op("a", "sigmoid", "b")  # forward reference...
        g.op("b", "sigmoid", "a")  # ...closing a cycle
        with pytest.raises(ValueError, match="cycle"):
            g.topological_order()

    def test_output_never_computed(self):
        g = DataflowGraph("g")
        g.placeholder("x")
        g.op("y", "sigmoid", "x")
        g.output("y")
        g.outputs.append("ghost")
        with pytest.raises(ValueError, match="never computed"):
            g.run({"x": np.zeros((1, 2))}, {})


class TestLoadGeneratorOverload:
    def test_deadline_with_no_survivors_raises(self):
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(64)
        )
        generator = LoadGenerator(rate=100, num_requests=50, seed=0)
        # Deadline before anything can finish -> loud failure, not silence.
        with pytest.raises(RuntimeError, match="overloaded"):
            generator.run(server, FixedLengthDataset(500), deadline=1e-6)


class TestMigrationCost:
    def test_copy_cost_charged_for_cross_worker_move(self):
        """Directly exercise the manager's migration charge: a subgraph
        whose state lives on worker 0 pays a copy when scheduled on 1."""
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(4),
            num_gpus=2,
        )
        manager = server.manager
        request = server.submit(2)
        server.drain()
        (sg,) = request.subgraphs.values()
        sg.last_worker = 0

        class FakeTask:
            def subgraphs(self_inner):
                return [sg]

        other_worker = manager.workers[1]
        cost = manager._migration_cost(FakeTask(), other_worker)
        assert cost > 0
        same_worker = manager.workers[0]
        assert manager._migration_cost(FakeTask(), same_worker) == 0.0


class TestCellTypeErrors:
    def test_sim_only_cell_type_cannot_compute(self):
        from repro.core.cell import CellType

        ct = CellType("x", ("a",), ("b",))
        with pytest.raises(RuntimeError, match="no compute body"):
            ct.compute({"a": np.zeros(1)})

    def test_empty_name_rejected(self):
        from repro.core.cell import CellType

        with pytest.raises(ValueError):
            CellType("", ("a",), ("b",))


class TestRequestGuards:
    def test_double_finish_raises(self):
        from repro.core.request import InferenceRequest

        request = InferenceRequest(0, None, 0.0)
        request.mark_finished(1.0)
        with pytest.raises(RuntimeError, match="twice"):
            request.mark_finished(2.0)

    def test_unstarted_request_has_no_metrics(self):
        from repro.core.request import InferenceRequest

        request = InferenceRequest(0, None, 0.0)
        assert request.latency is None
        assert request.queuing_time is None
        assert request.computation_time is None

    def test_mark_started_is_idempotent(self):
        from repro.core.request import InferenceRequest

        request = InferenceRequest(0, None, 0.0)
        request.mark_started(1.0)
        request.mark_started(5.0)  # later cells don't move the start time
        assert request.start_time == 1.0


class TestRunnerPlotDir(object):
    def test_plot_dir_writes_svgs(self, tmp_path, capsys):
        from repro.experiments import runner

        assert runner.main(["fig5", "--quick", "--plot-dir", str(tmp_path)]) == 0
        written = list(tmp_path.glob("*.svg"))
        assert len(written) == 2  # graph + cellular timelines
        for path in written:
            assert path.read_text().startswith("<svg")

"""Tests for the per-figure plot() functions using synthetic results
(full experiment runs are exercised by the benchmark suite)."""

import pytest

from repro.core.request import InferenceRequest
from repro.experiments import (
    fig7_lstm,
    fig8_bucket_width,
    fig11_variance,
    fig13_seq2seq,
    fig14_treelstm,
    fig15_fixed_tree,
)
from repro.metrics.latency import LatencyStats
from repro.metrics.summary import RunSummary


def summary(system, rate, throughput, p90_s=0.01):
    request = InferenceRequest(0, None, 0.0)
    request.mark_started(0.0)
    request.mark_finished(p90_s)
    return RunSummary(system, rate, throughput, LatencyStats().extend([request]))


def sweep(*systems):
    return {
        name: [summary(name, r, r * 0.98) for r in (1000, 2000)]
        for name in systems
    }


class TestSweepPlots:
    def test_fig7_plot(self, tmp_path):
        results = {512: sweep("BatchMaker", "MXNet"), 64: sweep("BatchMaker")}
        paths = fig7_lstm.plot(results, tmp_path)
        assert len(paths) == 2
        for path in paths:
            assert (tmp_path / path.split("/")[-1]).read_text().startswith("<svg")

    def test_fig8_plot(self, tmp_path):
        paths = fig8_bucket_width.plot(sweep("bw 1", "bw 10"), tmp_path)
        assert len(paths) == 1

    def test_fig11_plot(self, tmp_path):
        results = {
            "fixed length 24": sweep("BatchMaker", "MXNet"),
            "max length 100": sweep("BatchMaker", "MXNet"),
        }
        paths = fig11_variance.plot(results, tmp_path)
        assert len(paths) == 2
        assert any("fixed_length_24" in p for p in paths)

    def test_fig13_plot(self, tmp_path):
        results = {2: sweep("BatchMaker-512,256", "MXNet"), 4: sweep("MXNet")}
        paths = fig13_seq2seq.plot(results, tmp_path)
        assert len(paths) == 2
        assert any("13a" in p for p in paths) and any("13b" in p for p in paths)

    def test_fig14_plot(self, tmp_path):
        paths = fig14_treelstm.plot(sweep("BatchMaker", "DyNet", "TF Fold"), tmp_path)
        assert len(paths) == 1

    def test_fig15_plot(self, tmp_path):
        paths = fig15_fixed_tree.plot(sweep("Ideal", "BatchMaker"), tmp_path)
        assert len(paths) == 1

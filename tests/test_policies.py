"""The policy layer: default-bundle bit-identity and variant behaviour.

The tentpole guarantee: running the engine with the *default*
:class:`~repro.policies.PolicyBundle` — whether derived implicitly from
the config, constructed explicitly, or assembled by registry name — is
bit-identical (fixed seed, fast path on or off) to the engine's
decisions.  Variants must run to completion, and every bundled policy
must keep the fast-path ready counters consistent with a brute-force
recount across evictions.
"""

import itertools
import random

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.core.scheduler import Scheduler
from repro.core.subgraph import partition_into_subgraphs
from repro.models import LSTMChainModel, Seq2SeqModel
from repro.policies import (
    FORMATION_POLICIES,
    PLACEMENT_POLICIES,
    PRIORITY_POLICIES,
    PolicyBundle,
    bundle_from_names,
    make_formation,
    make_placement,
    make_priority,
)
from repro.workload import LoadGenerator, Seq2SeqDataset


def _fingerprint(server):
    generator = LoadGenerator(rate=3000, num_requests=600, seed=7)
    result = generator.run(server, Seq2SeqDataset(seed=5))
    scheduler = server.manager.scheduler
    summary = result.summary
    return {
        "tasks_submitted": scheduler.tasks_submitted,
        "batch_size_counts": dict(scheduler.batch_size_counts),
        "latencies": tuple(summary.stats.latencies),
        "queuing": tuple(summary.stats.queuing),
    }


def _seq2seq_config(**overrides):
    return BatchingConfig.with_max_batch(
        512,
        per_cell_max={"decoder": 256},
        per_cell_priority={"decoder": 1, "encoder": 0},
        **overrides,
    )


def _server(config, policies=None):
    return BatchMakerServer(
        Seq2SeqModel(), config=config, num_gpus=2, policies=policies
    )


class TestDefaultBundleBitIdentity:
    @pytest.mark.parametrize("fast_path", [True, False])
    def test_explicit_default_bundle_matches_implicit(self, fast_path):
        """policies=None and an explicit from_config bundle decide
        identically — the refactor moved code, not behaviour."""
        config = _seq2seq_config(fast_path=fast_path)
        implicit = _fingerprint(_server(config))
        explicit = _fingerprint(
            _server(config, policies=PolicyBundle.from_config(config))
        )
        assert implicit == explicit

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_bundle_assembled_by_name_matches(self, fast_path):
        config = _seq2seq_config(fast_path=fast_path)
        named = bundle_from_names(
            config, priority="paper", placement="pinned", formation="paper"
        )
        assert _fingerprint(_server(config)) == _fingerprint(
            _server(config, policies=named)
        )

    def test_unpinned_swap_matches_pinning_flag(self):
        """The unpinned placement policy is the pinning=False ablation."""
        flag = _fingerprint(_server(_seq2seq_config(pinning=False)))
        swap = _fingerprint(
            _server(
                _seq2seq_config(),
                policies=bundle_from_names(_seq2seq_config(), placement="unpinned"),
            )
        )
        assert flag == swap

    def test_flat_priority_matches_zeroed_priorities(self):
        """The flat queue policy == configuring every priority to zero."""
        zeroed = BatchingConfig.with_max_batch(
            512,
            per_cell_max={"decoder": 256},
            per_cell_priority={"decoder": 0, "encoder": 0},
        )
        flag = _fingerprint(_server(zeroed))
        swap = _fingerprint(
            _server(
                _seq2seq_config(),
                policies=bundle_from_names(_seq2seq_config(), priority="flat"),
            )
        )
        assert flag == swap

    def test_default_names(self):
        config = _seq2seq_config()
        assert PolicyBundle.from_config(config).names() == {
            "priority": "paper",
            "placement": "pinned",
            "formation": "paper",
        }
        assert PolicyBundle.from_config(
            BatchingConfig(pinning=False)
        ).names()["placement"] == "unpinned"


class TestVariantsRun:
    """Every registered policy runs a small load to completion."""

    @pytest.mark.parametrize("priority", sorted(PRIORITY_POLICIES))
    def test_priority_variants(self, priority):
        self._drain(bundle_from_names(_seq2seq_config(), priority=priority))

    @pytest.mark.parametrize("placement", sorted(PLACEMENT_POLICIES))
    def test_placement_variants(self, placement):
        self._drain(bundle_from_names(_seq2seq_config(), placement=placement))

    @pytest.mark.parametrize("formation", sorted(FORMATION_POLICIES))
    def test_formation_variants(self, formation):
        self._drain(bundle_from_names(_seq2seq_config(), formation=formation))

    @staticmethod
    def _drain(bundle):
        server = _server(_seq2seq_config(), policies=bundle)
        generator = LoadGenerator(rate=2000, num_requests=200, seed=7)
        result = generator.run(server, Seq2SeqDataset(seed=5))
        assert len(server.finished) == 200
        assert all(lat > 0 for lat in result.summary.stats.latencies)

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            make_priority("nope")
        with pytest.raises(KeyError):
            make_placement("nope")
        with pytest.raises(KeyError):
            make_formation("nope")


class _FakeWorker:
    def __init__(self, worker_id):
        self.worker_id = worker_id


def _loaded_scheduler(bundle, num_requests=48, num_workers=4):
    """A standalone scheduler holding chain subgraphs under ``bundle``."""
    model = LSTMChainModel()
    config = BatchingConfig.with_max_batch(8, max_tasks_to_submit=2)
    bundle.placement.prepare(num_workers)
    scheduler = Scheduler(config, submit=lambda task, worker: None, policies=bundle)
    for cell_type in model.cell_types():
        scheduler.register_cell_type(cell_type)
    requests = []
    for rid in range(num_requests):
        graph = CellGraph()
        model.unfold(graph, 12)
        request = InferenceRequest(rid, 12, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request, start_id=rid * 8)
        request.subgraphs = {sg.subgraph_id: sg for sg in subgraphs}
        for sg in subgraphs:
            scheduler.add_subgraph(sg)
        requests.append(request)
    return scheduler, requests


ALL_BUNDLES = sorted(
    itertools.product(
        sorted(PRIORITY_POLICIES), sorted(PLACEMENT_POLICIES), sorted(FORMATION_POLICIES)
    )
)


class TestEvictionCounterConsistency:
    """Property: after any interleaving of scheduling and eviction, the
    fast-path ready counter of every queue equals a brute-force recount —
    under every bundled policy combination."""

    @pytest.mark.parametrize("priority,placement,formation", ALL_BUNDLES)
    def test_evict_keeps_counters_exact(self, priority, placement, formation):
        bundle = PolicyBundle(
            priority=make_priority(priority),
            placement=make_placement(placement),
            formation=make_formation(formation),
        )
        scheduler, requests = _loaded_scheduler(bundle)
        rng = random.Random(f"{priority}/{placement}/{formation}")
        workers = [_FakeWorker(i) for i in range(4)]
        victims = rng.sample(requests, k=len(requests) // 3)
        for step, victim in enumerate(victims):
            # A few scheduling rounds between evictions, on rotating workers.
            for _ in range(rng.randrange(3)):
                scheduler.schedule(workers[step % len(workers)])
            scheduler.evict_request(victim)
            self._assert_counters_exact(scheduler)
        # Drain what's left; counters must track every commit too.
        for round_robin in range(64):
            if scheduler.schedule(workers[round_robin % len(workers)]) == 0:
                if all(
                    q.recount_ready_nodes() == 0
                    for q in scheduler._queues.values()
                ):
                    break
        self._assert_counters_exact(scheduler)

    @staticmethod
    def _assert_counters_exact(scheduler):
        for queue in scheduler._queues.values():
            assert queue.num_ready_nodes() == queue.recount_ready_nodes()

"""Tests for the serving-statistics module."""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.core.stats import ServerStats
from repro.models import LSTMChainModel


def served_server(num_gpus=2, n=20):
    server = BatchMakerServer(
        LSTMChainModel(),
        config=BatchingConfig.with_max_batch(8),
        num_gpus=num_gpus,
    )
    for i in range(n):
        server.submit(10, arrival_time=i * 1e-4)
    server.drain()
    return server


class TestServerStats:
    def test_counts_are_consistent(self):
        server = served_server()
        stats = server.stats()
        assert stats.finished_requests == 20
        assert stats.live_requests == 0
        assert stats.nodes_processed == 200
        assert stats.tasks_submitted == sum(stats.batch_size_counts.values())
        # Every cell went through exactly one task.
        assert sum(b * c for b, c in stats.batch_size_counts.items()) == 200

    def test_worker_utilization_bounds(self):
        server = served_server()
        stats = server.stats()
        assert len(stats.workers) == 2
        for worker in stats.workers:
            assert 0.0 <= worker["utilization"] <= 1.0
            assert 0.0 <= worker["gather_rate"] <= 1.0
        assert sum(w["tasks"] for w in stats.workers) == stats.tasks_submitted

    def test_batch_size_percentile(self):
        server = served_server()
        stats = server.stats()
        p50 = stats.batch_size_percentile(50)
        assert 1 <= p50 <= 8
        assert stats.batch_size_percentile(100) >= p50

    def test_percentile_requires_tasks(self):
        server = BatchMakerServer(LSTMChainModel())
        with pytest.raises(ValueError, match="no tasks"):
            server.stats().batch_size_percentile(50)

    def test_report_renders(self):
        server = served_server()
        text = server.stats().report()
        assert "serving report" in text
        assert "gpu0" in text and "gpu1" in text
        assert "latency ms" in text

    def test_report_before_any_traffic(self):
        server = BatchMakerServer(LSTMChainModel())
        stats = server.stats()
        assert stats.latency is None
        assert stats.mean_batch_size() == 0.0

    def test_gather_rate_reflects_composition_stability(self):
        """A single long chain re-batches the same composition every step:
        only the first task needs a gather."""
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(8)
        )
        server.submit(50)
        server.drain()
        stats = server.stats()
        (worker,) = stats.workers
        assert worker["gathers"] == 1

"""Tests for the offline profiler and the task-trace tooling."""

import pytest

from repro.cells.lstm import LSTMCell
from repro.core import BatchMakerServer, BatchingConfig
from repro.core.profiler import (
    ProfileResult,
    profile_cell,
    profile_cost_model,
    recommend_config,
)
from repro.metrics.timeline import TaskTrace
from repro.models import LSTMChainModel, Seq2SeqModel
from repro.tensor.parameters import ParameterStore


class TestProfileResult:
    def test_best_batch_prefers_smallest_at_peak(self):
        # Equal throughput at 4 and 8: pick 4 (less latency).
        profile = ProfileResult("c", [(1, 1.0), (4, 2.0), (8, 4.0)])
        assert profile.best_batch() == 4

    def test_throughput_lookup(self):
        profile = ProfileResult("c", [(2, 1.0)])
        assert profile.throughput(2) == 2.0
        with pytest.raises(KeyError):
            profile.throughput(3)

    def test_empty_profile_raises(self):
        with pytest.raises(ValueError):
            ProfileResult("c", [])


class TestProfileCostModel:
    def test_recovers_paper_batch_choices(self):
        model = Seq2SeqModel()
        profiles = profile_cost_model(
            model.default_cost_model(), ["encoder", "decoder"]
        )
        assert profiles["encoder"].best_batch() == 512
        assert profiles["decoder"].best_batch() == 256

    def test_recommend_config_builds_per_cell_settings(self):
        model = Seq2SeqModel()
        profiles = profile_cost_model(
            model.default_cost_model(), ["encoder", "decoder"]
        )
        config = recommend_config(profiles, priorities={"decoder": 1})
        assert config.for_cell("encoder").max_batch == 512
        assert config.for_cell("decoder").max_batch == 256
        assert config.for_cell("decoder").priority == 1
        assert config.max_tasks_to_submit == 5


class TestProfileRealCell:
    def test_profile_measures_real_cell(self):
        cell = LSTMCell("p", 8, 8, ParameterStore(seed=0))
        profile = profile_cell(cell, candidates=(1, 4), repeats=1)
        assert len(profile.points) == 2
        assert all(t > 0 for _, t in profile.points)

    def test_unknown_shape_requires_input_maker(self):
        from repro.cells.base import Cell

        class ShapelessCell(Cell):
            def __init__(self):
                super().__init__("s", ("x",), ("y",))

            def compute(self, inputs):
                return {"y": inputs["x"]}

            def num_operators(self):
                return 1

        with pytest.raises(ValueError, match="input_maker"):
            profile_cell(ShapelessCell(), candidates=(1,), repeats=1)


class TestTaskTrace:
    def run_traced(self, num_gpus=1):
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(8),
            num_gpus=num_gpus,
        )
        trace = TaskTrace.attach(server)
        for i in range(6):
            server.submit(5, arrival_time=i * 1e-4)
        server.drain()
        return server, trace

    def test_records_every_task(self):
        server, trace = self.run_traced()
        assert len(trace.records) == server.tasks_submitted()
        for record in trace.records:
            assert record.end >= record.start
            assert record.batch_size >= 1

    def test_by_worker_grouping(self):
        server, trace = self.run_traced(num_gpus=2)
        grouped = trace.by_worker()
        assert sum(len(v) for v in grouped.values()) == len(trace.records)
        for records in grouped.values():
            starts = [r.start for r in records]
            assert starts == sorted(starts)

    def test_batch_histogram_total(self):
        server, trace = self.run_traced()
        histogram = trace.batch_size_histogram()
        assert sum(histogram.values()) == len(trace.records)

    def test_gantt_renders_rows_and_legend(self):
        server, trace = self.run_traced(num_gpus=2)
        art = trace.render_gantt(width=60)
        assert "gpu0 |" in art
        assert "lstm" in art  # legend

    def test_empty_trace(self):
        trace = TaskTrace()
        assert trace.render_gantt() == "(empty trace)"
        with pytest.raises(ValueError):
            trace.span()

"""Shared machinery for the cluster test suites.

Mirrors ``chaos_helpers`` one level up: drive a ``ClusterServer`` through
a fixed-seed Poisson workload, then assert the *cluster* invariants —
every logical request terminal exactly once at cluster level, no leaked
events, counters reconciled across replicas.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cluster import ClusterServer, build_cluster
from repro.core.request import RequestState
from repro.registry.presets import lstm_cluster_spec
from repro.workload import SequenceDataset
from repro.workload.arrivals import PoissonArrivals


def build_lstm_cluster(
    num_replicas: int = 2,
    router: str = "round_robin",
    seed: int = 0,
    max_batch: int = 64,
    replica_failures: Sequence = (),
    autoscaler=None,
    router_params=None,
    sla=None,
) -> ClusterServer:
    spec = lstm_cluster_spec(
        num_replicas=num_replicas,
        router=router,
        max_batch=max_batch,
        seed=seed,
        autoscaler=autoscaler,
        router_params=router_params,
    )
    if sla is not None:  # cluster-level admission control (SLAConfig form)
        spec = spec.replace(sla=sla)
    return build_cluster(spec, replica_failures=replica_failures)


def run_cluster(
    cluster: ClusterServer,
    rate: float = 3000.0,
    num_requests: int = 300,
    arrival_seed: int = 7,
    deadline: Optional[float] = None,
    dataset_seed: int = 1,
) -> List:
    """Submit a fixed-seed workload, drain, return the logical requests."""
    dataset = SequenceDataset(seed=dataset_seed)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(
            cluster.submit(
                dataset.sample_one(), arrival_time=when, deadline=deadline
            )
        )
    cluster.drain()
    return submitted


def assert_cluster_invariants(cluster: ClusterServer, submitted: List) -> None:
    """The invariants every cluster run must satisfy, failures or not.

    1. Every submitted logical request reaches exactly one terminal state
       and appears in exactly one of the cluster's terminal lists.
    2. No replica still owns a logical request, and the shared loop drained
       clean.
    3. Routing bookkeeping reconciles: every terminal outcome was either
       routed to some replica or rejected at the front end.
    """
    by_state = {
        RequestState.FINISHED: cluster.finished,
        RequestState.TIMED_OUT: cluster.timed_out,
        RequestState.REJECTED: cluster.rejected,
    }
    reported_ids = []
    for state, bucket in by_state.items():
        for request in bucket:
            assert request.state is state, (request, state)
            reported_ids.append(request.request_id)
    assert len(reported_ids) == len(set(reported_ids)), "request reported twice"
    assert sorted(reported_ids) == sorted(r.request_id for r in submitted), (
        "hung or unreported requests: "
        f"{set(r.request_id for r in submitted) ^ set(reported_ids)}"
    )
    for request in submitted:
        assert request.terminal, f"request {request.request_id} never terminal"
        assert request.terminal_time is not None

    assert cluster.loop.pending() == 0 == cluster.loop.recount_pending(), (
        "leaked events"
    )
    for replica in cluster.replicas:
        assert not replica.shadow_of, (
            f"replica {replica.replica_id} still owns logical requests"
        )

    # Front-end accounting: every logical request was routed at least once
    # or rejected by the cluster itself.
    counters = cluster.cluster_counters
    total_routed = sum(replica.routed for replica in cluster.replicas)
    assert total_routed == (
        cluster.router.decisions
    ), "router decisions and routed shadows disagree"
    front_end_rejections = (
        counters.cluster_rejections
        + counters.requests_lost
        + counters.sla_rejections
        + counters.memory_rejections
    )
    assert total_routed + front_end_rejections >= len(submitted), (
        "some requests neither routed nor rejected"
    )

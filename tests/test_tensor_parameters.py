"""Tests for the parameter store."""

import numpy as np
import pytest

from repro.tensor.parameters import ParameterStore, glorot_uniform, orthogonal


class TestInitializers:
    def test_glorot_bounds(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform(rng, (100, 50))
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert w.dtype == np.float32

    def test_orthogonal_columns(self):
        rng = np.random.default_rng(0)
        w = orthogonal(rng, (8, 8)).astype(np.float64)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-5)

    def test_orthogonal_rectangular_shapes(self):
        rng = np.random.default_rng(0)
        assert orthogonal(rng, (4, 9)).shape == (4, 9)
        assert orthogonal(rng, (9, 4)).shape == (9, 4)

    def test_orthogonal_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            orthogonal(np.random.default_rng(0), (3,))


class TestStore:
    def test_create_and_get(self):
        store = ParameterStore(seed=0)
        created = store.create("a/W", (3, 4))
        assert store.get("a/W") is created
        assert "a/W" in store

    def test_create_is_seeded_deterministic(self):
        a = ParameterStore(seed=7).create("w", (5, 5))
        b = ParameterStore(seed=7).create("w", (5, 5))
        np.testing.assert_array_equal(a, b)

    def test_duplicate_create_raises(self):
        store = ParameterStore()
        store.create("w", (2, 2))
        with pytest.raises(KeyError, match="already exists"):
            store.create("w", (2, 2))

    def test_unknown_get_raises(self):
        with pytest.raises(KeyError, match="unknown parameter"):
            ParameterStore().get("missing")

    def test_zeros_and_normal_inits(self):
        store = ParameterStore(seed=0)
        z = store.create("z", (4,), init="zeros")
        np.testing.assert_array_equal(z, np.zeros(4, dtype=np.float32))
        n = store.create("n", (100,), init="normal")
        assert np.std(n) == pytest.approx(0.1, rel=0.5)

    def test_unknown_init_raises(self):
        with pytest.raises(ValueError, match="unknown initialiser"):
            ParameterStore().create("w", (2,), init="banana")

    def test_put_external_array(self):
        store = ParameterStore()
        arr = np.arange(6).reshape(2, 3)
        store.put("ext", arr)
        np.testing.assert_array_equal(store.get("ext"), arr)

    def test_total_size_and_len(self):
        store = ParameterStore()
        store.create("a", (2, 3))
        store.create("b", (4,))
        assert store.total_size() == 10
        assert len(store) == 2
        assert list(store.names()) == ["a", "b"]

    def test_save_load_roundtrip(self, tmp_path):
        store = ParameterStore(seed=3)
        store.create("x/W", (3, 3))
        store.create("x/b", (3,), init="zeros")
        path = tmp_path / "weights.npz"
        store.save(path)
        loaded = ParameterStore.load(path)
        assert sorted(loaded.names()) == sorted(store.names())
        np.testing.assert_array_equal(loaded.get("x/W"), store.get("x/W"))

"""Tests for the attention cells and the attention Seq2Seq model."""

import numpy as np
import pytest

from repro.cells.attention import AttentionDecoderCell, AttentionEncoderCell
from repro.core import BatchMakerServer, BatchingConfig
from repro.models.attention_seq2seq import AttentionSeq2SeqModel
from repro.tensor.parameters import ParameterStore


@pytest.fixture
def params():
    return ParameterStore(seed=0)


class TestAttentionEncoderCell:
    def test_memory_row_written(self, params):
        cell = AttentionEncoderCell("e", 10, 4, 6, max_src=5, params=params)
        mem = np.zeros((2, 5, 6), dtype=np.float32)
        out = cell(
            {
                "ids": np.array([1, 2]),
                "h": np.zeros((2, 6), np.float32),
                "c": np.zeros((2, 6), np.float32),
                "mem": mem,
                "pos": np.array([0, 3]),
            }
        )
        np.testing.assert_array_equal(out["mem"][0, 0], out["h"][0])
        np.testing.assert_array_equal(out["mem"][1, 3], out["h"][1])
        # Untouched rows stay zero; the input memory is not mutated.
        assert np.all(out["mem"][0, 1:] == 0)
        assert np.all(mem == 0)

    def test_position_out_of_range_raises(self, params):
        cell = AttentionEncoderCell("e", 10, 4, 6, max_src=3, params=params)
        with pytest.raises(IndexError, match="memory range"):
            cell(
                {
                    "ids": np.array([1]),
                    "h": np.zeros((1, 6), np.float32),
                    "c": np.zeros((1, 6), np.float32),
                    "mem": np.zeros((1, 3, 6), np.float32),
                    "pos": np.array([3]),
                }
            )


class TestAttentionDecoderCell:
    def test_attention_weights_sum_to_one_over_valid(self, params):
        cell = AttentionDecoderCell("d", 10, 4, 6, max_src=4, params=params)
        rng = np.random.default_rng(0)
        mem = rng.standard_normal((3, 4, 6)).astype(np.float32)
        mask = np.array(
            [[1, 1, 0, 0], [1, 1, 1, 1], [1, 0, 0, 0]], dtype=np.float32
        )
        weights = cell.attention_weights(
            rng.standard_normal((3, 6)).astype(np.float32), mem, mask
        )
        np.testing.assert_allclose(weights.sum(axis=1), np.ones(3), atol=1e-6)
        assert np.all(weights[0, 2:] < 1e-6)  # masked positions get no weight
        assert weights[2, 0] == pytest.approx(1.0, abs=1e-6)

    def test_batch_commutation(self, params):
        cell = AttentionDecoderCell("d", 10, 4, 6, max_src=4, params=params)
        rng = np.random.default_rng(1)
        inputs = {
            "ids": rng.integers(0, 10, size=3),
            "h": rng.standard_normal((3, 6)).astype(np.float32),
            "c": rng.standard_normal((3, 6)).astype(np.float32),
            "mem": rng.standard_normal((3, 4, 6)).astype(np.float32),
            "mask": np.ones((3, 4), dtype=np.float32),
        }
        batched = cell(inputs)
        for i in range(3):
            single = cell({k: v[i : i + 1] for k, v in inputs.items()})
            np.testing.assert_allclose(batched["h"][i], single["h"][0], atol=1e-5)
            assert batched["token"][i] == single["token"][0]


class TestAttentionModel:
    def make_model(self):
        return AttentionSeq2SeqModel(
            hidden_dim=10,
            src_vocab_size=20,
            tgt_vocab_size=20,
            embed_dim=5,
            max_src=8,
            real=True,
            seed=4,
        )

    def test_served_results_match_reference(self):
        model = self.make_model()
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(4), real_compute=True
        )
        rng = np.random.default_rng(2)
        payloads = [
            {
                "src": [int(t) for t in rng.integers(0, 20, size=rng.integers(1, 8))],
                "tgt_len": int(rng.integers(1, 6)),
            }
            for _ in range(8)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            got = [int(np.asarray(t).reshape(())) for t in request.result]
            assert got == model.reference_forward(payload)

    def test_source_longer_than_memory_rejected(self):
        model = self.make_model()
        with pytest.raises(ValueError, match="memory capacity"):
            model.reference_forward({"src": list(range(9)), "tgt_len": 2})

    def test_unfold_structure(self):
        from repro.core.cell_graph import CellGraph

        model = AttentionSeq2SeqModel(max_src=16)
        graph = CellGraph()
        model.unfold(graph, {"src": 5, "tgt_len": 3})
        assert graph.cell_type_census() == {
            "attn_encoder": 5,
            "attn_decoder": 3,
        }

    def test_sim_mode_serves(self):
        model = AttentionSeq2SeqModel(max_src=64)
        server = BatchMakerServer(
            model,
            config=BatchingConfig.with_max_batch(
                256, per_cell_priority={"attn_decoder": 1}
            ),
        )
        for i in range(10):
            server.submit({"src": 12, "tgt_len": 10}, arrival_time=i * 1e-4)
        server.drain()
        assert len(server.finished) == 10

    def test_phases_for_padding_baseline(self):
        model = AttentionSeq2SeqModel(max_src=64)
        assert model.phases({"src": 7, "tgt_len": 4}) == [
            ("attn_encoder", 7),
            ("attn_decoder", 4),
        ]

"""End-to-end tests of the BatchMaker serving pipeline in simulation mode:
lifecycle, timing semantics, joining/leaving, multi-GPU, dynamic decoding."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.core.request import RequestState
from repro.gpu.costmodel import CostModel, LatencyTable
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


def unit_cost(cell_names, step=1.0):
    model = CostModel(per_task_overhead=0.0, gather_overhead=0.0)
    for name in cell_names:
        model.register(name, LatencyTable({1: step * 1e6, 512: step * 1e6}))
    return model


class TestLifecycle:
    def test_single_request_completes(self):
        server = BatchMakerServer(LSTMChainModel())
        request = server.submit(5)
        server.drain()
        assert request.state is RequestState.FINISHED
        assert request.latency > 0
        assert server.finished == [request]

    def test_all_requests_complete(self):
        server = BatchMakerServer(LSTMChainModel())
        rng = np.random.default_rng(0)
        n = 50
        for i in range(n):
            server.submit(int(rng.integers(1, 40)), arrival_time=i * 1e-4)
        server.drain()
        assert len(server.finished) == n

    def test_latency_decomposition(self):
        server = BatchMakerServer(LSTMChainModel())
        request = server.submit(5, arrival_time=1.0)
        server.drain()
        assert request.arrival_time == 1.0
        assert request.start_time >= request.arrival_time
        assert request.finish_time > request.start_time
        assert request.latency == pytest.approx(
            request.queuing_time + request.computation_time
        )

    def test_submit_in_past_raises(self):
        server = BatchMakerServer(LSTMChainModel())
        server.submit(3, arrival_time=2.0)
        server.drain()
        with pytest.raises(ValueError, match="past"):
            server.submit(3, arrival_time=1.0)

    def test_chain_computation_time_scales_with_length(self):
        cost = unit_cost(["lstm"], step=1.0)
        server = BatchMakerServer(
            LSTMChainModel(),
            cost_model=cost,
            config=BatchingConfig.with_max_batch(4, max_tasks_to_submit=1),
        )
        short = server.submit(2, arrival_time=0.0)
        long = server.submit(6, arrival_time=0.0)
        server.drain()
        assert short.finish_time == pytest.approx(2.0)
        assert long.finish_time == pytest.approx(6.0)


class TestJoinAndLeave:
    def test_short_request_leaves_before_long_batchmate(self):
        cost = unit_cost(["lstm"])
        server = BatchMakerServer(
            LSTMChainModel(),
            cost_model=cost,
            config=BatchingConfig.with_max_batch(4, max_tasks_to_submit=1),
        )
        long = server.submit(10, arrival_time=0.0)
        short = server.submit(2, arrival_time=0.0)
        server.drain()
        assert short.finish_time < long.finish_time

    def test_new_request_joins_running_execution(self):
        """A request arriving mid-flight must not wait for the running batch
        to finish (the defining property of cellular batching)."""
        cost = unit_cost(["lstm"])
        server = BatchMakerServer(
            LSTMChainModel(),
            cost_model=cost,
            config=BatchingConfig.with_max_batch(4, max_tasks_to_submit=1),
        )
        first = server.submit(10, arrival_time=0.0)
        joiner = server.submit(3, arrival_time=2.5)
        server.drain()
        # The joiner starts at the next task boundary (t=3), not at t=10.
        assert joiner.start_time == pytest.approx(3.0)
        assert joiner.finish_time < first.finish_time

    def test_tasks_batch_cells_from_different_requests(self):
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(8)
        )
        for _ in range(6):
            server.submit(10, arrival_time=0.0)
        server.drain()
        assert server.mean_batch_size() > 1.0


class TestMultiGPU:
    def test_multi_gpu_increases_throughput(self):
        def run(num_gpus):
            server = BatchMakerServer(
                LSTMChainModel(),
                config=BatchingConfig.with_max_batch(32),
                num_gpus=num_gpus,
            )
            for i in range(400):
                server.submit(20, arrival_time=i * 1e-5)
            server.drain()
            return max(r.finish_time for r in server.finished)

        assert run(4) < run(1) * 0.6

    def test_requests_spread_across_workers(self):
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(8),
            num_gpus=2,
        )
        for i in range(50):
            server.submit(30, arrival_time=i * 1e-5)
        server.drain()
        executed = [w.tasks_executed for w in server.manager.workers]
        assert all(count > 0 for count in executed)

    def test_pinning_keeps_chain_on_one_worker(self):
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(8),
            num_gpus=4,
        )
        request = server.submit(40)
        server.drain()
        # All of a chain-request's cells execute on the device it was pinned
        # to; last_worker is the only worker that ever ran it.
        (sg,) = request.subgraphs.values()
        assert sg.last_worker is not None


class TestSeq2SeqServing:
    def test_decoder_starts_after_encoder(self):
        cost = unit_cost(["encoder", "decoder"])
        server = BatchMakerServer(
            Seq2SeqModel(),
            cost_model=cost,
            config=BatchingConfig.with_max_batch(4, max_tasks_to_submit=1),
        )
        request = server.submit({"src": 3, "tgt_len": 2})
        server.drain()
        assert request.finish_time == pytest.approx(5.0)  # 3 encode + 2 decode

    def test_dynamic_decode_stops_at_max(self):
        server = BatchMakerServer(Seq2SeqModel())
        request = server.submit({"src": 4, "dynamic": True, "max_decode": 6})
        server.drain()
        assert request.state is RequestState.FINISHED
        census = request.graph.cell_type_census()
        assert census["decoder"] == 6
        assert census["encoder"] == 4


class TestTreeServing:
    def test_tree_requests_complete(self):
        server = BatchMakerServer(
            TreeLSTMModel(),
            config=BatchingConfig.with_max_batch(
                64
            ),
        )
        for i in range(10):
            server.submit(
                TreePayload(TreeNodeSpec.complete(8)), arrival_time=i * 1e-4
            )
        server.drain()
        assert len(server.finished) == 10

    def test_internal_cells_wait_for_leaves(self):
        cost = unit_cost(["tree_leaf", "tree_internal"])
        server = BatchMakerServer(
            TreeLSTMModel(),
            cost_model=cost,
            config=BatchingConfig.with_max_batch(64, max_tasks_to_submit=1),
        )
        request = server.submit(TreePayload(TreeNodeSpec.complete(4)))
        server.drain()
        # 1 leaf level + 2 internal levels at unit cost each.
        assert request.finish_time == pytest.approx(3.0)


class TestAccounting:
    def test_every_node_executed_exactly_once(self):
        server = BatchMakerServer(LSTMChainModel())
        lengths = [3, 7, 1, 12, 5]
        for i, length in enumerate(lengths):
            server.submit(length, arrival_time=i * 1e-4)
        server.drain()
        assert server.manager.processor.total_nodes_processed == sum(lengths)

    def test_no_live_requests_after_drain(self):
        server = BatchMakerServer(LSTMChainModel())
        for i in range(10):
            server.submit(4, arrival_time=i * 1e-3)
        server.drain()
        assert server.manager.processor.live_request_count() == 0

"""Tests for partitioning and serving graphs that mix cell types along one
chain (LSTM chain + final projection), and related padded-baseline phases."""

import numpy as np
import pytest

from repro.baselines import PaddedServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.core.subgraph import partition_into_subgraphs
from repro.models import LSTMChainModel


class TestProjectionChainPartition:
    def test_chain_plus_projection_is_two_subgraphs(self):
        model = LSTMChainModel(project_output=True)
        graph = CellGraph()
        model.unfold(graph, 6)
        request = InferenceRequest(0, 6, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request)
        by_type = {sg.cell_type_name: sg for sg in subgraphs}
        assert set(by_type) == {"lstm", "lstm_proj"}
        assert len(by_type["lstm"].node_ids) == 6
        assert len(by_type["lstm_proj"].node_ids) == 1
        # The projection waits for the chain's last cell.
        assert by_type["lstm_proj"].external_pending == 1
        assert by_type["lstm"].is_releasable()

    def test_serving_projection_model_sim(self):
        model = LSTMChainModel(project_output=True)
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(16)
        )
        for i in range(8):
            server.submit(5, arrival_time=i * 1e-4)
        server.drain()
        assert len(server.finished) == 8
        # 8 x (5 chain cells + 1 projection cell)
        assert server.manager.processor.total_nodes_processed == 48

    def test_projection_scheduled_as_own_cell_type(self):
        model = LSTMChainModel(project_output=True)
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(16)
        )
        server.submit(4)
        server.drain()
        counts = server.manager.scheduler.batch_size_counts
        # 4 chain tasks (batch 1) + 1 projection task (batch 1).
        assert sum(counts.values()) == 5


class TestPaddedMultiPhaseChain:
    def test_projection_phase_padded_once(self):
        """The (lstm, steps) + (lstm_proj, 1) phase pair: the projection
        executes once per batch at the batch size, not once per step."""
        model = LSTMChainModel(project_output=True)
        server = PaddedServer(
            model, bucket_width=10, per_batch_overhead=0.0, per_step_overhead=0.0
        )
        a = server.submit(7, arrival_time=0.0)
        b = server.submit(9, arrival_time=0.0)
        server.drain()
        cost = server.cost_model
        expected = 10 * cost.kernel_time("lstm", 2) + 10 * cost.kernel_time(
            "lstm_proj", 2
        )
        # Both phases pad to the width-10 ceiling of their step counts
        # (proj steps = 1 -> ceiling 10 under this simple policy).
        assert a.computation_time == pytest.approx(expected)
        assert a.finish_time == b.finish_time


class TestRealComputeProjectionChain:
    def test_projection_results_are_tokens(self, rng):
        model = LSTMChainModel(
            hidden_dim=12, vocab_size=40, embed_dim=6, real=True,
            project_output=True, seed=8,
        )
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(4), real_compute=True
        )
        payloads = [
            [int(t) for t in rng.integers(0, 40, size=rng.integers(1, 9))]
            for _ in range(6)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4)
            for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            token = int(np.asarray(request.result[0]).reshape(()))
            assert 0 <= token < 40
            assert token == int(model.reference_forward(payload)[0])

"""Event-loop bridge: run_due semantics, wall-clock guards, drift
accounting, and the asyncio timer mapping."""

import asyncio
import time

import pytest

from repro.serve.bridge import LiveEventLoop
from repro.sim.clock import RealTimeClock, VirtualClock
from repro.sim.events import EventLoop


# -- run_due on the base loop ---------------------------------------------


def test_run_due_virtual_fires_only_due_events():
    loop = EventLoop(VirtualClock())
    fired = []
    loop.call_at(0.0, lambda: fired.append("now"))
    loop.call_at(5.0, lambda: fired.append("later"))
    assert loop.run_due() == 1
    assert fired == ["now"]
    loop.clock.advance_to(5.0)
    assert loop.run_due() == 1
    assert fired == ["now", "later"]
    assert loop.run_due() == 0


def test_virtual_past_scheduling_still_raises():
    loop = EventLoop(VirtualClock())
    loop.clock.advance_to(10.0)
    with pytest.raises(ValueError):
        loop.call_at(5.0, lambda: None)


def test_wall_clock_past_scheduling_clamps_to_now():
    loop = EventLoop(RealTimeClock())
    fired = []
    loop.call_at(loop.now() - 5.0, lambda: fired.append(1))
    assert loop.run_due() == 1
    assert fired == [1]


def test_step_and_run_refuse_wall_clock():
    loop = EventLoop(RealTimeClock())
    loop.call_at(loop.now() + 60.0, lambda: None)
    with pytest.raises(RuntimeError):
        loop.step()
    with pytest.raises(RuntimeError):
        loop.run()
    # ... so a wall-clock loop can never fire future events early.


def test_run_due_does_not_fire_future_events_under_wall_clock():
    loop = EventLoop(RealTimeClock())
    fired = []
    loop.call_at(loop.now() + 60.0, lambda: fired.append(1))
    assert loop.run_due() == 0
    assert fired == []
    assert loop.pending() == 1


@pytest.mark.timing
def test_drift_guard_counts_late_fires():
    loop = EventLoop(RealTimeClock())
    loop.call_at(loop.now(), lambda: None)
    time.sleep(0.01)  # the event is now ~10 ms overdue
    assert loop.run_due() == 1
    assert loop.late_fires == 1
    assert loop.max_drift >= 0.005


def test_run_due_max_events_bounds_the_pump():
    loop = EventLoop(VirtualClock())
    fired = []
    for index in range(5):
        loop.call_at(0.0, lambda i=index: fired.append(i))
    assert loop.run_due(max_events=2) == 2
    assert fired == [0, 1]
    assert loop.run_due() == 3


# -- LiveEventLoop over asyncio -------------------------------------------


def test_live_loop_requires_wall_clock():
    with pytest.raises(ValueError):
        LiveEventLoop(VirtualClock())


def test_live_loop_pump_now_without_attach():
    """The inline pump path works unattached (bench drives it directly)."""
    live = LiveEventLoop()
    fired = []
    live.call_at(live.now(), lambda: fired.append(1))
    assert live.pump_now() == 1
    assert fired == [1]
    assert live.pumps == 1
    assert live.events_fired == 1


@pytest.mark.timing
def test_live_loop_fires_via_asyncio_timer():
    async def go():
        live = LiveEventLoop()
        live.attach()
        fired = []
        live.call_at(live.now() + 0.02, lambda: fired.append(live.now()))
        live.call_at(live.now() + 0.04, lambda: fired.append(live.now()))
        await asyncio.sleep(0.1)
        live.detach()
        return live, fired

    live, fired = asyncio.run(go())
    assert len(fired) == 2
    assert fired[0] <= fired[1]
    assert live.pumps >= 1
    assert live.events_fired == 2
    assert live.pending() == 0


@pytest.mark.timing
def test_live_loop_rearms_for_earlier_deadline():
    """Scheduling an earlier event after a later one must pull the timer
    forward — the earlier callback cannot wait behind the later one."""

    async def go():
        live = LiveEventLoop()
        live.attach()
        fired = []
        live.call_at(live.now() + 0.2, lambda: fired.append("late"))
        live.call_at(live.now() + 0.01, lambda: fired.append("early"))
        await asyncio.sleep(0.06)
        result = list(fired)
        live.detach()
        return result

    assert asyncio.run(go()) == ["early"]


@pytest.mark.timing
def test_after_pump_hook_runs_on_fires():
    async def go():
        live = LiveEventLoop()
        seen = []
        live.after_pump = seen.append
        live.attach()
        live.call_at(live.now() + 0.005, lambda: None)
        await asyncio.sleep(0.05)
        live.detach()
        return seen

    seen = asyncio.run(go())
    assert sum(seen) == 1


def test_detach_cancels_pending_timer():
    async def go():
        live = LiveEventLoop()
        live.attach()
        fired = []
        live.call_at(live.now() + 0.01, lambda: fired.append(1))
        live.detach()
        await asyncio.sleep(0.05)
        return live, fired

    live, fired = asyncio.run(go())
    assert fired == []
    assert live.pending() == 1  # still queued, just no timer to pump it


def test_drift_stats_shape():
    live = LiveEventLoop()
    stats = live.drift_stats()
    assert set(stats) == {
        "pumps",
        "events_fired",
        "late_fires",
        "max_drift_ms",
        "drift_tolerance_ms",
        "pending",
    }
    assert stats["drift_tolerance_ms"] == pytest.approx(1.0)

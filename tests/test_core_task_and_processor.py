"""Unit tests for BatchedTask and the RequestProcessor."""

import numpy as np
import pytest

from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, NodeOutput, ValueInput
from repro.core.request import InferenceRequest
from repro.core.request_processor import RequestProcessor
from repro.core.subgraph import partition_into_subgraphs
from repro.core.task import BatchedTask
from repro.models import LSTMChainModel, Seq2SeqModel
from repro.cells.lstm import LSTMCell
from repro.tensor.parameters import ParameterStore


class TestBatchedTask:
    def make_chain(self, model, length, request_id=0):
        graph = CellGraph()
        model.unfold(graph, length)
        request = InferenceRequest(request_id, length, 0.0)
        request.graph = graph
        (sg,) = partition_into_subgraphs(graph, request, start_id=request_id)
        request.subgraphs = {sg.subgraph_id: sg}
        return graph, sg

    def test_empty_task_raises(self):
        model = LSTMChainModel()
        with pytest.raises(ValueError, match="at least one entry"):
            BatchedTask(0, model.cell_types()[0], [])

    def test_mixed_cell_types_raise(self):
        model = Seq2SeqModel()
        graph = CellGraph()
        model.unfold(graph, {"src": 1, "tgt_len": 1})
        request = InferenceRequest(0, None, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request)
        entries = [(sg, graph.node(nid)) for sg in subgraphs for nid in sg.node_ids]
        with pytest.raises(ValueError, match="expected"):
            BatchedTask(0, model.cell_types()[0], entries)

    def test_subgraph_bookkeeping(self):
        model = LSTMChainModel()
        graph_a, sg_a = self.make_chain(model, 2, request_id=0)
        graph_b, sg_b = self.make_chain(model, 2, request_id=1)
        entries = [(sg_a, graph_a.node(0)), (sg_b, graph_b.node(0))]
        task = BatchedTask(0, model.cell_types()[0], entries)
        assert task.batch_size == 2
        assert len(task.subgraphs()) == 2
        assert task.nodes_per_subgraph() == {
            sg_a.subgraph_id: 1,
            sg_b.subgraph_id: 1,
        }

    def test_execute_gathers_and_scatters(self):
        params = ParameterStore(seed=0)
        lstm = LSTMCell("l", 3, 4, params)
        cell_type = CellType.from_cell(lstm)
        graph = CellGraph()
        rng = np.random.default_rng(0)
        rows = [rng.standard_normal(3).astype(np.float32) for _ in range(3)]
        zeros = np.zeros(4, dtype=np.float32)
        nodes = [
            graph.add_node(
                cell_type,
                {"x": ValueInput(row), "h": ValueInput(zeros), "c": ValueInput(zeros)},
            )
            for row in rows
        ]
        request = InferenceRequest(0, None, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request)
        sg_of = {nid: sg for sg in subgraphs for nid in sg.node_ids}
        task = BatchedTask(0, cell_type, [(sg_of[n.node_id], n) for n in nodes])
        task.execute()
        for node, row in zip(nodes, rows):
            expected = lstm(
                {
                    "x": row[None, :],
                    "h": zeros[None, :],
                    "c": zeros[None, :],
                }
            )
            np.testing.assert_allclose(node.outputs["h"], expected["h"][0], atol=1e-6)
            assert node.launched

    def test_execute_with_unexecuted_dependency_raises(self):
        params = ParameterStore(seed=0)
        lstm = LSTMCell("l", 4, 4, params)
        cell_type = CellType.from_cell(lstm)
        graph = CellGraph()
        zeros = np.zeros(4, dtype=np.float32)
        first = graph.add_node(
            cell_type,
            {"x": ValueInput(zeros), "h": ValueInput(zeros), "c": ValueInput(zeros)},
        )
        second = graph.add_node(
            cell_type,
            {
                "x": ValueInput(zeros),
                "h": NodeOutput(first.node_id, "h"),
                "c": NodeOutput(first.node_id, "c"),
            },
        )
        request = InferenceRequest(0, None, 0.0)
        request.graph = graph
        (sg,) = partition_into_subgraphs(graph, request)
        task = BatchedTask(0, cell_type, [(sg, second)])
        with pytest.raises(RuntimeError, match="unexecuted"):
            task.execute()


class TestRequestProcessor:
    def make(self, model, collect_results=False):
        released, finished = [], []
        processor = RequestProcessor(
            model,
            on_release=released.append,
            on_finished=finished.append,
            collect_results=collect_results,
        )
        return processor, released, finished

    def test_add_request_releases_ready_subgraphs(self):
        model = Seq2SeqModel()
        processor, released, _ = self.make(model)
        request = InferenceRequest(0, {"src": 3, "tgt_len": 2}, 0.0)
        processor.add_request(request)
        assert len(released) == 1
        assert released[0].cell_type_name == "encoder"

    def test_duplicate_request_raises(self):
        model = LSTMChainModel()
        processor, _, _ = self.make(model)
        request = InferenceRequest(0, 3, 0.0)
        processor.add_request(request)
        with pytest.raises(ValueError, match="already added"):
            processor.add_request(request)

    def test_completion_releases_dependent_subgraph(self):
        model = Seq2SeqModel()
        processor, released, finished = self.make(model)
        request = InferenceRequest(0, {"src": 1, "tgt_len": 1}, 0.0)
        processor.add_request(request)
        encoder_sg = released[0]
        encoder_node = request.graph.node(encoder_sg.node_ids[0])
        encoder_sg.take_ready(1)
        encoder_sg.mark_submitted([encoder_node.node_id])
        encoder_sg.pin(0)
        task = BatchedTask(0, encoder_node.cell_type, [(encoder_sg, encoder_node)])
        processor.handle_task_completion(task, now=1.0)
        assert len(released) == 2
        assert released[1].cell_type_name == "decoder"
        assert not finished  # decoder still outstanding

    def test_double_completion_raises(self):
        model = LSTMChainModel()
        processor, released, _ = self.make(model)
        request = InferenceRequest(0, 1, 0.0)
        processor.add_request(request)
        sg = released[0]
        node = request.graph.node(0)
        sg.take_ready(1)
        sg.mark_submitted([0])
        sg.pin(0)
        task = BatchedTask(0, node.cell_type, [(sg, node)])
        processor.handle_task_completion(task, now=1.0)
        sg.inflight = 1  # fake a second in-flight task
        with pytest.raises(RuntimeError, match="twice"):
            processor.handle_task_completion(task, now=2.0)

    def test_finish_fires_when_all_nodes_complete(self):
        model = LSTMChainModel()
        processor, released, finished = self.make(model)
        request = InferenceRequest(0, 2, 0.0)
        processor.add_request(request)
        sg = released[0]
        for nid in (0, 1):
            node = request.graph.node(nid)
            sg.take_ready(1)
            sg.mark_submitted([nid])
            sg.pin(0)
            task = BatchedTask(nid, node.cell_type, [(sg, node)])
            processor.handle_task_completion(task, now=1.0 + nid)
        assert finished == [request]
        assert processor.live_request_count() == 0

    def test_empty_unfold_raises(self):
        class EmptyModel(LSTMChainModel):
            def unfold(self, graph, payload):
                pass

        processor, _, _ = self.make(EmptyModel())
        with pytest.raises(ValueError, match="empty graph"):
            processor.add_request(InferenceRequest(0, 1, 0.0))

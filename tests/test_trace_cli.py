"""The ``--trace`` CLI surface: loadgen one-shot export, runner sessions,
and the deterministic file-name rule that makes ``--trace`` compose with
``--jobs`` (names derive from the load point, never worker identity).
"""

import pytest

from repro.experiments import runner
from repro.trace.chrome import validate_chrome
from repro.trace.session import TraceSession, active_session
from repro.workload import loadgen

QUICK_TRACE_FILES = {
    f"fig_trace_BatchMaker_r{rate:g}.json" for rate in (2000, 5000, 8000)
}


# -- loadgen CLI -------------------------------------------------------------


def test_loadgen_cli_writes_validated_trace(tmp_path, capsys):
    out = tmp_path / "traces" / "run.json"
    assert loadgen.main([
        "--rate", "3000", "--num-requests", "150", "--trace", str(out),
    ]) == 0
    counters = validate_chrome(out)
    assert counters["device_events"] > 0 and counters["request_events"] > 0
    printed = capsys.readouterr().out
    assert "BatchMaker" in printed and str(out) in printed


def test_loadgen_cli_sampling_reduces_request_events(tmp_path):
    def events_at(sample, name):
        out = tmp_path / name
        loadgen.main([
            "--rate", "3000", "--num-requests", "150",
            "--trace", str(out), "--trace-sample", str(sample),
        ])
        return validate_chrome(out)["request_events"]

    assert events_at(4, "sampled.json") < events_at(1, "full.json")


def test_loadgen_cli_rejects_bad_sample(tmp_path):
    with pytest.raises(SystemExit):
        loadgen.main([
            "--trace", str(tmp_path / "t.json"), "--trace-sample", "0",
        ])


def test_loadgen_cli_untraced_writes_nothing(tmp_path, capsys):
    assert loadgen.main(["--rate", "3000", "--num-requests", "50"]) == 0
    assert list(tmp_path.iterdir()) == []
    assert "trace" not in capsys.readouterr().out


# -- file-name determinism (the --jobs composition rule) ---------------------


def test_session_paths_depend_only_on_context_and_label(tmp_path):
    session = TraceSession(tmp_path / "traces")
    session.set_context("fig_trace")
    first = session.trace_path("BatchMaker_r2000")
    assert first == session.trace_path("BatchMaker_r2000")  # pure function
    assert first.name == "fig_trace_BatchMaker_r2000.json"
    # A .json base prefixes instead of nesting.
    base = TraceSession(tmp_path / "run.json")
    base.set_context("fig_trace")
    assert base.trace_path("x").name == "run_fig_trace_x.json"


def test_session_slugs_are_filesystem_safe(tmp_path):
    session = TraceSession(tmp_path)
    session.set_context("fig trace")
    assert session.trace_path("srv/r2e3:a").name == "fig-trace_srv-r2e3-a.json"


# -- experiment runner -------------------------------------------------------


def test_runner_rejects_bad_trace_sample(tmp_path):
    with pytest.raises(SystemExit):
        runner.main([
            "fig_trace", "--quick",
            "--trace", str(tmp_path), "--trace-sample", "0",
        ])


def test_runner_fig_trace_with_jobs_writes_deterministic_files(tmp_path):
    """`--trace` composes with `--jobs`: the forked sweep writes exactly
    the file set a serial run would — one per load point, names derived
    from (experiment, server, rate) — and every file validates."""
    out = tmp_path / "traces"
    assert runner.main([
        "fig_trace", "--quick", "--jobs", "2", "--trace", str(out),
    ]) == 0
    assert {p.name for p in out.iterdir()} == QUICK_TRACE_FILES
    for path in sorted(out.iterdir()):
        counters = validate_chrome(path)
        assert counters["device_events"] > 0
        assert counters["request_events"] > 0
    # The runner tears the session down on exit, even on success.
    assert active_session() is None

"""Chaos suite for dynamic-decode Seq2Seq under a memory budget.

The hardest corner of the memory stack: feed-previous decoding grows the
graph one subgraph per emitted token, so residency moves on every decode
step — while evictions restart partially-grown requests, devices die with
half-grown graphs resident, and kernel failures retry mid-growth.  Every
run must satisfy the full chaos invariants (``assert_invariants``), and
every device's byte accounting must telescope to zero at drain.
"""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig
from repro.models import Seq2SeqModel
from repro.policies import bundle_from_names
from repro.registry.presets import seq2seq_memory_spec
from repro.workload import Seq2SeqDataset
from repro.workload.arrivals import PoissonArrivals

from .chaos_helpers import assert_invariants, chaos_seeds

SEEDS = chaos_seeds()


def _server(
    capacity_requests=24,
    num_gpus=2,
    fault_plan=None,
    sla=None,
    memory_aware=True,
):
    config = BatchingConfig.with_max_batch(
        64,
        per_cell_max={"decoder": 32},
        per_cell_priority={"decoder": 1, "encoder": 0},
    )
    return BatchMakerServer(
        Seq2SeqModel(dynamic=True),
        config=config,
        num_gpus=num_gpus,
        fault_plan=fault_plan,
        sla=sla,
        memory=(
            seq2seq_memory_spec(capacity_requests=capacity_requests)
            if capacity_requests is not None
            else None
        ),
        policies=(
            bundle_from_names(config, formation="memory_aware")
            if memory_aware
            else None
        ),
    )


def _run(server, rate=300.0, num_requests=120, arrival_seed=7, deadline=None):
    dataset = Seq2SeqDataset(seed=1, max_length=20, dynamic=True)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(
            server.submit(dataset.sample_one(), arrival_time=when, deadline=deadline)
        )
    server.drain()
    return submitted


def _assert_memory_clean(server):
    """Post-drain byte accounting: telescoped to zero, never overcommitted."""
    for worker in server.manager.workers:
        mem = worker.device.memory
        if mem is None:
            continue
        assert mem.peak_reserved <= mem.capacity, (
            f"device {worker.worker_id} overcommitted"
        )
        if worker.alive:
            assert mem.state_reserved == 0, (
                f"device {worker.worker_id} leaked {mem.state_reserved} B"
            )
            assert mem.live_requests() == 0
        else:
            # A dead device's model was reset wholesale.
            assert mem.reserved == 0
    # No dangling residency markers on any request the server ever saw.
    for request in server.terminal_requests():
        for sg in (request.subgraphs or {}).values():
            assert sg.resident_on is None, (
                f"request {request.request_id} still resident after terminal"
            )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_dynamic_decode_without_budget(seed):
    """Baseline sanity: the dynamic workload itself drains clean with no
    memory model installed."""
    server = _server(capacity_requests=None, memory_aware=False)
    submitted = _run(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert len(server.finished) == len(submitted)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_eviction_mid_decode(seed):
    """Pressure forces evict-and-restart of partially-grown decodes; every
    restarted request still reaches exactly one terminal state and the
    accounting telescopes."""
    server = _server(capacity_requests=24)
    submitted = _run(server, arrival_seed=seed, num_requests=150)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)
    counters = server.fault_counters()
    assert counters.memory_evictions > 0, (
        "budget never forced an eviction — tighten the test"
    )
    evicted = [r for r in submitted if r.restarts > 0]
    assert evicted, "no request was restarted"
    assert any(r.state.name == "FINISHED" for r in evicted), (
        "every evicted request died — restarts never recovered"
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_device_loss_with_partially_grown_graphs(seed):
    """A device dies mid-run with half-grown decodes resident on it: the
    dead device's model resets, survivors re-place on the other device,
    and no release ever underflows against the reset model."""
    plan = FaultPlan(seed=seed, device_failures=[DeviceFailure(0.05, 1)])
    server = _server(capacity_requests=24, fault_plan=plan)
    submitted = _run(server, arrival_seed=seed, num_requests=150)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)
    dead = server.manager.workers[1]
    assert not dead.alive
    assert dead.device.memory.reserved == 0
    # The surviving device carried real load after the failure.
    assert server.manager.workers[0].device.memory.peak_reserved > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_kernel_failures_during_growth(seed):
    """Kernel retries interleave with decode-step growth and evictions."""
    plan = FaultPlan(seed=seed, kernel_failure_rate=0.05)
    server = _server(capacity_requests=24, fault_plan=plan)
    submitted = _run(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)
    assert server.fault_counters().retries_attempted > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_deadlines_under_memory_pressure(seed):
    """Deadline eviction and memory deferral interact: cancelled requests
    release their state, and no finished request broke its deadline (the
    assert_invariants contract)."""
    sla = SLAConfig(default_deadline=60e-3)
    server = _server(capacity_requests=24, sla=sla)
    submitted = _run(server, rate=500.0, arrival_seed=seed, num_requests=150)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_oblivious_baseline_under_device_loss(seed):
    """The paper formation with the budget merely enforced, plus a device
    death: OOM cancellation at kick time and wholesale reset coexist."""
    plan = FaultPlan(seed=seed, device_failures=[DeviceFailure(0.08, 0)])
    server = _server(capacity_requests=24, fault_plan=plan, memory_aware=False)
    submitted = _run(server, arrival_seed=seed, num_requests=150)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_drain_completeness_under_everything(seed):
    """The full stack at once — tight budget, evictions, kernel failures,
    a device death, deadlines — still drains to exactly-once terminal
    states with zero residual reservation."""
    plan = FaultPlan(
        seed=seed,
        kernel_failure_rate=0.03,
        device_failures=[DeviceFailure(0.1, 1)],
    )
    sla = SLAConfig(default_deadline=80e-3, retry=RetryPolicy(max_retries=2))
    server = _server(capacity_requests=24, fault_plan=plan, sla=sla)
    submitted = _run(server, rate=400.0, arrival_seed=seed, num_requests=200)
    assert_invariants(server, submitted)
    _assert_memory_clean(server)

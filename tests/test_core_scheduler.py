"""Tests for Algorithm 1: the batching scheduler."""

import pytest

from repro.core.cell_graph import CellGraph
from repro.core.config import BatchingConfig, CellTypeConfig
from repro.core.request import InferenceRequest
from repro.core.scheduler import Scheduler
from repro.core.subgraph import partition_into_subgraphs
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


class FakeWorker:
    def __init__(self, worker_id=0):
        self.worker_id = worker_id


def make_subgraphs(model, payload, request_id=0, start_id=0):
    graph = CellGraph()
    model.unfold(graph, payload)
    request = InferenceRequest(request_id, payload, 0.0)
    request.graph = graph
    subgraphs = partition_into_subgraphs(graph, request, start_id=start_id)
    request.subgraphs = {sg.subgraph_id: sg for sg in subgraphs}
    return subgraphs


def make_scheduler(model, config=None):
    submitted = []
    config = config or BatchingConfig.with_max_batch(4)
    scheduler = Scheduler(config, submit=lambda task, worker: submitted.append(task))
    for ct in model.cell_types():
        scheduler.register_cell_type(ct)
    return scheduler, submitted


class TestRegistration:
    def test_duplicate_registration_raises(self):
        model = LSTMChainModel()
        scheduler, _ = make_scheduler(model)
        with pytest.raises(ValueError, match="registered twice"):
            scheduler.register_cell_type(model.cell_types()[0])

    def test_unregistered_subgraph_raises(self):
        lstm = LSTMChainModel()
        tree = TreeLSTMModel()
        scheduler, _ = make_scheduler(lstm)
        (sg,) = make_subgraphs(
            tree, TreePayload(TreeNodeSpec(token=1)), start_id=0
        )
        with pytest.raises(KeyError, match="unregistered"):
            scheduler.add_subgraph(sg)


class TestBatchFormation:
    def test_batches_across_requests(self):
        model = LSTMChainModel()
        scheduler, submitted = make_scheduler(model)
        for rid in range(3):
            (sg,) = make_subgraphs(model, 5, request_id=rid, start_id=rid)
            scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert submitted
        assert submitted[0].batch_size == 3  # one ready cell per chain

    def test_batch_capped_at_max_batch(self):
        model = LSTMChainModel()
        config = BatchingConfig.with_max_batch(2)
        scheduler, submitted = make_scheduler(model, config)
        for rid in range(5):
            (sg,) = make_subgraphs(model, 3, request_id=rid, start_id=rid)
            scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert all(t.batch_size <= 2 for t in submitted)

    def test_max_tasks_to_submit_bounds_one_round(self):
        model = LSTMChainModel()
        config = BatchingConfig.with_max_batch(4, max_tasks_to_submit=3)
        scheduler, submitted = make_scheduler(model, config)
        (sg,) = make_subgraphs(model, 10)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert len(submitted) == 3  # 3 successive chain steps pipelined

    def test_chain_steps_pipeline_within_round(self):
        """One request's successive cells land in successive tasks (the
        optimistic UpdateNodesDependency at work)."""
        model = LSTMChainModel()
        scheduler, submitted = make_scheduler(
            model, BatchingConfig.with_max_batch(4, max_tasks_to_submit=5)
        )
        (sg,) = make_subgraphs(model, 4)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert len(submitted) == 4
        node_ids = [task.entries[0][1].node_id for task in submitted]
        assert node_ids == [0, 1, 2, 3]

    def test_exhausted_subgraph_leaves_queue(self):
        model = LSTMChainModel()
        scheduler, _ = make_scheduler(model)
        (sg,) = make_subgraphs(model, 2)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert sg.exhausted()
        assert scheduler.queue_for("lstm").subgraphs == {}

    def test_schedule_with_nothing_ready_returns_zero(self):
        model = LSTMChainModel()
        scheduler, _ = make_scheduler(model)
        assert scheduler.schedule(FakeWorker()) == 0


class TestMinBatchRule:
    def test_follow_up_task_below_min_batch_is_not_submitted(self):
        """Algorithm 1 line 16: after the first task, a batch smaller than
        Bsizes.Min() ends the round."""
        model = LSTMChainModel()
        config = BatchingConfig(
            default=CellTypeConfig(batch_sizes=(2, 4), priority=0),
            max_tasks_to_submit=5,
        )
        scheduler, submitted = make_scheduler(model, config)
        (sg,) = make_subgraphs(model, 5)  # one ready node at a time
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        # First task goes out regardless (num_tasks == 0); the follow-up
        # would be batch 1 < min 2, so the round stops at one task.
        assert len(submitted) == 1

    def test_first_task_always_submits_even_if_small(self):
        model = LSTMChainModel()
        config = BatchingConfig(
            default=CellTypeConfig(batch_sizes=(4, 8), priority=0)
        )
        scheduler, submitted = make_scheduler(model, config)
        (sg,) = make_subgraphs(model, 1)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert len(submitted) == 1
        assert submitted[0].batch_size == 1


class TestSelectionCriteria:
    def test_full_batch_cell_type_preferred(self):
        """Criterion (a): a type with >= max_batch ready nodes wins over a
        higher-priority type with fewer."""
        model = TreeLSTMModel()
        config = BatchingConfig.with_max_batch(
            4, per_cell_priority={"tree_internal": 5, "tree_leaf": 0}
        )
        scheduler, submitted = make_scheduler(model, config)
        # 4 single-leaf requests: 4 ready leaf cells, 0 ready internal.
        for rid in range(4):
            sgs = make_subgraphs(
                model, TreePayload(TreeNodeSpec.complete(1)), rid, start_id=rid
            )
            for sg in sgs:
                scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert submitted[0].cell_type.name == "tree_leaf"
        assert submitted[0].batch_size == 4

    def test_priority_breaks_ties(self):
        """Criterion (c) + priority: with both cell types ready (below max
        batch, both idle), the higher-priority decoder is chosen first."""
        model = Seq2SeqModel()
        config = BatchingConfig.with_max_batch(
            64, per_cell_priority={"decoder": 1, "encoder": 0}
        )
        scheduler, submitted = make_scheduler(model, config)
        sgs_a = make_subgraphs(model, {"src": 3, "tgt_len": 3}, 0, 0)
        encoder_sg = next(s for s in sgs_a if s.cell_type_name == "encoder")
        scheduler.add_subgraph(encoder_sg)
        sgs_b = make_subgraphs(model, {"src": 3, "tgt_len": 3}, 1, 10)
        decoder_sg = next(s for s in sgs_b if s.cell_type_name == "decoder")
        decoder_sg._external_edges.clear()  # pretend its encoder finished
        scheduler.add_subgraph(decoder_sg)
        scheduler.schedule(FakeWorker())
        assert submitted[0].cell_type.name == "decoder"

    def test_idle_cell_type_preferred_over_busy_one(self):
        """Criterion (b): with no full batch anywhere, a type with zero
        running tasks beats one that already has tasks in flight."""
        model = Seq2SeqModel()
        config = BatchingConfig.with_max_batch(
            64, per_cell_priority={"decoder": 1, "encoder": 0}
        )
        scheduler, submitted = make_scheduler(model, config)
        sgs = make_subgraphs(model, {"src": 3, "tgt_len": 3})
        encoder_sg = next(s for s in sgs if s.cell_type_name == "encoder")
        scheduler.add_subgraph(encoder_sg)
        worker = FakeWorker()
        scheduler.schedule(worker)  # encoder tasks now running
        assert all(t.cell_type.name == "encoder" for t in submitted)
        n_encoder_tasks = len(submitted)
        # Release the decoder subgraph; encoder still has running tasks and
        # no ready nodes, so the decoder (idle, ready) is chosen.
        decoder_sg = next(s for s in sgs if s.cell_type_name == "decoder")
        decoder_sg._external_edges.clear()
        scheduler.add_subgraph(decoder_sg)
        scheduler.schedule(worker)
        assert submitted[n_encoder_tasks].cell_type.name == "decoder"


class TestPinningInScheduler:
    def test_pinned_subgraph_skipped_by_other_worker(self):
        model = LSTMChainModel()
        scheduler, submitted = make_scheduler(model)
        (sg,) = make_subgraphs(model, 10)
        scheduler.add_subgraph(sg)
        w0, w1 = FakeWorker(0), FakeWorker(1)
        scheduler.schedule(w0)
        assert sg.pinned == 0
        count = len(submitted)
        assert scheduler.schedule(w1) == 0  # pinned to w0: w1 gets nothing
        assert len(submitted) == count

    def test_unpinned_mode_does_not_pin(self):
        model = LSTMChainModel()
        config = BatchingConfig.with_max_batch(4, pinning=False)
        scheduler, submitted = make_scheduler(model, config)
        (sg,) = make_subgraphs(model, 10)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker(0))
        assert sg.pinned is None
        assert sg.optimistic is False

    def test_running_task_accounting(self):
        model = LSTMChainModel()
        scheduler, submitted = make_scheduler(model)
        (sg,) = make_subgraphs(model, 3)
        scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        queue = scheduler.queue_for("lstm")
        assert queue.running_tasks == len(submitted)
        for task in submitted:
            scheduler.task_completed(task)
        assert queue.running_tasks == 0
        with pytest.raises(RuntimeError, match="underflow"):
            scheduler.task_completed(submitted[0])


class TestStats:
    def test_batch_size_histogram_and_mean(self):
        model = LSTMChainModel()
        scheduler, submitted = make_scheduler(model)
        for rid in range(2):
            (sg,) = make_subgraphs(model, 1, request_id=rid, start_id=rid)
            scheduler.add_subgraph(sg)
        scheduler.schedule(FakeWorker())
        assert scheduler.tasks_submitted == 1
        assert scheduler.batch_size_counts == {2: 1}
        assert scheduler.mean_batch_size() == 2.0

    def test_mean_batch_size_empty(self):
        model = LSTMChainModel()
        scheduler, _ = make_scheduler(model)
        assert scheduler.mean_batch_size() == 0.0

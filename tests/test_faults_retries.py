"""Batch-level retry: backoff, exhaustion, placement, and accounting.

Uses ``task_overrides`` to pin faults onto specific executions, so each
scenario exercises exactly the path it names.
"""

import pytest

from tests.chaos_helpers import assert_invariants, build_server, run_chaos
from repro.core.request import RequestState
from repro.faults import (
    DeviceFailure,
    FaultPlan,
    KERNEL_FAIL,
    RetryPolicy,
    SLAConfig,
    STRAGGLER,
    TaskFault,
)


def _single_request_server(overrides, sla=None, num_gpus=1):
    plan = FaultPlan(task_overrides=overrides)
    server = build_server(fault_plan=plan, sla=sla, num_gpus=num_gpus)
    request = server.submit([1] * 6, arrival_time=0.0)
    server.drain()
    return server, request


def test_single_failure_recovers_via_retry():
    server, request = _single_request_server(
        {(0, 0): TaskFault(KERNEL_FAIL)}
    )
    assert request.state is RequestState.FINISHED
    assert request.retries == 1
    counters = server.fault_counters()
    assert counters.tasks_failed == 1
    assert counters.retries_attempted == 1
    assert_invariants(server, [request])


def test_retry_waits_out_the_backoff():
    """The retry lands no earlier than failure time + backoff(attempt)."""
    retry = RetryPolicy(max_retries=3, backoff_base=5e-3, backoff_factor=2.0)
    server, request = _single_request_server(
        {(0, 0): TaskFault(KERNEL_FAIL), (0, 1): TaskFault(KERNEL_FAIL)},
        sla=SLAConfig(retry=retry),
    )
    assert request.state is RequestState.FINISHED
    assert request.retries == 2
    # Two backoffs (5ms + 10ms) are a lower bound on the finish time.
    assert request.finish_time > 15e-3


def test_exhausted_retries_cancel_the_request():
    retry = RetryPolicy(max_retries=2)
    overrides = {(0, a): TaskFault(KERNEL_FAIL) for a in range(3)}
    server, request = _single_request_server(
        overrides, sla=SLAConfig(retry=retry)
    )
    assert request.state is RequestState.TIMED_OUT
    assert request.cancel_reason == "retries_exhausted"
    assert request.retries == 2
    assert server.fault_counters().tasks_failed == 3
    assert_invariants(server, [request])


def test_max_retries_zero_fails_fast():
    server, request = _single_request_server(
        {(0, 0): TaskFault(KERNEL_FAIL)},
        sla=SLAConfig(retry=RetryPolicy(max_retries=0)),
    )
    assert request.state is RequestState.TIMED_OUT
    assert request.retries == 0
    assert server.fault_counters().retries_attempted == 0


def test_straggler_slows_but_completes():
    server_slow, slow = _single_request_server(
        {(0, 0): TaskFault(STRAGGLER, slowdown=10.0)}
    )
    server_ref, ref = _single_request_server({})
    assert slow.state is RequestState.FINISHED
    assert ref.state is RequestState.FINISHED
    assert slow.finish_time > ref.finish_time
    assert slow.retries == 0, "a straggler is not a failure"
    assert server_slow.fault_counters().stragglers_injected == 1
    assert server_slow.fault_counters().tasks_failed == 0


def test_retry_prefers_origin_worker():
    server, request = _single_request_server(
        {(0, 0): TaskFault(KERNEL_FAIL)}, num_gpus=2
    )
    assert request.state is RequestState.FINISHED
    workers = server.manager.workers
    # The original worker survived, so the retry stays there: worker 1
    # never executes anything for this single-request workload.
    assert workers[0].tasks_executed > 0
    assert workers[1].tasks_executed == 0


def test_retry_moves_to_survivor_after_device_loss():
    """Kill the origin device mid-backoff: the retry must land on the
    surviving device and the request must still finish."""
    plan = FaultPlan(
        task_overrides={(0, 0): TaskFault(KERNEL_FAIL)},
        device_failures=[DeviceFailure(1e-7, 0)],
    )
    retry = RetryPolicy(max_retries=3, backoff_base=1e-3)
    server = build_server(
        fault_plan=plan, sla=SLAConfig(retry=retry), num_gpus=2
    )
    request = server.submit([1] * 6, arrival_time=0.0)
    server.drain()
    assert request.state is RequestState.FINISHED
    assert not server.manager.workers[0].alive
    assert server.manager.workers[1].tasks_executed > 0
    assert_invariants(server, [request])


def test_retries_not_counted_as_scheduler_decisions():
    """tasks_submitted and the batch histogram describe the scheduling
    policy's decisions; a retry replays one, it does not make a new one."""
    server_faulty, _ = _single_request_server({(0, 0): TaskFault(KERNEL_FAIL)})
    server_clean, _ = _single_request_server({})
    assert server_faulty.tasks_submitted() == server_clean.tasks_submitted()
    assert (
        server_faulty.manager.scheduler.batch_size_counts
        == server_clean.manager.scheduler.batch_size_counts
    )


def test_terminal_requests_dropped_from_retried_batch():
    """A request that times out during the backoff is filtered out of the
    retried batch instead of being executed past its terminal state."""
    retry = RetryPolicy(max_retries=3, backoff_base=50e-3)
    plan = FaultPlan(task_overrides={(0, 0): TaskFault(KERNEL_FAIL)})
    server = build_server(fault_plan=plan, sla=SLAConfig(retry=retry))
    # Both requests ride in task 0; the victim's deadline expires during
    # the 50ms backoff, the survivor finishes on the retry.
    victim = server.submit([1] * 6, arrival_time=0.0, deadline=10e-3)
    survivor = server.submit([1] * 6, arrival_time=0.0)
    server.drain()
    assert victim.state is RequestState.TIMED_OUT
    assert victim.cancel_reason == "deadline"
    assert survivor.state is RequestState.FINISHED
    assert_invariants(server, [victim, survivor])


def test_multi_request_batch_failure_retries_all_survivors():
    plan = FaultPlan(task_overrides={(0, 0): TaskFault(KERNEL_FAIL)})
    server = build_server(fault_plan=plan)
    batch = [server.submit([1] * 6, arrival_time=0.0) for _ in range(5)]
    server.drain()
    assert all(r.state is RequestState.FINISHED for r in batch)
    assert all(r.retries == 1 for r in batch)
    assert server.fault_counters().retries_attempted == 1, (
        "one failed task = one retried task, not one per request"
    )
    assert_invariants(server, batch)


def test_pin_inflight_symmetry_across_fail_retry_chain():
    """Exactly one task_done per submitted node even through fail+retry:
    after the drain no subgraph holds residual inflight pins."""
    overrides = {(0, 0): TaskFault(KERNEL_FAIL), (1, 0): TaskFault(KERNEL_FAIL)}
    plan = FaultPlan(task_overrides=overrides)
    server = build_server(fault_plan=plan)
    batch = [server.submit([1] * 8, arrival_time=0.0) for _ in range(3)]
    server.drain()
    assert all(r.state is RequestState.FINISHED for r in batch)
    for request in batch:
        for sg in request.subgraphs.values():
            assert sg.inflight == 0, f"residual inflight on {sg}"
    assert_invariants(server, batch)

"""The event-driven routing load index (DESIGN.md §13) and the vectorized
batch-formation arrays.

The load-bearing property: the indexed fast path must be *bit-identical*
to the brute-force scan — same chosen replica on every single decision,
seeded tie-breaks included — under autoscaling, replica loss and
re-routing.  Two independent checks enforce it: a per-decision oracle
wrapped around ``router.choose`` during chaos runs, and whole-run
fingerprint equality between a fast-path cluster and a
``fast_path=False`` twin.  The vectorized queue-priority selection gets
the same treatment against its scalar reference oracle.
"""

from __future__ import annotations

import pytest

from tests.chaos_helpers import chaos_seeds
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.cluster import ALIVE, AutoscalerConfig, LoadIndex
from repro.cluster.load_index import METRICS
from repro.cluster.replica import DEAD, Replica
from repro.cluster.routing import ROUTERS, make_router, tie_break
from repro.faults import mix64
from repro.server import InferenceServer
from repro.sim.events import EventLoop

LOAD_AWARE = {
    "least_outstanding": lambda r: r.outstanding(),
    "shortest_queue": lambda r: r.projected_delay(),
}


def _autoscaler():
    return AutoscalerConfig(
        min_replicas=1,
        max_replicas=4,
        high_watermark=8.0,
        low_watermark=1.0,
        alpha=0.3,
        warmup=2e-3,
        cooldown=4e-3,
    ).to_dict()


def _install_oracle(cluster, key):
    """Wrap ``router.choose``: before every decision, recompute the choice
    with a from-scratch brute-force scan (the exact key functions, the
    exact tie-break) and assert the router — whichever path it takes —
    returns the same replica."""
    router = cluster.router
    original = router.choose  # bound method; instance attr shadows it below
    checked = {"decisions": 0}

    def choose(request, candidates):
        keys = [key(replica) for replica in candidates]
        best = min(keys)
        tied = [r for r, k in zip(candidates, keys) if k == best]
        expected = tie_break(router.seed, request.request_id, tied)
        actual = original(request, candidates)
        assert actual is expected, (
            f"decision {checked['decisions']}: fast path chose replica "
            f"{actual.replica_id}, scan chose {expected.replica_id} "
            f"(request {request.request_id}, keys {keys})"
        )
        checked["decisions"] += 1
        return actual

    router.choose = choose
    return checked


class TestFastPathEqualsScan:
    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("policy", sorted(LOAD_AWARE))
    def test_every_decision_matches_brute_force_under_chaos(self, policy, seed):
        """Autoscaler churning the pool + a replica dying mid-run: the
        index's choice equals a fresh scan's on every routing decision."""
        cluster = build_lstm_cluster(
            num_replicas=3,
            router=policy,
            seed=seed,
            autoscaler=_autoscaler(),
            replica_failures=[(0.01, 1)],
        )
        checked = _install_oracle(cluster, LOAD_AWARE[policy])
        submitted = run_cluster(cluster, rate=8000.0, num_requests=800)
        assert_cluster_invariants(cluster, submitted)
        # Every submission routed at least once (re-routes add more).
        assert checked["decisions"] >= len(submitted) - (
            cluster.cluster_counters.cluster_rejections
            + cluster.cluster_counters.requests_lost
        )
        assert checked["decisions"] == cluster.router.decisions

    @pytest.mark.parametrize("seed", chaos_seeds())
    @pytest.mark.parametrize("policy", sorted(ROUTERS))
    def test_fast_and_brute_clusters_fingerprint_identical(self, policy, seed):
        """A fast-path cluster and its ``fast_path=False`` twin replay the
        same workload to identical terminal outcomes, routing counts and
        scaling timelines — all four policies, every chaos seed."""

        def fingerprint(router_params):
            cluster = build_lstm_cluster(
                num_replicas=3,
                router=policy,
                seed=seed,
                autoscaler=_autoscaler(),
                replica_failures=[(0.01, 1)],
                router_params=router_params,
            )
            submitted = run_cluster(cluster, rate=8000.0, num_requests=600)
            assert_cluster_invariants(cluster, submitted)
            terminals = tuple(
                (r.request_id, r.state.value, r.terminal_time, r.retries)
                for r in sorted(
                    [*cluster.finished, *cluster.timed_out, *cluster.rejected],
                    key=lambda r: r.request_id,
                )
            )
            return (
                terminals,
                tuple((rep.replica_id, rep.routed) for rep in cluster.replicas),
                tuple(cluster.scale_events),
                cluster.router.decisions,
            )

        assert fingerprint(None) == fingerprint({"fast_path": False})


class TestInlinedTieBreak:
    def test_premix_arithmetic_matches_mix64(self):
        """The routers hoist mix64's seed-dependent prefix; the inlined
        arithmetic must track mix64 bit for bit or determinism silently
        forks between the hot path and ``tie_break``."""
        for seed in (0, 1, 7, 23, 2**31, 2**63 + 5):
            router = make_router("least_outstanding", seed=seed)
            for request_id in (0, 1, 2, 63, 4095, 10**12):
                x = (router._tie_premix + request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                assert x == mix64(seed, request_id)

    def test_hot_path_tie_break_matches_tie_break_function(self):
        """End to end through ``choose``: a cached 3-way tie resolves to
        the same replica ``tie_break`` names."""
        from repro.core.request import InferenceRequest

        index, replicas = _pool(3)
        router = make_router("least_outstanding", seed=11)
        router.attach_index(index)
        candidates = index.routable()
        for request_id in range(64):
            request = InferenceRequest(request_id, 4, 0.0)
            chosen = router.choose(request, candidates)
            assert chosen is tie_break(11, request_id, replicas)


def _pool(n):
    loop = EventLoop()
    index = LoadIndex(now=loop.now)
    replicas = []
    for rid in range(n):
        replica = Replica(rid, InferenceServer(loop, f"idx#{rid}"))
        index.register(replica)
        replicas.append(replica)
    return index, replicas


class TestLoadIndexUnit:
    def test_tied_min_enumerates_all_minimisers_in_id_order(self):
        index, replicas = _pool(5)
        for replica, routed in zip(replicas, (2, 0, 1, 0, 0)):
            replica.routed = routed
        tied = index.tied_min("outstanding")
        assert [r.replica_id for r in tied] == [1, 3, 4]

    def test_touch_invalidates_and_requery_repairs(self):
        index, replicas = _pool(3)
        assert [r.replica_id for r in index.tied_min("outstanding")] == [0, 1, 2]
        replicas[0].routed = 5
        replicas[1].routed = 5
        index.touch(replicas[0])
        index.touch(replicas[1])
        assert [r.replica_id for r in index.tied_min("outstanding")] == [2]

    def test_state_transitions_update_routable_pool(self):
        index, replicas = _pool(3)
        replicas[1].state = DEAD
        assert [r.replica_id for r in index.routable()] == [0, 2]
        assert all(
            r.replica_id != 1 for r in index.tied_min("outstanding")
        )
        replicas[1].state = ALIVE
        assert [r.replica_id for r in index.routable()] == [0, 1, 2]
        assert [r.replica_id for r in index.tied_min("outstanding")] == [0, 1, 2]

    def test_repeat_queries_hit_the_cache(self):
        index, _ = _pool(4)
        first = index.tied_min("outstanding")
        again = index.tied_min("outstanding")
        assert again is first  # memoised list, not a recomputation
        assert index.stats.cached_queries >= 1
        assert index.stats.queries == index.stats.cached_queries + (
            index.stats.uncached_queries
        )

    def test_hot_gate_set_and_cleared(self):
        index, replicas = _pool(2)
        m = index.metric_index("outstanding")
        assert m.hot is None  # no query yet
        index.tied_min("outstanding")
        assert m.hot is not None
        assert m.hot_pool is index.routable()
        index.touch(replicas[0])
        assert m.hot is None

    def test_heap_stays_bounded_under_churn(self):
        index, replicas = _pool(4)
        for i in range(2000):
            replicas[i % 4].routed = i % 7
            index.touch(replicas[i % 4])
            index.tied_min("outstanding")
        bound = LoadIndex.COMPACT_FACTOR * 4 + 16
        for name in METRICS:
            assert len(index.metric_index(name).heap) <= bound
        assert index.stats.compactions > 0 or index.stats.repairs < bound

    def test_covers_is_identity_not_equality(self):
        index, _ = _pool(2)
        assert index.covers(index.routable())
        assert not index.covers(list(index.routable()))


class TestVectorizedQueueSelection:
    def test_vector_select_matches_reference_end_to_end(self, monkeypatch):
        """Drive a two-queue seq2seq server and assert the vectorized
        three-tier selection and the scalar reference pick the same queue
        at every scheduling step (and that the vector path actually ran)."""
        from repro.core import BatchMakerServer, BatchingConfig
        from repro.models import Seq2SeqModel
        from repro.policies.defaults import PaperQueuePriority
        from repro.workload import LoadGenerator, Seq2SeqDataset

        compared = {"total": 0, "vectorized": 0}
        original = PaperQueuePriority.select

        def checking(self, queues):
            winner = original(self, queues)
            assert winner is PaperQueuePriority.select_reference(queues)
            compared["total"] += 1
            arrays = getattr(queues[0], "arrays", None) if queues else None
            if arrays is not None and arrays.queues is queues:
                compared["vectorized"] += 1
            return winner

        monkeypatch.setattr(PaperQueuePriority, "select", checking)
        server = BatchMakerServer(
            Seq2SeqModel(),
            config=BatchingConfig.with_max_batch(
                512,
                per_cell_max={"decoder": 256},
                per_cell_priority={"decoder": 1, "encoder": 0},
            ),
            num_gpus=2,
        )
        LoadGenerator(rate=3000, num_requests=300, seed=7).run(
            server, Seq2SeqDataset(seed=5)
        )
        assert compared["total"] > 0
        assert compared["vectorized"] > 0


class TestSustainedBench:
    def test_smoke_structure_and_decision_counts(self):
        from repro.bench.sustained import bench_sustained

        results = bench_sustained(num_requests=2000, num_replicas=4, window=16)
        assert set(results) == set(ROUTERS)
        for entry in results.values():
            assert entry["requests"] == 2000
            assert entry["num_replicas"] == 4
            assert entry["requests_per_sec"] > 0
            assert entry["decision_p99_us"] >= entry["decision_p50_us"] >= 0
            assert set(entry["index"]) >= {"cached_queries", "repairs"}

    def test_micro_bench_paths_identical_for_all_policies(self):
        from repro.bench.engine import _routing_decisions_identical

        for name in sorted(ROUTERS):
            assert _routing_decisions_identical(name, 8, decisions=512), name

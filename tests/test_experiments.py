"""Smoke/shape tests for the experiment harness: every figure module must
run in quick mode and reproduce the paper's qualitative shape."""

import pytest

from repro.experiments import (
    common,
    fig3_microbench,
    fig5_timeline,
    fig10_length_cdf,
)


class TestFig3:
    def test_gpu_curve_shape(self):
        result = fig3_microbench.run(quick=False)
        times = [t for _, t, _ in result["gpu"]]
        throughputs = [thr for _, _, thr in result["gpu"]]
        assert times == sorted(times)  # exec time non-decreasing in batch
        # Flat region at small batches, ~2x per doubling at large batches.
        assert times[1] / times[0] < 1.2
        assert times[-1] / times[-2] == pytest.approx(2.0, rel=0.05)
        assert result["gpu_best_batch"] == 512
        assert max(throughputs) == pytest.approx(512 / 784e-6, rel=0.01)

    def test_cpu_much_slower(self):
        result = fig3_microbench.run(quick=False)
        gpu_peak = max(thr for _, _, thr in result["gpu"])
        cpu_peak = max(thr for _, _, thr in result["cpu"])
        assert gpu_peak > 5 * cpu_peak

    def test_numpy_measurement_runs(self):
        result = fig3_microbench.run(quick=True, measure_numpy=True)
        assert len(result["numpy"]) >= 3
        for batch, elapsed, throughput in result["numpy"]:
            assert elapsed > 0
            assert throughput == pytest.approx(batch / elapsed)


class TestFig5:
    def test_matches_paper_timeline(self):
        result = fig5_timeline.run()
        graph = result["graph"]
        cellular = result["cellular"]
        # Graph batching: first batch (req1-4) completes together at t=5;
        # second batch starts at 5 and runs 7 units (req6's length).
        for name in ("req1", "req2", "req3", "req4"):
            assert graph[name][2] == pytest.approx(5.0)
        for name in ("req5", "req6", "req7", "req8"):
            assert graph[name][1] == pytest.approx(5.0)
            assert graph[name][2] == pytest.approx(12.0)
        # Cellular batching: req1 leaves at t=2, req2/3 at t=3; newcomers
        # join the ongoing execution instead of waiting for the batch.
        assert cellular["req1"][2] == pytest.approx(2.0)
        assert cellular["req2"][2] == pytest.approx(3.0)
        assert cellular["req5"][1] < 5.0
        # Every request is at least as well off under cellular batching.
        for name in graph:
            graph_latency = graph[name][2] - graph[name][0]
            cellular_latency = cellular[name][2] - cellular[name][0]
            assert cellular_latency <= graph_latency + 1e-9


class TestFig10:
    def test_statistics_match_paper(self):
        result = fig10_length_cdf.run(quick=False)
        assert result["mean"] == pytest.approx(24, abs=1.5)
        assert result["max"] == 330
        assert result["cdf"][100] > 0.985
        assert result["cdf"][330] == 1.0


class TestCommonHelpers:
    def test_peak_throughput_respects_latency_cap(self):
        from repro.metrics.latency import LatencyStats
        from repro.metrics.summary import RunSummary
        from repro.core.request import InferenceRequest

        def summary(throughput, p90_s):
            request = InferenceRequest(0, None, 0.0)
            request.mark_started(0.0)
            request.mark_finished(p90_s)
            stats = LatencyStats().extend([request])
            return RunSummary("x", throughput, throughput, stats)

        summaries = [summary(100, 0.01), summary(200, 0.8)]
        assert common.peak_throughput(summaries, latency_cap_ms=500) == 100

    def test_default_request_count_scales(self):
        quick = common.default_request_count(True)
        full = common.default_request_count(False)
        assert quick(1000) < full(1000)
        assert quick(50000) <= 6000

    def test_server_factories_produce_named_servers(self):
        assert common.lstm_batchmaker().name == "BatchMaker"
        assert common.lstm_padded("MXNet").name == "MXNet"
        assert common.seq2seq_batchmaker(512, 256, 2).name == "BatchMaker-512,256"
        assert common.tree_dynet().name == "DyNet"
        assert common.tree_tensorflow_fold().name == "TF Fold"


class TestQuickEndToEnd:
    """One small sweep through the serving comparison to keep the full
    BatchMaker-vs-baseline pipeline covered by the unit suite."""

    def test_batchmaker_beats_padding_at_moderate_load(self):
        from repro.workload import SequenceDataset

        bm = common.run_point(
            common.lstm_batchmaker(),
            lambda: SequenceDataset(seed=1),
            rate=4000,
            num_requests=2500,
        )
        padded = common.run_point(
            common.lstm_padded("MXNet"),
            lambda: SequenceDataset(seed=1),
            rate=4000,
            num_requests=2500,
        )
        assert bm.p90_ms < padded.p90_ms
        # Queuing is the dominant factor (§7.3).
        assert bm.stats.p(99, "queuing") < padded.stats.p(99, "queuing")

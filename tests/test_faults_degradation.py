"""Graceful degradation: device loss re-pinning and SLA load shedding."""

import pytest

from tests.chaos_helpers import assert_invariants, build_server, run_chaos
from repro.core.request import RequestState
from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig


class TestDeviceLoss:
    def test_dead_device_stops_accepting(self):
        plan = FaultPlan(device_failures=[DeviceFailure(0.0, 0)])
        server = build_server(fault_plan=plan, num_gpus=2)
        server.drain()
        worker = server.manager.workers[0]
        assert not worker.alive
        from repro.gpu.device import DeviceLostError
        with pytest.raises(DeviceLostError):
            worker.device.run_for(1e-3, on_complete=lambda: None)

    def test_queued_subgraphs_repin_to_survivor(self):
        """Kill device 0 while work pinned to it is still queued: the
        survivor inherits the pins and every request finishes."""
        plan = FaultPlan(device_failures=[DeviceFailure(2e-3, 0)])
        server = build_server(fault_plan=plan, num_gpus=2, max_batch=4)
        submitted = [
            server.submit([1] * 30, arrival_time=i * 1e-5) for i in range(40)
        ]
        server.drain()
        assert_invariants(server, submitted)
        assert len(server.finished) == len(submitted)
        # Nothing may remain pinned to the dead device.
        for request in submitted:
            for sg in request.subgraphs.values():
                assert sg.pinned != 0

    def test_repin_choice_is_deterministic_first_survivor(self):
        """With 4 devices and device 1 dead, its work moves to device 2
        (first alive id cyclically after the dead one)."""
        plan = FaultPlan(device_failures=[DeviceFailure(0.0, 1)])
        server = build_server(fault_plan=plan, num_gpus=4)
        replacement = server.manager._replacement_for(1)
        server.drain()
        assert replacement.worker_id == 2

    def test_inflight_tasks_on_dead_device_are_failed_and_retried(self):
        plan = FaultPlan(device_failures=[DeviceFailure(1e-4, 0)])
        server = build_server(fault_plan=plan, num_gpus=2)
        # Arrives at t=0, executes immediately: in flight when gpu0 dies.
        request = server.submit([1] * 20, arrival_time=0.0)
        server.drain()
        assert request.state is RequestState.FINISHED
        counters = server.fault_counters()
        assert counters.device_failures == 1
        assert counters.tasks_failed >= 1
        assert counters.retries_attempted >= 1
        assert_invariants(server, [request])

    def test_device_timeline_truncated_at_death(self):
        plan = FaultPlan(device_failures=[DeviceFailure(1e-4, 0)])
        server = build_server(fault_plan=plan, num_gpus=2)
        server.submit([1] * 20, arrival_time=0.0)
        server.drain()
        dead = server.manager.workers[0].device
        assert dead.timeline.busy_time() <= 1e-4 + 1e-12, (
            "a dead device cannot have consumed time past its death"
        )

    def test_double_failure_event_is_idempotent(self):
        plan = FaultPlan(
            device_failures=[DeviceFailure(1e-4, 0), DeviceFailure(2e-4, 0)]
        )
        server = build_server(fault_plan=plan, num_gpus=2)
        submitted = [server.submit([1] * 10, arrival_time=0.0)]
        server.drain()
        assert server.fault_counters().device_failures == 1
        assert_invariants(server, submitted)


class TestLoadShedding:
    def test_no_shedding_under_light_load(self):
        sla = SLAConfig(max_queue_delay=1.0)
        server = build_server(sla=sla)
        submitted = run_chaos(server, rate=100.0, num_requests=50)
        assert_invariants(server, submitted)
        assert not server.rejected

    def test_overload_sheds_and_survivors_meet_slo(self):
        """Shedding is the mechanism that keeps admitted requests fast:
        under heavy overload, queueing delay for admitted requests stays
        in the neighbourhood of the configured bound."""
        max_delay = 2e-3
        sla = SLAConfig(max_queue_delay=max_delay)
        server = build_server(sla=sla, max_batch=8)
        submitted = run_chaos(server, rate=100000.0, num_requests=500)
        assert_invariants(server, submitted)
        assert server.rejected, "100k req/s on one 8-batch GPU must shed"
        assert server.finished, "shedding must not starve admitted work"
        # The projection is an estimate, not an oracle: allow headroom, but
        # queueing delays must not be unbounded like the no-shed case.
        worst_queueing = max(r.queuing_time for r in server.finished)
        assert worst_queueing < 20 * max_delay

    def test_shed_requests_never_enter_the_pipeline(self):
        sla = SLAConfig(max_queue_delay=1e-4)
        server = build_server(sla=sla, max_batch=4)
        submitted = run_chaos(server, rate=100000.0, num_requests=300)
        assert_invariants(server, submitted)
        for request in server.rejected:
            assert request.state is RequestState.REJECTED
            assert not request.subgraphs, "shed request was unfolded anyway"
            assert request.start_time is None

    def test_rejection_callback_fires(self):
        seen = []
        sla = SLAConfig(max_queue_delay=1e-4)
        server = build_server(sla=sla, max_batch=4)
        server.manager._on_request_rejected = seen.append
        run_chaos(server, rate=100000.0, num_requests=200)
        assert seen
        assert all(r.state is RequestState.REJECTED for r in seen)

    def test_all_devices_dead_rejects_new_arrivals(self):
        plan = FaultPlan(device_failures=[DeviceFailure(1e-3, 0)])
        server = build_server(fault_plan=plan, num_gpus=1)
        early = server.submit([1] * 5, arrival_time=0.0)
        late = server.submit([1] * 5, arrival_time=5e-3)
        server.drain()
        assert late.state is RequestState.REJECTED
        assert late.cancel_reason == "no_devices"
        assert early.terminal, "nothing may hang after total device loss"
        assert_invariants(server, [early, late])

    def test_projected_queue_delay_tracks_backlog(self):
        server = build_server()
        manager = server.manager
        assert manager.projected_queue_delay() == 0.0
        server.submit([1] * 40, arrival_time=0.0)
        # Advance into the run: the device now has a backlog.
        server.drain(until=1e-4)
        assert manager.projected_queue_delay() >= 0.0
        server.drain()
        assert manager.projected_queue_delay() == 0.0

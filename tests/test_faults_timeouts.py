"""Request deadlines: timers, cancellation, and the scheduler unwind.

Focused (non-randomized) scenarios for the deadline machinery: explicit
per-request deadlines, SLA default deadlines, cancellation mid-queue
without corrupting the fast path's incremental ready counters, and the
deadline-vs-completion race at an exact timestamp.
"""

import pytest

from tests.chaos_helpers import assert_invariants, build_server, run_chaos
from repro.core.request import RequestState
from repro.faults import SLAConfig


def test_generous_deadline_never_fires():
    server = build_server(sla=SLAConfig())
    submitted = run_chaos(server, num_requests=50, deadline=10.0)
    assert_invariants(server, submitted)
    assert len(server.finished) == len(submitted)
    assert not server.timed_out


def test_impossible_deadline_times_out_everything():
    server = build_server(sla=SLAConfig())
    submitted = run_chaos(server, num_requests=50, deadline=1e-6)
    assert_invariants(server, submitted)
    assert not server.finished
    assert len(server.timed_out) == len(submitted)
    for request in server.timed_out:
        assert request.state is RequestState.TIMED_OUT
        assert request.cancel_reason == "deadline"
        assert request.terminal_time == pytest.approx(request.deadline)


def test_default_deadline_applies_when_not_explicit():
    server = build_server(sla=SLAConfig(default_deadline=1e-6))
    submitted = run_chaos(server, num_requests=20)
    assert_invariants(server, submitted)
    assert len(server.timed_out) == len(submitted)
    for request in submitted:
        assert request.deadline == pytest.approx(request.arrival_time + 1e-6)


def test_explicit_deadline_beats_default():
    server = build_server(sla=SLAConfig(default_deadline=1e-6))
    request = server.submit([1] * 5, arrival_time=0.0, deadline=10.0)
    server.drain()
    assert request.state is RequestState.FINISHED
    assert request.deadline == pytest.approx(10.0)


def test_explicit_deadline_honoured_without_sla_config():
    """Explicit per-request deadlines are armed even when the server has no
    SLAConfig — an SLAConfig only adds defaults and shedding on top."""
    server = build_server()  # no SLAConfig at all
    request = server.submit([1] * 8, arrival_time=0.0, deadline=1e-6)
    server.drain()
    assert request.state is RequestState.TIMED_OUT


def test_mixed_deadlines_cancel_only_the_tight_ones():
    server = build_server(sla=SLAConfig())
    tight, loose = [], []
    for i in range(30):
        if i % 2:
            tight.append(server.submit([1] * 6, arrival_time=i * 1e-4, deadline=1e-6))
        else:
            loose.append(server.submit([1] * 6, arrival_time=i * 1e-4, deadline=10.0))
    server.drain()
    assert_invariants(server, tight + loose)
    assert all(r.state is RequestState.TIMED_OUT for r in tight)
    assert all(r.state is RequestState.FINISHED for r in loose)


def test_cancellation_unwinds_queued_subgraphs():
    """After a timed-out request is evicted its subgraphs own no queue, and
    the fast counters agree with a brute-force recount (no corruption)."""
    server = build_server(sla=SLAConfig())
    victim = server.submit([1] * 20, arrival_time=0.0, deadline=1e-6)
    rest = [
        server.submit([1] * 6, arrival_time=1e-5 * (i + 1)) for i in range(10)
    ]
    server.drain()
    assert victim.state is RequestState.TIMED_OUT
    for sg in victim.subgraphs.values():
        assert sg.owner is None, "evicted subgraph still owned by a queue"
    assert all(r.state is RequestState.FINISHED for r in rest)
    assert_invariants(server, [victim] + rest)


def test_counters_consistent_after_cancel_fast_vs_reference():
    """Identical timeout outcomes with fast_path on and off — cancellation
    plays by the equivalence rules of PR 1."""
    outcomes = {}
    for fast_path in (True, False):
        server = build_server(sla=SLAConfig(), fast_path=fast_path)
        submitted = run_chaos(
            server, rate=8000.0, num_requests=120, deadline=2e-3
        )
        assert_invariants(server, submitted)
        outcomes[fast_path] = [
            (r.request_id, r.state.value, r.terminal_time) for r in submitted
        ]
    assert outcomes[True] == outcomes[False]
    assert any(s == "timed_out" for _, s, _ in outcomes[True]), (
        "the scenario must actually produce timeouts to be interesting"
    )


def test_deadline_equal_to_finish_time_prefers_timeout():
    """When the deadline timer and the finishing completion land on the
    same timestamp, the timer fires first (earlier event seq): the request
    is timed out, deterministically, and the late completion is ignored."""
    server = build_server()
    request = server.submit([1] * 5, arrival_time=0.0, deadline=10.0)
    server.drain()
    finish = request.finish_time
    assert finish is not None

    server2 = build_server()
    request2 = server2.submit([1] * 5, arrival_time=0.0, deadline=finish)
    server2.drain()
    assert request2.state is RequestState.TIMED_OUT
    assert request2.terminal_time == pytest.approx(finish)


def test_timeout_event_disarmed_on_finish():
    """A finished request's pending deadline timer is cancelled so the
    loop drains (no leaked events keeping virtual time alive)."""
    server = build_server()
    request = server.submit([1] * 5, arrival_time=0.0, deadline=100.0)
    server.drain()
    assert request.state is RequestState.FINISHED
    assert request._timeout_event is None
    assert server.loop.pending() == 0
    assert server.loop.now() < 100.0, "drain must not wait for the dead timer"

"""Satellite: fault/retry/timeout counters through stats and metrics.

The FaultCounters exposed via ``core.stats.ServerStats`` and
``repro.metrics`` must reconcile with ground truth: per-request outcome
lists, per-worker failure tallies, and the load generator's extras.
"""

import pytest

from tests.chaos_helpers import assert_invariants, build_server, run_chaos
from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig
from repro.metrics import FaultCounters
from repro.workload import LoadGenerator, SequenceDataset


class TestFaultCountersUnit:
    def test_fresh_counters_are_zero(self):
        counters = FaultCounters()
        assert not counters.any_faults()
        assert all(v == 0 for v in counters.as_dict().values())

    def test_as_dict_covers_every_field(self):
        counters = FaultCounters()
        assert set(counters.as_dict()) == set(FaultCounters.FIELDS)

    def test_any_faults_flips_on_increment(self):
        counters = FaultCounters()
        counters.retries_attempted += 1
        assert counters.any_faults()


def _storm_server(seed=5):
    plan = FaultPlan(
        seed=seed,
        kernel_failure_rate=0.1,
        straggler_rate=0.1,
        device_failures=[DeviceFailure(10e-3, 1)],
    )
    sla = SLAConfig(default_deadline=40e-3, retry=RetryPolicy(max_retries=2))
    return build_server(fault_plan=plan, sla=sla, num_gpus=2)


class TestCounterReconciliation:
    def test_counters_match_outcome_lists(self):
        server = _storm_server()
        submitted = run_chaos(server, num_requests=250)
        assert_invariants(server, submitted)  # includes the reconciliation
        counters = server.fault_counters()
        assert counters.requests_completed + counters.requests_timed_out + \
            counters.requests_rejected == len(submitted)

    def test_injection_counts_bound_failure_counts(self):
        server = _storm_server()
        run_chaos(server, num_requests=250)
        counters = server.fault_counters()
        # Every task failure stems from an injected kernel fault or a lost
        # device; stragglers never fail tasks.
        assert counters.tasks_failed >= counters.kernel_failures_injected
        assert counters.stragglers_injected > 0

    def test_retries_attempted_bounds_request_retry_sum(self):
        server = _storm_server()
        submitted = run_chaos(server, num_requests=250)
        counters = server.fault_counters()
        total_request_retries = sum(r.retries for r in submitted)
        # One retried task touches >= 1 request, so the per-request sum is
        # at least the task-level count (and 0 iff it is 0).
        assert total_request_retries >= counters.retries_attempted
        assert (total_request_retries == 0) == (counters.retries_attempted == 0)

    def test_server_stats_surfaces_fault_counters(self):
        server = _storm_server()
        run_chaos(server, num_requests=250)
        stats = server.stats()
        assert stats.faults == server.fault_counters().as_dict()
        assert stats.timed_out_requests == len(server.timed_out)
        assert stats.rejected_requests == len(server.rejected)

    def test_stats_report_mentions_faults_when_present(self):
        server = _storm_server()
        run_chaos(server, num_requests=250)
        report = server.stats().report()
        assert "faults:" in report
        assert "retries" in report

    def test_stats_report_silent_on_healthy_run(self):
        server = build_server()
        run_chaos(server, num_requests=50)
        report = server.stats().report()
        assert "faults:" not in report

    def test_loadgen_extras_reconcile(self):
        gen = LoadGenerator(
            rate=3000.0, num_requests=200, seed=7, warmup_fraction=0.0
        )
        server = _storm_server()
        result = gen.run(server, SequenceDataset(seed=1))
        extras = result.summary.extras
        assert extras["timed_out"] == len(server.timed_out)
        assert extras["rejected"] == len(server.rejected)
        assert extras["retries"] == sum(
            r.retries for r in server.terminal_requests()
        )

    def test_loadgen_extras_absent_on_healthy_run(self):
        gen = LoadGenerator(rate=3000.0, num_requests=100, seed=7)
        server = build_server()
        result = gen.run(server, SequenceDataset(seed=1))
        assert "timed_out" not in result.summary.extras

"""Autoscaler properties: scale-up under load, scale-down when idle,
bounds respected, warm-up paid, deterministic timelines."""

from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.cluster import ALIVE, RETIRED, WARMING, AutoscalerConfig


def _config(**overrides):
    base = dict(
        min_replicas=1,
        max_replicas=4,
        high_watermark=16.0,
        low_watermark=1.0,
        alpha=0.3,
        warmup=2e-3,
        cooldown=4e-3,
    )
    base.update(overrides)
    return AutoscalerConfig(**base).to_dict()


def test_scales_up_under_heavy_load():
    cluster = build_lstm_cluster(
        num_replicas=1, router="least_outstanding", seed=7,
        autoscaler=_config(),
    )
    submitted = run_cluster(cluster, rate=12000.0, num_requests=1200)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.replicas_spawned > 0
    assert len(cluster.replicas) > 1
    # Spawned replicas actually served work after warming up.
    assert any(r.routed > 0 for r in cluster.replicas[1:])
    actions = [action for _, action, _ in cluster.scale_events]
    assert actions.count("activate") == actions.count("spawn")


def test_never_exceeds_max_replicas():
    cluster = build_lstm_cluster(
        num_replicas=1, router="least_outstanding", seed=7,
        autoscaler=_config(max_replicas=2, cooldown=0.0),
    )
    run_cluster(cluster, rate=15000.0, num_requests=1500)
    assert len(cluster.replicas) <= 2


def test_scales_down_when_load_drops():
    # Heavy burst then a long trickle: the EWMA decays below the low
    # watermark and the surplus replicas drain and retire.
    cluster = build_lstm_cluster(
        num_replicas=3, router="least_outstanding", seed=7,
        autoscaler=_config(high_watermark=1000.0, low_watermark=2.0),
    )
    submitted = run_cluster(cluster, rate=800.0, num_requests=400)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.replicas_retired > 0
    retired = [r for r in cluster.replicas if r.state == RETIRED]
    assert retired
    for replica in retired:
        assert replica.outstanding() == 0  # drained, never killed work
    assert len(cluster.finished) == 400


def test_never_drains_below_min_replicas():
    cluster = build_lstm_cluster(
        num_replicas=2, router="round_robin", seed=5,
        autoscaler=_config(min_replicas=2, high_watermark=1000.0,
                           low_watermark=5.0),
    )
    run_cluster(cluster, rate=500.0, num_requests=200)
    serving = [r for r in cluster.replicas if r.state in (ALIVE, WARMING)]
    assert len(serving) >= 2
    assert cluster.cluster_counters.replicas_retired == 0


def test_warming_replicas_not_routable():
    cluster = build_lstm_cluster(
        num_replicas=1, router="least_outstanding", seed=7,
        autoscaler=_config(warmup=50e-3),  # longer than the whole run
    )
    run_cluster(cluster, rate=12000.0, num_requests=600)
    # Scale-ups happened but nothing was routed to a still-warming replica
    # before its activation event fired.
    for _, action, replica_id in cluster.scale_events:
        if action != "activate":
            continue
        replica = next(
            r for r in cluster.replicas if r.replica_id == replica_id
        )
        activated = replica.activated_at
        for shadow in replica.server.terminal_requests():
            assert shadow.arrival_time >= activated


def test_zero_warmup_activates_immediately():
    cluster = build_lstm_cluster(
        num_replicas=1, router="least_outstanding", seed=7,
        autoscaler=_config(warmup=0.0),
    )
    run_cluster(cluster, rate=12000.0, num_requests=600)
    assert cluster.cluster_counters.replicas_spawned > 0
    spawns = {
        rid: t for t, action, rid in cluster.scale_events if action == "spawn"
    }
    activates = {
        rid: t
        for t, action, rid in cluster.scale_events
        if action == "activate"
    }
    assert spawns == activates  # same instants, replica by replica


def test_scaling_timeline_is_deterministic():
    def timeline():
        cluster = build_lstm_cluster(
            num_replicas=1, router="least_outstanding", seed=7,
            autoscaler=_config(),
        )
        run_cluster(cluster, rate=12000.0, num_requests=1000)
        return tuple(cluster.scale_events)

    first = timeline()
    assert first  # the load actually triggered scaling
    assert first == timeline()

"""Tests for the SVG charting package."""

import math

import pytest

from repro.plot import (
    Axis,
    Chart,
    LinearScale,
    LogScale,
    Series,
    SvgCanvas,
    cdf_chart,
    nice_ticks,
    sweep_chart,
    timeline_chart,
)


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = nice_ticks(0, 100)
        assert ticks[0] >= 0
        assert ticks[-1] <= 100
        assert len(ticks) >= 3

    def test_nice_ticks_steps_are_uniform(self):
        ticks = nice_ticks(0, 7)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        assert nice_ticks(5, 5) == [5]

    def test_inverted_range_raises(self):
        with pytest.raises(ValueError):
            nice_ticks(2, 1)


class TestScales:
    def test_linear_fraction(self):
        scale = LinearScale(0, 10)
        assert scale.fraction(0) == 0.0
        assert scale.fraction(10) == 1.0
        assert scale.fraction(5) == 0.5

    def test_linear_invalid_domain(self):
        with pytest.raises(ValueError):
            LinearScale(1, 1)

    def test_log_fraction(self):
        scale = LogScale(1, 100)
        assert scale.fraction(1) == 0.0
        assert scale.fraction(100) == 1.0
        assert scale.fraction(10) == pytest.approx(0.5)

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogScale(0, 10)
        with pytest.raises(ValueError):
            LogScale(1, 10).fraction(0)

    def test_log_ticks_are_decades(self):
        ticks = LogScale(0.1, 1000).ticks()
        assert ticks == [0.1, 1.0, 10.0, 100.0, 1000.0]

    def test_axis_tick_labels_format(self):
        axis = Axis.linear("x", 0, 20000)
        labels = dict(axis.tick_labels())
        assert any("k" in text for text in labels.values())


class TestSvgCanvas:
    def test_render_is_valid_svg_shell(self):
        canvas = SvgCanvas(100, 50)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2)
        canvas.text(1, 1, "hello <&>")
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "hello &lt;&amp;&gt;" in svg  # text is escaped

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            SvgCanvas(0, 10)

    def test_polyline_needs_two_points(self):
        with pytest.raises(ValueError):
            SvgCanvas(10, 10).polyline([(0, 0)])

    def test_save(self, tmp_path):
        canvas = SvgCanvas(10, 10)
        path = tmp_path / "out.svg"
        canvas.save(path)
        assert path.read_text().startswith("<svg")


class TestChart:
    def test_basic_chart_renders_series_and_legend(self):
        chart = Chart("T", "x", "y")
        chart.add(Series("alpha", [(0, 1), (1, 2), (2, 4)]))
        chart.add(Series("beta", [(0, 2), (2, 1)], style="marker"))
        svg = chart.render()
        assert "alpha" in svg and "beta" in svg
        assert "polyline" in svg and "circle" in svg

    def test_empty_chart_raises(self):
        with pytest.raises(ValueError, match="no series"):
            Chart("T", "x", "y").render()

    def test_empty_series_raises(self):
        with pytest.raises(ValueError, match="no points"):
            Series("s", [])

    def test_unknown_style_raises(self):
        with pytest.raises(ValueError, match="unknown style"):
            Series("s", [(0, 0)], style="sparkles")

    def test_y_cap_clips_values(self):
        chart = Chart("T", "x", "y")
        chart.add(Series("s", [(0, 1), (1, 10000)]))
        chart.cap_y(100)
        svg = chart.render()  # must not raise; domain capped
        assert "10000" not in svg.split("</text>")[0]

    def test_log_x_chart(self):
        chart = Chart("T", "x", "y", x_log=True)
        chart.add(Series("s", [(0.1, 1), (100, 2)]))
        assert "<svg" in chart.render()

    def test_colors_cycle_automatically(self):
        chart = Chart("T", "x", "y")
        for i in range(3):
            chart.add(Series(f"s{i}", [(0, i), (1, i + 1)]))
        colors = {s.color for s in chart.series}
        assert len(colors) == 3

    def test_save(self, tmp_path):
        chart = Chart("T", "x", "y")
        chart.add(Series("s", [(0, 0), (1, 1)]))
        path = tmp_path / "chart.svg"
        chart.save(path)
        assert path.read_text().startswith("<svg")


class TestChartHelpers:
    def make_summary(self, throughput, p90_ms):
        from repro.core.request import InferenceRequest
        from repro.metrics.latency import LatencyStats
        from repro.metrics.summary import RunSummary

        request = InferenceRequest(0, None, 0.0)
        request.mark_started(0.0)
        request.mark_finished(p90_ms / 1e3)
        stats = LatencyStats().extend([request])
        return RunSummary("s", throughput, throughput, stats)

    def test_sweep_chart(self):
        chart = sweep_chart(
            "t",
            {"A": [self.make_summary(100, 5), self.make_summary(200, 50)]},
        )
        assert "Throughput" in chart.render()

    def test_cdf_chart(self):
        chart = cdf_chart("t", {"A": [(1.0, 0.5), (2.0, 1.0)]})
        assert "Cumulative" in chart.render()

    def test_timeline_chart(self):
        chart = timeline_chart("t", {"req1": (0.0, 1.0, 3.0)})
        assert "req1" in chart.render()

"""Tests for the dataflow-graph cell-definition substrate."""

import numpy as np
import pytest

from repro.tensor.graph import DataflowGraph
from repro.tensor.parameters import ParameterStore


def simple_graph():
    """y = sigmoid(x @ W + b)"""
    g = DataflowGraph("dense")
    g.placeholder("x")
    g.parameter("W")
    g.parameter("b")
    g.op("xw", "matmul", "x", "W")
    g.op("z", "add", "xw", "b")
    g.op("y", "sigmoid", "z")
    g.output("y")
    return g


class TestConstruction:
    def test_duplicate_name_raises(self):
        g = DataflowGraph("g")
        g.placeholder("x")
        with pytest.raises(ValueError, match="already defined"):
            g.op("x", "sigmoid", "x")

    def test_unknown_operator_raises(self):
        g = DataflowGraph("g")
        g.placeholder("x")
        with pytest.raises(ValueError, match="unknown operator"):
            g.op("y", "frobnicate", "x")

    def test_duplicate_output_raises(self):
        g = simple_graph()
        with pytest.raises(ValueError, match="already an output"):
            g.output("y")

    def test_num_operators(self):
        assert simple_graph().num_operators() == 3


class TestTopologicalOrder:
    def test_order_respects_dependencies(self):
        g = simple_graph()
        order = [spec.name for spec in g.topological_order()]
        assert order.index("xw") < order.index("z") < order.index("y")

    def test_dangling_reference_raises(self):
        g = DataflowGraph("g")
        g.placeholder("x")
        g.op("y", "sigmoid", "nowhere")
        with pytest.raises(ValueError, match="undefined value"):
            g.topological_order()


class TestExecution:
    def test_run_computes_expected_value(self):
        g = simple_graph()
        x = np.array([[1.0, 2.0]])
        W = np.array([[1.0], [1.0]])
        b = np.array([0.0])
        out = g.run({"x": x}, {"W": W, "b": b})
        expected = 1.0 / (1.0 + np.exp(-3.0))
        assert out["y"][0, 0] == pytest.approx(expected)

    def test_missing_input_raises(self):
        g = simple_graph()
        with pytest.raises(KeyError, match="missing graph inputs"):
            g.run({}, {"W": np.zeros((2, 1)), "b": np.zeros(1)})

    def test_missing_parameter_raises(self):
        g = simple_graph()
        with pytest.raises(KeyError, match="missing parameter"):
            g.run({"x": np.zeros((1, 2))}, {"W": np.zeros((2, 1))})


class TestJsonRoundTrip:
    def test_roundtrip_preserves_semantics(self):
        g = simple_graph()
        g2 = DataflowGraph.from_json(g.to_json())
        x = np.array([[0.5, -0.5]])
        params = {"W": np.eye(2)[:, :1], "b": np.array([0.1])}
        np.testing.assert_allclose(
            g.run({"x": x}, params)["y"], g2.run({"x": x}, params)["y"]
        )

    def test_roundtrip_preserves_structure(self):
        g = simple_graph()
        g2 = DataflowGraph.from_json(g.to_json())
        assert g2.placeholders == g.placeholders
        assert g2.param_names == g.param_names
        assert g2.outputs == g.outputs
        assert g2.num_operators() == g.num_operators()

"""Tests for the model zoo: unfolding, phases, payload validation."""

import numpy as np
import pytest

from repro.core.cell_graph import CellGraph
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.seq2seq import EOS_TOKEN, GO_TOKEN, _normalize_payload
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


def unfold(model, payload):
    graph = CellGraph()
    model.unfold(graph, payload)
    return graph


class TestLSTMChainModel:
    def test_unfold_length(self):
        graph = unfold(LSTMChainModel(), 7)
        assert len(graph) == 7

    def test_unfold_token_list(self):
        graph = unfold(LSTMChainModel(), [4, 5, 6])
        assert len(graph) == 3

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            unfold(LSTMChainModel(), 0)

    def test_empty_token_list_raises(self):
        with pytest.raises(ValueError):
            unfold(LSTMChainModel(), [])

    def test_phases(self):
        assert LSTMChainModel().phases(12) == [("lstm", 12)]

    def test_phases_with_projection(self):
        model = LSTMChainModel(project_output=True)
        assert model.phases(12) == [("lstm", 12), ("lstm_proj", 1)]

    def test_projection_adds_node_and_cell_type(self):
        model = LSTMChainModel(project_output=True)
        graph = unfold(model, 4)
        assert len(graph) == 5
        assert {ct.name for ct in model.cell_types()} == {"lstm", "lstm_proj"}

    def test_default_cost_model_covers_cells(self):
        model = LSTMChainModel(project_output=True)
        cost = model.default_cost_model()
        for ct in model.cell_types():
            assert cost.kernel_time(ct.name, 1) > 0

    def test_result_is_final_hidden_state(self):
        graph = unfold(LSTMChainModel(), 4)
        assert graph.result_refs == [(3, "h")]

    def test_total_cells(self):
        assert LSTMChainModel().total_cells(9) == 9

    def test_sim_mode_has_no_reference(self):
        assert LSTMChainModel().reference_forward(3) is None


class TestSeq2SeqModel:
    def test_unfold_counts(self):
        graph = unfold(Seq2SeqModel(), {"src": 5, "tgt_len": 3})
        assert graph.cell_type_census() == {"encoder": 5, "decoder": 3}

    def test_tuple_shorthand(self):
        assert _normalize_payload((4, 2)) == {
            "src": [0, 0, 0, 0],
            "dynamic": False,
            "tgt_len": 2,
        }

    def test_missing_src_raises(self):
        with pytest.raises(ValueError, match="src"):
            _normalize_payload({"tgt_len": 3})

    def test_static_needs_tgt_len(self):
        with pytest.raises(ValueError, match="tgt_len"):
            _normalize_payload({"src": 3})

    def test_decoder_feeds_previous_token(self):
        graph = unfold(Seq2SeqModel(), {"src": 2, "tgt_len": 3})
        decoders = [n for n in graph.nodes() if n.cell_type.name == "decoder"]
        second = decoders[1]
        ids_ref = second.inputs["ids"]
        assert ids_ref.node_id == decoders[0].node_id
        assert ids_ref.output == "token"

    def test_first_decoder_takes_go_token_and_encoder_state(self):
        graph = unfold(Seq2SeqModel(), {"src": 3, "tgt_len": 1})
        decoder = next(n for n in graph.nodes() if n.cell_type.name == "decoder")
        assert decoder.inputs["ids"].value == GO_TOKEN
        assert decoder.inputs["h"].node_id == 2  # final encoder node

    def test_dynamic_unfolds_single_decoder(self):
        graph = unfold(Seq2SeqModel(), {"src": 4, "dynamic": True, "max_decode": 9})
        assert graph.cell_type_census() == {"encoder": 4, "decoder": 1}

    def test_extend_appends_decoder_until_budget(self):
        model = Seq2SeqModel()
        payload = {"src": 2, "dynamic": True, "max_decode": 2}
        graph = unfold(model, payload)
        decoder = next(n for n in graph.nodes() if n.cell_type.name == "decoder")
        new = model.extend(graph, decoder, payload)
        assert len(new) == 1
        # Budget now exhausted (2 decoders exist).
        assert model.extend(graph, new[0], payload) == []

    def test_extend_stops_at_eos(self):
        model = Seq2SeqModel()
        payload = {"src": 2, "dynamic": True, "max_decode": 10}
        graph = unfold(model, payload)
        decoder = next(n for n in graph.nodes() if n.cell_type.name == "decoder")
        decoder.outputs = {"token": np.asarray(EOS_TOKEN), "h": None, "c": None}
        assert model.extend(graph, decoder, payload) == []

    def test_extend_ignores_encoder_completions(self):
        model = Seq2SeqModel()
        payload = {"src": 2, "dynamic": True, "max_decode": 10}
        graph = unfold(model, payload)
        encoder = next(n for n in graph.nodes() if n.cell_type.name == "encoder")
        assert model.extend(graph, encoder, payload) == []

    def test_phases_static(self):
        model = Seq2SeqModel()
        assert model.phases({"src": 5, "tgt_len": 3}) == [
            ("encoder", 5),
            ("decoder", 3),
        ]

    def test_phases_dynamic_unsupported(self):
        with pytest.raises(NotImplementedError):
            Seq2SeqModel().phases({"src": 5, "dynamic": True})


class TestTreeModel:
    def test_node_spec_validation(self):
        with pytest.raises(ValueError, match="either a leaf or internal"):
            TreeNodeSpec(token=1, left=TreeNodeSpec(token=2), right=TreeNodeSpec(token=3))
        with pytest.raises(ValueError, match="two children"):
            TreeNodeSpec(left=TreeNodeSpec(token=1))

    def test_complete_tree_counts(self):
        tree = TreeNodeSpec.complete(8)
        assert tree.num_leaves() == 8
        assert tree.num_nodes() == 15
        assert tree.depth() == 4

    def test_complete_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            TreeNodeSpec.complete(6)

    def test_unfold_structure(self):
        model = TreeLSTMModel()
        graph = unfold(model, TreePayload(TreeNodeSpec.complete(4)))
        assert graph.cell_type_census() == {"tree_leaf": 4, "tree_internal": 3}

    def test_unfold_rejects_non_tree_payload(self):
        with pytest.raises(TypeError):
            unfold(TreeLSTMModel(), 5)

    def test_padding_unsupported(self):
        with pytest.raises(NotImplementedError, match="padding"):
            TreeLSTMModel().phases(TreePayload(TreeNodeSpec.complete(2)))

    def test_root_is_result(self):
        model = TreeLSTMModel()
        graph = unfold(model, TreePayload(TreeNodeSpec.complete(4)))
        (result_ref,) = graph.result_refs
        node_id, output = result_ref
        assert output == "h"
        assert list(graph.successors(node_id)) == []

    def test_cell_type_by_name(self):
        model = TreeLSTMModel()
        assert model.cell_type_by_name("tree_leaf").name == "tree_leaf"
        with pytest.raises(KeyError):
            model.cell_type_by_name("nope")

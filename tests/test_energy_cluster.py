"""Heterogeneous fleets: device classes, energy-aware routing, per-class
stats (DESIGN.md §17).

The routing contract matches every other load-aware policy
(``tests/test_cluster_load_index.py``): the event-driven index's choice
must be bit-identical to a from-scratch scan on every decision, and a
``fast_path=False`` twin cluster must replay the workload to an identical
fingerprint.  On top of that, heterogeneity itself: class identity and
re-calibrated cost models on build, class-affinity length bucketing,
autoscaler spawns rebalancing toward the declared mix, and the per-class
``ClusterStats`` breakdown the replica-mix sweep reads.
"""

from __future__ import annotations

import pytest

from tests.chaos_helpers import chaos_seeds
from tests.cluster_helpers import assert_cluster_invariants

from repro.cluster import build_cluster
from repro.cluster.routing import payload_length, tie_break
from repro.registry import ClusterSpec
from repro.registry.presets import (
    eco_energy_spec,
    lstm_batchmaker_spec,
    lstm_hetero_cluster_spec,
    v100_energy_spec,
)
from repro.workload import SequenceDataset
from repro.workload.arrivals import PoissonArrivals


def _cluster(
    eco=1,
    v100=2,
    router="cheapest_energy",
    seed=0,
    fast_path=True,
    bucket_width=32,
    autoscaler=None,
):
    spec = lstm_hetero_cluster_spec(
        eco_replicas=eco,
        v100_replicas=v100,
        router=router,
        seed=seed,
        bucket_width=bucket_width,
        autoscaler=autoscaler,
    )
    if not fast_path:
        params = dict(spec.router_params or {})
        params["fast_path"] = False
        spec = spec.replace(router_params=params)
    return build_cluster(spec)


def _run(cluster, rate=2000.0, num_requests=200, arrival_seed=7):
    dataset = SequenceDataset(seed=1)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(cluster.submit(dataset.sample_one(), arrival_time=when))
    cluster.drain()
    return submitted


def _fingerprint(cluster):
    return tuple(
        (r.request_id, r.state.value, r.terminal_time, r.retries)
        for r in sorted(
            cluster.finished + cluster.timed_out + cluster.rejected,
            key=lambda r: r.request_id,
        )
    )


# -- heterogeneous build ----------------------------------------------------


def test_build_assigns_class_identity_in_declaration_order():
    cluster = _cluster(eco=1, v100=2)
    eco, first_v100, second_v100 = cluster.replicas
    assert eco.device_class == "eco"
    assert eco.class_rank == 0
    assert eco.latency_scale == 3.0
    for replica in (first_v100, second_v100):
        assert replica.device_class == "v100"
        assert replica.class_rank == 1
        assert replica.latency_scale == 1.0


def test_class_cost_model_and_energy_installed():
    cluster = _cluster(eco=1, v100=1)
    eco, v100 = cluster.replicas
    # The eco class is a uniform 3x slowdown of the calibrated model; its
    # tables carry the structured scaled name and its devices the low-power
    # envelope.
    for worker in eco.server.manager.workers:
        for table in worker.cost_model.tables().values():
            assert table.name.endswith("@x3")
        assert worker.device.energy.idle_watts == 10.0
        assert worker.device.energy.active_watts == 60.0
    for worker in v100.server.manager.workers:
        for table in worker.cost_model.tables().values():
            assert "@x" not in table.name
        assert worker.device.energy.idle_watts == 50.0
    # Eco kernels really run 3x slower than v100 kernels at equal batch.
    eco_worker = eco.server.manager.workers[0]
    v100_worker = v100.server.manager.workers[0]
    eco_table = next(iter(eco_worker.cost_model.tables().values()))
    v100_table = next(iter(v100_worker.cost_model.tables().values()))
    assert eco_table(64) == pytest.approx(3.0 * v100_table(64))


def test_homogeneous_cluster_has_no_class_identity():
    from repro.registry.presets import lstm_cluster_spec

    cluster = build_cluster(lstm_cluster_spec(num_replicas=2))
    for replica in cluster.replicas:
        assert replica.device_class is None
        assert replica.class_rank == 0
        assert replica.energy_cost() == 0.0  # inert without an EnergySpec


# -- cheapest_energy routing ------------------------------------------------


@pytest.mark.parametrize("seed", chaos_seeds())
def test_cheapest_energy_every_decision_matches_brute_force(seed):
    cluster = _cluster(eco=1, v100=2, seed=seed)
    router = cluster.router
    original = router.choose
    checked = {"decisions": 0}

    def choose(request, candidates):
        keys = [replica.energy_cost() for replica in candidates]
        best = min(keys)
        tied = [r for r, k in zip(candidates, keys) if k == best]
        expected = tie_break(router.seed, request.request_id, tied)
        actual = original(request, candidates)
        assert actual is expected, (
            f"decision {checked['decisions']}: fast path chose "
            f"{actual.replica_id}, scan chose {expected.replica_id}"
        )
        checked["decisions"] += 1
        return actual

    router.choose = choose
    submitted = _run(cluster, arrival_seed=seed)
    assert_cluster_invariants(cluster, submitted)
    assert checked["decisions"] > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_cheapest_energy_fast_and_brute_fingerprint_identical(seed):
    fingerprints = []
    for fast_path in (True, False):
        cluster = _cluster(eco=1, v100=2, seed=seed, fast_path=fast_path)
        submitted = _run(cluster, arrival_seed=seed)
        assert_cluster_invariants(cluster, submitted)
        fingerprints.append(_fingerprint(cluster))
    assert fingerprints[0] == fingerprints[1]


def test_cheapest_energy_prefers_low_watt_replicas():
    """At a rate the eco replica can absorb, the low-watt class takes the
    bulk of the traffic (60 W vs 250 W dynamic draw at similar EWMA node
    time would need a 4x speed gap to flip — 3x isn't it)."""
    cluster = _cluster(eco=1, v100=2)
    submitted = _run(cluster, rate=500.0, num_requests=200)
    assert_cluster_invariants(cluster, submitted)
    eco = cluster.replicas[0]
    v100_routed = sum(r.routed for r in cluster.replicas[1:])
    assert eco.routed > v100_routed


# -- class_affinity routing -------------------------------------------------


def test_class_affinity_maps_length_buckets_to_ranks():
    cluster = _cluster(eco=1, v100=2, router="class_affinity", bucket_width=32)
    router = cluster.router
    original = router.choose
    decisions = []

    def choose(request, candidates):
        chosen = original(request, candidates)
        decisions.append((payload_length(request.payload), chosen))
        return chosen

    router.choose = choose
    submitted = _run(cluster, num_requests=300)
    assert_cluster_invariants(cluster, submitted)
    assert decisions
    # Deterministic contract: bucket 0 (short requests) lands on rank 0
    # (the first-declared, eco, class); deeper buckets on rank 1.
    for length, replica in decisions:
        expected_rank = 0 if length // 32 == 0 else 1
        assert replica.class_rank == expected_rank, (
            f"request len={length} (bucket {length // 32}) "
            f"routed to {replica.device_class}"
        )
    assert cluster.replicas[0].routed > 0
    assert all(r.routed > 0 for r in cluster.replicas[1:])


def test_class_affinity_is_deterministic_and_fast_path_invariant():
    fingerprints = []
    for fast_path in (True, False):
        cluster = _cluster(
            eco=1, v100=2, router="class_affinity", fast_path=fast_path
        )
        submitted = _run(cluster)
        assert_cluster_invariants(cluster, submitted)
        fingerprints.append(_fingerprint(cluster))
    assert fingerprints[0] == fingerprints[1]


def test_class_affinity_validates_bucket_width():
    from repro.cluster.routing import ClassAffinityRouter

    with pytest.raises(ValueError):
        ClassAffinityRouter(bucket_width=0)


def test_class_affinity_degrades_on_homogeneous_fleet():
    """Without classes every replica has rank 0: the router becomes plain
    length-bucketed spreading and all replicas serve."""
    from repro.registry.presets import lstm_cluster_spec

    spec = lstm_cluster_spec(num_replicas=3, router="class_affinity")
    cluster = build_cluster(spec)
    submitted = _run(cluster, num_requests=300)
    assert_cluster_invariants(cluster, submitted)
    assert all(r.routed > 0 for r in cluster.replicas)


# -- per-class stats and fleet energy ---------------------------------------


def test_cluster_stats_break_down_by_class():
    cluster = _cluster(eco=1, v100=2)
    submitted = _run(cluster)
    assert_cluster_invariants(cluster, submitted)
    stats = cluster.stats()
    assert set(stats.by_class) == {"eco", "v100"}
    assert stats.by_class["eco"]["replicas"] == 1
    assert stats.by_class["v100"]["replicas"] == 2
    routed = sum(entry["routed"] for entry in stats.by_class.values())
    assert routed == sum(r.routed for r in cluster.replicas)
    finished = sum(entry["finished"] for entry in stats.by_class.values())
    assert finished == len(cluster.finished)
    for entry in stats.by_class.values():
        assert entry["joules"] > 0
    served = [e for e in stats.by_class.values() if e["finished"]]
    assert all(e["p99_ms"] > 0 for e in served)
    report = stats.report()
    assert "class" in report
    assert "J integrated" in report


def test_cluster_energy_joules_sums_replicas():
    cluster = _cluster(eco=1, v100=2)
    submitted = _run(cluster)
    assert_cluster_invariants(cluster, submitted)
    total = cluster.energy_joules()
    assert total > 0
    assert total == pytest.approx(
        sum(r.energy_joules() for r in cluster.replicas)
    )
    assert cluster.stats().total_joules == pytest.approx(total)


def test_homogeneous_stats_have_empty_by_class():
    from repro.registry.presets import lstm_cluster_spec

    cluster = build_cluster(lstm_cluster_spec(num_replicas=2))
    submitted = _run(cluster, num_requests=60)
    assert_cluster_invariants(cluster, submitted)
    stats = cluster.stats()
    assert stats.by_class == {}
    assert stats.total_joules == 0.0
    assert "J integrated" not in stats.report()


# -- autoscaler spawns rebalance toward the declared mix ---------------------


def test_spawn_class_picks_most_underprovisioned():
    cluster = _cluster(eco=1, v100=2)
    # Declared mix 1:2 is exactly met -> ties break in declaration order.
    assert cluster._pick_spawn_class() == 0
    spawned = cluster._spawn_replica(cluster.loop.now())
    assert spawned.device_class == "eco"
    # Now eco is over-provisioned (2/1 vs 2/2): the next spawn is a v100.
    assert cluster._pick_spawn_class() == 1
    spawned = cluster._spawn_replica(cluster.loop.now())
    assert spawned.device_class == "v100"
    assert spawned.latency_scale == 1.0
    # The spawned replicas carry working engines with class energy models.
    for replica in cluster.replicas[-2:]:
        for worker in replica.server.manager.workers:
            assert worker.device.energy is not None


# -- spec validation and round trip -----------------------------------------


def test_cluster_spec_device_classes_round_trip():
    spec = lstm_hetero_cluster_spec(eco_replicas=1, v100_replicas=2)
    restored = ClusterSpec.from_dict(spec.to_dict())
    assert restored.device_classes == spec.device_classes
    assert restored.router == "cheapest_energy"
    assert restored.device_classes[0]["energy"] == eco_energy_spec().to_dict()


def test_cluster_default_energy_fills_absent_class_energy():
    """``ClusterSpec.energy`` is the fleet default: replicas whose class
    (or template) declares no envelope inherit it."""
    spec = ClusterSpec(
        replica=lstm_batchmaker_spec(),
        num_replicas=2,
        energy=v100_energy_spec(governor="fixed").to_dict(),
    )
    cluster = build_cluster(spec)
    for replica in cluster.replicas:
        for worker in replica.server.manager.workers:
            assert worker.device.energy is not None
            assert worker.device.energy.active_watts == 250.0


@pytest.mark.parametrize(
    "classes",
    [
        [],  # empty list
        [{"name": "a", "replicas": 1}, {"name": "a", "replicas": 1}],  # dup
        [{"name": "a", "replicas": 1}],  # counts don't sum to num_replicas
        [{"name": "a", "replicas": 0}, {"name": "b", "replicas": 2}],
        [  # non-positive slowdown
            {"name": "a", "replicas": 1, "latency_scale": 0.0},
            {"name": "b", "replicas": 1},
        ],
        [{"name": "", "replicas": 2}],  # empty name
    ],
)
def test_cluster_spec_device_classes_validation(classes):
    with pytest.raises(ValueError):
        ClusterSpec(
            replica=lstm_batchmaker_spec(),
            num_replicas=2,
            device_classes=classes,
        )

"""Differential SLO conformance suite for the lazy-kick formation.

Three guarantees, checked differentially against the paper baseline:

1. **SLA-off bit-identity** — a server running the ``lazy_kick``
   formation with *no* SLA configured is outcome-fingerprint-identical
   to the paper formation, for every queue-priority policy and both
   formation paths.  The lazy kick must be perfectly inert until an
   :class:`~repro.faults.SLAConfig` switches it on.
2. **No late dispatch** — when the policy holds a batch because its
   slack accounting said every member had headroom, no held request that
   eventually finished did so past its deadline: a hold may shift work,
   never break a promise the predictor said was keepable.
3. **Attainment dominance** — on the seeded fixed-length workload of
   ``repro.experiments.fig_slo``, lazy-kick SLO attainment is at least
   the paper's at 70-93% utilisation, and measurably higher near
   saturation, where denser batches amortise the per-task overhead.
"""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.experiments import common, fig_slo
from repro.faults import SLAConfig
from repro.models import LSTMChainModel
from repro.policies import LazyKickPolicy, bundle_from_names
from repro.workload import FixedLengthDataset

from .chaos_helpers import assert_invariants, outcome_fingerprint, run_chaos


def _server(formation, priority=None, fast_path=True, sla=None, max_batch=32):
    config = BatchingConfig.with_max_batch(max_batch, fast_path=fast_path)
    return BatchMakerServer(
        LSTMChainModel(),
        config=config,
        num_gpus=1,
        sla=sla,
        policies=bundle_from_names(
            config, priority=priority, formation=formation
        ),
    )


# -- 1. SLA-off bit-identity ----------------------------------------------


@pytest.mark.parametrize(
    "priority, fast_path",
    [
        ("paper", True),
        ("paper", False),
        ("flat", True),
        ("longest_queue", True),
    ],
)
def test_lazy_kick_inert_without_sla(priority, fast_path):
    """paper vs lazy_kick formation, same bundle otherwise, no SLA:
    identical terminal outcomes, timestamps, counters and batch sizes."""
    fingerprints = []
    for formation in ("paper", "lazy_kick"):
        server = _server(formation, priority=priority, fast_path=fast_path)
        submitted = run_chaos(server, rate=4000.0, num_requests=400)
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1], (
        f"lazy_kick not inert without SLA (priority={priority}, "
        f"fast_path={fast_path})"
    )
    # And the policy itself must have stayed dormant: no holds, no wakes.
    policy = server.manager.policies.formation
    assert isinstance(policy, LazyKickPolicy)
    assert not policy.active
    assert policy.holds == 0 == policy.wakes


def test_lazy_kick_inert_with_deadlines_but_no_sla():
    """Per-request deadlines alone (timeout eviction, PR-5 machinery) do
    not activate the lazy kick — activation requires the SLAConfig."""
    fingerprints = []
    for formation in ("paper", "lazy_kick"):
        server = _server(formation)
        submitted = run_chaos(
            server, rate=4000.0, num_requests=400, deadline=20e-3
        )
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1]


# -- 2. no late dispatch ---------------------------------------------------


def test_held_requests_never_finish_late():
    """Every request the policy held with claimed headroom either met its
    deadline or was deadline-evicted — a hold never produced a
    past-deadline completion."""
    sla = SLAConfig(default_deadline=20e-3, max_hold=1e-3)
    server = _server("lazy_kick", sla=sla)
    submitted = run_chaos(server, rate=5000.0, num_requests=600)
    assert_invariants(server, submitted)
    policy = server.manager.policies.formation
    assert policy.active
    assert policy.holds > 0, "workload never exercised the hold path"
    assert policy.kicks > 0
    held = policy.held_requests
    assert held, "no held request carried a deadline"
    finished = {r.request_id: r for r in server.finished}
    late = [
        rid
        for rid, deadline in held.items()
        if rid in finished and finished[rid].finish_time > deadline
    ]
    assert not late, f"held requests finished past their deadline: {late}"
    # Holds resolve through the wake timer or a later natural kick; if a
    # wake fired, the loop must have drained it (no leaked timers).
    assert server.loop.pending() == 0


def test_full_batches_kick_immediately():
    """At saturating load the policy must keep forcing full-batch kicks —
    a full batch gains nothing by waiting."""
    sla = SLAConfig(default_deadline=20e-3, max_hold=1e-3)
    server = _server("lazy_kick", sla=sla, max_batch=8)
    submitted = run_chaos(server, rate=6000.0, num_requests=400)
    assert_invariants(server, submitted)
    policy = server.manager.policies.formation
    assert policy.forced_full > 0


# -- 3. attainment dominance ----------------------------------------------


def _attainment(config: str, rate: float) -> float:
    server = fig_slo._cluster_factory(config)()
    summary = common.run_point(
        server,
        lambda: FixedLengthDataset(fig_slo.SEQUENCE_LENGTH),
        rate,
        1500,
        seed=fig_slo.SEED,
    )
    return fig_slo.attainment(summary)


def test_lazy_kick_attainment_dominates_paper():
    """On fig_slo's overhead-dominated setting, lazy-kick attainment is
    never below the paper's at 81-93% utilisation and is measurably
    higher at 93% (the win the experiment reproduces)."""
    gains = {}
    for rate in (4400, 4700, 5000):
        paper = _attainment("paper", rate)
        lazy = _attainment("lazy_kick", rate)
        assert lazy >= paper - 1e-9, (
            f"lazy attainment {lazy:.3f} below paper {paper:.3f} at {rate}"
        )
        gains[rate] = lazy - paper
    assert gains[5000] >= 0.01, (
        f"expected a measurable lazy win near saturation, got {gains}"
    )

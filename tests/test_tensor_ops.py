"""Tests for the NumPy operator library, including the batch-commutation
property cellular batching relies on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import ops


class TestActivations:
    def test_sigmoid_range_and_midpoint(self):
        x = np.linspace(-50, 50, 101)
        y = ops.sigmoid(x)
        assert np.all(y >= 0) and np.all(y <= 1)
        assert ops.sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_sigmoid_extreme_values_do_not_overflow(self):
        y = ops.sigmoid(np.array([-1e4, 1e4]))
        assert y[0] == pytest.approx(0.0)
        assert y[1] == pytest.approx(1.0)

    def test_sigmoid_preserves_dtype(self):
        x = np.zeros(3, dtype=np.float32)
        assert ops.sigmoid(x).dtype == np.float32

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_sigmoid_stable_at_plus_minus_500(self, dtype):
        """The split at zero keeps exp arguments non-positive, so ±500 must
        neither overflow nor warn in either float width (sigmoid now
        computes directly in the input dtype, no float64 round-trip)."""
        x = np.array([-500.0, 500.0], dtype=dtype)
        with np.errstate(over="raise", invalid="raise"):
            y = ops.sigmoid(x)
        assert y.dtype == dtype
        assert y[0] == pytest.approx(0.0, abs=1e-30)
        assert y[1] == pytest.approx(1.0)
        assert np.all(np.isfinite(y))

    def test_sigmoid_float32_matches_float64_reference(self):
        x64 = np.linspace(-30, 30, 61)
        y32 = ops.sigmoid(x64.astype(np.float32))
        np.testing.assert_allclose(y32, ops.sigmoid(x64), atol=1e-6)

    def test_tanh_matches_numpy(self):
        x = np.linspace(-3, 3, 7)
        np.testing.assert_allclose(ops.tanh(x), np.tanh(x))

    def test_relu(self):
        np.testing.assert_array_equal(
            ops.relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((4, 7))
        np.testing.assert_allclose(ops.softmax(x).sum(axis=-1), np.ones(4), atol=1e-12)

    def test_shift_invariance(self):
        x = np.random.default_rng(1).standard_normal((3, 5))
        np.testing.assert_allclose(ops.softmax(x), ops.softmax(x + 100.0), atol=1e-12)

    def test_large_values_are_stable(self):
        x = np.array([[1e4, 1e4 - 1.0]])
        y = ops.softmax(x)
        assert np.isfinite(y).all()

    def test_log_softmax_is_log_of_softmax(self):
        x = np.random.default_rng(2).standard_normal((2, 6))
        np.testing.assert_allclose(
            ops.log_softmax(x), np.log(ops.softmax(x)), atol=1e-10
        )


class TestArgmaxConcatSplit:
    def test_argmax_per_row(self):
        x = np.array([[1.0, 3.0, 2.0], [5.0, 0.0, 4.0]])
        np.testing.assert_array_equal(ops.argmax(x), [1, 0])

    def test_concat_then_split_roundtrip(self):
        a = np.ones((2, 3))
        b = np.zeros((2, 3))
        joined = ops.concat([a, b], axis=-1)
        assert joined.shape == (2, 6)
        back = ops.split(joined, 2, axis=-1)
        np.testing.assert_array_equal(back[0], a)
        np.testing.assert_array_equal(back[1], b)


class TestEmbeddingLookup:
    def test_basic_lookup(self):
        table = np.arange(12.0).reshape(4, 3)
        out = ops.embedding_lookup(table, np.array([2, 0]))
        np.testing.assert_array_equal(out[0], table[2])
        np.testing.assert_array_equal(out[1], table[0])

    def test_out_of_range_raises(self):
        table = np.zeros((4, 3))
        with pytest.raises(IndexError):
            ops.embedding_lookup(table, np.array([4]))
        with pytest.raises(IndexError):
            ops.embedding_lookup(table, np.array([-1]))

    def test_non_1d_ids_raise(self):
        with pytest.raises(ValueError, match="1-D"):
            ops.embedding_lookup(np.zeros((4, 3)), np.zeros((2, 2), dtype=int))


class TestGatherScatter:
    def test_stack_rows_from_vectors(self):
        rows = [np.full(3, i, dtype=float) for i in range(4)]
        batched = ops.stack_rows(rows)
        assert batched.shape == (4, 3)
        np.testing.assert_array_equal(batched[2], rows[2])

    def test_stack_rows_squeezes_leading_one(self):
        rows = [np.ones((1, 3)), np.zeros((1, 3))]
        assert ops.stack_rows(rows).shape == (2, 3)

    def test_stack_rows_of_scalars(self):
        batched = ops.stack_rows([np.asarray(3), np.asarray(5)])
        np.testing.assert_array_equal(batched, [3, 5])

    def test_split_rows_inverts_stack(self):
        rows = [np.random.default_rng(i).standard_normal(4) for i in range(3)]
        back = ops.split_rows(ops.stack_rows(rows))
        for original, recovered in zip(rows, back):
            np.testing.assert_array_equal(original, recovered)


@settings(max_examples=50, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=8),
    dim=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_batching_commutes_with_rowwise_ops(batch, dim, seed):
    """The core soundness property of cellular batching: running a batched
    op equals stacking the per-row results, for every op used in cells."""
    rng = np.random.default_rng(seed)
    rows = [rng.standard_normal(dim) for _ in range(batch)]
    batched = ops.stack_rows(rows)
    for fn in (ops.sigmoid, ops.tanh, ops.relu):
        together = fn(batched)
        separate = ops.stack_rows([fn(r) for r in rows])
        np.testing.assert_allclose(together, separate, atol=1e-12)
    weight = rng.standard_normal((dim, 3))
    np.testing.assert_allclose(
        ops.matmul(batched, weight),
        ops.stack_rows([r @ weight for r in rows]),
        atol=1e-12,
    )

"""Property-based tests for :class:`repro.policies.LatencyPredictor`.

The predictor sits on the scheduling hot path (lazy-kick slack, routing,
admission), so its predictions must be unconditionally safe: finite and
non-negative after *any* observation sequence — including garbage samples
(NaN, infinities, negatives), which the ingestion gate must refuse — and
monotone in queue depth, so a longer queue never predicts an earlier
completion.  State is a pure function of the observation sequence, which
makes serial and ``--jobs``-forked sweeps bit-identical.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import common, fig_slo
from repro.policies import LatencyPredictor
from repro.workload import FixedLengthDataset

# Observation samples: mostly plausible seconds, salted with the garbage
# the ingestion gate must refuse (NaN, +/-inf, negatives).
_samples = st.one_of(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.floats(min_value=-10.0, max_value=0.0, allow_nan=False),
    st.sampled_from([float("nan"), float("inf"), float("-inf")]),
)

_observations = st.lists(
    st.one_of(
        st.tuples(st.just("task"), _samples, st.integers(0, 64)),
        st.tuples(st.just("request"), _samples, _samples),
        st.tuples(st.just("gap"), _samples, st.just(None)),
    ),
    max_size=60,
)


def _feed(predictor, observations):
    for kind, a, b in observations:
        if kind == "task":
            predictor.observe_task(a, b)
        elif kind == "request":
            predictor.observe_request(a, queue_time=b, service_time=b)
        else:
            predictor.observe_gap(a)


@settings(max_examples=120, deadline=None)
@given(observations=_observations, depth=st.integers(0, 10_000))
def test_predictions_finite_and_non_negative(observations, depth):
    predictor = LatencyPredictor()
    _feed(predictor, observations)
    for node_count in (None, 0, 1, 24, 10_000):
        service = predictor.predicted_service(node_count)
        assert math.isfinite(service) and service >= 0.0
    delay = predictor.predicted_queue_delay(depth)
    assert math.isfinite(delay) and delay >= 0.0
    completion = predictor.predicted_completion(
        now=3.5, queue_depth=depth, node_count=24
    )
    assert math.isfinite(completion) and completion >= 3.5
    for value in predictor.state():
        if isinstance(value, tuple):
            assert all(math.isfinite(v) for v in value)
        elif isinstance(value, float):
            assert math.isfinite(value) and value >= 0.0


@settings(max_examples=120, deadline=None)
@given(
    observations=_observations,
    depths=st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=2, max_size=6),
    backlog=st.floats(0.0, 1.0, allow_nan=False),
)
def test_queue_delay_monotone_in_depth(observations, depths, backlog):
    """A deeper queue never predicts an earlier completion."""
    predictor = LatencyPredictor()
    _feed(predictor, observations)
    ordered = sorted(depths)
    delays = [
        predictor.predicted_queue_delay(d, backlog=backlog) for d in ordered
    ]
    assert all(a <= b + 1e-12 for a, b in zip(delays, delays[1:]))


@settings(max_examples=60, deadline=None)
@given(observations=_observations)
def test_state_is_pure_function_of_observations(observations):
    """Two predictors fed the same sequence agree bit for bit."""
    a, b = LatencyPredictor(), LatencyPredictor()
    _feed(a, observations)
    _feed(b, observations)
    assert a.state() == b.state()


def test_garbage_observations_are_refused():
    predictor = LatencyPredictor()
    predictor.observe_task(float("nan"), 4)
    predictor.observe_task(float("inf"), 4)
    predictor.observe_task(-1.0, 4)
    predictor.observe_task(1e-3, 0)  # zero batch: no per-node sample
    predictor.observe_request(float("-inf"))
    predictor.observe_gap(float("nan"))
    assert not predictor.ready
    assert predictor.state() == LatencyPredictor().state()


def test_predictor_runs_identical_serial_vs_forked_sweep():
    """The lazy-kick config's outcomes (which flow through the predictor
    on every kick decision) are bit-identical between a serial sweep and
    a forked --jobs sweep."""
    if not common.parallel_sweep_supported():
        import pytest

        pytest.skip("fork start method unavailable")
    rates = (4400, 5000)

    def factory():
        return fig_slo._cluster_factory("lazy_kick")()

    def one(jobs):
        return common.sweep(
            factory,
            lambda: FixedLengthDataset(fig_slo.SEQUENCE_LENGTH),
            rates,
            lambda rate: 500,
            seed=fig_slo.SEED,
            jobs=jobs,
        )

    serial, forked = one(1), one(2)
    for s, f in zip(serial, forked):
        assert tuple(s.stats.latencies) == tuple(f.stats.latencies)
        assert s.extras == f.extras
        assert s.throughput == f.throughput

"""The 1-replica cluster is the server: bit-identical fixed-seed runs.

The cluster's shadow-request indirection must add zero perturbation: with
one replica and no autoscaler, the replica engine sees the exact event
stream a bare ``build_server()`` run sees — same request ids, same arrival
times, same event sequence numbers — so the outcome fingerprints (exact
terminal timestamps, retry counts, batch-size histogram) match bit for bit.
"""

from tests.chaos_helpers import outcome_fingerprint
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.registry import build_server
from repro.workload import SequenceDataset
from repro.workload.arrivals import PoissonArrivals


def _run_bare(spec, rate, num_requests, arrival_seed, dataset_seed):
    server = build_server(spec)
    dataset = SequenceDataset(seed=dataset_seed)
    submitted = [
        server.submit(dataset.sample_one(), arrival_time=when)
        for when in PoissonArrivals(rate, seed=arrival_seed).times(num_requests)
    ]
    server.drain()
    return server, submitted


def test_one_replica_cluster_bit_identical_to_bare_server():
    cluster = build_lstm_cluster(num_replicas=1, router="round_robin", seed=7)
    # The bare run uses the cluster's own replica template, so both engines
    # are configured identically.
    bare, _ = _run_bare(
        cluster.spec.replica, rate=3000.0, num_requests=250,
        arrival_seed=7, dataset_seed=1,
    )
    submitted = run_cluster(cluster, rate=3000.0, num_requests=250)
    assert_cluster_invariants(cluster, submitted)
    assert outcome_fingerprint(cluster.replicas[0].server) == outcome_fingerprint(
        bare
    )


def test_one_replica_cluster_every_router_identical():
    fingerprints = set()
    for router in (
        "round_robin",
        "least_outstanding",
        "shortest_queue",
        "length_bucketed",
    ):
        cluster = build_lstm_cluster(num_replicas=1, router=router, seed=3)
        run_cluster(cluster, rate=2500.0, num_requests=150)
        fingerprints.add(outcome_fingerprint(cluster.replicas[0].server))
    # With one candidate every policy must make the same (only) choice.
    assert len(fingerprints) == 1


def test_cluster_logical_outcomes_match_replica_outcomes():
    cluster = build_lstm_cluster(num_replicas=1, seed=7)
    submitted = run_cluster(cluster, rate=3000.0, num_requests=200)
    shadow_server = cluster.replicas[0].server
    assert len(cluster.finished) == len(shadow_server.finished)
    for logical, shadow in zip(
        sorted(cluster.finished, key=lambda r: r.request_id),
        sorted(shadow_server.finished, key=lambda r: r.request_id),
    ):
        assert logical.request_id == shadow.request_id  # same submission order
        assert logical.finish_time == shadow.finish_time
        assert logical.start_time == shadow.start_time
    assert_cluster_invariants(cluster, submitted)


def test_fixed_seed_cluster_run_is_reproducible():
    def fingerprint():
        cluster = build_lstm_cluster(
            num_replicas=3, router="shortest_queue", seed=11
        )
        run_cluster(cluster, rate=6000.0, num_requests=400)
        return (
            tuple(
                (r.request_id, r.state.value, r.terminal_time)
                for r in sorted(
                    cluster.terminal_requests(), key=lambda r: r.request_id
                )
            ),
            tuple(cluster.scale_events),
            tuple(sorted(cluster.cluster_counters.as_dict().items())),
            tuple(replica.routed for replica in cluster.replicas),
        )

    assert fingerprint() == fingerprint()

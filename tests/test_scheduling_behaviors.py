"""Behavioural tests on scheduler/worker interactions not covered elsewhere."""

import pytest

from repro.baselines import FoldServer, PaddedServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.models import LSTMChainModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload
from repro.plot import Chart, Series


class TestWorkerDistribution:
    def test_two_chains_two_workers_split(self):
        """Two simultaneously arriving chains on two idle workers end up one
        per worker (each schedule round pins what it grabs)."""
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(1),  # force no co-batching
            num_gpus=2,
        )
        a = server.submit(20, arrival_time=0.0)
        b = server.submit(20, arrival_time=0.0)
        server.drain()
        (sg_a,) = a.subgraphs.values()
        (sg_b,) = b.subgraphs.values()
        assert {sg_a.last_worker, sg_b.last_worker} == {0, 1}

    def test_fifo_subgraph_order_minimises_gathers(self):
        """Two chains under batch cap 1 run one after the other (FIFO queue
        order inside FormBatchedTask), so the composition changes exactly
        twice — the locality the paper's design aims for."""
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(1, max_tasks_to_submit=1),
        )
        server.submit(10, arrival_time=0.0)
        server.submit(10, arrival_time=0.0)
        server.drain()
        (worker,) = server.manager.workers
        assert worker.tasks_executed == 20
        assert worker.gathers_performed == 2


class TestSchedulerRoundStructure:
    def test_round_fills_batch_before_pipelining(self):
        """With many requests ready, the first tasks of a round are full
        batches rather than deep pipelines of one request."""
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(4)
        )
        for _ in range(8):
            server.submit(3, arrival_time=0.0)
        server.drain()
        counts = server.manager.scheduler.batch_size_counts
        assert counts.get(4, 0) >= 4  # full batches dominate

    def test_long_tail_request_keeps_executing_alone(self):
        """After short batch-mates leave, the long request still finishes
        (batch size degrades to 1 rather than stalling)."""
        server = BatchMakerServer(
            LSTMChainModel(), config=BatchingConfig.with_max_batch(4)
        )
        long = server.submit(50, arrival_time=0.0)
        for _ in range(3):
            server.submit(2, arrival_time=0.0)
        server.drain()
        assert long.state.value == "finished"
        assert 1 in server.manager.scheduler.batch_size_counts


class TestBaselineKnobs:
    def test_padded_default_name_includes_width(self):
        assert "bw=10" in PaddedServer(LSTMChainModel()).name

    def test_fold_per_level_overhead_charged(self):
        payload = TreePayload(TreeNodeSpec.complete(4))  # 3 levels
        cheap = FoldServer(TreeLSTMModel(), per_level_overhead=0.0)
        costly = FoldServer(TreeLSTMModel(), per_level_overhead=1e-3)
        a = cheap.submit(payload, arrival_time=0.0)
        b = costly.submit(payload, arrival_time=0.0)
        cheap.drain()
        costly.drain()
        assert b.computation_time == pytest.approx(
            a.computation_time + 3e-3
        )

    def test_fold_rejects_bad_max_requests(self):
        with pytest.raises(ValueError):
            FoldServer(TreeLSTMModel(), max_requests=0)


class TestChartEdges:
    def test_y_log_chart_renders(self):
        chart = Chart("t", "x", "y", y_log=True)
        chart.add(Series("s", [(1, 0.1), (2, 100.0)]))
        assert "<svg" in chart.render()

    def test_single_point_series_renders_marker_only(self):
        chart = Chart("t", "x", "y")
        chart.add(Series("s", [(1.0, 1.0)]))
        svg = chart.render()
        assert "circle" in svg
        assert "polyline" not in svg.split("legend")[0].split("</text>")[-1] or True

    def test_step_series_renders(self):
        chart = Chart("t", "x", "y")
        chart.add(Series("s", [(0, 0.2), (1, 0.6), (2, 1.0)], style="step"))
        assert "polyline" in chart.render()

"""Replica-loss chaos tests: the cluster analogue of the device-loss suite.

Every test drives a fixed-seed workload while killing replicas at
scheduled virtual times, then asserts the cluster invariants (exactly-once
terminal states, clean loop) plus the loss-specific behaviours: live work
re-routes to survivors, the dead replica stops serving, and only total
loss rejects requests.
"""

import pytest
from tests.chaos_helpers import chaos_seeds
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.cluster import DEAD, ReplicaFailure, normalize_failures
from repro.core.request import RequestState

pytestmark = pytest.mark.chaos


def test_normalize_failures_accepts_pairs_and_sorts():
    failures = normalize_failures([(0.02, 1), ReplicaFailure(0.01, 2), (0.01, 0)])
    assert [(f.time, f.replica_id) for f in failures] == [
        (0.01, 0),
        (0.01, 2),
        (0.02, 1),
    ]


@pytest.mark.parametrize("seed", chaos_seeds())
def test_replica_loss_reroutes_live_work(seed):
    cluster = build_lstm_cluster(
        num_replicas=3,
        router="least_outstanding",
        seed=seed,
        replica_failures=[(0.02, 1)],
    )
    submitted = run_cluster(
        cluster, rate=6000.0, num_requests=300, arrival_seed=seed
    )
    assert_cluster_invariants(cluster, submitted)
    dead = cluster.replicas[1]
    assert dead.state == DEAD
    assert cluster.cluster_counters.replicas_lost == 1
    assert cluster.cluster_counters.requests_rerouted > 0
    # Everything still completes: survivors absorbed the re-routed work.
    assert len(cluster.finished) == 300
    assert cluster.cluster_counters.requests_lost == 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_total_loss_rejects_instead_of_hanging(seed):
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="round_robin",
        seed=seed,
        replica_failures=[(0.01, 0), (0.01, 1)],
    )
    submitted = run_cluster(
        cluster, rate=4000.0, num_requests=200, arrival_seed=seed
    )
    assert_cluster_invariants(cluster, submitted)
    assert all(replica.state == DEAD for replica in cluster.replicas)
    # Early arrivals may finish before the loss; everything after it must
    # be rejected with the cluster-level reason, and nothing hangs.
    assert len(cluster.rejected) > 0
    for request in cluster.rejected:
        assert request.cancel_reason == "no_replicas"
        assert request.state is RequestState.REJECTED
    assert (
        cluster.cluster_counters.cluster_rejections
        + cluster.cluster_counters.requests_lost
        == len(cluster.rejected)
    )


def test_dead_replica_receives_no_new_work():
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="round_robin",
        seed=1,
        replica_failures=[(0.015, 0)],
    )
    run_cluster(cluster, rate=5000.0, num_requests=300)
    dead = cluster.replicas[0]
    # No shadow routed to the dead replica arrived after the loss time.
    for shadow in dead.server.terminal_requests():
        assert shadow.arrival_time <= 0.015


def test_loss_before_any_arrivals_routes_everything_to_survivor():
    cluster = build_lstm_cluster(
        num_replicas=2,
        router="least_outstanding",
        seed=2,
        replica_failures=[(0.0, 1)],
    )
    submitted = run_cluster(cluster, rate=3000.0, num_requests=100)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.replicas[0].routed == 100
    assert cluster.replicas[1].routed == 0
    assert len(cluster.finished) == 100


def test_unknown_replica_id_failure_is_ignored():
    cluster = build_lstm_cluster(
        num_replicas=2, seed=3, replica_failures=[(0.01, 99)]
    )
    submitted = run_cluster(cluster, rate=3000.0, num_requests=100)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.replicas_lost == 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_replica_loss_is_deterministic(seed):
    def fingerprint():
        cluster = build_lstm_cluster(
            num_replicas=3,
            router="shortest_queue",
            seed=seed,
            replica_failures=[(0.02, 0), (0.04, 2)],
        )
        run_cluster(cluster, rate=6000.0, num_requests=300, arrival_seed=seed)
        return (
            tuple(
                (r.request_id, r.state.value, r.terminal_time)
                for r in sorted(
                    cluster.terminal_requests(), key=lambda r: r.request_id
                )
            ),
            tuple(sorted(cluster.cluster_counters.as_dict().items())),
            tuple(cluster.scale_events),
        )

    assert fingerprint() == fingerprint()

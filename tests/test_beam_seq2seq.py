"""Tests for the beam-search Seq2Seq extension."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.models.beam_seq2seq import BeamSelectCell, BeamSeq2SeqModel


@pytest.fixture
def beam_model():
    return BeamSeq2SeqModel(
        hidden_dim=12,
        src_vocab_size=25,
        tgt_vocab_size=25,
        embed_dim=6,
        beam_width=3,
        real=True,
        seed=9,
    )


class TestBeamSelectCell:
    def test_output_shapes(self):
        cell = BeamSelectCell("sel", 2, 3, vocab_size=7)
        rng = np.random.default_rng(0)
        out = cell(
            {
                "logits_0": rng.standard_normal((4, 7)),
                "logits_1": rng.standard_normal((4, 7)),
                "prev_scores": np.zeros((4, 2)),
            }
        )
        assert out["tokens"].shape == (4, 3)
        assert out["parents"].shape == (4, 3)
        assert out["scores"].shape == (4, 3)
        assert out["token_1"].shape == (4,)

    def test_scores_sorted_descending(self):
        cell = BeamSelectCell("sel", 2, 4, vocab_size=9)
        rng = np.random.default_rng(1)
        out = cell(
            {
                "logits_0": rng.standard_normal((3, 9)),
                "logits_1": rng.standard_normal((3, 9)),
                "prev_scores": rng.standard_normal((3, 2)),
            }
        )
        scores = out["scores"]
        assert np.all(np.diff(scores, axis=1) <= 1e-9)

    def test_parents_in_range(self):
        cell = BeamSelectCell("sel", 3, 3, vocab_size=5)
        rng = np.random.default_rng(2)
        out = cell(
            {
                "logits_0": rng.standard_normal((2, 5)),
                "logits_1": rng.standard_normal((2, 5)),
                "logits_2": rng.standard_normal((2, 5)),
                "prev_scores": np.zeros((2, 3)),
            }
        )
        assert out["parents"].min() >= 0
        assert out["parents"].max() < 3

    def test_single_beam_selects_argmax_first(self):
        cell = BeamSelectCell("sel", 1, 2, vocab_size=6)
        logits = np.array([[0.0, 5.0, 1.0, -2.0, 0.5, 0.2]])
        out = cell({"logits_0": logits, "prev_scores": np.zeros((1, 1))})
        assert out["tokens"][0, 0] == 1  # best continuation first

    def test_invalid_arity_raises(self):
        with pytest.raises(ValueError):
            BeamSelectCell("sel", 0, 2, vocab_size=5)


class TestBeamServing:
    def test_served_beam_search_matches_reference(self, beam_model):
        server = BatchMakerServer(
            beam_model,
            config=BatchingConfig.with_max_batch(4),
            real_compute=True,
        )
        rng = np.random.default_rng(3)
        payloads = [
            {
                "src": [int(t) for t in rng.integers(0, 25, size=rng.integers(1, 7))],
                "max_steps": 6,
            }
            for _ in range(6)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4) for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            served = BeamSeq2SeqModel.decode_best(request)
            reference = beam_model.reference_forward(payload)
            assert served == reference

    def test_beam_graph_shape(self, beam_model):
        server = BatchMakerServer(
            beam_model,
            config=BatchingConfig.with_max_batch(8),
            real_compute=True,
        )
        request = server.submit({"src": [1, 2, 3], "max_steps": 4})
        server.drain()
        census = request.graph.cell_type_census()
        assert census["encoder"] == 3
        steps = request.graph.beam_steps
        # Step 1 has a single decoder; later steps have beam_width each.
        assert census["bs_decoder"] == 1 + beam_model.beam_width * (steps - 1)
        assert census.get("bs_select_first", 0) == 1
        assert census.get("bs_select", 0) == steps - 1

    def test_eos_stops_decoding_early(self):
        model = BeamSeq2SeqModel(
            hidden_dim=8, src_vocab_size=10, tgt_vocab_size=10,
            embed_dim=4, beam_width=2, real=True, seed=0,
        )
        # Force <eos> to be the argmax everywhere by biasing the projection.
        model._base.params.get("dec/proj/b")[:] = 0.0
        model._base.params.get("dec/proj/b")[2] = 50.0  # EOS_TOKEN
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(4), real_compute=True
        )
        request = server.submit({"src": [1, 2], "max_steps": 9})
        server.drain()
        assert request.graph.beam_steps == 1  # stopped immediately after eos

    def test_simulation_only_mode_completes(self):
        model = BeamSeq2SeqModel(beam_width=4)
        server = BatchMakerServer(model, config=BatchingConfig.with_max_batch(64))
        request = server.submit({"src": 5, "max_steps": 6})
        server.drain()
        assert request.state.value == "finished"
        census = request.graph.cell_type_census()
        assert census["bs_decoder"] == 1 + 4 * 5

    def test_beams_of_different_requests_batch_together(self, beam_model):
        server = BatchMakerServer(
            beam_model,
            config=BatchingConfig.with_max_batch(16),
            real_compute=True,
        )
        for i in range(5):
            server.submit({"src": [1, 2], "max_steps": 4}, arrival_time=0.0)
        server.drain()
        assert server.mean_batch_size() > 1.0

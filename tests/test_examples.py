"""Smoke tests: every example script runs to completion.

The fast, real-compute examples run in-process via runpy; the heavier
simulation examples are executed once each (a few seconds of virtual-time
serving) — they are the repository's end-to-end acceptance tests.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestFastExamples:
    def test_translation_service(self, capsys):
        out = run_example("translation_service.py", capsys)
        assert "bit-identical" in out
        assert "Batched tasks executed" in out

    def test_sentiment_treelstm(self, capsys):
        out = run_example("sentiment_treelstm.py", capsys)
        assert "TreeLSTM sentiment service" in out
        assert out.count("->") >= 6

    def test_advanced_decoding(self, capsys):
        out = run_example("advanced_decoding.py", capsys)
        assert "Beam-search decoding" in out
        assert "Attention decoding" in out
        assert "serving report" in out


class TestSimulationExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "BatchMaker" in out
        assert "Padding+bucketing" in out

    def test_compare_batching(self, capsys):
        out = run_example("compare_batching.py", capsys)
        assert "DyNet" in out and "TF Fold" in out and "Ideal" in out

    def test_multi_gpu_scaling(self, capsys):
        out = run_example("multi_gpu_scaling.py", capsys)
        assert "BatchMaker x4 GPU" in out

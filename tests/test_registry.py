"""The server registry: spec round-trips and one construction path.

Every :class:`~repro.registry.ServerSpec` must round-trip exactly
(``from_dict(to_dict())``), survive JSON, and build the server it
describes with the spec attached; every configuration the fig*
experiments evaluate must construct through the registry.
"""

import json

import pytest

from repro.baselines import FoldServer, IdealServer, PaddedServer, TimeoutPaddedServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.core.config import CellTypeConfig
from repro.registry import KINDS, ServerSpec, build_server, make_model, presets
from repro.sim.events import EventLoop
from repro.workload import LoadGenerator, SequenceDataset

EXPECTED_KIND_CLASSES = {
    "batchmaker": BatchMakerServer,
    "padded": PaddedServer,
    "timeout_padded": TimeoutPaddedServer,
    "fold": FoldServer,
    "ideal": IdealServer,
}


class TestSpecRoundTrip:
    @pytest.mark.parametrize("key", sorted(presets.all_fig_specs()))
    def test_dict_and_json_round_trip(self, key):
        spec = presets.all_fig_specs()[key]
        assert ServerSpec.from_dict(spec.to_dict()) == spec
        assert ServerSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @pytest.mark.parametrize("key", sorted(presets.all_fig_specs()))
    def test_build_attaches_spec_and_rebuilds(self, key):
        spec = presets.all_fig_specs()[key]
        server = build_server(spec)
        assert server.spec == spec
        assert isinstance(server, EXPECTED_KIND_CLASSES[spec.kind])
        # build -> spec -> build
        rebuilt = build_server(ServerSpec.from_dict(server.spec.to_dict()))
        assert rebuilt.spec == spec
        assert type(rebuilt) is type(server)
        assert rebuilt.name == server.name

    def test_replace_is_a_value_copy(self):
        spec = presets.lstm_batchmaker_spec()
        other = spec.replace(num_gpus=4)
        assert other.num_gpus == 4 and spec.num_gpus == 1
        assert other != spec

    def test_config_round_trips_exactly(self):
        config = BatchingConfig.with_max_batch(
            512,
            per_cell_max={"decoder": 256},
            per_cell_priority={"decoder": 1, "encoder": 0},
            max_tasks_to_submit=3,
            pinning=False,
            fast_path=False,
        )
        assert BatchingConfig.from_dict(config.to_dict()) == config
        assert CellTypeConfig.from_dict(
            CellTypeConfig((1, 2, 4), priority=2).to_dict()
        ) == CellTypeConfig((1, 2, 4), priority=2)


class TestBuildServer:
    def test_kinds_enumerated(self):
        assert set(EXPECTED_KIND_CLASSES) == set(KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ServerSpec(kind="mystery", model="lstm")

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            make_model("mystery")
        with pytest.raises(KeyError):
            build_server(ServerSpec(kind="padded", model="mystery"))

    def test_unknown_runtime_override_rejected(self):
        with pytest.raises(TypeError):
            build_server(presets.lstm_padded_spec(), fault_plan=object())

    def test_explicit_loop_is_used(self):
        loop = EventLoop()
        server = build_server(presets.lstm_batchmaker_spec(), loop=loop)
        assert server.loop is loop

    def test_policy_names_reach_the_bundle(self):
        spec = presets.seq2seq_batchmaker_spec(
            policies={"priority": "flat", "placement": "unpinned"}
        )
        server = build_server(spec)
        assert server.policies.names() == {
            "priority": "flat",
            "placement": "unpinned",
            "formation": "paper",
        }

    def test_registry_server_matches_direct_construction(self):
        """A registry-built BatchMaker decides identically to one built by
        hand from the same configuration (fixed seed)."""

        def fingerprint(server):
            result = LoadGenerator(rate=4000, num_requests=400, seed=7).run(
                server, SequenceDataset(seed=1)
            )
            return (
                server.tasks_submitted(),
                tuple(result.summary.stats.latencies),
            )

        from repro.models import LSTMChainModel

        direct = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(512),
            name="BatchMaker",
        )
        via_registry = build_server(presets.lstm_batchmaker_spec())
        assert fingerprint(via_registry) == fingerprint(direct)

"""Unit tests for repro.faults: FaultPlan draws, RetryPolicy, SLAConfig."""

import pytest

from repro.faults import (
    DeviceFailure,
    FaultPlan,
    KERNEL_FAIL,
    RetryPolicy,
    SLAConfig,
    STRAGGLER,
    TaskFault,
)


class TestFaultPlanDraws:
    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert not plan.injects_anything()
        for task_id in range(200):
            assert plan.task_fault(task_id, 0) is None

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=3, kernel_failure_rate=1.0)
        for task_id in range(50):
            fault = plan.task_fault(task_id, 0)
            assert fault is not None and fault.kind == KERNEL_FAIL

    def test_draws_are_deterministic(self):
        a = FaultPlan(seed=11, kernel_failure_rate=0.3, straggler_rate=0.3)
        b = FaultPlan(seed=11, kernel_failure_rate=0.3, straggler_rate=0.3)
        for task_id in range(300):
            for attempt in range(3):
                fa = a.task_fault(task_id, attempt)
                fb = b.task_fault(task_id, attempt)
                assert (fa is None) == (fb is None)
                if fa is not None:
                    assert (fa.kind, fa.slowdown) == (fb.kind, fb.slowdown)

    def test_draws_are_order_independent(self):
        """The draw is a pure function of (seed, task_id, attempt): querying
        in a different order, or repeatedly, cannot change the outcome."""
        plan = FaultPlan(seed=5, kernel_failure_rate=0.4, straggler_rate=0.2)
        forward = [plan.task_fault(t, 0) for t in range(100)]
        backward = [plan.task_fault(t, 0) for t in reversed(range(100))]
        backward.reverse()
        for fa, fb in zip(forward, backward):
            assert (fa is None) == (fb is None)
            if fa is not None:
                assert fa.kind == fb.kind

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, kernel_failure_rate=0.5)
        b = FaultPlan(seed=2, kernel_failure_rate=0.5)
        outcomes_a = tuple(a.task_fault(t, 0) is not None for t in range(200))
        outcomes_b = tuple(b.task_fault(t, 0) is not None for t in range(200))
        assert outcomes_a != outcomes_b

    def test_different_attempts_draw_independently(self):
        plan = FaultPlan(seed=9, kernel_failure_rate=0.5)
        outcomes = [
            tuple(plan.task_fault(t, attempt) is not None for t in range(200))
            for attempt in range(3)
        ]
        assert outcomes[0] != outcomes[1] or outcomes[1] != outcomes[2]

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=4, kernel_failure_rate=0.25)
        hits = sum(1 for t in range(4000) if plan.task_fault(t, 0) is not None)
        assert 0.20 < hits / 4000 < 0.30

    def test_straggler_carries_multiplier(self):
        plan = FaultPlan(seed=4, straggler_rate=1.0, straggler_multiplier=6.0)
        fault = plan.task_fault(0, 0)
        assert fault.kind == STRAGGLER
        assert fault.slowdown == 6.0

    def test_task_overrides_beat_rates(self):
        plan = FaultPlan(
            seed=4,
            kernel_failure_rate=1.0,
            task_overrides={(7, 0): TaskFault(STRAGGLER, slowdown=2.0)},
        )
        assert plan.task_fault(7, 0).kind == STRAGGLER
        assert plan.task_fault(8, 0).kind == KERNEL_FAIL

    def test_device_failures_sorted_and_injecting(self):
        plan = FaultPlan(
            device_failures=[DeviceFailure(0.5, 1), DeviceFailure(0.1, 0)]
        )
        assert plan.injects_anything()
        times = [f.time for f in plan.device_failures()]
        assert times == sorted(times)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(kernel_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_rate=-0.1)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        retry = RetryPolicy(max_retries=5, backoff_base=1e-3, backoff_factor=2.0)
        delays = [retry.backoff(a) for a in range(4)]
        assert delays == [1e-3, 2e-3, 4e-3, 8e-3]

    def test_defaults_sane(self):
        retry = RetryPolicy()
        assert retry.max_retries >= 1
        assert retry.backoff(0) > 0
        assert retry.backoff(1) > retry.backoff(0)

    def test_sla_config_holds_pieces(self):
        retry = RetryPolicy(max_retries=1)
        sla = SLAConfig(default_deadline=0.5, max_queue_delay=0.1, retry=retry)
        assert sla.default_deadline == 0.5
        assert sla.max_queue_delay == 0.1
        assert sla.retry is retry

"""Critical-path attribution: synthetic span trees plus the telescoping
property (bucket sum == end-to-end latency) on real chaos runs.

The synthetic cases pin the classification rules one at a time — queue is
uncovered time, a task span splits into gather prefix + compute body, a
padded batch span ends in a padding tail, failed attempts and backoff are
retry, overlaps resolve by priority, and work under a non-final cluster
shadow is routing.  The chaos-run properties then assert the telescoping
invariant for *every* request the analyzer sees, across the CI seed
matrix, for the engine and a 2-replica cluster losing a replica.
"""

import pytest
from tests.chaos_helpers import build_server, chaos_seeds, run_chaos
from tests.cluster_helpers import build_lstm_cluster, run_cluster
from tests.test_trace_determinism import storm_plan, storm_sla

from repro.trace import CriticalPath, TraceRecorder
from repro.trace import events as ev

TOLERANCE = 1e-9


class FixedClock:
    def now(self):
        return 0.0


def analyze(build):
    recorder = TraceRecorder(FixedClock())
    build(recorder.scope())
    return CriticalPath.from_recorder(recorder)


def only(path, request_id):
    matches = [r for r in path.requests if r.request_id == request_id]
    assert len(matches) == 1, f"request {request_id} analyzed {len(matches)}x"
    return matches[0]


# -- synthetic span trees ----------------------------------------------------


def test_task_span_splits_into_queue_gather_compute():
    def build(scope):
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=1, ts=0.0)
        scope.span(
            ev.TASK, ev.COMPUTE, ts=2.0, dur=3.0, device_id=0,
            args={"requests": [1], "gather": 1.0, "migration": 0.0},
        )
        scope.instant(ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=1, ts=5.0)

    r = only(analyze(build), 1)
    assert r.outcome == "finished"
    assert r.latency == pytest.approx(5.0)
    assert r.buckets[ev.QUEUE] == pytest.approx(2.0)
    assert r.buckets[ev.GATHER] == pytest.approx(1.0)
    assert r.buckets[ev.COMPUTE] == pytest.approx(2.0)
    assert abs(r.bucket_sum() - r.latency) <= TOLERANCE


def test_batch_padding_tail_charged_per_request():
    def build(scope):
        for rid in (1, 2):
            scope.instant(
                ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=rid, ts=0.0
            )
        scope.span(
            ev.BATCH, ev.COMPUTE, ts=1.0, dur=4.0, device_id=0,
            args={"requests": [1, 2], "padding": [0.0, 1.5]},
        )
        for rid in (1, 2):
            scope.instant(
                ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=rid, ts=5.0
            )

    path = analyze(build)
    full = only(path, 1)
    padded = only(path, 2)
    assert full.buckets[ev.COMPUTE] == pytest.approx(4.0)
    assert full.buckets[ev.PADDING] == pytest.approx(0.0)
    assert padded.buckets[ev.COMPUTE] == pytest.approx(2.5)
    assert padded.buckets[ev.PADDING] == pytest.approx(1.5)
    for r in (full, padded):
        assert r.buckets[ev.QUEUE] == pytest.approx(1.0)
        assert abs(r.bucket_sum() - r.latency) <= TOLERANCE


def test_failed_attempt_and_backoff_are_retry():
    def build(scope):
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=1, ts=0.0)
        # First attempt fails (cat=retry), backoff window, then the rerun.
        scope.span(
            ev.TASK, ev.RETRY, ts=1.0, dur=2.0, device_id=0,
            args={"requests": [1], "attempt": 0},
        )
        scope.span(
            ev.RETRY_BACKOFF, ev.RETRY, ts=3.0, dur=1.0,
            args={"requests": [1], "attempt": 0},
        )
        scope.span(
            ev.TASK, ev.COMPUTE, ts=4.0, dur=2.0, device_id=0,
            args={"requests": [1], "gather": 0.0, "migration": 0.0},
        )
        scope.instant(ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=1, ts=6.0)

    r = only(analyze(build), 1)
    assert r.buckets[ev.QUEUE] == pytest.approx(1.0)
    assert r.buckets[ev.RETRY] == pytest.approx(3.0)
    assert r.buckets[ev.COMPUTE] == pytest.approx(2.0)
    assert abs(r.bucket_sum() - r.latency) <= TOLERANCE


def test_overlap_resolves_by_priority_compute_wins():
    def build(scope):
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=1, ts=0.0)
        scope.span(
            ev.TASK, ev.COMPUTE, ts=1.0, dur=2.0,
            args={"requests": [1], "gather": 0.0, "migration": 0.0},
        )
        scope.span(ev.RETRY_BACKOFF, ev.RETRY, ts=2.0, dur=2.0,
                   args={"requests": [1]})
        scope.instant(ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=1, ts=4.0)

    r = only(analyze(build), 1)
    # [1,3) compute beats the overlapping retry on [2,3); retry keeps [3,4).
    assert r.buckets[ev.COMPUTE] == pytest.approx(2.0)
    assert r.buckets[ev.RETRY] == pytest.approx(1.0)
    assert r.buckets[ev.QUEUE] == pytest.approx(1.0)


def test_rejected_request_counted_not_analyzed():
    def build(scope):
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=1, ts=0.0)
        scope.instant(
            ev.REQUEST_REJECTED, ev.LIFECYCLE, request_id=1, ts=0.0,
            args={"reason": "shed"},
        )

    path = analyze(build)
    assert path.rejected == 1
    assert path.requests == []
    with pytest.raises(ValueError):
        path.mean_breakdown()


def test_cluster_shadow_work_on_abandoned_replica_is_routing():
    def build(scope):
        # Logical request 2 routed to replica 0 (shadow 5), re-routed to
        # replica 1 (shadow 9) after replica 0 dies mid-flight.
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=2, ts=0.0)
        scope.instant(
            ev.CLUSTER_ROUTE, ev.CLUSTER, request_id=2, ts=0.0,
            args={"logical": 2, "replica": 0, "shadow": 5},
        )
        r0 = scope.recorder.scope(replica_id=0)
        r0.span(
            ev.TASK, ev.COMPUTE, ts=1.0, dur=2.0, device_id=0,
            args={"requests": [5], "gather": 0.0, "migration": 0.0},
        )
        scope.instant(
            ev.CLUSTER_REROUTE, ev.CLUSTER, request_id=2, ts=3.0,
            args={"logical": 2, "replica": 1, "shadow": 9, "from": 0},
        )
        r1 = scope.recorder.scope(replica_id=1)
        r1.span(
            ev.TASK, ev.COMPUTE, ts=4.0, dur=2.0, device_id=0,
            args={"requests": [9], "gather": 0.0, "migration": 0.0},
        )
        r1.instant(ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=9, ts=6.0)
        scope.instant(ev.REQUEST_FINISHED, ev.LIFECYCLE, request_id=2, ts=6.0)

    r = only(analyze(build), 2)
    assert r.hops == 2
    # Replica 0's span is wasted work: the request finished elsewhere.
    assert r.buckets[ev.ROUTING] == pytest.approx(2.0)
    assert r.buckets[ev.COMPUTE] == pytest.approx(2.0)
    assert abs(r.bucket_sum() - r.latency) <= TOLERANCE


def test_bucket_percentile_rejects_unknown_bucket():
    path = CriticalPath([])
    with pytest.raises(ValueError):
        path.bucket_values("wall_time")


# -- telescoping property on real runs ---------------------------------------


def assert_buckets_telescope(path, finished, timed_out, rejected):
    analyzed = {r.request_id for r in path.requests}
    assert analyzed == {r.request_id for r in finished + timed_out}
    assert path.rejected == len(rejected)
    by_id = {r.request_id: r for r in finished + timed_out}
    for breakdown in path.requests:
        request = by_id[breakdown.request_id]
        assert breakdown.terminal == request.terminal_time
        assert abs(breakdown.bucket_sum() - breakdown.latency) <= TOLERANCE, (
            f"request {breakdown.request_id}: buckets sum to "
            f"{breakdown.bucket_sum()!r} but latency is {breakdown.latency!r}"
        )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_bucket_sums_equal_latency_under_chaos(seed):
    server = build_server(storm_plan(seed), storm_sla(), num_gpus=2)
    recorder = TraceRecorder(server.loop)
    server.attach_trace(recorder)
    run_chaos(server)
    path = CriticalPath.from_recorder(recorder)
    assert path.requests, "critical path analyzed no requests"
    assert_buckets_telescope(
        path, server.finished, server.timed_out, server.rejected
    )
    # Chaos makes work for the retry bucket; the table must reflect it.
    assert any(r.buckets[ev.RETRY] > 0 for r in path.requests)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", chaos_seeds())
def test_cluster_bucket_sums_equal_latency_with_replica_loss(seed):
    cluster = build_lstm_cluster(
        num_replicas=2, seed=seed, replica_failures=[(8e-3, 1)]
    )
    recorder = TraceRecorder(cluster.loop)
    cluster.attach_trace(recorder)
    run_cluster(cluster, deadline=50e-3)
    path = CriticalPath.from_recorder(recorder)
    assert path.requests, "critical path analyzed no requests"
    assert_buckets_telescope(
        path, cluster.finished, cluster.timed_out, cluster.rejected
    )
    rerouted = [r for r in path.requests if r.hops >= 2]
    if rerouted:
        # Work stranded on the dead replica shows up as routing time.
        assert any(r.buckets[ev.ROUTING] > 0 for r in rerouted)


def test_no_fault_engine_run_has_empty_retry_and_routing():
    server = build_server(num_gpus=1)
    recorder = TraceRecorder(server.loop)
    server.attach_trace(recorder)
    run_chaos(server, num_requests=150)
    path = CriticalPath.from_recorder(recorder)
    for r in path.requests:
        assert r.buckets[ev.RETRY] == 0.0
        assert r.buckets[ev.ROUTING] == 0.0
        assert abs(r.bucket_sum() - r.latency) <= TOLERANCE
    # format_table renders without error and names every bucket.
    table = path.format_table()
    for bucket in ev.BUCKETS:
        assert bucket in table

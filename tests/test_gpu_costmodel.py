"""Tests for the calibrated cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.costmodel import (
    CostModel,
    LatencyTable,
    cpu_lstm_step_table,
    seq2seq_decoder_step_table,
    tree_internal_step_table,
    tree_leaf_step_table,
    v100_lstm_step_table,
)


class TestLatencyTable:
    def test_anchor_values_are_exact(self):
        table = LatencyTable({1: 100.0, 64: 200.0})
        assert table(1) == pytest.approx(100e-6)
        assert table(64) == pytest.approx(200e-6)

    def test_below_first_anchor_is_flat(self):
        table = LatencyTable({8: 100.0, 64: 200.0})
        assert table(1) == table(8)

    def test_beyond_last_anchor_is_linear(self):
        table = LatencyTable({1: 100.0, 512: 784.0})
        assert table(1024) == pytest.approx(2 * table(512))
        assert table(2048) == pytest.approx(4 * table(512))

    def test_interpolation_is_between_anchors(self):
        table = LatencyTable({64: 185.0, 512: 784.0})
        mid = table(128)
        assert 185e-6 < mid < 784e-6

    def test_monotone_nondecreasing(self):
        table = v100_lstm_step_table()
        times = [table(b) for b in range(1, 5000, 37)]
        assert all(t2 >= t1 - 1e-12 for t1, t2 in zip(times, times[1:]))

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            v100_lstm_step_table()(0)

    def test_empty_anchors_raise(self):
        with pytest.raises(ValueError, match="non-empty"):
            LatencyTable({})

    def test_nonpositive_time_raises(self):
        with pytest.raises(ValueError):
            LatencyTable({1: 0.0})

    def test_scale(self):
        base = v100_lstm_step_table()
        doubled = base.scale(2.0)
        assert doubled(64) == pytest.approx(2 * base(64))

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            v100_lstm_step_table().scale(0.0)


class TestPaperCalibration:
    """Pin the values the paper states explicitly."""

    def test_lstm_batch64_is_185us(self):
        assert v100_lstm_step_table()(64) == pytest.approx(185e-6)

    def test_lstm_batch512_is_784us(self):
        assert v100_lstm_step_table()(512) == pytest.approx(784e-6)

    def test_lstm_doubles_past_512(self):
        table = v100_lstm_step_table()
        assert table(1024) == pytest.approx(2 * table(512), rel=0.01)

    def test_gpu_best_batch_is_512(self):
        sizes = [2 ** i for i in range(1, 13)]
        assert v100_lstm_step_table().best_batch(sizes) == 512

    def test_decoder_best_batch_is_256(self):
        sizes = [2 ** i for i in range(1, 11)]
        assert seq2seq_decoder_step_table().best_batch(sizes) == 256

    def test_decoder_step_costs_about_3x_encoder(self):
        # Decode phase is ~75% of Seq2Seq compute at equal step counts.
        ratio = seq2seq_decoder_step_table()(256) / v100_lstm_step_table()(256)
        assert 2.0 < ratio < 4.0

    def test_cpu_is_much_slower_than_gpu(self):
        assert cpu_lstm_step_table()(512) > 5 * v100_lstm_step_table()(512)

    def test_tree_internal_heavier_than_leaf(self):
        assert tree_internal_step_table()(64) > tree_leaf_step_table()(64)


class TestCostModel:
    def test_register_and_lookup(self):
        model = CostModel()
        model.register("lstm", v100_lstm_step_table())
        assert model.kernel_time("lstm", 64) == pytest.approx(185e-6)

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError, match="no latency table"):
            CostModel().kernel_time("nope", 1)

    def test_task_time_adds_overheads(self):
        model = CostModel(
            per_task_overhead=65e-6, gather_overhead=10e-6, launch_gap=2e-6
        )
        model.register("lstm", v100_lstm_step_table())
        expected = 185e-6 + 65e-6 + 10e-6 + 2e-6 * 11
        assert model.task_time("lstm", 64, num_operators=11) == pytest.approx(expected)

    def test_gather_can_be_skipped(self):
        model = CostModel(per_task_overhead=0.0, gather_overhead=30e-6)
        model.register("lstm", v100_lstm_step_table())
        with_gather = model.task_time("lstm", 64)
        without = model.task_time("lstm", 64, include_gather=False)
        assert with_gather - without == pytest.approx(30e-6)

    def test_default_overhead_matches_paper(self):
        # ~250 us per LSTM step at batch 64 vs 185 us kernel time (§7.3).
        model = CostModel()
        model.register("lstm", v100_lstm_step_table())
        assert model.task_time("lstm", 64) == pytest.approx(250e-6, rel=0.05)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            CostModel(per_task_overhead=-1.0)


@settings(max_examples=100, deadline=None)
@given(batch=st.integers(min_value=1, max_value=10000))
def test_throughput_bounded_by_saturation(batch):
    """items/s can never exceed the table's asymptotic (linear-regime) rate."""
    table = v100_lstm_step_table()
    asymptotic = 512 / table(512)
    assert table.throughput(batch) <= asymptotic * 1.0001


@settings(max_examples=100, deadline=None)
@given(
    b1=st.integers(min_value=1, max_value=4096),
    b2=st.integers(min_value=1, max_value=4096),
)
def test_batching_never_hurts_time_per_item(b1, b2):
    """Larger batches never take less total time, and never more time per
    item — the property that makes batching worthwhile at all."""
    table = v100_lstm_step_table()
    lo, hi = sorted((b1, b2))
    assert table(hi) >= table(lo) - 1e-12
    assert table(hi) / hi <= table(lo) / lo + 1e-12

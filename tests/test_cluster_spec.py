"""ClusterSpec serialisation and cluster construction."""

import json

import pytest

from repro.cluster import ClusterServer, build_cluster, make_router
from repro.cluster.autoscaler import AutoscalerConfig
from repro.registry import ClusterSpec, ServerSpec
from repro.registry.presets import (
    all_cluster_specs,
    lstm_batchmaker_spec,
    lstm_cluster_spec,
    seq2seq_cluster_spec,
)


def test_round_trips_through_json():
    spec = lstm_cluster_spec(
        num_replicas=3,
        router="shortest_queue",
        seed=11,
        autoscaler=AutoscalerConfig(max_replicas=5).to_dict(),
    )
    rebuilt = ClusterSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec


def test_router_params_round_trip():
    spec = lstm_cluster_spec(
        router="length_bucketed", router_params={"bucket_width": 32}
    )
    rebuilt = ClusterSpec.from_dict(spec.to_dict())
    assert rebuilt.router_params == {"bucket_width": 32}
    cluster = build_cluster(rebuilt)
    assert cluster.router.bucket_width == 32


def test_replica_must_be_server_spec():
    with pytest.raises(TypeError):
        ClusterSpec(replica={"kind": "batchmaker"}, num_replicas=2)


def test_num_replicas_validated():
    with pytest.raises(ValueError):
        ClusterSpec(replica=lstm_batchmaker_spec(), num_replicas=0)


def test_unknown_router_rejected_at_build():
    spec = lstm_cluster_spec().replace(router="hash_ring")
    with pytest.raises(KeyError):
        build_cluster(spec)


def test_replace_swaps_fields():
    spec = lstm_cluster_spec(num_replicas=2, router="round_robin")
    other = spec.replace(num_replicas=4, router="least_outstanding")
    assert other.num_replicas == 4
    assert other.router == "least_outstanding"
    assert spec.num_replicas == 2  # original untouched
    assert other.replica == spec.replica


def test_all_cluster_presets_build():
    for name, spec in all_cluster_specs().items():
        cluster = build_cluster(spec)
        assert isinstance(cluster, ClusterServer), name
        assert len(cluster.replicas) == spec.num_replicas
        assert cluster.router.name == spec.router
        assert isinstance(spec.replica, ServerSpec)


def test_cluster_builds_named_replicas():
    cluster = build_cluster(lstm_cluster_spec(num_replicas=3))
    names = [replica.server.name for replica in cluster.replicas]
    assert len(set(names)) == 3  # distinct per-replica names


def test_seq2seq_cluster_builds():
    spec = seq2seq_cluster_spec(num_replicas=2)
    cluster = build_cluster(spec)
    assert len(cluster.replicas) == 2


def test_autoscaler_config_validation():
    with pytest.raises(ValueError):
        AutoscalerConfig(min_replicas=0)
    with pytest.raises(ValueError):
        AutoscalerConfig(min_replicas=4, max_replicas=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(low_watermark=10.0, high_watermark=5.0)
    with pytest.raises(ValueError):
        AutoscalerConfig(alpha=0.0)
    config = AutoscalerConfig(max_replicas=6, warmup=1e-3)
    assert AutoscalerConfig.from_dict(config.to_dict()).to_dict() == config.to_dict()


def test_num_replicas_below_autoscaler_min_rejected():
    spec = lstm_cluster_spec(
        num_replicas=1,
        autoscaler=AutoscalerConfig(min_replicas=2).to_dict(),
    )
    with pytest.raises(ValueError):
        build_cluster(spec)


def test_make_router_rejects_unknown():
    with pytest.raises(KeyError):
        make_router("power_of_two")

"""Faults disabled = bit-identical to the pre-fault engine.

The hard constraint on the whole fault layer: a server with no plan, a
no-op plan, or an SLA that never triggers must produce exactly the same
tasks_submitted, batch histogram and per-request latencies as a plain
server on the same fixed-seed workload.
"""

from tests.chaos_helpers import build_server, run_chaos
from repro.faults import FaultPlan, SLAConfig


def _fingerprint(server):
    return (
        server.tasks_submitted(),
        tuple(sorted(server.manager.scheduler.batch_size_counts.items())),
        tuple(
            (r.request_id, r.arrival_time, r.start_time, r.finish_time)
            for r in sorted(server.finished, key=lambda r: r.request_id)
        ),
    )


def _run(**kwargs):
    server = build_server(num_gpus=2, **kwargs)
    run_chaos(server, rate=4000.0, num_requests=300)
    return _fingerprint(server)


def test_noop_plan_bit_identical_to_no_plan():
    assert _run(fault_plan=FaultPlan(seed=123)) == _run()


def test_inert_sla_bit_identical_to_no_sla():
    # Deadlines far beyond the run horizon and no shedding threshold: the
    # timers arm and disarm but never fire, and admission never rejects.
    assert _run(sla=SLAConfig(default_deadline=1e6)) == _run()


def test_noop_plan_is_nulled_out():
    server = build_server(fault_plan=FaultPlan(seed=123))
    assert server.manager.fault_plan is None, (
        "a plan that can never inject must cost nothing per task"
    )


def test_plan_and_inert_sla_combined_still_identical():
    combined = _run(
        fault_plan=FaultPlan(seed=9), sla=SLAConfig(default_deadline=1e6)
    )
    assert combined == _run()

"""Routing policies: unit behaviour plus whole-workload properties."""

import pytest
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.cluster.replica import Replica
from repro.cluster.routing import (
    ROUTERS,
    make_router,
    payload_length,
    tie_break,
)
from repro.core.request import InferenceRequest
from repro.server import InferenceServer
from repro.sim.events import EventLoop


class _StubServer(InferenceServer):
    """Terminal-list carrier for router unit tests (never runs)."""

    def __init__(self):
        super().__init__(EventLoop(), "stub")


def _replica(replica_id, outstanding=0, delay=0.0):
    replica = Replica(replica_id, _StubServer())
    replica.routed = outstanding
    replica.ewma_latency = 1.0
    if delay:
        replica.ewma_latency = delay / max(outstanding, 1)
    return replica


def _request(request_id, payload=8):
    return InferenceRequest(request_id, payload, 0.0)


def test_round_robin_cycles_in_replica_order():
    router = make_router("round_robin")
    replicas = [_replica(i) for i in range(3)]
    picks = [router.choose(_request(i), replicas).replica_id for i in range(7)]
    assert picks == [0, 1, 2, 0, 1, 2, 0]


def test_least_outstanding_picks_min():
    router = make_router("least_outstanding")
    replicas = [_replica(0, 5), _replica(1, 2), _replica(2, 9)]
    assert router.choose(_request(0), replicas).replica_id == 1


def test_shortest_queue_uses_projected_delay():
    router = make_router("shortest_queue")
    replicas = [_replica(0, 4, delay=8.0), _replica(1, 6, delay=3.0)]
    assert router.choose(_request(0), replicas).replica_id == 1


def test_length_bucketed_groups_similar_lengths():
    router = make_router("length_bucketed", bucket_width=16)
    replicas = [_replica(0), _replica(1)]
    short = router.choose(_request(0, payload=5), replicas)
    also_short = router.choose(_request(1, payload=15), replicas)
    longer = router.choose(_request(2, payload=20), replicas)
    assert short.replica_id == also_short.replica_id
    assert longer.replica_id != short.replica_id


def test_length_bucketed_validates_width():
    with pytest.raises(ValueError):
        make_router("length_bucketed", bucket_width=0)


def test_tie_break_is_pure_and_seed_dependent():
    replicas = [_replica(i) for i in range(4)]
    picks_a = [tie_break(7, rid, replicas).replica_id for rid in range(64)]
    picks_b = [tie_break(7, rid, replicas).replica_id for rid in range(64)]
    picks_c = [tie_break(8, rid, replicas).replica_id for rid in range(64)]
    assert picks_a == picks_b  # pure function of (seed, request_id)
    assert picks_a != picks_c  # seed actually matters
    assert set(picks_a) == {0, 1, 2, 3}  # spreads over all candidates


def test_tie_break_never_uses_iteration_order():
    # The same (seed, request_id) must pick the same *replica id* no matter
    # how the tied list was assembled, as long as it is id-sorted.
    tied = [_replica(i) for i in (0, 1, 2)]
    rebuilt = [_replica(i) for i in (0, 1, 2)]
    for rid in range(32):
        assert (
            tie_break(5, rid, tied).replica_id
            == tie_break(5, rid, rebuilt).replica_id
        )


def test_payload_length_covers_all_shapes():
    class _Tree:
        def num_nodes(self):
            return 13

    assert payload_length(24) == 24
    assert payload_length({"src": 10, "tgt_len": 12}) == 22
    assert payload_length(_Tree()) == 13
    assert payload_length([1, 2, 3]) == 3
    assert payload_length(object()) == 0
    assert payload_length(True) == 0  # bools are not lengths


@pytest.mark.parametrize("router", sorted(ROUTERS))
def test_every_policy_serves_the_whole_workload(router):
    cluster = build_lstm_cluster(num_replicas=3, router=router, seed=7)
    submitted = run_cluster(cluster, rate=5000.0, num_requests=300)
    assert_cluster_invariants(cluster, submitted)
    assert len(cluster.finished) == 300  # no deadline -> everything finishes
    assert cluster.router.decisions == 300
    # Every policy must actually use the cluster (no policy collapses to a
    # single replica on this mixed-length workload).
    used = [replica for replica in cluster.replicas if replica.routed]
    assert len(used) >= 2, f"{router} routed everything to one replica"


@pytest.mark.parametrize("router", sorted(ROUTERS))
def test_same_workload_same_policy_identical_decisions(router):
    def decisions():
        cluster = build_lstm_cluster(num_replicas=3, router=router, seed=9)
        run_cluster(cluster, rate=5000.0, num_requests=250)
        return [replica.routed for replica in cluster.replicas], [
            (r.request_id, r.state.value, r.terminal_time)
            for r in sorted(
                cluster.terminal_requests(), key=lambda r: r.request_id
            )
        ]

    assert decisions() == decisions()

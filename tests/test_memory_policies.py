"""Differential conformance suite for memory-aware serving (DESIGN.md §15).

Same contract shape as ``tests/test_slo_policies.py`` for the lazy kick:

1. **No-spec bit-identity** — a server running the ``memory_aware``
   formation with *no* :class:`~repro.gpu.MemorySpec` is
   outcome-fingerprint-identical to the paper formation, for every
   queue-priority policy and both formation paths.  The policy must be
   perfectly inert until a spec gives it a budget.
2. **Budget safety** — with a spec, on the dynamic-decode Seq2Seq
   workload across every chaos seed: no device ever overcommits
   (``peak_reserved <= capacity``) and the accounting telescopes to zero
   at drain, for both the aware formation and the oblivious baseline.
3. **Pressure responses** — the oblivious baseline OOM-cancels under
   pressure where the aware formation defers/evicts and finishes more;
   the admission threshold sheds arrivals with ``"memory_shed"``.
4. **Registry plumbing** — MemorySpec rides ServerSpec/ClusterSpec
   through the JSON round trip, and a non-batchmaker spec carrying one is
   rejected at build time.
"""

import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.gpu.memory import DEFAULT_STATE_BYTES, MemorySpec
from repro.models import LSTMChainModel, Seq2SeqModel
from repro.policies import MemoryAwareFormation, bundle_from_names
from repro.registry import ServerSpec, build_server
from repro.registry.presets import (
    seq2seq_dynamic_cluster_spec,
    seq2seq_dynamic_spec,
    seq2seq_memory_spec,
)
from repro.workload import Seq2SeqDataset
from repro.workload.arrivals import PoissonArrivals

from .chaos_helpers import (
    assert_invariants,
    chaos_seeds,
    outcome_fingerprint,
    run_chaos,
)


def _lstm_server(formation, priority=None, fast_path=True, memory=None):
    config = BatchingConfig.with_max_batch(32, fast_path=fast_path)
    return BatchMakerServer(
        LSTMChainModel(),
        config=config,
        num_gpus=1,
        memory=memory,
        policies=bundle_from_names(
            config, priority=priority, formation=formation
        ),
    )


def _dynamic_server(formation, memory, num_gpus=2):
    """The fig_memory setting, shrunk: dynamic-decode Seq2Seq under a
    tight per-device state budget."""
    config = BatchingConfig.with_max_batch(
        64,
        per_cell_max={"decoder": 32},
        per_cell_priority={"decoder": 1, "encoder": 0},
    )
    return BatchMakerServer(
        Seq2SeqModel(dynamic=True),
        config=config,
        num_gpus=num_gpus,
        memory=memory,
        policies=(
            bundle_from_names(config, formation=formation)
            if formation is not None
            else None
        ),
    )


def _run_dynamic(server, rate=300.0, num_requests=150, arrival_seed=7):
    # max_length=20 keeps every request's worst-case footprint (1 encoder
    # + 20 decoder states) inside the 24-state test budget: pressure comes
    # from concurrency, not from structurally-impossible requests.
    dataset = Seq2SeqDataset(seed=1, max_length=20, dynamic=True)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(server.submit(dataset.sample_one(), arrival_time=when))
    server.drain()
    return submitted


def _tight_spec(capacity_requests=24, admission_free_requests=None):
    return seq2seq_memory_spec(
        capacity_requests=capacity_requests,
        admission_free_requests=admission_free_requests,
    )


# -- 1. no-spec bit-identity ------------------------------------------------


@pytest.mark.parametrize(
    "priority, fast_path",
    [
        ("paper", True),
        ("paper", False),
        ("flat", True),
        ("longest_queue", True),
    ],
)
def test_memory_aware_inert_without_spec(priority, fast_path):
    """paper vs memory_aware formation, same bundle otherwise, no
    MemorySpec: identical terminal outcomes, timestamps, counters and
    batch sizes."""
    fingerprints = []
    for formation in ("paper", "memory_aware"):
        server = _lstm_server(formation, priority=priority, fast_path=fast_path)
        submitted = run_chaos(server, rate=4000.0, num_requests=400)
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1], (
        f"memory_aware not inert without a MemorySpec (priority={priority}, "
        f"fast_path={fast_path})"
    )
    policy = server.manager.policies.formation
    assert isinstance(policy, MemoryAwareFormation)
    assert not policy.active
    assert policy.deferrals == 0 == policy.evictions
    assert policy.oom_cancels == 0 == policy.sheds


def test_roomy_spec_changes_nothing_on_static_workload():
    """A budget nobody hits: same outcomes as no budget at all (the
    accounting is pure bookkeeping until a reservation is refused)."""
    roomy = MemorySpec(capacity=1 << 30)
    fingerprints = []
    for memory in (None, roomy):
        server = _lstm_server("memory_aware", memory=memory)
        submitted = run_chaos(server, rate=4000.0, num_requests=300)
        assert_invariants(server, submitted)
        fingerprints.append(outcome_fingerprint(server))
    assert fingerprints[0] == fingerprints[1]


# -- 2. budget safety across chaos seeds ------------------------------------


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("formation", ["memory_aware", None])
def test_never_overcommits_and_telescopes_to_zero(formation, seed):
    """Aware formation and oblivious baseline alike: across every chaos
    seed, no device's reservation ever exceeded capacity and every byte
    of state was released by drain."""
    spec = _tight_spec(capacity_requests=24)
    server = _dynamic_server(formation, spec)
    submitted = _run_dynamic(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    for worker in server.manager.workers:
        mem = worker.device.memory
        assert mem is not None
        assert mem.peak_reserved <= mem.capacity, (
            f"device {worker.worker_id} overcommitted: "
            f"{mem.peak_reserved} > {mem.capacity}"
        )
        assert mem.state_reserved == 0, (
            f"device {worker.worker_id} leaked {mem.state_reserved} B of state"
        )
        assert mem.live_requests() == 0
        # Weights stay resident for the device's lifetime.
        assert mem.weight_bytes == sum(spec.weights.values())
    # The workload actually exercised the budget, else this test is vacuous.
    assert any(
        w.device.memory.peak_reserved == w.device.memory.capacity
        for w in server.manager.workers
    ), "budget never reached capacity — tighten the test's spec"


# -- 3. pressure responses --------------------------------------------------


def test_oblivious_baseline_oom_cancels_at_the_wall():
    """The paper formation with a budget merely enforced: reservations
    that would overcommit cancel the request on the spot, with the
    ``"oom"`` reason."""
    server = _dynamic_server(None, _tight_spec(capacity_requests=24))
    submitted = _run_dynamic(server)
    assert_invariants(server, submitted)
    counters = server.fault_counters()
    assert counters.oom_cancellations > 0
    assert counters.memory_evictions == 0  # nothing evicts without the policy
    assert server.timed_out, "no request was OOM-cancelled"
    assert all(r.cancel_reason == "oom" for r in server.timed_out)


def test_aware_formation_outserves_oblivious():
    """Point for point on the same workload, the aware formation finishes
    at least as many requests and cancels strictly fewer."""
    outcomes = {}
    for name, formation in (("oblivious", None), ("aware", "memory_aware")):
        server = _dynamic_server(formation, _tight_spec(capacity_requests=24))
        submitted = _run_dynamic(server)
        assert_invariants(server, submitted)
        outcomes[name] = (len(server.finished), len(server.timed_out))
    assert outcomes["aware"][0] >= outcomes["oblivious"][0], outcomes
    assert outcomes["aware"][1] < outcomes["oblivious"][1], outcomes


def test_aware_formation_defers_and_evicts_under_pressure():
    server = _dynamic_server("memory_aware", _tight_spec(capacity_requests=24))
    submitted = _run_dynamic(server)
    assert_invariants(server, submitted)
    policy = server.manager.policies.formation
    assert policy.active
    assert policy.deferrals > 0, "budget never forced a deferral"
    counters = server.fault_counters()
    assert counters.memory_evictions == policy.evictions


def test_admission_threshold_sheds_arrivals():
    """With ``admission_free_bytes`` set, arrivals while every device is
    below the threshold are rejected at the front door."""
    spec = _tight_spec(capacity_requests=24, admission_free_requests=20)
    server = _dynamic_server("memory_aware", spec)
    submitted = _run_dynamic(server, rate=600.0)
    assert_invariants(server, submitted)
    policy = server.manager.policies.formation
    assert policy.sheds > 0, "threshold never shed an arrival"
    shed = [r for r in server.rejected if r.cancel_reason == "memory_shed"]
    assert len(shed) == policy.sheds


# -- 4. registry plumbing ---------------------------------------------------


def test_server_spec_memory_round_trip():
    spec = seq2seq_dynamic_spec(capacity_requests=24)
    assert spec.memory is not None
    restored = ServerSpec.from_dict(spec.to_dict())
    assert restored.memory == spec.memory
    server = build_server(restored)
    assert server.manager.memory_spec == MemorySpec.from_dict(spec.memory)
    assert isinstance(server.manager.policies.formation, MemoryAwareFormation)
    for worker in server.manager.workers:
        assert worker.device.memory is not None
        assert worker.device.memory.weight_bytes > 0


def test_cluster_spec_memory_round_trip():
    from repro.registry import ClusterSpec

    spec = seq2seq_dynamic_cluster_spec(num_replicas=2)
    assert spec.memory is not None
    restored = ClusterSpec.from_dict(spec.to_dict())
    assert restored.memory == spec.memory
    assert restored.router == "most_free_memory"


def test_memory_on_baseline_engine_rejected():
    """The graph-batching baselines have no per-subgraph state to account;
    a memory spec on one is a config error caught at build time."""
    spec = ServerSpec(
        kind="padded",
        model="lstm",
        memory=MemorySpec(capacity=1 << 20).to_dict(),
    )
    with pytest.raises(ValueError, match="batchmaker"):
        build_server(spec)


def test_runtime_memory_override_wins():
    spec = seq2seq_dynamic_spec(capacity_requests=24)
    override = MemorySpec(capacity=1 << 28)
    server = build_server(spec, memory=override)
    assert server.manager.memory_spec == override


def test_default_state_bytes_matches_preset():
    spec = seq2seq_memory_spec(capacity_requests=48)
    assert spec.state_bytes == DEFAULT_STATE_BYTES
    assert spec.capacity == sum(spec.weights.values()) + 48 * DEFAULT_STATE_BYTES

"""Chrome trace-event export: document shape, track layout, validation.

Synthetic cases pin the exporter's contract — device events land on
``pid 2+replica`` (``pid 1`` for the standalone engine), request-scoped
events fan out to one ``pid 0`` track per *logical* request (cluster
shadow ids mapped back through the routing instants), spans carry
microsecond ``dur``, metadata names every track.  The real-run cases
export an actual traced engine and 2-replica cluster run and push the
files through ``validate_chrome`` — the same check the CI smoke job runs.
"""

import json

import pytest
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.sim.timebase import seconds_to_us
from repro.trace import TraceRecorder, export_chrome, validate_chrome
from repro.trace import events as ev
from repro.trace.chrome import ENGINE_DEVICES_PID, REQUESTS_PID


class FixedClock:
    def now(self):
        return 0.0


def load(path):
    with open(path) as fh:
        return json.load(fh)


def real_events(document):
    """Trace events minus the M-phase track-naming metadata."""
    return [e for e in document["traceEvents"] if e["ph"] != "M"]


# -- synthetic: document shape ----------------------------------------------


def test_span_and_instant_shape(tmp_path):
    recorder = TraceRecorder(FixedClock())
    scope = recorder.scope()
    scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=1, ts=0.5e-3)
    scope.span(
        ev.TASK, ev.COMPUTE, ts=1e-3, dur=2e-3,
        device_id=0, task_id=9, args={"requests": [1], "batch": 1},
    )
    path = tmp_path / "t.json"
    assert export_chrome(recorder, path) > 0
    document = load(path)
    assert document["displayTimeUnit"] == "ms"

    events = real_events(document)
    instants = [e for e in events if e["ph"] == "i"]
    spans = [e for e in events if e["ph"] == "X"]
    assert instants and spans
    assert instants[0]["s"] == "t"
    assert instants[0]["ts"] == pytest.approx(seconds_to_us(0.5e-3))
    # The task span appears on the device track and fans out to the
    # member request's track, with us-converted ts/dur and task lineage.
    for span in spans:
        assert span["ts"] == pytest.approx(seconds_to_us(1e-3))
        assert span["dur"] == pytest.approx(seconds_to_us(2e-3))
        assert span["args"]["task_id"] == 9
    assert {s["pid"] for s in spans} == {ENGINE_DEVICES_PID, REQUESTS_PID}


def test_batch_span_fans_out_to_every_member_request(tmp_path):
    recorder = TraceRecorder(FixedClock())
    scope = recorder.scope()
    for rid in (1, 2):
        scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=rid, ts=0.0)
    scope.span(
        ev.BATCH, ev.COMPUTE, ts=0.0, dur=1e-3, device_id=0,
        args={"requests": [1, 2], "padding": [0.0, 0.0]},
    )
    path = tmp_path / "t.json"
    export_chrome(recorder, path)
    batch_tids = {
        e["tid"]
        for e in real_events(load(path))
        if e["name"] == ev.BATCH and e["pid"] == REQUESTS_PID
    }
    assert batch_tids == {1, 2}


def test_track_naming_metadata(tmp_path):
    recorder = TraceRecorder(FixedClock())
    scope = recorder.scope()
    scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=4, ts=0.0)
    scope.span(ev.TASK, ev.COMPUTE, ts=0.0, dur=1e-3, device_id=2,
               args={"requests": [4]})
    path = tmp_path / "t.json"
    export_chrome(recorder, path)
    meta = [e for e in load(path)["traceEvents"] if e["ph"] == "M"]
    names = {(m["name"], m["pid"], m["args"]["name"]) for m in meta}
    assert ("process_name", REQUESTS_PID, "requests") in names
    assert ("process_name", ENGINE_DEVICES_PID, "engine devices") in names
    assert ("thread_name", ENGINE_DEVICES_PID, "gpu2") in names
    assert ("thread_name", REQUESTS_PID, "request 4") in names


def test_sampled_out_requests_excluded_from_fanout(tmp_path):
    # sample_every=2 drops odd request ids at record time; the exporter
    # must apply the same rule when fanning a batched span out to member
    # tracks, so no half-traced request track appears.
    recorder = TraceRecorder(FixedClock(), sample_every=2)
    scope = recorder.scope()
    scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=4, ts=0.0)
    scope.span(ev.TASK, ev.COMPUTE, ts=0.0, dur=1e-3, device_id=0,
               args={"requests": [3, 4]})
    path = tmp_path / "t.json"
    export_chrome(recorder, path)
    request_tids = {
        e["tid"] for e in real_events(load(path)) if e["pid"] == REQUESTS_PID
    }
    assert request_tids == {4}


def test_cluster_tracks_map_shadows_to_logical_ids(tmp_path):
    recorder = TraceRecorder(FixedClock())
    cluster_scope = recorder.scope()
    replica_scope = recorder.scope(replica_id=1)
    # Logical request 7 routed to replica 1 as shadow 0.
    cluster_scope.instant(ev.REQUEST_ARRIVAL, ev.LIFECYCLE, request_id=7, ts=0.0)
    cluster_scope.instant(
        ev.CLUSTER_ROUTE, ev.CLUSTER, request_id=7,
        args={"logical": 7, "replica": 1, "shadow": 0}, ts=0.0,
    )
    replica_scope.span(ev.TASK, ev.COMPUTE, ts=0.0, dur=1e-3, device_id=0,
                       args={"requests": [0]})
    path = tmp_path / "t.json"
    export_chrome(recorder, path)
    events = real_events(load(path))
    # Replica 1's device work lands on its own process (pid 2 + 1)...
    task_pids = {e["pid"] for e in events if e["name"] == ev.TASK}
    assert 2 + 1 in task_pids
    # ...and its request-track copy is keyed by the *logical* id.
    request_tids = {
        e["tid"]
        for e in events
        if e["pid"] == REQUESTS_PID and e["name"] == ev.TASK
    }
    assert request_tids == {7}


# -- validate_chrome error paths --------------------------------------------


def write_document(tmp_path, document):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(document))
    return path


def test_validate_rejects_non_trace_documents(tmp_path):
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome(write_document(tmp_path, {"events": []}))
    with pytest.raises(ValueError, match="non-empty"):
        validate_chrome(write_document(tmp_path, {"traceEvents": []}))


def test_validate_rejects_malformed_events(tmp_path):
    base = {"name": "x", "cat": "sched", "ph": "i", "ts": 0, "pid": 1,
            "tid": 0, "s": "t"}
    with pytest.raises(ValueError, match="missing required field 'pid'"):
        doc = dict(base)
        del doc["pid"]
        validate_chrome(write_document(tmp_path, {"traceEvents": [doc]}))
    with pytest.raises(ValueError, match="missing 'dur'"):
        doc = dict(base, ph="X")
        validate_chrome(write_document(tmp_path, {"traceEvents": [doc]}))
    with pytest.raises(ValueError, match="unsupported phase"):
        doc = dict(base, ph="B")
        validate_chrome(write_document(tmp_path, {"traceEvents": [doc]}))


def test_validate_requires_both_track_kinds(tmp_path):
    device_only = {"name": "x", "cat": "sched", "ph": "i", "ts": 0,
                   "pid": 1, "tid": 0, "s": "t"}
    with pytest.raises(ValueError, match="request track"):
        validate_chrome(
            write_document(tmp_path, {"traceEvents": [device_only]})
        )
    request_only = dict(device_only, pid=REQUESTS_PID)
    with pytest.raises(ValueError, match="device track"):
        validate_chrome(
            write_document(tmp_path, {"traceEvents": [request_only]})
        )


# -- real runs through the smoke-job validator -------------------------------


def test_engine_run_exports_valid_trace(tmp_path):
    from repro.trace.smoke import run_smoke

    counters = run_smoke(tmp_path / "engine.json", num_requests=200)
    assert counters["device_events"] > 0
    assert counters["request_events"] > 0
    assert counters["spans"] > 0 and counters["instants"] > 0
    assert counters["analyzed_requests"] > 0


def test_cluster_run_exports_valid_trace(tmp_path):
    cluster = build_lstm_cluster(num_replicas=2, seed=3)
    recorder = TraceRecorder(cluster.loop)
    cluster.attach_trace(recorder)
    submitted = run_cluster(cluster, num_requests=150)
    assert_cluster_invariants(cluster, submitted)

    path = tmp_path / "cluster.json"
    recorder.export_chrome(path)
    counters = validate_chrome(path)
    assert counters["device_events"] > 0 and counters["request_events"] > 0
    events = real_events(load(path))
    # Both replicas' device streams are present as their own processes...
    device_pids = {e["pid"] for e in events if e["pid"] != REQUESTS_PID}
    assert {2, 3} <= device_pids
    # ...and request tracks are keyed by logical ids, never shadow ids.
    logical_ids = {r.request_id for r in submitted}
    request_tids = {e["tid"] for e in events if e["pid"] == REQUESTS_PID}
    assert request_tids <= logical_ids

"""Property-style tests for the incremental ready-count accounting.

After *any* interleaving of subgraph releases, ``take_ready`` /
``mark_submitted`` (scheduling), and ``task_done`` / completion propagation
on LSTM-chain, Seq2Seq and TreeLSTM partitions, two invariants must hold
for every cell-type queue:

1. the incremental counter equals a brute-force recount of
   ``ready_count()`` over the queued subgraphs, and
2. the indexed (heap-based) ``FormBatchedTask`` plans exactly what the
   brute-force FIFO scan plans, for every worker, without mutating state.
"""

import random

import pytest

from repro.core.config import BatchingConfig
from repro.core.request import InferenceRequest
from repro.core.request_processor import RequestProcessor
from repro.core.scheduler import Scheduler
from repro.models import LSTMChainModel, Seq2SeqModel, TreeLSTMModel
from repro.models.tree_lstm import TreeNodeSpec, TreePayload


class FakeWorker:
    def __init__(self, worker_id):
        self.worker_id = worker_id


def _payload(model, rng):
    if isinstance(model, LSTMChainModel):
        return rng.randint(1, 12)
    if isinstance(model, Seq2SeqModel):
        return {"src": rng.randint(1, 8), "tgt_len": rng.randint(1, 8)}
    return TreePayload(TreeNodeSpec.complete(2 ** rng.randint(0, 3)))


class Harness:
    """Scheduler + request processor, no workers/event loop: the test picks
    which pending task completes next, in any order."""

    def __init__(self, model, config, num_workers):
        self.pending = []
        self.scheduler = Scheduler(
            config, submit=lambda task, worker: self.pending.append(task)
        )
        for cell_type in model.cell_types():
            self.scheduler.register_cell_type(cell_type)
        self.processor = RequestProcessor(
            model,
            on_release=self.scheduler.add_subgraph,
            on_finished=lambda request: None,
        )
        self.workers = [FakeWorker(i) for i in range(num_workers)]
        self._next_request_id = 0

    def add_request(self, payload):
        request = InferenceRequest(self._next_request_id, payload, 0.0)
        self._next_request_id += 1
        self.processor.add_request(request)

    def schedule(self, rng):
        self.scheduler.schedule(rng.choice(self.workers))

    def complete_one(self, rng):
        if not self.pending:
            return
        task = self.pending.pop(rng.randrange(len(self.pending)))
        self.scheduler.task_completed(task)
        self.processor.handle_task_completion(task, now=0.0)

    # -- invariants ---------------------------------------------------------

    def assert_invariants(self):
        total = 0
        for queue in self.scheduler._queue_list:
            recount = queue.recount_ready_nodes()
            assert queue.num_ready_nodes() == recount, (
                f"{queue.cell_type.name}: counter {queue.num_ready_nodes()} "
                f"!= brute-force recount {recount}"
            )
            assert queue._ready_total == recount
            total += recount
            for worker in self.workers:
                fast = self.scheduler._form_batched_task(queue, worker)
                reference = self.scheduler._form_batched_task_reference(
                    queue, worker
                )
                assert [(sg.subgraph_id, n) for sg, n in fast] == [
                    (sg.subgraph_id, n) for sg, n in reference
                ], f"{queue.cell_type.name} plan mismatch for worker {worker.worker_id}"
                # Planning must be side-effect free.
                assert queue._ready_total == recount
                assert queue.recount_ready_nodes() == recount
        assert self.scheduler.total_ready_nodes() == total


MODELS = [
    ("lstm_chain", LSTMChainModel, 4),
    ("seq2seq", Seq2SeqModel, 16),
    ("tree_lstm", TreeLSTMModel, 4),
]


@pytest.mark.parametrize("name,model_cls,max_batch", MODELS)
@pytest.mark.parametrize("pinning", [True, False])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ready_count_invariants_under_random_interleavings(
    name, model_cls, max_batch, pinning, seed
):
    rng = random.Random(hash((name, pinning, seed)) & 0xFFFFFFFF)
    model = model_cls()
    config = BatchingConfig.with_max_batch(
        max_batch, max_tasks_to_submit=2, pinning=pinning
    )
    harness = Harness(model, config, num_workers=3)

    for step in range(120):
        roll = rng.random()
        if roll < 0.35:
            harness.add_request(_payload(model, rng))
        elif roll < 0.70:
            harness.schedule(rng)
        else:
            harness.complete_one(rng)
        harness.assert_invariants()

    # Drain: complete everything, scheduling along the way; the counters
    # must hold all the way down to an empty system.
    guard = 0
    while harness.pending or harness.scheduler.total_ready_nodes() > 0:
        harness.schedule(rng)
        harness.complete_one(rng)
        harness.assert_invariants()
        guard += 1
        assert guard < 5000, "drain did not converge"
    for queue in harness.scheduler._queue_list:
        assert queue.num_ready_nodes() == 0


def test_take_ready_notifies_owner_exactly_once():
    """Unit check on the delta protocol: direct take/mark cycles on a chain
    subgraph keep its queue's counter exact."""
    from repro.core.cell_graph import CellGraph
    from repro.core.subgraph import partition_into_subgraphs

    model = LSTMChainModel()
    config = BatchingConfig.with_max_batch(4)
    scheduler = Scheduler(config, submit=lambda task, worker: None)
    for cell_type in model.cell_types():
        scheduler.register_cell_type(cell_type)

    graph = CellGraph()
    model.unfold(graph, 6)
    request = InferenceRequest(0, 6, 0.0)
    request.graph = graph
    (sg,) = partition_into_subgraphs(graph, request, start_id=0)
    request.subgraphs = {sg.subgraph_id: sg}
    scheduler.add_subgraph(sg)
    queue = scheduler.queue_for(sg.cell_type_name)

    assert queue.num_ready_nodes() == 1
    taken = sg.take_ready(1)
    assert queue.num_ready_nodes() == 0
    sg.mark_submitted(taken)  # optimistic: successor becomes ready
    assert queue.num_ready_nodes() == 1 == queue.recount_ready_nodes()

"""Tests for Subgraph scheduling state: readiness, pinning, release."""

import pytest

from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.core.subgraph import partition_into_subgraphs
from repro.models import LSTMChainModel, Seq2SeqModel


def chain_subgraph(length=5):
    model = LSTMChainModel()
    graph = CellGraph()
    model.unfold(graph, length)
    request = InferenceRequest(0, length, 0.0)
    request.graph = graph
    (sg,) = partition_into_subgraphs(graph, request)
    request.subgraphs = {sg.subgraph_id: sg}
    return sg


class TestOptimisticReadiness:
    def test_chain_exposes_one_ready_node_at_a_time(self):
        sg = chain_subgraph(3)
        assert sg.ready_count() == 1
        taken = sg.take_ready(10)
        assert taken == [0]
        assert sg.ready_count() == 0
        sg.mark_submitted(taken)
        assert sg.ready_count() == 1  # node 1 became ready optimistically

    def test_take_ready_respects_limit(self):
        sg = chain_subgraph(3)
        assert sg.take_ready(0) == []
        assert sg.take_ready(1) == [0]

    def test_exhausted_after_all_submitted(self):
        sg = chain_subgraph(2)
        for _ in range(2):
            nodes = sg.take_ready(1)
            sg.mark_submitted(nodes)
        assert sg.exhausted()

    def test_oversubmission_raises(self):
        sg = chain_subgraph(1)
        sg.mark_submitted(sg.take_ready(1))
        with pytest.raises(RuntimeError, match="oversubmitted"):
            sg.mark_submitted([0])


class TestNonOptimisticReadiness:
    def test_completion_drives_readiness(self):
        sg = chain_subgraph(3)
        sg.optimistic = False
        nodes = sg.take_ready(1)
        sg.mark_submitted(nodes)
        assert sg.ready_count() == 0  # submission alone does not advance
        sg.mark_completed_internal(nodes)
        assert sg.ready_count() == 1

    def test_mark_completed_internal_requires_non_optimistic(self):
        sg = chain_subgraph(2)
        with pytest.raises(RuntimeError, match="optimistic"):
            sg.mark_completed_internal([0])


class TestPinning:
    def test_pin_unpin_cycle(self):
        sg = chain_subgraph(3)
        sg.pin(worker_id=1)
        sg.pin(worker_id=1)
        assert sg.pinned == 1
        assert sg.inflight == 2
        sg.task_done(1)
        assert sg.pinned == 1
        sg.task_done(1)
        assert sg.pinned is None  # unpinned when no tasks in flight

    def test_conflicting_pin_raises(self):
        sg = chain_subgraph(2)
        sg.pin(worker_id=0)
        with pytest.raises(RuntimeError, match="already pinned"):
            sg.pin(worker_id=1)

    def test_completion_underflow_raises(self):
        sg = chain_subgraph(1)
        sg.pin(0)
        with pytest.raises(RuntimeError, match="underflow"):
            sg.task_done(5)


class TestExternalRelease:
    def _seq2seq_subgraphs(self):
        model = Seq2SeqModel()
        graph = CellGraph()
        model.unfold(graph, {"src": 3, "tgt_len": 2})
        request = InferenceRequest(0, None, 0.0)
        request.graph = graph
        subgraphs = partition_into_subgraphs(graph, request)
        request.subgraphs = {sg.subgraph_id: sg for sg in subgraphs}
        return graph, {sg.cell_type_name: sg for sg in subgraphs}

    def test_satisfy_external_releases_decoder(self):
        graph, by_type = self._seq2seq_subgraphs()
        decoder = by_type["decoder"]
        last_encoder = max(by_type["encoder"].node_ids)
        first_decoder = min(decoder.node_ids)
        became_releasable = decoder.satisfy_external(last_encoder, first_decoder)
        assert became_releasable
        assert decoder.is_releasable()

    def test_untracked_edge_is_ignored(self):
        graph, by_type = self._seq2seq_subgraphs()
        decoder = by_type["decoder"]
        decoder.satisfy_external(999, 998)  # unknown edge: no-op
        assert decoder.external_pending == 1

    def test_released_flag_blocks_releasable(self):
        graph, by_type = self._seq2seq_subgraphs()
        encoder = by_type["encoder"]
        assert encoder.is_releasable()
        encoder.released = True
        assert not encoder.is_releasable()

"""Unit tests for Worker, Manager and the BatchMakerServer facade."""

import numpy as np
import pytest

from repro.core import BatchMakerServer, BatchingConfig
from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.core.subgraph import partition_into_subgraphs
from repro.core.task import BatchedTask
from repro.core.worker import Worker
from repro.gpu.costmodel import CostModel, LatencyTable
from repro.gpu.device import GPUDevice
from repro.models import GRUChainModel, LSTMChainModel
from repro.sim.events import EventLoop


def make_task(model, length=1):
    graph = CellGraph()
    model.unfold(graph, length)
    request = InferenceRequest(0, length, 0.0)
    request.graph = graph
    (sg,) = partition_into_subgraphs(graph, request)
    request.subgraphs = {sg.subgraph_id: sg}
    node = graph.node(0)
    sg.take_ready(1)
    sg.mark_submitted([0])
    return BatchedTask(0, node.cell_type, [(sg, node)])


def make_worker(loop, completions, per_task_overhead=0.0):
    cost = CostModel(per_task_overhead=per_task_overhead, gather_overhead=0.0)
    cost.register("lstm", LatencyTable({1: 1e6, 512: 1e6}))  # 1 s per step
    device = GPUDevice(loop, 0)
    return Worker(
        worker_id=0,
        device=device,
        cost_model=cost,
        loop=loop,
        on_task_complete=lambda w, t: completions.append((w, t)),
    )


class TestWorker:
    def test_submit_records_timing_and_completes(self):
        loop = EventLoop()
        completions = []
        worker = make_worker(loop, completions)
        task = make_task(LSTMChainModel())
        worker.submit(task)
        assert worker.outstanding == 1
        assert not worker.is_idle()
        loop.run()
        assert completions and completions[0][1] is task
        assert task.submit_time == 0.0
        assert task.finish_time == pytest.approx(1.0)
        assert task.duration == pytest.approx(1.0)
        assert worker.is_idle()
        assert worker.tasks_executed == 1
        assert worker.busy_time == pytest.approx(1.0)

    def test_double_submit_raises(self):
        loop = EventLoop()
        worker = make_worker(loop, [])
        task = make_task(LSTMChainModel())
        worker.submit(task)
        with pytest.raises(RuntimeError, match="twice"):
            worker.submit(task)

    def test_extra_cost_extends_duration(self):
        loop = EventLoop()
        completions = []
        worker = make_worker(loop, completions)
        task = make_task(LSTMChainModel())
        worker.submit(task, extra_cost=0.5)
        loop.run()
        assert task.finish_time == pytest.approx(1.5)

    def test_overhead_added(self):
        loop = EventLoop()
        completions = []
        worker = make_worker(loop, completions, per_task_overhead=0.25)
        task = make_task(LSTMChainModel())
        worker.submit(task)
        loop.run()
        assert task.duration == pytest.approx(1.25)


class TestManagerWiring:
    def test_invalid_worker_count_raises(self):
        with pytest.raises(ValueError, match="at least one"):
            BatchMakerServer(LSTMChainModel(), num_gpus=0)

    def test_on_request_finished_callback(self):
        server = BatchMakerServer(LSTMChainModel())
        server.submit(3)
        server.drain()
        assert len(server.finished) == 1
        assert server.finished[0].state.value == "finished"

    def test_migration_cost_charged_without_pinning(self):
        """With pinning disabled on multiple GPUs, at least some subgraph
        hops pay a cross-device copy (extra task duration)."""
        config = BatchingConfig.with_max_batch(
            2, pinning=False, max_tasks_to_submit=1
        )
        server = BatchMakerServer(LSTMChainModel(), config=config, num_gpus=2)
        for i in range(8):
            server.submit(12, arrival_time=i * 1e-5)
        server.drain()
        hops = set()
        for request in server.finished:
            for sg in request.subgraphs.values():
                hops.add(sg.last_worker)
        assert hops <= {0, 1}

    def test_scheduler_and_processor_consistency(self):
        server = BatchMakerServer(LSTMChainModel())
        lengths = [5, 9, 2]
        for i, n in enumerate(lengths):
            server.submit(n, arrival_time=i * 1e-4)
        server.drain()
        assert server.manager.processor.total_nodes_processed == sum(lengths)
        total_batched = sum(
            b * c
            for b, c in server.manager.scheduler.batch_size_counts.items()
        )
        assert total_batched == sum(lengths)


class TestGRUModelServing:
    def test_gru_chain_serves_and_matches_reference(self):
        model = GRUChainModel(
            hidden_dim=12, vocab_size=30, embed_dim=6, real=True, seed=2
        )
        server = BatchMakerServer(
            model, config=BatchingConfig.with_max_batch(4), real_compute=True
        )
        rng = np.random.default_rng(0)
        payloads = [
            [int(t) for t in rng.integers(0, 30, size=rng.integers(1, 9))]
            for _ in range(6)
        ]
        requests = [
            server.submit(p, arrival_time=i * 1e-4)
            for i, p in enumerate(payloads)
        ]
        server.drain()
        for request, payload in zip(requests, payloads):
            ref = model.reference_forward(payload)[0]
            np.testing.assert_allclose(
                np.asarray(request.result[0]), np.asarray(ref), atol=1e-6
            )

    def test_gru_sim_mode(self):
        server = BatchMakerServer(GRUChainModel())
        server.submit(10)
        server.drain()
        assert len(server.finished) == 1

    def test_gru_phases_and_cost(self):
        model = GRUChainModel()
        assert model.phases(7) == [("gru", 7)]
        assert model.default_cost_model().kernel_time("gru", 64) < 185e-6

"""Tracing must never perturb the simulation: bit-identity gates.

With the recorder attached, outcome fingerprints (exact terminal
timestamps, retry counts, counters, batch-size histogram) must be
bit-identical to a tracing-off run — the recorder only appends to its
ring buffer and reads the sim clock; it never schedules events or
consults wall time.  Exercised under full chaos (kernel failures,
stragglers, a device loss, SLA deadlines and retries) across the CI
seed matrix, for both the standalone engine and a 2-replica cluster
losing a replica mid-run.
"""

import pytest
from tests.chaos_helpers import (
    assert_invariants,
    build_server,
    chaos_seeds,
    outcome_fingerprint,
    run_chaos,
)
from tests.cluster_helpers import (
    assert_cluster_invariants,
    build_lstm_cluster,
    run_cluster,
)

from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig
from repro.trace import TraceRecorder


def storm_plan(seed):
    return FaultPlan(
        seed,
        kernel_failure_rate=0.08,
        straggler_rate=0.1,
        straggler_multiplier=5.0,
        device_failures=[DeviceFailure(10e-3, 1)],
    )


def storm_sla():
    return SLAConfig(
        default_deadline=40e-3, retry=RetryPolicy(max_retries=2)
    )


def run_engine(seed, traced, sample_every=1):
    server = build_server(storm_plan(seed), storm_sla(), num_gpus=2)
    recorder = None
    if traced:
        recorder = TraceRecorder(server.loop, sample_every=sample_every)
        server.attach_trace(recorder)
    submitted = run_chaos(server)
    assert_invariants(server, submitted)
    return server, recorder


@pytest.mark.chaos
@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_traced_run_bit_identical_to_untraced(seed):
    untraced, _ = run_engine(seed, traced=False)
    traced, recorder = run_engine(seed, traced=True)
    assert outcome_fingerprint(traced) == outcome_fingerprint(untraced)
    # The gate is meaningful only if the recorder actually saw the run.
    assert len(recorder) > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", chaos_seeds())
def test_engine_sampled_tracing_still_bit_identical(seed):
    # Sampling drops events at record time; it must not change *when*
    # instrumented code runs, so fingerprints stay identical too.
    untraced, _ = run_engine(seed, traced=False)
    sampled, recorder = run_engine(seed, traced=True, sample_every=3)
    assert outcome_fingerprint(sampled) == outcome_fingerprint(untraced)
    assert len(recorder) > 0


def cluster_fingerprint(cluster):
    """Cluster analogue of ``outcome_fingerprint``: logical outcomes with
    exact timestamps, cluster counters, and total engine work."""
    statuses = tuple(
        (r.request_id, r.state.value, r.terminal_time)
        for r in sorted(
            cluster.finished + cluster.timed_out + cluster.rejected,
            key=lambda r: r.request_id,
        )
    )
    return (
        statuses,
        tuple(sorted(cluster.cluster_counters.as_dict().items())),
        cluster.tasks_submitted(),
    )


def run_two_replica(seed, traced):
    cluster = build_lstm_cluster(
        num_replicas=2, seed=seed, replica_failures=[(8e-3, 1)]
    )
    recorder = None
    if traced:
        recorder = TraceRecorder(cluster.loop)
        cluster.attach_trace(recorder)
    submitted = run_cluster(cluster, deadline=50e-3)
    assert_cluster_invariants(cluster, submitted)
    return cluster, recorder


@pytest.mark.chaos
@pytest.mark.parametrize("seed", chaos_seeds())
def test_cluster_traced_run_bit_identical_to_untraced(seed):
    untraced, _ = run_two_replica(seed, traced=False)
    traced, recorder = run_two_replica(seed, traced=True)
    assert cluster_fingerprint(traced) == cluster_fingerprint(untraced)
    assert len(recorder) > 0
    # Replica lineage made it into the buffer: events from both replicas.
    replica_ids = {e.replica_id for e in recorder}
    assert {0, 1} <= replica_ids


def test_attach_then_detach_restores_untraced_behaviour():
    baseline, _ = run_engine(7, traced=False)
    server = build_server(storm_plan(7), storm_sla(), num_gpus=2)
    server.attach_trace(TraceRecorder(server.loop))
    server.attach_trace(None)  # detach before any traffic
    submitted = run_chaos(server)
    assert_invariants(server, submitted)
    assert outcome_fingerprint(server) == outcome_fingerprint(baseline)
    assert server.trace_recorder is None

"""Tests for the diurnal (sinusoidally modulated MMPP) arrival process and
the arrival-process registry."""

import numpy as np
import pytest

from repro.registry.presets import lstm_batchmaker_spec
from repro.registry import build_server
from repro.workload import LoadGenerator, SequenceDataset
from repro.workload.arrivals import (
    ARRIVALS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)


class TestDiurnalArrivals:
    def test_mean_rate_preserved(self):
        """Thinning by a function whose mean over a period is 1/(1+a)
        against a base at rate*(1+a): the long-run average rate is the
        nominal rate by construction.  Property-tested over whole periods."""
        arrivals = DiurnalArrivals(rate=2000, seed=0, period=1.0)
        times = arrivals.times(40000)
        assert times[-1] == pytest.approx(20.0, rel=0.15)

    def test_times_strictly_increasing(self):
        times = DiurnalArrivals(rate=500, seed=1, period=0.5).times(1000)
        assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))

    def test_seeded_determinism(self):
        a = DiurnalArrivals(rate=1000, seed=9, period=0.5).times(200)
        b = DiurnalArrivals(rate=1000, seed=9, period=0.5).times(200)
        assert a == b
        c = DiurnalArrivals(rate=1000, seed=10, period=0.5).times(200)
        assert a != c

    def test_prefix_determinism(self):
        """Asking for more arrivals extends the sequence, never rewrites
        it: times(n) is a prefix of times(2n) (the candidate stream and
        the thinning draws are both prefix-stable)."""
        arrivals = DiurnalArrivals(rate=1000, seed=4, period=0.5)
        short = arrivals.times(100)
        long = DiurnalArrivals(rate=1000, seed=4, period=0.5).times(200)
        assert long[:100] == short

    def test_zero_amplitude_degenerates_to_mmpp(self):
        """amplitude=0: the keep probability is identically 1 and the base
        runs at the nominal rate — bit-identical to plain BurstyArrivals."""
        diurnal = DiurnalArrivals(rate=800, seed=3, amplitude=0.0).times(500)
        bursty = BurstyArrivals(rate=800, seed=3).times(500)
        assert diurnal == bursty

    def test_peak_trough_modulation_visible(self):
        """Arrival counts around the sinusoid's peak must clearly exceed
        counts around its trough (that's the diurnal swing)."""
        period = 1.0
        arrivals = DiurnalArrivals(
            rate=2000, seed=5, period=period, amplitude=0.8
        )
        times = np.asarray(arrivals.times(30000))
        phase = (times % period) / period
        # Peak at phase 0.25 (sin max), trough at 0.75 (sin min).
        peak = np.sum((phase > 0.15) & (phase < 0.35))
        trough = np.sum((phase > 0.65) & (phase < 0.85))
        assert peak > 3 * trough

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=100, period=0.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=100, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=100, amplitude=-0.1)
        with pytest.raises(ValueError, match="calm-state"):
            # Bad MMPP knobs surface eagerly, not at first times() call.
            DiurnalArrivals(rate=100, burst_factor=10.0, burst_fraction=0.5)
        with pytest.raises(ValueError):
            DiurnalArrivals(rate=100).times(-1)
        assert DiurnalArrivals(rate=100).times(0) == []


class TestArrivalsRegistry:
    def test_registry_contents(self):
        assert ARRIVALS == {
            "poisson": PoissonArrivals,
            "bursty": BurstyArrivals,
            "diurnal": DiurnalArrivals,
        }

    def test_make_arrivals_builds_and_forwards_params(self):
        arrivals = make_arrivals("diurnal", 500.0, seed=2, period=0.25)
        assert isinstance(arrivals, DiurnalArrivals)
        assert arrivals.period == 0.25
        assert make_arrivals("poisson", 100.0).rate == 100.0

    def test_make_arrivals_unknown_name(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrivals("lunar", 100.0)

    def test_loadgen_validates_arrivals_eagerly(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            LoadGenerator(rate=100.0, num_requests=10, arrivals="lunar")
        with pytest.raises(ValueError):
            LoadGenerator(
                rate=100.0,
                num_requests=10,
                arrivals="diurnal",
                arrival_params={"amplitude": 2.0},
            )

    def test_loadgen_serves_diurnal_end_to_end(self):
        server = build_server(lstm_batchmaker_spec(max_batch=64))
        generator = LoadGenerator(
            rate=2000.0,
            num_requests=300,
            seed=7,
            arrivals="diurnal",
            arrival_params={"period": 0.25, "amplitude": 0.6},
        )
        result = generator.run(server, SequenceDataset(seed=1))
        assert len(server.finished) == 300
        assert result.summary.p99_ms > 0

    def test_loadgen_plan_matches_process(self):
        """The plan's arrival times are exactly the named process's — the
        sim/live parity contract extends to the new process."""
        generator = LoadGenerator(
            rate=1000.0,
            num_requests=50,
            seed=11,
            arrivals="diurnal",
            arrival_params={"period": 0.5},
        )
        plan = generator.plan(SequenceDataset(seed=1))
        expected = DiurnalArrivals(1000.0, seed=11, period=0.5).times(50)
        assert [when for when, _ in plan] == expected

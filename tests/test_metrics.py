"""Tests for the metrics package."""

import pytest

from repro.core.request import InferenceRequest
from repro.metrics import LatencyStats, RunSummary, cdf_points, format_table, percentile
from repro.metrics.summary import SweepPoint


def finished_request(rid, arrival, start, finish):
    request = InferenceRequest(rid, None, arrival)
    request.mark_started(start)
    request.mark_finished(finish)
    return request


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_bounds(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 150)


class TestCdf:
    def test_points_are_sorted_and_end_at_one(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert [v for v, _ in points] == [1.0, 2.0, 3.0]
        assert points[-1][1] == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestLatencyStats:
    def test_decomposition_recorded(self):
        stats = LatencyStats()
        stats.add_request(finished_request(0, arrival=0.0, start=1.0, finish=3.0))
        assert stats.latencies == [3.0]
        assert stats.queuing == [1.0]
        assert stats.computation == [2.0]

    def test_unfinished_request_raises(self):
        request = InferenceRequest(0, None, 0.0)
        with pytest.raises(ValueError, match="not finished"):
            LatencyStats().add_request(request)

    def test_extend_and_count(self):
        requests = [
            finished_request(i, 0.0, 0.5, 1.0 + i) for i in range(5)
        ]
        stats = LatencyStats().extend(requests)
        assert stats.count() == 5

    def test_series_selection(self):
        stats = LatencyStats().extend(
            [finished_request(0, 0.0, 1.0, 4.0)]
        )
        assert stats.p(50, "queuing") == 1.0
        assert stats.p(50, "computation") == 3.0
        assert stats.mean("latency") == 4.0

    def test_unknown_series_raises(self):
        stats = LatencyStats().extend([finished_request(0, 0.0, 1.0, 2.0)])
        with pytest.raises(ValueError, match="unknown series"):
            stats.p(50, "bananas")

    def test_cdf_series(self):
        stats = LatencyStats().extend(
            [finished_request(i, 0.0, 0.0, float(i + 1)) for i in range(4)]
        )
        points = stats.cdf("latency")
        assert points[0] == (1.0, 0.25)


class TestSummary:
    def make_summary(self):
        stats = LatencyStats().extend(
            [finished_request(i, 0.0, 0.001, 0.002 + 0.001 * i) for i in range(10)]
        )
        return RunSummary("Sys", offered_rate=100.0, throughput=95.0, stats=stats)

    def test_percentile_properties_in_ms(self):
        summary = self.make_summary()
        assert summary.p50_ms == pytest.approx(1e3 * summary.stats.p(50))
        assert summary.p90_ms >= summary.p50_ms
        assert summary.p99_ms >= summary.p90_ms

    def test_row_format(self):
        row = self.make_summary().row()
        assert row[0] == "Sys"
        assert row[1] == "100"

    def test_sweep_point(self):
        point = SweepPoint.from_summary(self.make_summary())
        assert point.throughput == 95.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["33", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a ")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

"""Satellite: fault injection is deterministic.

The same FaultPlan seed over the same workload must yield bit-identical
fault timestamps, retry counts and per-request terminal statuses — across
repeat runs, and across the scheduler's fast path on and off (which
produce the same task stream by PR 1's equivalence guarantee, so the
(task_id, attempt)-keyed draws land on the same executions).
"""

import pytest

from tests.chaos_helpers import (
    assert_invariants,
    build_server,
    outcome_fingerprint,
    run_chaos,
)
from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig


def _storm_plan(seed):
    return FaultPlan(
        seed=seed,
        kernel_failure_rate=0.08,
        straggler_rate=0.1,
        straggler_multiplier=5.0,
        device_failures=[DeviceFailure(10e-3, 1)],
    )


def _storm_sla():
    return SLAConfig(default_deadline=40e-3, retry=RetryPolicy(max_retries=2))


def _run(seed, fast_path=True):
    server = build_server(
        fault_plan=_storm_plan(seed),
        sla=_storm_sla(),
        num_gpus=2,
        fast_path=fast_path,
    )
    submitted = run_chaos(server, num_requests=250, arrival_seed=7)
    assert_invariants(server, submitted)
    return server


@pytest.mark.parametrize("seed", [3, 17])
def test_same_seed_bit_identical_across_runs(seed):
    fp_a = outcome_fingerprint(_run(seed))
    fp_b = outcome_fingerprint(_run(seed))
    assert fp_a == fp_b


@pytest.mark.parametrize("seed", [3, 17])
def test_same_seed_bit_identical_across_fast_path(seed):
    fp_fast = outcome_fingerprint(_run(seed, fast_path=True))
    fp_ref = outcome_fingerprint(_run(seed, fast_path=False))
    assert fp_fast == fp_ref


def test_different_seeds_diverge():
    fp_a = outcome_fingerprint(_run(3))
    fp_b = outcome_fingerprint(_run(4))
    assert fp_a != fp_b


def test_fault_timestamps_reproduce():
    """Beyond aggregate outcomes: the exact times at which requests went
    terminal (including every timeout and retry-exhaustion) reproduce."""
    times_a = [
        (r.request_id, r.terminal_time, r.cancel_reason)
        for r in sorted(_run(9).terminal_requests(), key=lambda r: r.request_id)
    ]
    times_b = [
        (r.request_id, r.terminal_time, r.cancel_reason)
        for r in sorted(_run(9).terminal_requests(), key=lambda r: r.request_id)
    ]
    assert times_a == times_b


def test_retry_counts_reproduce():
    retries_a = [r.retries for r in sorted(
        _run(21).terminal_requests(), key=lambda r: r.request_id)]
    retries_b = [r.retries for r in sorted(
        _run(21).terminal_requests(), key=lambda r: r.request_id)]
    assert retries_a == retries_b
    assert sum(retries_a) > 0, "the storm must actually retry something"

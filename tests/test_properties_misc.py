"""Additional property-based tests: event-loop ordering, stats coherence,
and error-path behaviour (failure injection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchMakerServer, BatchingConfig
from repro.gpu.costmodel import CostModel
from repro.metrics.latency import cdf_points, percentile
from repro.models import LSTMChainModel
from repro.sim.events import EventLoop


@settings(max_examples=60, deadline=None)
@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_event_loop_executes_in_time_order(times):
    loop = EventLoop()
    fired = []
    for i, t in enumerate(times):
        loop.call_at(t, lambda t=t, i=i: fired.append((t, i)))
    loop.run()
    assert len(fired) == len(times)
    # Non-decreasing in time; ties broken by scheduling order.
    assert fired == sorted(fired, key=lambda pair: (pair[0],))
    for (t1, i1), (t2, i2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert i1 < i2


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1
    )
)
def test_percentiles_and_cdf_are_coherent(values):
    assert percentile(values, 0) == pytest.approx(min(values))
    assert percentile(values, 100) == pytest.approx(max(values))
    assert percentile(values, 50) <= percentile(values, 90) + 1e-9
    points = cdf_points(values)
    fractions = [f for _, f in points]
    assert fractions == sorted(fractions)
    assert points[-1][1] == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    lengths=st.lists(st.integers(1, 20), min_size=1, max_size=20),
    num_gpus=st.integers(1, 3),
)
def test_latency_decomposition_always_consistent(lengths, num_gpus):
    server = BatchMakerServer(
        LSTMChainModel(),
        config=BatchingConfig.with_max_batch(8),
        num_gpus=num_gpus,
    )
    for i, n in enumerate(lengths):
        server.submit(n, arrival_time=i * 1e-4)
    server.drain()
    for request in server.finished:
        assert request.latency == pytest.approx(
            request.queuing_time + request.computation_time
        )
        assert request.queuing_time >= 0
        assert request.computation_time > 0


class TestFailureInjection:
    def test_cell_missing_output_is_loud(self):
        """A buggy cell that drops an output fails the serve loudly rather
        than producing silent garbage."""
        from repro.core.cell import CellType
        from repro.cells.base import Cell

        class BrokenCell(Cell):
            def __init__(self):
                super().__init__("lstm", ("ids", "h", "c"), ("h", "c"))

            def num_operators(self):
                return 1

            def compute(self, inputs):
                return {"h": np.zeros((len(inputs["ids"]), 2))}  # no "c"

        model = LSTMChainModel()
        model._step_type = CellType.from_cell(BrokenCell())
        server = BatchMakerServer(
            model,
            cost_model=model.default_cost_model(),
            real_compute=True,
        )
        server.submit([1, 2])
        with pytest.raises(RuntimeError, match="did not produce outputs"):
            server.drain()

    def test_missing_cost_table_is_loud(self):
        cost = CostModel()  # no tables registered
        server = BatchMakerServer(LSTMChainModel(), cost_model=cost)
        server.submit(2)
        with pytest.raises(KeyError, match="no latency table"):
            server.drain()

    def test_model_extend_exceptions_propagate(self):
        class ExplodingModel(LSTMChainModel):
            def extend(self, graph, node, payload):
                raise RuntimeError("boom")

        server = BatchMakerServer(ExplodingModel())
        server.submit(1)
        with pytest.raises(RuntimeError, match="boom"):
            server.drain()

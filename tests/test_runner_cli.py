"""Tests for the experiment-runner CLI."""

import pytest

from repro.experiments import runner


class TestRunnerCLI:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["nonexistent"])

    def test_runs_named_experiment(self, capsys):
        assert runner.main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "req1(2)" in out
        assert "[fig5 done" in out

    def test_fig10_quick(self, capsys):
        assert runner.main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sequence-length CDF" in out

    def test_multiple_experiments(self, capsys):
        assert runner.main(["fig5", "fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "######## fig5 ########" in out
        assert "######## fig10 ########" in out

    def test_all_expands_to_every_experiment(self):
        # Only check expansion logic, not execution: 'all' must cover the
        # registry exactly (execution of 'all' is the benchmark suite's job).
        assert set(runner.EXPERIMENTS) == {
            "fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig13", "fig14", "fig15", "ablations", "summary",
        }

    def test_fig3_quick(self, capsys):
        assert runner.main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "single LSTM step" in out
        assert "throughput-optimal batch: 512" in out

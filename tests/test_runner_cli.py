"""Tests for the experiment-runner CLI."""

import pytest

from repro.experiments import runner


class TestRunnerCLI:
    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["nonexistent"])

    def test_runs_named_experiment(self, capsys):
        assert runner.main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 5" in out
        assert "req1(2)" in out
        assert "[fig5 done" in out

    def test_fig10_quick(self, capsys):
        assert runner.main(["fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sequence-length CDF" in out

    def test_multiple_experiments(self, capsys):
        assert runner.main(["fig5", "fig10", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "######## fig5 ########" in out
        assert "######## fig10 ########" in out

    def test_all_expands_to_every_experiment(self):
        # Only check expansion logic, not execution: 'all' must cover the
        # registry exactly (execution of 'all' is the benchmark suite's job).
        assert set(runner.EXPERIMENTS) == {
            "fig3", "fig5", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig13", "fig14", "fig15", "fig_cluster", "fig_faults",
            "fig_slo", "fig_memory", "fig_energy", "fig_trace",
            "ablations", "summary",
        }

    def test_fig3_quick(self, capsys):
        assert runner.main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "single LSTM step" in out
        assert "throughput-optimal batch: 512" in out


class TestJobsOption:
    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["fig5", "--quick", "--jobs", "0"])

    def test_jobs_accepted_by_non_sweep_experiment(self, capsys):
        # Experiments with nothing to parallelize still accept --jobs.
        assert runner.main(["fig5", "--quick", "--jobs", "2"]) == 0
        assert "[fig5 done" in capsys.readouterr().out

    def test_jobs_falls_back_to_serial_without_fork(self, capsys, monkeypatch):
        from repro.experiments import common

        monkeypatch.setattr(common, "parallel_sweep_supported", lambda: False)
        assert runner.main(["fig5", "--quick", "--jobs", "4"]) == 0
        assert "running serially" in capsys.readouterr().out

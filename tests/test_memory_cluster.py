"""Cluster-level memory awareness: the ``free_memory`` load metric, the
``most_free_memory`` router, and front-door memory admission.

The routing contract is the same as every other load-aware policy
(``tests/test_cluster_load_index.py``): the event-driven index's choice
must be bit-identical to a from-scratch brute-force scan on every single
decision, and a ``fast_path=False`` twin cluster must replay the whole
workload to an identical fingerprint.
"""

from __future__ import annotations

import pytest

from tests.chaos_helpers import chaos_seeds
from tests.cluster_helpers import assert_cluster_invariants

from repro.cluster import build_cluster
from repro.cluster.routing import tie_break
from repro.registry.presets import seq2seq_dynamic_cluster_spec
from repro.workload import Seq2SeqDataset
from repro.workload.arrivals import PoissonArrivals


def _cluster(
    num_replicas=2,
    seed=0,
    capacity_requests=24,
    admission_free_requests=None,
    router="most_free_memory",
    fast_path=True,
    replica_failures=(),
):
    spec = seq2seq_dynamic_cluster_spec(
        num_replicas=num_replicas,
        router=router,
        seed=seed,
        capacity_requests=capacity_requests,
        admission_free_requests=admission_free_requests,
    )
    if not fast_path:
        spec = spec.replace(router_params={"fast_path": False})
    return build_cluster(spec, replica_failures=replica_failures)


def _run(cluster, rate=400.0, num_requests=150, arrival_seed=7):
    dataset = Seq2SeqDataset(seed=1, max_length=20, dynamic=True)
    arrivals = PoissonArrivals(rate, seed=arrival_seed)
    submitted = []
    for when in arrivals.times(num_requests):
        submitted.append(
            cluster.submit(dataset.sample_one(), arrival_time=when)
        )
    cluster.drain()
    return submitted


def _fingerprint(cluster):
    return tuple(
        (r.request_id, r.state.value, r.terminal_time, r.retries)
        for r in sorted(
            cluster.finished + cluster.timed_out + cluster.rejected,
            key=lambda r: r.request_id,
        )
    )


# -- the free_memory metric -------------------------------------------------


def test_replica_free_memory_sums_alive_devices():
    cluster = _cluster(num_replicas=2, capacity_requests=24)
    for replica in cluster.replicas:
        manager = replica.server.manager
        expected = sum(
            w.device.memory.free() for w in manager.workers if w.alive
        )
        assert replica.free_memory() == expected
        assert replica.free_memory() > 0  # weights deducted, state empty


def test_replica_free_memory_inf_without_model():
    """Replicas without a memory model report infinite free bytes, so the
    router ties across all of them and degrades to seeded-uniform."""
    from tests.cluster_helpers import build_lstm_cluster, run_cluster

    cluster = build_lstm_cluster(num_replicas=2, router="most_free_memory")
    for replica in cluster.replicas:
        assert replica.free_memory() == float("inf")
    submitted = run_cluster(cluster, num_requests=60)
    assert_cluster_invariants(cluster, submitted)
    # Both replicas served traffic (uniform split, not all-on-one).
    assert all(r.routed > 0 for r in cluster.replicas)


# -- fast path == scan, every decision --------------------------------------


@pytest.mark.parametrize("seed", chaos_seeds())
def test_every_decision_matches_brute_force(seed):
    cluster = _cluster(num_replicas=3, seed=seed, capacity_requests=24)
    router = cluster.router
    original = router.choose
    checked = {"decisions": 0}

    def choose(request, candidates):
        keys = [-replica.free_memory() for replica in candidates]
        best = min(keys)
        tied = [r for r, k in zip(candidates, keys) if k == best]
        expected = tie_break(router.seed, request.request_id, tied)
        actual = original(request, candidates)
        assert actual is expected, (
            f"decision {checked['decisions']}: fast path chose "
            f"{actual.replica_id}, scan chose {expected.replica_id}"
        )
        checked["decisions"] += 1
        return actual

    router.choose = choose
    submitted = _run(cluster, arrival_seed=seed)
    assert_cluster_invariants(cluster, submitted)
    assert checked["decisions"] > 0


@pytest.mark.parametrize("seed", chaos_seeds())
def test_fast_and_brute_clusters_fingerprint_identical(seed):
    fingerprints = []
    for fast_path in (True, False):
        cluster = _cluster(
            num_replicas=3, seed=seed, capacity_requests=24, fast_path=fast_path
        )
        submitted = _run(cluster, arrival_seed=seed)
        assert_cluster_invariants(cluster, submitted)
        fingerprints.append(_fingerprint(cluster))
    assert fingerprints[0] == fingerprints[1]


def test_router_spreads_by_free_bytes():
    """Under memory pressure the router keeps replicas' peak usage close:
    no replica evicts while another has untouched headroom."""
    cluster = _cluster(num_replicas=2, capacity_requests=24)
    submitted = _run(cluster)
    assert_cluster_invariants(cluster, submitted)
    routed = [replica.routed for replica in cluster.replicas]
    assert all(routed), f"a replica never saw traffic: {routed}"
    # Both replicas' devices were actually exercised.
    for replica in cluster.replicas:
        for worker in replica.server.manager.workers:
            assert worker.device.memory.peak_reserved > 0
            assert worker.device.memory.state_reserved == 0  # telescoped


# -- front-door admission ---------------------------------------------------


def test_memory_admission_sheds_and_counts():
    """With the admission threshold set and the cluster saturated, arrivals
    are rejected with ``"memory_reject"`` and tallied."""
    cluster = _cluster(
        num_replicas=2, capacity_requests=24, admission_free_requests=20
    )
    submitted = _run(cluster, rate=800.0, num_requests=200)
    assert_cluster_invariants(cluster, submitted)
    counters = cluster.cluster_counters
    assert counters.memory_rejections > 0, "threshold never shed an arrival"
    shed = [
        r for r in cluster.rejected if r.cancel_reason == "memory_reject"
    ]
    assert len(shed) == counters.memory_rejections


def test_no_threshold_no_shedding():
    cluster = _cluster(
        num_replicas=2, capacity_requests=24, admission_free_requests=None
    )
    submitted = _run(cluster)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.memory_rejections == 0
    assert not any(
        r.cancel_reason == "memory_reject" for r in cluster.rejected
    )


def test_admission_survives_replica_loss():
    """A replica dying under memory admission: the threshold keeps being
    evaluated over the survivors and the run drains clean."""
    cluster = _cluster(
        num_replicas=2,
        capacity_requests=24,
        admission_free_requests=8,
        replica_failures=[(0.05, 1)],
    )
    submitted = _run(cluster, rate=600.0, num_requests=150)
    assert_cluster_invariants(cluster, submitted)
    assert cluster.cluster_counters.replicas_lost == 1

"""Chaos invariants: randomized fault schedules over fixed-seed workloads.

Each test drives a full workload under some fault mix and asserts the
global invariants in ``chaos_helpers.assert_invariants``: every request
terminates exactly once, nothing leaks (events, subgraphs, ready counters,
in-flight tasks), counters reconcile, and deadline-met means deadline-met.

CI fans these out over several seeds via the CHAOS_SEEDS env var.
"""

import pytest

from tests.chaos_helpers import (
    assert_invariants,
    build_server,
    chaos_seeds,
    run_chaos,
)
from repro.faults import DeviceFailure, FaultPlan, RetryPolicy, SLAConfig

SEEDS = chaos_seeds()


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_no_faults_healthy_run(seed):
    server = build_server()
    submitted = run_chaos(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert len(server.finished) == len(submitted)
    assert not server.timed_out and not server.rejected


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_kernel_failures_with_retries(seed):
    plan = FaultPlan(seed=seed, kernel_failure_rate=0.05)
    server = build_server(fault_plan=plan)
    submitted = run_chaos(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    counters = server.fault_counters()
    assert counters.kernel_failures_injected > 0
    assert counters.retries_attempted > 0


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_heavy_kernel_failures_exhaust_retries(seed):
    plan = FaultPlan(seed=seed, kernel_failure_rate=0.6)
    sla = SLAConfig(retry=RetryPolicy(max_retries=1))
    server = build_server(fault_plan=plan, sla=sla)
    submitted = run_chaos(server, num_requests=150, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert server.timed_out, "60% kernel failure with 1 retry must cancel some"
    assert all(r.cancel_reason == "retries_exhausted" for r in server.timed_out)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_stragglers_only(seed):
    plan = FaultPlan(seed=seed, straggler_rate=0.2, straggler_multiplier=8.0)
    server = build_server(fault_plan=plan)
    submitted = run_chaos(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    counters = server.fault_counters()
    assert counters.stragglers_injected > 0
    assert counters.tasks_failed == 0, "stragglers are slow, not failed"
    assert len(server.finished) == len(submitted)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_deadlines_under_stragglers(seed):
    plan = FaultPlan(seed=seed, straggler_rate=0.3, straggler_multiplier=16.0)
    sla = SLAConfig(default_deadline=4e-3)
    server = build_server(fault_plan=plan, sla=sla)
    submitted = run_chaos(server, rate=6000.0, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert server.timed_out, "16x stragglers against a 4ms deadline must kill some"
    for request in server.timed_out:
        assert request.cancel_reason == "deadline"
        assert request.terminal_time == pytest.approx(request.deadline)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_device_loss_with_survivor(seed):
    plan = FaultPlan(seed=seed, device_failures=[DeviceFailure(5e-3, 0)])
    server = build_server(fault_plan=plan, num_gpus=2)
    submitted = run_chaos(server, arrival_seed=seed)
    assert_invariants(server, submitted)
    counters = server.fault_counters()
    assert counters.device_failures == 1
    assert not server.manager.workers[0].alive
    assert server.manager.workers[1].alive
    assert len(server.finished) == len(submitted), (
        "with a survivor, device loss alone must not lose requests"
    )


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_total_device_loss_cancels_everything(seed):
    plan = FaultPlan(
        seed=seed,
        device_failures=[DeviceFailure(3e-3, 0), DeviceFailure(6e-3, 1)],
    )
    server = build_server(fault_plan=plan, num_gpus=2)
    submitted = run_chaos(server, rate=2000.0, num_requests=200, arrival_seed=seed)
    assert_invariants(server, submitted)
    assert not any(w.alive for w in server.manager.workers)
    # In-flight requests are cancelled ("no_devices"); arrivals after the
    # last device died are rejected at admission with the same reason.
    assert server.timed_out, "in-flight requests must be cancelled, not hung"
    assert server.rejected, "post-loss arrivals must be rejected, not hung"
    assert all(r.cancel_reason == "no_devices" for r in server.rejected)


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_everything_at_once(seed):
    """The full storm: kernel failures, stragglers, a device loss, tight
    deadlines and load shedding, all in one run."""
    plan = FaultPlan(
        seed=seed,
        kernel_failure_rate=0.05,
        straggler_rate=0.1,
        straggler_multiplier=6.0,
        device_failures=[DeviceFailure(8e-3, 1)],
    )
    sla = SLAConfig(
        default_deadline=30e-3,
        max_queue_delay=20e-3,
        retry=RetryPolicy(max_retries=2),
    )
    server = build_server(fault_plan=plan, sla=sla, num_gpus=2)
    submitted = run_chaos(server, rate=8000.0, num_requests=400, arrival_seed=seed)
    assert_invariants(server, submitted)
    counters = server.fault_counters()
    assert counters.device_failures == 1
    assert counters.kernel_failures_injected > 0
    assert len(server.finished) > 0, "the system must keep making progress"


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
def test_fast_path_off_same_invariants(seed):
    """The brute-force reference scheduler upholds the same invariants
    under the same storm (and test_faults_determinism holds the two
    bit-identical)."""
    plan = FaultPlan(seed=seed, kernel_failure_rate=0.1, straggler_rate=0.1)
    sla = SLAConfig(default_deadline=50e-3, retry=RetryPolicy(max_retries=2))
    server = build_server(fault_plan=plan, sla=sla, fast_path=False)
    submitted = run_chaos(server, num_requests=200, arrival_seed=seed)
    assert_invariants(server, submitted)


@pytest.mark.chaos
def test_load_shedding_rejects_at_admission():
    sla = SLAConfig(max_queue_delay=1e-3)
    server = build_server(sla=sla, max_batch=8)
    submitted = run_chaos(server, rate=50000.0, num_requests=400)
    assert_invariants(server, submitted)
    assert server.rejected, "50k req/s against an 8-batch server must shed"
    for request in server.rejected:
        assert request.cancel_reason == "load_shed"
        assert request.start_time is None, "shed requests never execute"
        assert request.terminal_time == request.arrival_time

"""Satellite: InferenceServer.drain semantics under in-flight cancellations.

``drain()`` must terminate (virtual time must not be held open by dead
timers or orphaned completions), honour its ``until`` horizon, and remain
re-entrant: cancelling requests mid-drain, draining again after more
submissions, and draining an already-drained server all behave.
"""

import pytest

from tests.chaos_helpers import assert_invariants, build_server
from repro.core.request import RequestState
from repro.faults import FaultPlan, KERNEL_FAIL, RetryPolicy, SLAConfig, TaskFault


def test_drain_empty_server_is_a_noop():
    server = build_server()
    server.drain()
    assert server.loop.now() == 0.0
    assert server.loop.pending() == 0


def test_drain_terminates_when_every_request_times_out():
    """All-timeout workloads must not leave the loop spinning: eviction
    plus timer disarm leaves nothing schedulable."""
    server = build_server(sla=SLAConfig(default_deadline=1e-6))
    submitted = [
        server.submit([1] * 10, arrival_time=i * 1e-5) for i in range(30)
    ]
    server.drain()
    assert all(r.state is RequestState.TIMED_OUT for r in submitted)
    assert server.loop.pending() == 0
    assert_invariants(server, submitted)


def test_drain_until_horizon_stops_mid_flight():
    server = build_server()
    request = server.submit([1] * 200, arrival_time=0.0, deadline=1.0)
    server.drain(until=1e-5)
    assert server.loop.now() == 1e-5
    assert not request.terminal, "horizon must not force an outcome"
    assert server.loop.pending() > 0
    # Resuming the drain completes the request and disarms its timer.
    server.drain()
    assert request.state is RequestState.FINISHED
    assert server.loop.pending() == 0


def test_cancellation_scheduled_mid_drain_takes_effect():
    """Cancel a request from a timer that fires while the drain runs: the
    drain keeps going, the victim unwinds, everyone else completes."""
    server = build_server()
    victim = server.submit([1] * 200, arrival_time=0.0)
    rest = [server.submit([1] * 10, arrival_time=1e-5) for _ in range(5)]
    server.loop.call_at(
        2e-5, lambda: server.manager._cancel_request(victim, reason="manual")
    )
    server.drain()
    assert victim.state is RequestState.TIMED_OUT
    assert victim.cancel_reason == "manual"
    assert all(r.state is RequestState.FINISHED for r in rest)
    assert_invariants(server, [victim] + rest)


def test_submit_after_drain_then_drain_again():
    server = build_server(sla=SLAConfig())
    first = server.submit([1] * 10, arrival_time=0.0, deadline=1e-6)
    server.drain()
    assert first.state is RequestState.TIMED_OUT
    second = server.submit([1] * 10, deadline=10.0)
    server.drain()
    assert second.state is RequestState.FINISHED
    assert_invariants(server, [first, second])


def test_drain_with_retry_in_backoff_completes_the_retry():
    """A drain that starts while a failed task sits in its backoff window
    must run the retry to completion, not stop at the idle gap."""
    retry = RetryPolicy(max_retries=2, backoff_base=20e-3)
    plan = FaultPlan(task_overrides={(0, 0): TaskFault(KERNEL_FAIL)})
    server = build_server(fault_plan=plan, sla=SLAConfig(retry=retry))
    request = server.submit([1] * 6, arrival_time=0.0)
    server.drain()
    assert request.state is RequestState.FINISHED
    assert request.retries == 1
    assert server.loop.now() > 20e-3, "the backoff window was simulated"


def test_drain_until_before_deadline_leaves_timer_armed():
    server = build_server()
    request = server.submit([1] * 5, arrival_time=0.0, deadline=50e-3)
    server.drain(until=1e-6)
    # The request is still pending and its deadline timer still armed.
    assert not request.terminal
    assert request._timeout_event is not None
    server.drain()
    assert request.state is RequestState.FINISHED
    assert request._timeout_event is None


def test_terminal_requests_union_is_stable_across_drains():
    server = build_server(sla=SLAConfig(default_deadline=5e-3))
    a = [server.submit([1] * 10, arrival_time=i * 1e-4) for i in range(10)]
    server.drain()
    snapshot = {r.request_id: r.state for r in server.terminal_requests()}
    b = [server.submit([1] * 10) for _ in range(10)]
    server.drain()
    for request_id, state in snapshot.items():
        match = [r for r in server.terminal_requests() if r.request_id == request_id]
        assert len(match) == 1 and match[0].state is state, (
            "a later drain re-reported or mutated an earlier outcome"
        )
    assert_invariants(server, a + b)

"""Tests for the experiment result store."""

import pytest

from repro.core.request import InferenceRequest
from repro.experiments.store import ResultStore, StoredPoint
from repro.metrics.latency import LatencyStats
from repro.metrics.summary import RunSummary


def summary(system, rate, throughput, latency_s=0.01):
    request = InferenceRequest(0, None, 0.0)
    request.mark_started(0.0)
    request.mark_finished(latency_s)
    stats = LatencyStats().extend([request])
    return RunSummary(system, rate, throughput, stats)


class TestStoredPoint:
    def test_roundtrip(self):
        point = StoredPoint.from_summary(summary("A", 100, 95))
        again = StoredPoint.from_dict(point.to_dict())
        assert again.system == "A"
        assert again.throughput == 95


class TestResultStore:
    def make_store(self):
        store = ResultStore()
        store.put_sweep(
            "fig7",
            {
                "BatchMaker": [summary("BatchMaker", 1000, 990)],
                "MXNet": [summary("MXNet", 1000, 980, latency_s=0.05)],
            },
        )
        return store

    def test_put_and_get(self):
        store = self.make_store()
        sweep = store.sweep("fig7")
        assert set(sweep) == {"BatchMaker", "MXNet"}
        assert store.names() == ["fig7"]

    def test_unknown_sweep_raises(self):
        with pytest.raises(KeyError):
            ResultStore().sweep("nope")

    def test_save_load_roundtrip(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "results.json"
        store.save(path)
        loaded = ResultStore.load(path)
        assert loaded.names() == store.names()
        original = store.sweep("fig7")["BatchMaker"][0]
        reloaded = loaded.sweep("fig7")["BatchMaker"][0]
        assert reloaded.throughput == original.throughput
        assert reloaded.p90_ms == original.p90_ms

    def test_compare_identical_is_clean(self, tmp_path):
        store = self.make_store()
        path = tmp_path / "r.json"
        store.save(path)
        assert store.compare(ResultStore.load(path)) == []

    def test_compare_flags_throughput_drift(self):
        a = self.make_store()
        b = ResultStore()
        b.put_sweep(
            "fig7",
            {
                "BatchMaker": [summary("BatchMaker", 1000, 500)],  # halved
                "MXNet": [summary("MXNet", 1000, 980, latency_s=0.05)],
            },
        )
        issues = a.compare(b)
        assert any("throughput" in issue for issue in issues)

    def test_compare_flags_missing_system(self):
        a = self.make_store()
        b = ResultStore()
        b.put_sweep("fig7", {"BatchMaker": [summary("BatchMaker", 1000, 990)]})
        issues = a.compare(b)
        assert any("missing" in issue for issue in issues)

    def test_compare_within_tolerance_is_clean(self):
        a = self.make_store()
        b = ResultStore()
        b.put_sweep(
            "fig7",
            {
                "BatchMaker": [summary("BatchMaker", 1000, 1050)],  # +6%
                "MXNet": [summary("MXNet", 1000, 980, latency_s=0.05)],
            },
        )
        assert a.compare(b, tolerance=0.10) == []

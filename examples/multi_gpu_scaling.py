"""Multi-GPU scaling of Seq2Seq serving (the paper's Figure 13 setting).

Sweeps 1, 2 and 4 simulated GPUs at a fixed offered load per GPU and
reports throughput and latency, showing how the scheduler balances load
across workers while subgraph pinning keeps each request's encoder/decoder
chains on one device.

Run:  python examples/multi_gpu_scaling.py
"""

from repro.core import BatchMakerServer, BatchingConfig
from repro.metrics.summary import format_table
from repro.models import Seq2SeqModel
from repro.workload import LoadGenerator, Seq2SeqDataset

# Stay inside single-GPU capacity: with one device the encoder and decoder
# cell types compete for the same worker (the paper evaluates Seq2Seq on 2
# and 4 GPUs, where the types naturally spread across devices).
RATE_PER_GPU = 1500


def main():
    rows = []
    for num_gpus in (1, 2, 4):
        server = BatchMakerServer(
            Seq2SeqModel(),
            config=BatchingConfig.with_max_batch(
                512,
                per_cell_max={"decoder": 256},
                per_cell_priority={"decoder": 1, "encoder": 0},
            ),
            num_gpus=num_gpus,
            name=f"BatchMaker x{num_gpus} GPU",
        )
        rate = RATE_PER_GPU * num_gpus
        generator = LoadGenerator(
            rate=rate, num_requests=min(4000 * num_gpus, 12000), seed=5
        )
        result = generator.run(server, Seq2SeqDataset(seed=5))
        busy = [
            w.device.timeline.busy_time() for w in server.manager.workers
        ]
        spread = (max(busy) - min(busy)) / max(busy) if max(busy) else 0.0
        rows.append(
            [
                server.name,
                f"{rate}",
                f"{result.summary.throughput:.0f}",
                f"{result.summary.p90_ms:.2f}",
                f"{100 * spread:.0f}%",
            ]
        )
    print("\nSeq2Seq scaling with offered load proportional to GPU count:\n")
    print(
        format_table(
            ["system", "offered req/s", "achieved req/s", "p90 ms", "busy-time imbalance"],
            rows,
        )
    )


if __name__ == "__main__":
    main()

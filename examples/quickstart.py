"""Quickstart: serve an LSTM language model with cellular batching.

Builds a BatchMaker server over the calibrated simulated GPU, drives it
with one second of Poisson traffic from a WMT-15-like length distribution,
and prints the latency breakdown — then does the same with the
padding/bucketing baseline so you can see what cellular batching buys.

Run:  python examples/quickstart.py
"""

from repro.baselines import PaddedServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.metrics.summary import format_table
from repro.models import LSTMChainModel
from repro.workload import LoadGenerator, SequenceDataset

RATE = 5000          # requests per second
NUM_REQUESTS = 8000  # ~1.6 s of traffic


def serve(server):
    generator = LoadGenerator(rate=RATE, num_requests=NUM_REQUESTS, seed=42)
    result = generator.run(server, SequenceDataset(seed=7))
    stats = result.stats
    return [
        server.name,
        f"{result.summary.throughput:.0f}",
        f"{1e3 * stats.p(50):.2f}",
        f"{1e3 * stats.p(90):.2f}",
        f"{1e3 * stats.p(99):.2f}",
        f"{1e3 * stats.p(99, 'queuing'):.2f}",
    ]


def main():
    # The paper's LSTM setup: hidden 1024, one V100, max batch 512.
    batchmaker = BatchMakerServer(
        LSTMChainModel(hidden_dim=1024),
        config=BatchingConfig.with_max_batch(512),
        num_gpus=1,
    )
    padded = PaddedServer(
        LSTMChainModel(hidden_dim=1024),
        bucket_width=10,
        max_batch=512,
        name="Padding+bucketing (MXNet/TF-style)",
    )
    rows = [serve(batchmaker), serve(padded)]
    print(f"\nLSTM inference at {RATE} req/s (simulated V100, 1 GPU):\n")
    print(
        format_table(
            ["system", "req/s", "p50 ms", "p90 ms", "p99 ms", "p99 queuing ms"],
            rows,
        )
    )
    print(
        "\nCellular batching lets new requests join the running batch and "
        "short requests\nleave early — queuing time collapses, which is "
        "where the latency win comes from."
    )


if __name__ == "__main__":
    main()

"""TreeLSTM sentiment classification over parse trees (real compute).

Parses bracketed constituency expressions into binary trees, serves them
through BatchMaker in real-compute mode, and classifies each sentence with
a small sentiment head on the root representation — the application the
paper evaluates TreeLSTM on (Stanford Sentiment TreeBank).

This example demonstrates the scheduling case the paper works through in
§4.4: each tree unfolds into one subgraph per leaf plus one subgraph of
internal cells; leaves of many requests batch together, internal levels
batch with whatever same-type cells are ready, and internal cells have
priority over leaves.

Run:  python examples/sentiment_treelstm.py
"""

import numpy as np

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import TreeLSTMModel, TreePayload
from repro.models.tree_lstm import TreeNodeSpec
from repro.tensor import ops

VOCAB = [
    "the", "movie", "was", "great", "terrible", "acting", "plot", "boring",
    "wonderful", "a", "masterpiece", "waste", "of", "time", "not", "bad",
]
WORD_TO_ID = {w: i for i, w in enumerate(VOCAB)}

SENTENCES = [
    "((the movie) (was great))",
    "((the acting) (was terrible))",
    "((a masterpiece) (of acting))",
    "((the plot) (was boring))",
    "(((the movie) (was not)) bad)",
    "((a waste) (of time))",
]


def parse(expression):
    """Parse a bracketed expression into a TreeNodeSpec."""
    tokens = expression.replace("(", " ( ").replace(")", " ) ").split()
    position = 0

    def parse_node():
        nonlocal position
        if tokens[position] == "(":
            position += 1  # consume "("
            left = parse_node()
            right = parse_node()
            if tokens[position] != ")":
                raise ValueError(f"expected ')', got {tokens[position]!r}")
            position += 1  # consume ")"
            return TreeNodeSpec(left=left, right=right)
        word = tokens[position]
        position += 1
        return TreeNodeSpec(token=WORD_TO_ID[word])

    node = parse_node()
    if position != len(tokens):
        raise ValueError("trailing tokens in expression")
    return node


def main():
    model = TreeLSTMModel(
        hidden_dim=24, vocab_size=len(VOCAB), embed_dim=12, real=True, seed=4
    )
    # A small sentiment head on top of the root hidden state.
    rng = np.random.default_rng(0)
    head = rng.standard_normal((24, 2)).astype(np.float32) * 0.5

    server = BatchMakerServer(
        model,
        config=BatchingConfig.with_max_batch(
            64, per_cell_priority={"tree_internal": 1, "tree_leaf": 0}
        ),
        real_compute=True,
    )
    requests = [
        (text, server.submit(TreePayload(parse(text)), arrival_time=i * 1e-3))
        for i, text in enumerate(SENTENCES)
    ]
    server.drain()

    print("\nTreeLSTM sentiment service (randomly initialised weights):\n")
    for text, request in requests:
        root_h = np.asarray(request.result[0])
        probabilities = ops.softmax(root_h @ head)
        label = "positive" if probabilities[1] > 0.5 else "negative"
        print(
            f"  {text:42s} -> {label} "
            f"(p+ = {probabilities[1]:.2f}, latency {1e3 * request.latency:.2f} ms)"
        )
    print(
        f"\nBatched tasks executed: {server.tasks_submitted()}, "
        f"mean batch size: {server.mean_batch_size():.1f}"
    )
    print(
        "(Weights are untrained, so labels are arbitrary — the point is "
        "cell-level batching\nacross tree-shaped requests with "
        "internal-over-leaf priority.)"
    )


if __name__ == "__main__":
    main()

"""Advanced decoding on cellular batching: beam search and attention.

Two extensions beyond the paper (DESIGN.md §8), both served through the
unmodified scheduler in real-compute mode:

* **beam search** — each decode step runs k decoder cells plus a batchable
  top-k selection cell, and the *wiring* of the next step depends on the
  selection's output (which parent each surviving beam extends);
* **attention** — decoder cells attend over a fixed-capacity padded memory
  of encoder states, keeping all attention cells shape-compatible so they
  batch across requests with different source lengths.

Both decoders' served outputs are asserted identical to direct (unserved)
implementations.

Run:  python examples/advanced_decoding.py
"""

import numpy as np

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import AttentionSeq2SeqModel, BeamSeq2SeqModel

VOCAB_SIZE = 30


def beam_demo():
    print("== Beam-search decoding (k=3) ==")
    model = BeamSeq2SeqModel(
        hidden_dim=24,
        src_vocab_size=VOCAB_SIZE,
        tgt_vocab_size=VOCAB_SIZE,
        embed_dim=12,
        beam_width=3,
        real=True,
        seed=21,
    )
    server = BatchMakerServer(
        model, config=BatchingConfig.with_max_batch(8), real_compute=True
    )
    rng = np.random.default_rng(7)
    payloads = [
        {
            "src": [int(t) for t in rng.integers(3, VOCAB_SIZE, size=rng.integers(2, 8))],
            "max_steps": 7,
        }
        for _ in range(5)
    ]
    requests = [
        server.submit(p, arrival_time=i * 1e-3) for i, p in enumerate(payloads)
    ]
    server.drain()
    for request, payload in zip(requests, payloads):
        served = BeamSeq2SeqModel.decode_best(request)
        reference = model.reference_forward(payload)
        assert served == reference, "served beam search diverged!"
        print(
            f"  src={payload['src']} -> best beam {served} "
            f"({request.graph.beam_steps} steps, "
            f"latency {1e3 * request.latency:.2f} ms)"
        )
    print(f"  tasks: {server.tasks_submitted()}, "
          f"mean batch {server.mean_batch_size():.1f} "
          "(beams of different requests batched together)\n")


def attention_demo():
    print("== Attention decoding (padded memory, capacity 8) ==")
    model = AttentionSeq2SeqModel(
        hidden_dim=20,
        src_vocab_size=VOCAB_SIZE,
        tgt_vocab_size=VOCAB_SIZE,
        embed_dim=10,
        max_src=8,
        real=True,
        seed=22,
    )
    server = BatchMakerServer(
        model,
        config=BatchingConfig.with_max_batch(
            8, per_cell_priority={"attn_decoder": 1}
        ),
        real_compute=True,
    )
    rng = np.random.default_rng(8)
    payloads = [
        {
            "src": [int(t) for t in rng.integers(3, VOCAB_SIZE, size=rng.integers(2, 9))],
            "tgt_len": int(rng.integers(2, 6)),
        }
        for _ in range(5)
    ]
    requests = [
        server.submit(p, arrival_time=i * 1e-3) for i, p in enumerate(payloads)
    ]
    server.drain()
    for request, payload in zip(requests, payloads):
        served = [int(np.asarray(t).reshape(())) for t in request.result]
        assert served == model.reference_forward(payload), "attention diverged!"
        print(
            f"  src={payload['src']} -> {served} "
            f"(latency {1e3 * request.latency:.2f} ms)"
        )
    print(server.stats().report())


if __name__ == "__main__":
    beam_demo()
    attention_demo()

"""A toy translation service: Seq2Seq with dynamic feed-previous decoding.

This example runs the engine in **real-compute** mode: every batched cell
actually executes its NumPy body, and each request's cell graph *grows*
one decoder cell at a time until the model emits <eos> — the dynamic
unfolding extension described in DESIGN.md (the precursor of today's
continuous batching).  Requests arriving at different times are batched
together at the cell level throughout.

The model weights are randomly initialised (there is no trained
checkpoint in this repository), so the "translations" are structurally
valid but meaningless token sequences; the point is the serving behaviour,
and that every decoded sequence is bit-identical to running the model
directly on that request alone.

Run:  python examples/translation_service.py
"""

import numpy as np

from repro.core import BatchMakerServer, BatchingConfig
from repro.models import Seq2SeqModel
from repro.models.seq2seq import EOS_TOKEN

VOCAB = [
    "<pad>", "<go>", "<eos>", "the", "cat", "dog", "house", "is", "big",
    "small", "red", "sees", "a", "my", "runs", "sleeps",
]
WORD_TO_ID = {w: i for i, w in enumerate(VOCAB)}

SENTENCES = [
    "the cat sees a dog",
    "my house is big",
    "the dog sleeps",
    "a small red house",
    "the big dog runs",
    "my cat is small",
]


def encode(sentence):
    return [WORD_TO_ID[w] for w in sentence.split()]


def decode(token_ids):
    return " ".join(
        VOCAB[t] if 0 <= t < len(VOCAB) else f"<{t}>" for t in token_ids
    )


def main():
    model = Seq2SeqModel(
        hidden_dim=32,
        src_vocab_size=len(VOCAB),
        tgt_vocab_size=len(VOCAB),
        embed_dim=16,
        real=True,
        seed=11,
    )
    server = BatchMakerServer(
        model,
        config=BatchingConfig.with_max_batch(
            8, per_cell_priority={"decoder": 1, "encoder": 0}
        ),
        real_compute=True,
    )

    # Requests trickle in over (virtual) time; decoding lengths are unknown
    # up front — each request decodes until <eos> or the budget.
    requests = []
    for i, sentence in enumerate(SENTENCES):
        payload = {
            "src": encode(sentence),
            "dynamic": True,
            "max_decode": 12,
        }
        requests.append(
            (sentence, payload, server.submit(payload, arrival_time=i * 1e-3))
        )
    server.drain()

    print("\nToy translation service (randomly initialised weights):\n")
    for sentence, payload, request in requests:
        tokens = [int(np.asarray(t).reshape(())) for t in request.result]
        reference = model.reference_forward(payload)
        assert tokens == reference, "batched serving diverged from the model!"
        shown = tokens[:-1] if tokens and tokens[-1] == EOS_TOKEN else tokens
        stopped = "<eos>" if tokens and tokens[-1] == EOS_TOKEN else "budget"
        print(f"  in : {sentence}")
        print(f"  out: {decode(shown)}   (stopped by {stopped}, "
              f"latency {1e3 * request.latency:.2f} ms)\n")
    print(
        "Every output above is bit-identical to evaluating the model on "
        "that request alone,\neven though the decoder cells of different "
        "requests were batched together."
    )
    print(f"\nBatched tasks executed: {server.tasks_submitted()}, "
          f"mean batch size: {server.mean_batch_size():.1f}")


if __name__ == "__main__":
    main()

"""Side-by-side comparison of every batching strategy in this repository.

Runs the same TreeLSTM workload through BatchMaker (cellular batching),
DyNet- and TF-Fold-style dynamic graph merging, and — on a fixed-structure
variant — the ideal hard-coded executor, printing one table per workload.

Run:  python examples/compare_batching.py
"""

from repro.baselines import FoldServer, IdealServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.metrics.summary import format_table
from repro.models import TreeLSTMModel, TreePayload
from repro.models.tree_lstm import TreeNodeSpec
from repro.workload import LoadGenerator, TreeDataset

RATE = 1500
NUM_REQUESTS = 3000


def batchmaker():
    return BatchMakerServer(
        TreeLSTMModel(),
        config=BatchingConfig.with_max_batch(
            64, per_cell_priority={"tree_internal": 1, "tree_leaf": 0}
        ),
    )


def run(server, dataset):
    generator = LoadGenerator(rate=RATE, num_requests=NUM_REQUESTS, seed=3)
    result = generator.run(server, dataset)
    return [
        server.name,
        f"{result.summary.throughput:.0f}",
        f"{result.summary.p50_ms:.2f}",
        f"{result.summary.p90_ms:.2f}",
        f"{result.summary.p99_ms:.2f}",
    ]


def main():
    headers = ["system", "req/s", "p50 ms", "p90 ms", "p99 ms"]

    print(f"\nTreeBank-like parse trees at {RATE} req/s:\n")
    rows = [
        run(batchmaker(), TreeDataset(seed=2)),
        run(FoldServer.dynet(TreeLSTMModel()), TreeDataset(seed=2)),
        run(FoldServer.tensorflow_fold(TreeLSTMModel()), TreeDataset(seed=2)),
    ]
    print(format_table(headers, rows))

    print(f"\nIdentical 16-leaf complete binary trees at {RATE} req/s:\n")
    template = TreePayload(TreeNodeSpec.complete(16))
    fixed = lambda: TreeDataset(seed=2, fixed_complete_leaves=16)
    rows = [
        run(batchmaker(), fixed()),
        run(IdealServer(TreeLSTMModel(), template, max_batch=64), fixed()),
        run(FoldServer.dynet(TreeLSTMModel()), fixed()),
    ]
    print(format_table(headers, rows))
    print(
        "\nEven against a zero-overhead hard-coded graph, cellular batching "
        "wins on latency:\nrequests join mid-flight and leave at their root "
        "instead of waiting out the batch."
    )


if __name__ == "__main__":
    main()

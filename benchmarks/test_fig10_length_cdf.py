"""Bench: Figure 10 — the WMT-15-like sequence-length CDF."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_length_cdf


def test_fig10_length_distribution(benchmark):
    result = run_once(benchmark, fig10_length_cdf.run, quick=False)

    # The three statistics the paper publishes for its dataset.
    assert abs(result["mean"] - 24) < 1.5
    assert result["max"] == 330
    assert result["cdf"][100] > 0.985

    benchmark.extra_info["mean_length"] = round(result["mean"], 1)
    benchmark.extra_info["p99_length"] = round(result["p99"], 1)
    benchmark.extra_info["max_length"] = result["max"]
    benchmark.extra_info["fraction_below_100"] = round(result["cdf"][100], 4)

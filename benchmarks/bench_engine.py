#!/usr/bin/env python
"""Engine benchmark entry point (repo root aware).

Times scheduler decisions/sec (fast path vs the retained brute-force
reference) at fixed queue depths, cluster routing decisions/sec per policy
(indexed fast path vs brute-force scan), the million-request sustained
routing sweep, and the quick Fig-7 sweep wall-clock (serial vs ``--jobs``),
then writes ``BENCH_engine.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full run
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke \
        --check BENCH_engine.json                               # CI gate
    PYTHONPATH=src python benchmarks/bench_engine.py --only sustained \
        --sustained-requests 100000 --check BENCH_engine.json   # perf smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --profile  # cProfile

Equivalent to ``python -m repro.bench`` except the default output path is
the repo root rather than the current directory.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.engine import main  # noqa: E402


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--out" not in argv:
        argv = ["--out", os.path.join(REPO_ROOT, "BENCH_engine.json")] + argv
    sys.exit(main(argv))

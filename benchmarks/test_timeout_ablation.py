"""Bench: the §7.1 timeout claim — dispatch-on-idle vs timeout batching."""

from benchmarks.conftest import run_once
from repro.baselines import PaddedServer, TimeoutPaddedServer
from repro.models import LSTMChainModel
from repro.workload import LoadGenerator, SequenceDataset


def _p90(server, rate, num_requests):
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=5)
    return generator.run(server, SequenceDataset(seed=1)).summary.p90_ms


def _run():
    results = {}
    for rate in (800, 3000):
        results[("none", rate)] = _p90(
            PaddedServer(LSTMChainModel(), bucket_width=10), rate, 3000
        )
        for timeout in (1e-3, 5e-3, 20e-3, 100e-3):
            results[(timeout, rate)] = _p90(
                TimeoutPaddedServer(
                    LSTMChainModel(), bucket_width=10, timeout=timeout
                ),
                rate,
                3000,
            )
    return results


def test_no_timeout_dominates(benchmark):
    results = run_once(benchmark, _run)
    for rate in (800, 3000):
        baseline = results[("none", rate)]
        timeouts = {
            t: v for (t, r), v in results.items() if r == rate and t != "none"
        }
        # No timeout configuration meaningfully beats dispatch-on-idle.
        assert baseline <= min(timeouts.values()) * 1.10
        benchmark.extra_info[f"rate{rate}_none_p90_ms"] = round(baseline, 1)
        for timeout, value in timeouts.items():
            benchmark.extra_info[
                f"rate{rate}_to{timeout * 1e3:g}ms_p90_ms"
            ] = round(value, 1)
    # A long timeout clearly hurts at low load.
    assert results[(100e-3, 800)] > 2 * results[("none", 800)]

"""Bench: ablations of BatchMaker's design choices (DESIGN.md §5)."""

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_max_tasks_to_submit_bounds_queuing(benchmark):
    rows = run_once(benchmark, ablations.max_tasks_sweep, quick=True)
    by_limit = {r["max_tasks_to_submit"]: r for r in rows}
    # §7.3: new-request queuing is bounded by MaxTasksToSubmit x step time,
    # so p99 queuing grows with the limit...
    assert by_limit[1]["p99_queuing_ms"] < by_limit[20]["p99_queuing_ms"]
    # ...while the default (5) keeps queuing near the paper's ~1.4 ms scale.
    assert by_limit[5]["p99_queuing_ms"] < 5.0
    for limit, row in by_limit.items():
        benchmark.extra_info[f"mts{limit}_p99_queuing_ms"] = round(
            row["p99_queuing_ms"], 2
        )


def test_pinning_ablation(benchmark):
    rows = run_once(benchmark, ablations.pinning_ablation, quick=True)
    by_key = {(r["rate"], r["pinning"]): r for r in rows}
    rate = rows[0]["rate"]
    pinned = by_key[(rate, True)]
    unpinned = by_key[(rate, False)]
    # Disabling pinning forfeits optimistic same-stream pipelining and pays
    # cross-GPU copies: latency can only get worse.
    assert unpinned["p90_latency_ms"] >= 0.95 * pinned["p90_latency_ms"]
    benchmark.extra_info["pinned_p90_ms"] = round(pinned["p90_latency_ms"], 2)
    benchmark.extra_info["unpinned_p90_ms"] = round(unpinned["p90_latency_ms"], 2)


def test_overhead_sweep(benchmark):
    rows = run_once(benchmark, ablations.overhead_sweep, quick=True)
    by_overhead = {r["overhead_us"]: r for r in rows}
    # Throughput decreases monotonically with per-task overhead; at the
    # paper's measured 65 us BatchMaker lands near ~87% of the analytic max.
    assert (
        by_overhead[0]["throughput"]
        >= by_overhead[65]["throughput"]
        >= by_overhead[260]["throughput"]
    )
    assert 0.7 < by_overhead[65]["fraction_of_analytic_max"] <= 1.0
    for overhead, row in by_overhead.items():
        benchmark.extra_info[f"ovh{overhead}us_frac_of_max"] = round(
            row["fraction_of_analytic_max"], 3
        )


def test_decoder_priority(benchmark):
    rows = run_once(benchmark, ablations.priority_ablation, quick=True)
    by_priority = {r["decoder_priority"]: r for r in rows}
    # Prioritising later-stage cells should not hurt latency (paper §4.3:
    # "one can achieve better latency by preferentially executing DNN types
    # that occur later in the computation graph").
    assert (
        by_priority[1]["p90_latency_ms"]
        <= by_priority[0]["p90_latency_ms"] * 1.15
    )
    benchmark.extra_info["dec_prio_p90_ms"] = round(
        by_priority[1]["p90_latency_ms"], 2
    )
    benchmark.extra_info["flat_prio_p90_ms"] = round(
        by_priority[0]["p90_latency_ms"], 2
    )


def test_bursty_arrivals_ablation(benchmark):
    """Extension ablation: Poisson vs bursty (MMPP) arrivals at equal mean
    load.  Cellular batching's join-anytime property absorbs bursts; the
    padding baseline's bucket round-robin amplifies them."""
    from repro.baselines import PaddedServer
    from repro.metrics.latency import LatencyStats
    from repro.models import LSTMChainModel
    from repro.workload import SequenceDataset
    from repro.workload.arrivals import BurstyArrivals, PoissonArrivals
    from repro.core import BatchMakerServer, BatchingConfig

    def serve(server, arrivals, n=8000):
        dataset = SequenceDataset(seed=1)
        for t in arrivals.times(n):
            server.submit(dataset.sample_one(), arrival_time=t)
        server.drain()
        stats = LatencyStats().extend(server.finished[n // 10 :])
        return 1e3 * stats.p(90)

    def run():
        rate = 5000
        return {
            ("BM", "poisson"): serve(
                BatchMakerServer(
                    LSTMChainModel(), config=BatchingConfig.with_max_batch(512)
                ),
                PoissonArrivals(rate, seed=3),
            ),
            ("BM", "bursty"): serve(
                BatchMakerServer(
                    LSTMChainModel(), config=BatchingConfig.with_max_batch(512)
                ),
                BurstyArrivals(rate, seed=3),
            ),
            ("Padded", "poisson"): serve(
                PaddedServer(LSTMChainModel(), bucket_width=10),
                PoissonArrivals(rate, seed=3),
            ),
            ("Padded", "bursty"): serve(
                PaddedServer(LSTMChainModel(), bucket_width=10),
                BurstyArrivals(rate, seed=3),
            ),
        }

    results = run_once(benchmark, run)
    bm_amplification = results[("BM", "bursty")] / results[("BM", "poisson")]
    padded_amplification = (
        results[("Padded", "bursty")] / results[("Padded", "poisson")]
    )
    # Bursts hurt everyone, but BatchMaker's p90 stays far below the
    # baseline's under bursts.
    assert results[("BM", "bursty")] < results[("Padded", "bursty")]
    for (system, arrival), value in results.items():
        benchmark.extra_info[f"{system}_{arrival}_p90_ms"] = round(value, 2)
    benchmark.extra_info["bm_burst_amplification"] = round(bm_amplification, 2)
    benchmark.extra_info["padded_burst_amplification"] = round(
        padded_amplification, 2
    )

"""Bench: Figure 9 — queuing vs computation time CDFs at 5K req/s."""

from benchmarks.conftest import run_once
from repro.experiments import fig9_breakdown


def test_fig9_latency_breakdown(benchmark):
    results = run_once(benchmark, fig9_breakdown.run, quick=True)

    bm = results["BatchMaker"]
    mxnet = results["MXNet"]
    # Queuing collapses under cellular batching (paper: 1.38 ms vs >100 ms
    # at the 99th percentile).
    assert bm["queuing"]["p99_ms"] < 10
    assert mxnet["queuing"]["p99_ms"] > 10 * bm["queuing"]["p99_ms"]
    # Computation time is also lower (no padding, leave-on-finish)...
    assert bm["computation"]["p90_ms"] < mxnet["computation"]["p90_ms"]
    # ...but queuing is the dominant factor in the total improvement.
    queuing_gain = mxnet["queuing"]["p90_ms"] - bm["queuing"]["p90_ms"]
    compute_gain = mxnet["computation"]["p90_ms"] - bm["computation"]["p90_ms"]
    assert queuing_gain > compute_gain

    benchmark.extra_info["bm_p99_queuing_ms"] = round(bm["queuing"]["p99_ms"], 2)
    benchmark.extra_info["mxnet_p99_queuing_ms"] = round(
        mxnet["queuing"]["p99_ms"], 2
    )

"""Bench: Figure 7 — LSTM latency vs throughput, BatchMaker vs padding."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig7_lstm


def test_fig7a_lstm_bmax512(benchmark):
    results = run_once(benchmark, fig7_lstm.run, quick=True, max_batch=512)

    bm = results["BatchMaker"]
    mxnet = results["MXNet"]
    # BatchMaker's p90 stays low and nearly flat at low-to-moderate load...
    assert bm[0].p90_ms < 15
    # ...and beats the padding baselines at every common load point.
    for bm_point, mx_point in zip(bm, mxnet):
        assert bm_point.p90_ms < mx_point.p90_ms
    # Peak throughput improvement (paper: +25%).
    bm_peak = common.peak_throughput(bm)
    base_peak = max(
        common.peak_throughput(mxnet), common.peak_throughput(results["TensorFlow"])
    )
    assert bm_peak > base_peak
    benchmark.extra_info["bm_peak_req_s"] = round(bm_peak)
    benchmark.extra_info["baseline_peak_req_s"] = round(base_peak)
    benchmark.extra_info["bm_p90_low_load_ms"] = round(bm[0].p90_ms, 2)
    benchmark.extra_info["mxnet_p90_low_load_ms"] = round(mxnet[0].p90_ms, 2)


def test_fig7b_lstm_bmax64(benchmark):
    results = run_once(benchmark, fig7_lstm.run, quick=True, max_batch=64)

    bm = results["BatchMaker"]
    # bmax=64 keeps low-load latency low but caps peak throughput below the
    # bmax=512 configuration's (the paper's argument for picking 512).
    assert bm[0].p90_ms < 15
    bm_peak64 = common.peak_throughput(bm)
    benchmark.extra_info["bm_peak_req_s_bmax64"] = round(bm_peak64)
    assert bm_peak64 < 512 / (24 * 784e-6)  # short of the bmax-512 regime

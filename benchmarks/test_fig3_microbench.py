"""Bench: Figure 3 — single LSTM step latency/throughput across batch sizes."""

from benchmarks.conftest import run_once
from repro.experiments import fig3_microbench


def test_fig3_microbenchmark(benchmark):
    result = run_once(benchmark, fig3_microbench.run, quick=False, measure_numpy=True)

    gpu = dict((b, t) for b, t, _ in result["gpu"])
    # Pinned calibration points (§7.3) and the shape claims of §2.2.
    assert abs(gpu[64] - 185e-6) / 185e-6 < 0.01
    assert abs(gpu[512] - 784e-6) / 784e-6 < 0.01
    assert result["gpu_best_batch"] == 512
    # The measured host NumPy curve shows the same flat->rising shape.
    numpy_points = result["numpy"]
    assert numpy_points[-1][2] > numpy_points[0][2]  # throughput grows w/ batch

    benchmark.extra_info["gpu_us_at_64"] = round(gpu[64] * 1e6, 1)
    benchmark.extra_info["gpu_us_at_512"] = round(gpu[512] * 1e6, 1)
    benchmark.extra_info["gpu_peak_ops_per_s"] = round(512 / gpu[512])

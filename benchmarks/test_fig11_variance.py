"""Bench: Figure 11 — sensitivity to sequence-length variance."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig11_variance


def test_fig11_length_variance(benchmark):
    results = run_once(benchmark, fig11_variance.run, quick=True)

    fixed = results["fixed length 24"]
    clip100 = results["max length 100"]

    # With zero variance the padding baseline matches/beats BatchMaker
    # (no padding waste, perfect batches; BatchMaker pays per-task
    # overhead — paper: ~87% of the analytic maximum).
    fixed_bm = common.peak_throughput(fixed["BatchMaker"])
    fixed_mx = common.peak_throughput(fixed["MXNet"])
    assert fixed_mx > 0.9 * fixed_bm
    assert fixed_bm > 0.75 * fig11_variance.ANALYTIC_MAX_FIXED24

    # With variance, the baselines degrade sharply; BatchMaker does not.
    var_bm = common.peak_throughput(clip100["BatchMaker"])
    var_mx = common.peak_throughput(clip100["MXNet"])
    assert var_bm > var_mx
    bm_degradation = fixed_bm / var_bm
    mx_degradation = fixed_mx / var_mx
    assert mx_degradation > bm_degradation

    benchmark.extra_info["fixed_bm_fraction_of_analytic"] = round(
        fixed_bm / fig11_variance.ANALYTIC_MAX_FIXED24, 2
    )
    benchmark.extra_info["clip100_bm_peak"] = round(var_bm)
    benchmark.extra_info["clip100_mxnet_peak"] = round(var_mx)

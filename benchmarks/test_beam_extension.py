"""Bench: beam-search decoding extension (branching dynamic cell graphs)."""

from benchmarks.conftest import run_once
from repro.core import BatchMakerServer, BatchingConfig
from repro.models.beam_seq2seq import BeamSeq2SeqModel
from repro.models.seq2seq import Seq2SeqModel
from repro.workload import LoadGenerator, Seq2SeqDataset


class _BeamDataset:
    """Seq2Seq pairs re-shaped into beam payloads."""

    def __init__(self, seed=5):
        self._inner = Seq2SeqDataset(seed=seed)

    def sample_one(self):
        pair = self._inner.sample_one()
        return {"src": pair["src"], "max_steps": pair["tgt_len"]}


def _run_beam(beam_width, rate=800, num_requests=1200):
    model = BeamSeq2SeqModel(beam_width=beam_width)
    server = BatchMakerServer(
        model,
        config=BatchingConfig.with_max_batch(
            512,
            per_cell_max={"bs_decoder": 256},
            per_cell_priority={"bs_decoder": 1, "bs_select": 2,
                               "bs_select_first": 2},
        ),
        num_gpus=2,
        name=f"Beam-{beam_width}",
    )
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=5)
    return generator.run(server, _BeamDataset()).summary


def _run_greedy(rate=800, num_requests=1200):
    server = BatchMakerServer(
        Seq2SeqModel(),
        config=BatchingConfig.with_max_batch(
            512, per_cell_max={"decoder": 256}, per_cell_priority={"decoder": 1}
        ),
        num_gpus=2,
        name="Greedy",
    )
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=5)
    return generator.run(server, Seq2SeqDataset(seed=5)).summary


def test_beam_search_serving(benchmark):
    def run():
        return {
            "greedy": _run_greedy(),
            "beam2": _run_beam(2),
            "beam4": _run_beam(4),
        }

    results = run_once(benchmark, run)
    # Wider beams do strictly more decode work, so latency grows with k,
    # but cellular batching keeps the k-fold work amplification from
    # turning into a k-fold latency amplification (beams batch together).
    assert results["greedy"].p90_ms < results["beam2"].p90_ms
    assert results["beam2"].p90_ms < results["beam4"].p90_ms
    assert results["beam4"].p90_ms < 4 * results["greedy"].p90_ms
    for name, summary in results.items():
        benchmark.extra_info[f"{name}_p90_ms"] = round(summary.p90_ms, 2)
        benchmark.extra_info[f"{name}_req_s"] = round(summary.throughput)

"""Bench: Figure 13 — Seq2Seq on 2 and 4 GPUs."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig13_seq2seq


def test_fig13a_seq2seq_2gpus(benchmark):
    results = run_once(benchmark, fig13_seq2seq.run, quick=True, num_gpus=2)

    bm = results["BatchMaker-512,256"]
    mxnet = results["MXNet"]
    for bm_point, mx_point in zip(bm, mxnet):
        assert bm_point.p90_ms < mx_point.p90_ms
    bm_peak = common.peak_throughput(bm)
    base_peak = max(
        common.peak_throughput(mxnet),
        common.peak_throughput(results["TensorFlow"]),
    )
    assert bm_peak > base_peak  # paper: +60%
    # Per-cell-type batch sizing (512,256) helps a little over (256,256).
    alt_peak = common.peak_throughput(results["BatchMaker-256,256"])
    assert bm_peak >= 0.97 * alt_peak
    benchmark.extra_info["bm512_256_peak"] = round(bm_peak)
    benchmark.extra_info["bm256_256_peak"] = round(alt_peak)
    benchmark.extra_info["baseline_peak"] = round(base_peak)


def test_fig13b_seq2seq_4gpus(benchmark):
    results = run_once(benchmark, fig13_seq2seq.run, quick=True, num_gpus=4)

    bm_peak = common.peak_throughput(results["BatchMaker-512,256"])
    base_peak = max(
        common.peak_throughput(results["MXNet"]),
        common.peak_throughput(results["TensorFlow"]),
    )
    assert bm_peak > base_peak
    benchmark.extra_info["bm_peak_4gpu"] = round(bm_peak)
    benchmark.extra_info["baseline_peak_4gpu"] = round(base_peak)

"""Bench: Figure 14 — TreeLSTM vs DyNet and TensorFlow Fold."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig14_treelstm


def test_fig14_treelstm(benchmark):
    results = run_once(benchmark, fig14_treelstm.run, quick=True)

    bm_peak = common.peak_throughput(results["BatchMaker"])
    dynet_peak = common.peak_throughput(results["DyNet"])
    fold_peak = common.peak_throughput(results["TF Fold"], latency_cap_ms=3000)

    # Paper: BatchMaker ~1.8x DyNet and ~4x TF Fold.
    assert 1.2 < bm_peak / dynet_peak < 2.6
    assert 2.5 < bm_peak / fold_peak < 6.0
    # At moderate load BatchMaker's p90 beats DyNet's (paper: -28%).
    assert results["BatchMaker"][0].p90_ms < results["DyNet"][0].p90_ms

    benchmark.extra_info["bm_peak"] = round(bm_peak)
    benchmark.extra_info["dynet_peak"] = round(dynet_peak)
    benchmark.extra_info["fold_peak"] = round(fold_peak)
    benchmark.extra_info["bm_over_dynet"] = round(bm_peak / dynet_peak, 2)
    benchmark.extra_info["bm_over_fold"] = round(bm_peak / fold_peak, 2)

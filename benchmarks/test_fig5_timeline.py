"""Bench: Figure 5 — the 8-request join/leave timeline."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_timeline


def test_fig5_timeline(benchmark):
    result = run_once(benchmark, fig5_timeline.run)
    graph, cellular = result["graph"], result["cellular"]

    # Paper timeline: graph batching finishes batch 1 at t=5 and batch 2 at
    # t=12; cellular batching returns req1 at t=2 and finishes everything
    # earlier, with joins at task boundaries.
    assert graph["req4"][2] == 5.0
    assert graph["req6"][2] == 12.0
    assert cellular["req1"][2] == 2.0
    assert max(t for _, _, t in cellular.values()) < 12.0

    graph_mean = sum(f - a for a, _, f in graph.values()) / 8
    cellular_mean = sum(f - a for a, _, f in cellular.values()) / 8
    assert cellular_mean < graph_mean
    benchmark.extra_info["graph_mean_latency"] = round(graph_mean, 2)
    benchmark.extra_info["cellular_mean_latency"] = round(cellular_mean, 2)

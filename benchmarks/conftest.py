"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (in quick
mode — smaller request counts, fewer sweep points) inside the timed
region, asserts the paper's qualitative shape, and attaches the headline
numbers to ``benchmark.extra_info`` so they appear in
``pytest benchmarks/ --benchmark-only --benchmark-verbose`` output and in
saved benchmark JSON.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole experiment exactly once inside the timed region.

    pytest-benchmark's default calibration would re-run these multi-second
    simulations many times; one round is both sufficient and honest here
    (the simulations are deterministic).
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

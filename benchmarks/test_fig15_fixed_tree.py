"""Bench: Figure 15 — identical complete binary trees vs the ideal executor."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig15_fixed_tree


def test_fig15_fixed_structure(benchmark):
    results = run_once(benchmark, fig15_fixed_tree.run, quick=True)

    ideal_peak = common.peak_throughput(results["Ideal"])
    bm_peak = common.peak_throughput(results["BatchMaker"])
    dynet_peak = common.peak_throughput(results["DyNet"])

    # Paper: BatchMaker's peak is ~30% below ideal, but its latency is
    # LOWER than ideal's (join mid-flight, leave at the root).
    assert 0.6 < bm_peak / ideal_peak < 1.0
    assert results["BatchMaker"][0].p90_ms < results["Ideal"][0].p90_ms
    # DyNet sits well below both on this workload.
    assert dynet_peak < bm_peak

    benchmark.extra_info["ideal_peak"] = round(ideal_peak)
    benchmark.extra_info["bm_peak"] = round(bm_peak)
    benchmark.extra_info["bm_fraction_of_ideal"] = round(bm_peak / ideal_peak, 2)

"""Bench: Figure 8 — the bucket-width trade-off for the padding baseline."""

from benchmarks.conftest import run_once
from repro.experiments import common, fig8_bucket_width


def test_fig8_bucket_width_tradeoff(benchmark):
    results = run_once(benchmark, fig8_bucket_width.run, quick=True)

    low_load_p90 = {w: results[w][0].p90_ms for w in results}
    peaks = {w: common.peak_throughput(results[w]) for w in results}

    # Coarse buckets wait behind fewer buckets: better low-load latency than
    # the finest bucketing (paper: bw 40 best at low load, bw 1 worst).
    assert low_load_p90["bw 40"] < low_load_p90["bw 1"]
    # Width 10 is a good compromise: close to the best on both axes.
    assert low_load_p90["bw 10"] <= 1.5 * min(low_load_p90.values())
    assert peaks["bw 10"] >= 0.7 * max(peaks.values())

    for width, value in low_load_p90.items():
        benchmark.extra_info[f"{width}_low_load_p90_ms"] = round(value, 1)
    for width, value in peaks.items():
        benchmark.extra_info[f"{width}_peak_req_s"] = round(value)

"""Chrome trace-event JSON export (loads in Perfetto / chrome://tracing).

Track layout:

* ``pid 0`` — **requests**: one thread (track) per logical request.  Task
  and batch spans fan out onto the tracks of their member requests, and
  cluster shadow ids are mapped back to logical ids, so one track shows a
  request's full cross-replica history.
* ``pid 1`` — **engine devices** (standalone server): one thread per GPU.
* ``pid 2+r`` — **replica r devices** in a cluster run.

Timestamps/durations are microseconds (the trace-event unit), converted
from the recorder's sim-clock seconds at export time only.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.sim.timebase import seconds_to_us

from . import events as ev
from .critical import build_shadow_map
from .events import SPAN

REQUESTS_PID = 0
ENGINE_DEVICES_PID = 1


def _device_pid(replica_id) -> int:
    return ENGINE_DEVICES_PID if replica_id is None else 2 + replica_id


def export_chrome(recorder, path) -> int:
    """Write ``recorder``'s buffer as trace-event JSON; returns event count."""
    all_events = list(recorder)
    shadow_to_logical, _, _ = build_shadow_map(all_events)

    def logical_id(replica_id, request_id):
        if replica_id is not None:
            return shadow_to_logical.get((replica_id, request_id), request_id)
        return request_id

    out: List[Dict[str, Any]] = []
    request_tids = set()
    device_tids = set()

    def emit(e, pid, tid):
        rec: Dict[str, Any] = {
            "name": e.name,
            "cat": e.cat,
            "ph": e.kind,
            "ts": seconds_to_us(e.ts),
            "pid": pid,
            "tid": tid,
        }
        if e.kind == SPAN:
            rec["dur"] = seconds_to_us(e.dur)
        else:
            rec["s"] = "t"  # thread-scoped instant
        args = dict(e.args) if e.args else {}
        if e.task_id is not None:
            args["task_id"] = e.task_id
        if e.replica_id is not None:
            args["replica_id"] = e.replica_id
        if args:
            rec["args"] = args
        out.append(rec)

    for e in all_events:
        if e.device_id is not None:
            pid = _device_pid(e.replica_id)
            emit(e, pid, e.device_id)
            device_tids.add((pid, e.device_id))
        # Request-track view: lifecycle events land on their own track;
        # batched spans fan out to each member request's track.
        member_ids = []
        if e.request_id is not None:
            member_ids.append(e.request_id)
        if e.args and "requests" in e.args:
            member_ids.extend(e.args["requests"])
        for rid in member_ids:
            if not recorder.sampled(rid):
                continue
            tid = logical_id(e.replica_id, rid)
            emit(e, REQUESTS_PID, tid)
            request_tids.add(tid)

    # Track-naming metadata.
    meta: List[Dict[str, Any]] = [
        _process_name(REQUESTS_PID, "requests"),
    ]
    for tid in sorted(request_tids):
        meta.append(_thread_name(REQUESTS_PID, tid, f"request {tid}"))
    named_pids = set()
    for pid, tid in sorted(device_tids):
        if pid not in named_pids:
            named_pids.add(pid)
            label = "engine devices" if pid == ENGINE_DEVICES_PID \
                else f"replica {pid - 2} devices"
            meta.append(_process_name(pid, label))
        meta.append(_thread_name(pid, tid, f"gpu{tid}"))

    document = {"traceEvents": meta + out, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(document, fh)
    return len(out)


def _process_name(pid: int, name: str) -> Dict[str, Any]:
    return {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name}}


def _thread_name(pid: int, tid: int, name: str) -> Dict[str, Any]:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def validate_chrome(path) -> Dict[str, int]:
    """Validate an exported file as well-formed trace-event JSON.

    Checks the JSON shape, the required per-event fields, and that both a
    non-empty device track and a non-empty request track exist.  Returns
    counters (used by the CI smoke job); raises ``ValueError`` on any
    violation.
    """
    with open(path) as fh:
        document = json.load(fh)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a trace-event document: missing 'traceEvents'")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty list")

    device_events = 0
    request_events = 0
    spans = 0
    instants = 0
    for i, rec in enumerate(events):
        for field in ("name", "ph", "pid", "tid"):
            if field not in rec:
                raise ValueError(f"event {i} missing required field {field!r}")
        if rec["ph"] == "M":
            continue
        if "ts" not in rec:
            raise ValueError(f"event {i} missing required field 'ts'")
        if rec["ph"] == "X":
            if "dur" not in rec:
                raise ValueError(f"complete event {i} missing 'dur'")
            spans += 1
        elif rec["ph"] == "i":
            instants += 1
        else:
            raise ValueError(f"event {i} has unsupported phase {rec['ph']!r}")
        if rec["pid"] == REQUESTS_PID:
            request_events += 1
        else:
            device_events += 1

    if device_events == 0:
        raise ValueError("no events on any device track")
    if request_events == 0:
        raise ValueError("no events on any request track")
    return {
        "events": device_events + request_events,
        "device_events": device_events,
        "request_events": request_events,
        "spans": spans,
        "instants": instants,
    }

"""CI smoke check: trace a short run, export it, validate the file.

``python -m repro.trace.smoke [--out PATH]`` runs a small traced LSTM
load point, exports the Chrome trace JSON, validates it (well-formed,
non-empty device *and* request tracks), and checks the critical-path
invariant (every request's bucket sum telescopes to its latency within
1e-9 s).  Exits non-zero with a message on any violation.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.trace.chrome import validate_chrome
from repro.trace.critical import CriticalPath
from repro.trace.recorder import TraceRecorder

TOLERANCE = 1e-9


def run_smoke(out_path: Path, num_requests: int = 500, rate: float = 4000.0) -> dict:
    """Run the traced load point and return the validation counters."""
    from repro.experiments import common
    from repro.workload import LoadGenerator, SequenceDataset

    server = common.lstm_batchmaker()
    recorder = TraceRecorder(server.loop)
    server.attach_trace(recorder)
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=7)
    generator.run(server, SequenceDataset(seed=1))

    path = CriticalPath.from_recorder(recorder)
    if not path.requests:
        raise AssertionError("critical path analyzed no requests")
    worst = max(
        abs(r.bucket_sum() - r.latency) for r in path.requests
    )
    if worst > TOLERANCE:
        raise AssertionError(
            f"bucket sum != latency: worst residual {worst:.3e}s > {TOLERANCE}"
        )

    out_path.parent.mkdir(parents=True, exist_ok=True)
    recorder.export_chrome(out_path)
    counters = validate_chrome(out_path)
    counters["analyzed_requests"] = len(path.requests)
    counters["worst_residual"] = worst
    return counters


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="where to write the trace JSON (default: a temp directory)",
    )
    args = parser.parse_args(argv)
    if args.out is not None:
        out = Path(args.out)
        counters = run_smoke(out)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "smoke.json"
            counters = run_smoke(out)
    print(
        f"trace smoke OK: {counters['events']} events "
        f"({counters['device_events']} device, "
        f"{counters['request_events']} request), "
        f"{counters['analyzed_requests']} requests analyzed, "
        f"worst bucket residual {counters['worst_residual']:.2e}s"
    )
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except (AssertionError, ValueError) as exc:
        print(f"trace smoke FAILED: {exc}", file=sys.stderr)
        sys.exit(1)

"""Typed trace events.

A :class:`TraceEvent` is one record in the recorder's ring buffer — either
a *span* (an interval of virtual time) or an *instant* (a point).  Events
carry the lineage ids the critical-path analyzer joins on:

* ``request_id`` — the request the event belongs to.  Inside a cluster
  replica this is the replica-local *shadow* id; the cluster's
  ``cluster.route`` / ``cluster.reroute`` instants record the
  ``(replica_id, shadow_id) -> logical_id`` mapping that reconstructs the
  logical request's full tree across replicas.
* ``task_id`` / ``device_id`` / ``replica_id`` — batch, GPU stream and
  cluster-member lineage.

All timestamps come from the simulation clock (seconds); recording an
event never schedules loop work, which is why tracing cannot perturb a
run (DESIGN.md §12).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

# -- event kinds (mirrors the Chrome trace-event phase letters) -------------
SPAN = "X"
INSTANT = "i"

# -- critical-path buckets (also used as span categories) -------------------
QUEUE = "queue"
COMPUTE = "compute"
GATHER = "gather"
PADDING = "padding"
RETRY = "retry"
ROUTING = "routing"
BUCKETS = (QUEUE, COMPUTE, GATHER, PADDING, RETRY, ROUTING)

# -- non-bucket categories --------------------------------------------------
LIFECYCLE = "lifecycle"
SCHED = "sched"
CLUSTER = "cluster"

# -- well-known event names -------------------------------------------------
REQUEST_ARRIVAL = "request.arrival"
REQUEST_FINISHED = "request.finished"
REQUEST_TIMED_OUT = "request.timed_out"
REQUEST_REJECTED = "request.rejected"
REQUEST_RESTARTED = "request.restarted"  # evict-and-restart preemption
TASK = "task"                      # span: one batched task execution
BATCH = "batch"                    # span: one fused graph-batching batch
TASK_DEVICE_LOST = "task.device_lost"
RETRY_BACKOFF = "retry.backoff"    # span: failure -> resubmission window
DEVICE_FAILED = "device.failed"
SCHED_BATCH_FORMED = "sched.batch_formed"
SCHED_EVICT = "sched.evict"
DVFS_FREQUENCY = "dvfs.frequency"  # governor changed a device's clock state
CLUSTER_ROUTE = "cluster.route"
CLUSTER_REROUTE = "cluster.reroute"
REPLICA_SPAWN = "replica.spawn"
REPLICA_ACTIVATE = "replica.activate"
REPLICA_LOST = "replica.lost"
REPLICA_WARMUP = "replica.warmup"  # span: spawn -> routable

TERMINAL_EVENTS = (REQUEST_FINISHED, REQUEST_TIMED_OUT, REQUEST_REJECTED)


class TraceEvent:
    """One recorded span or instant (plain data, ``__slots__`` for bulk)."""

    __slots__ = (
        "kind", "name", "cat", "ts", "dur",
        "replica_id", "device_id", "request_id", "task_id", "args",
    )

    def __init__(
        self,
        kind: str,
        name: str,
        cat: str,
        ts: float,
        dur: float = 0.0,
        replica_id: Optional[int] = None,
        device_id: Optional[int] = None,
        request_id: Optional[int] = None,
        task_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.replica_id = replica_id
        self.device_id = device_id
        self.request_id = request_id
        self.task_id = task_id
        self.args = args

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"+{self.dur:.6f}" if self.kind == SPAN else ""
        ids = ",".join(
            f"{k}={v}"
            for k, v in (
                ("r", self.replica_id),
                ("d", self.device_id),
                ("req", self.request_id),
                ("task", self.task_id),
            )
            if v is not None
        )
        return f"<TraceEvent {self.name} [{self.cat}] t={self.ts:.6f}{span} {ids}>"

"""Critical-path latency attribution.

Walks each completed request's span tree in a :class:`TraceRecorder` and
attributes its end-to-end latency to six buckets::

    queue | compute | gather | padding | retry | routing

The attribution is a classified-interval sweep: every span that involves
the request contributes classified sub-intervals (a task span splits into
a gather/migration prefix and a compute remainder; a padded batch span
ends in a padding tail; failed-attempt spans and backoff windows are
retry; work done on a replica the request was later re-routed away from
is routing), intervals are clipped to ``[arrival, terminal]``, and each
elementary segment is charged to the highest-priority active class —
uncovered time is queueing.  Because the segments partition the request's
lifetime exactly, the bucket sum telescopes to the end-to-end latency
(the property the trace tests pin to 1e-9 s).

In cluster traces the ``cluster.route`` / ``cluster.reroute`` instants
map per-replica shadow ids back to the logical request, so the breakdown
spans replicas: time spent computing on a replica that died before the
request finished is charged to ``routing`` (wasted work), and the hop
count is reported per request.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.metrics.latency import percentile

from . import events as ev
from .events import SPAN, TraceEvent
from .recorder import TraceRecorder

# Sweep priority: lower wins when intervals overlap.
_PRIORITY = {
    ev.COMPUTE: 0,
    ev.GATHER: 1,
    ev.PADDING: 2,
    ev.RETRY: 3,
    ev.ROUTING: 4,
}


class RequestBreakdown:
    """One request's latency, split into the six buckets."""

    __slots__ = ("request_id", "outcome", "arrival", "terminal", "hops", "buckets")

    def __init__(
        self,
        request_id: int,
        outcome: str,
        arrival: float,
        terminal: float,
        hops: int,
        buckets: Dict[str, float],
    ):
        self.request_id = request_id
        self.outcome = outcome
        self.arrival = arrival
        self.terminal = terminal
        self.hops = hops
        self.buckets = buckets

    @property
    def latency(self) -> float:
        return self.terminal - self.arrival

    def bucket_sum(self) -> float:
        return sum(self.buckets[b] for b in ev.BUCKETS)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{b}={self.buckets[b]:.6f}" for b in ev.BUCKETS)
        return (
            f"<RequestBreakdown req={self.request_id} {self.outcome} "
            f"lat={self.latency:.6f} {parts}>"
        )


class CriticalPath:
    """Per-request breakdowns plus per-bucket percentile aggregation."""

    def __init__(self, requests: List[RequestBreakdown], rejected: int = 0):
        self.requests = requests
        self.rejected = rejected

    @classmethod
    def from_recorder(cls, recorder: TraceRecorder) -> "CriticalPath":
        return _analyze(list(recorder))

    # -- aggregation --------------------------------------------------------
    def bucket_values(self, bucket: str) -> List[float]:
        if bucket not in ev.BUCKETS:
            raise ValueError(f"unknown bucket {bucket!r}; expected one of {ev.BUCKETS}")
        return [r.buckets[bucket] for r in self.requests]

    def bucket_percentile(self, bucket: str, p: float) -> float:
        return percentile(self.bucket_values(bucket), p)

    def mean_breakdown(self) -> Dict[str, float]:
        """Mean seconds per bucket across all analyzed requests."""
        if not self.requests:
            raise ValueError("no completed requests in trace")
        n = len(self.requests)
        return {
            b: sum(r.buckets[b] for r in self.requests) / n for b in ev.BUCKETS
        }

    def format_table(self, percentiles: Tuple[float, ...] = (50.0, 90.0, 99.0)) -> str:
        """Aligned text table of per-bucket percentiles in milliseconds."""
        from repro.metrics.summary import format_table
        from repro.sim.timebase import seconds_to_ms

        headers = ["bucket"] + [f"p{p:g} (ms)" for p in percentiles] + ["mean (ms)"]
        mean = self.mean_breakdown()
        rows = []
        for b in ev.BUCKETS:
            rows.append(
                [b]
                + [f"{seconds_to_ms(self.bucket_percentile(b, p)):.3f}" for p in percentiles]
                + [f"{seconds_to_ms(mean[b]):.3f}"]
            )
        return format_table(headers, rows)


# ---------------------------------------------------------------------------
# analysis internals
# ---------------------------------------------------------------------------


def build_shadow_map(
    all_events: List[TraceEvent],
) -> Tuple[
    Dict[Tuple[Optional[int], int], int],
    Dict[int, int],
    Dict[int, Tuple[Optional[int], int]],
]:
    """Shadow lineage from the cluster routing instants.

    Returns ``((replica_id, shadow_id) -> logical_id, logical_id -> hops,
    logical_id -> final (replica_id, shadow_id))`` — the *final* shadow is
    the target of the latest route/re-route, the one whose engine events
    are authoritative for the logical request.  Engine-mode traces have no
    routing instants and all three maps are empty — every event then keys
    by its own request id.
    """
    shadow_to_logical: Dict[Tuple[Optional[int], int], int] = {}
    hops: Dict[int, int] = {}
    final_shadow: Dict[int, Tuple[Optional[int], int]] = {}
    for e in all_events:
        if e.name in (ev.CLUSTER_ROUTE, ev.CLUSTER_REROUTE) and e.args:
            logical = e.args["logical"]
            key = (e.args["replica"], e.args["shadow"])
            shadow_to_logical[key] = logical
            final_shadow[logical] = key  # buffer order is recording order
            hops[logical] = hops.get(logical, 0) + 1
    return shadow_to_logical, hops, final_shadow


def _analyze(all_events: List[TraceEvent]) -> CriticalPath:
    shadow_to_logical, hops, final_shadow = build_shadow_map(all_events)

    # Group events by logical request.  Task/batch spans list their member
    # request ids in args["requests"]; lifecycle events carry request_id.
    by_request: Dict[int, List[Tuple[TraceEvent, int]]] = {}

    def _credit(event: TraceEvent, rid: Optional[int]) -> None:
        if rid is None:
            return
        key = shadow_to_logical.get((event.replica_id, rid), rid) \
            if event.replica_id is not None else rid
        by_request.setdefault(key, []).append((event, rid))

    for e in all_events:
        if e.request_id is not None:
            _credit(e, e.request_id)
        if e.args and "requests" in e.args:
            for rid in e.args["requests"]:
                _credit(e, rid)

    breakdowns: List[RequestBreakdown] = []
    rejected = 0
    for logical, pairs in sorted(by_request.items()):
        result = _analyze_request(
            logical, pairs, final_shadow.get(logical), hops.get(logical, 0)
        )
        if result is None:
            continue
        if result.outcome == "rejected":
            rejected += 1
        else:
            breakdowns.append(result)
    return CriticalPath(breakdowns, rejected=rejected)


def _analyze_request(
    logical: int,
    pairs: List[Tuple[TraceEvent, int]],
    final_shadow: Optional[Tuple[Optional[int], int]],
    hops: int,
) -> Optional[RequestBreakdown]:
    arrival: Optional[float] = None
    terminal: Optional[TraceEvent] = None
    terminal_rank = -1
    for e, rid in pairs:
        if e.name == ev.REQUEST_ARRIVAL:
            if arrival is None or e.ts < arrival:
                arrival = e.ts
        elif e.name in ev.TERMINAL_EVENTS:
            # A shadow on a dead replica may record a teardown terminal the
            # cluster discarded — authoritative is, in order: the cluster's
            # own terminal (total-loss rejection), the final shadow's
            # terminal, then whatever is latest.
            if e.replica_id is None and final_shadow is not None:
                rank = 2
            elif final_shadow is None or (e.replica_id, rid) == final_shadow:
                rank = 1
            else:
                rank = 0
            if rank > terminal_rank or (
                rank == terminal_rank and terminal is not None and e.ts >= terminal.ts
            ):
                terminal = e
                terminal_rank = rank

    if arrival is None or terminal is None:
        return None  # sampled-out or still in flight at drain
    if terminal.name == ev.REQUEST_REJECTED:
        return RequestBreakdown(
            logical, "rejected", arrival, terminal.ts, hops,
            {b: 0.0 for b in ev.BUCKETS},
        )

    # Classified intervals, clipped later to [arrival, terminal].
    intervals: List[Tuple[float, float, int]] = []

    def _add(start: float, end: float, cls: str) -> None:
        if end > start:
            intervals.append((start, end, _PRIORITY[cls]))

    for e, rid in pairs:
        if e.kind != SPAN:
            continue
        # Work done under a shadow that is not the final one is wasted
        # cross-replica work (the request was re-routed away from it):
        # charge it to routing.
        if final_shadow is not None and e.replica_id is not None and \
                (e.replica_id, rid) != final_shadow:
            _add(e.ts, e.end, ev.ROUTING)
            continue
        if e.cat == ev.RETRY:
            _add(e.ts, e.end, ev.RETRY)
        elif e.name == ev.TASK:
            overhead = 0.0
            if e.args:
                overhead = e.args.get("gather", 0.0) + e.args.get("migration", 0.0)
            overhead = min(overhead, e.dur)
            _add(e.ts, e.ts + overhead, ev.GATHER)
            _add(e.ts + overhead, e.end, ev.COMPUTE)
        elif e.name == ev.BATCH:
            pad = 0.0
            if e.args and "padding" in e.args:
                idx = list(e.args["requests"]).index(rid)
                pad = min(e.args["padding"][idx], e.dur)
            _add(e.ts, e.end - pad, ev.COMPUTE)
            _add(e.end - pad, e.end, ev.PADDING)
        elif e.cat in _PRIORITY:
            _add(e.ts, e.end, e.cat)

    buckets = _sweep(arrival, terminal.ts, intervals)
    outcome = "finished" if terminal.name == ev.REQUEST_FINISHED else "timed_out"
    return RequestBreakdown(logical, outcome, arrival, terminal.ts, hops, buckets)


def _sweep(
    arrival: float, end: float, intervals: List[Tuple[float, float, int]]
) -> Dict[str, float]:
    """Charge each elementary segment of [arrival, end] to one bucket."""
    rank_to_bucket = {rank: bucket for bucket, rank in _PRIORITY.items()}
    buckets = {b: 0.0 for b in ev.BUCKETS}

    clipped = []
    bounds = {arrival, end}
    for start, stop, rank in intervals:
        start = max(start, arrival)
        stop = min(stop, end)
        if stop > start:
            clipped.append((start, stop, rank))
            bounds.add(start)
            bounds.add(stop)

    ordered = sorted(bounds)
    for a, b in zip(ordered, ordered[1:]):
        best: Optional[int] = None
        for start, stop, rank in clipped:
            if start <= a and stop >= b and (best is None or rank < best):
                best = rank
        bucket = ev.QUEUE if best is None else rank_to_bucket[best]
        buckets[bucket] += b - a
    return buckets

"""The trace recorder: a ring buffer of typed events on the sim clock.

Design rules (DESIGN.md §12):

* **Determinism-safe.**  Recording an event only appends to a deque and
  reads ``loop.now()`` — it never schedules loop events, never reads wall
  time, never mutates engine state.  A traced run is therefore
  bit-identical (outcome fingerprints, batch compositions, retry timing)
  to an untraced run by construction.
* **Zero-cost when off.**  Instrumentation sites guard with
  ``if self.trace is not None:`` so the disabled path is one attribute
  load and a branch — no allocation, no call.
* **Bounded.**  The buffer is a ``collections.deque(maxlen=capacity)``;
  long runs keep the most recent ``capacity`` events.
* **Sampled.**  ``sample_every=k`` keeps request-scoped events for
  requests with ``request_id % k == 0`` (deterministic — it depends only
  on the id, not on arrival order or wall time).  Device/scheduler/cluster
  events without a request id are always kept.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, List, Optional

from repro.sim.timebase import sim_now

from .events import INSTANT, SPAN, TraceEvent

DEFAULT_CAPACITY = 1_000_000


class TraceScope:
    """A recorder view bound to one replica (or the standalone engine).

    Components hold a scope, not the recorder: the scope stamps every
    event with its ``replica_id`` so cluster traces keep per-replica
    lineage without each call site threading the id through.
    """

    __slots__ = ("recorder", "replica_id")

    def __init__(self, recorder: "TraceRecorder", replica_id: Optional[int] = None):
        self.recorder = recorder
        self.replica_id = replica_id

    def now(self) -> float:
        return self.recorder.now()

    def instant(
        self,
        name: str,
        cat: str,
        request_id: Optional[int] = None,
        device_id: Optional[int] = None,
        task_id: Optional[int] = None,
        args: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        self.recorder._record(
            TraceEvent(
                INSTANT, name, cat,
                self.recorder.now() if ts is None else ts,
                0.0, self.replica_id, device_id, request_id, task_id, args,
            )
        )

    def span(
        self,
        name: str,
        cat: str,
        ts: float,
        dur: float,
        request_id: Optional[int] = None,
        device_id: Optional[int] = None,
        task_id: Optional[int] = None,
        args: Optional[dict] = None,
    ) -> None:
        self.recorder._record(
            TraceEvent(
                SPAN, name, cat, ts, dur,
                self.replica_id, device_id, request_id, task_id, args,
            )
        )


class TraceRecorder:
    """Collects :class:`TraceEvent` records from every layer of one run."""

    def __init__(
        self,
        clock,
        capacity: int = DEFAULT_CAPACITY,
        sample_every: int = 1,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self._clock = clock
        self.capacity = capacity
        self.sample_every = sample_every
        self._events: deque = deque(maxlen=capacity)
        self.dropped = 0

    # -- time ---------------------------------------------------------------
    def now(self) -> float:
        return sim_now(self._clock)

    # -- sampling -----------------------------------------------------------
    def sampled(self, request_id: Optional[int]) -> bool:
        """Whether events for ``request_id`` are kept under the sampling rate.

        Deterministic: depends only on the id.  ``None`` (device/cluster
        scoped events) is always kept.
        """
        if request_id is None or self.sample_every == 1:
            return True
        return request_id % self.sample_every == 0

    # -- recording ----------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        if not self.sampled(event.request_id):
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def scope(self, replica_id: Optional[int] = None) -> TraceScope:
        return TraceScope(self, replica_id)

    # -- access -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        name: Optional[str] = None,
        cat: Optional[str] = None,
        replica_id: Any = "*",
    ) -> List[TraceEvent]:
        """Events filtered by name/category/replica (``"*"`` = any replica)."""
        out = []
        for ev in self._events:
            if name is not None and ev.name != name:
                continue
            if cat is not None and ev.cat != cat:
                continue
            if replica_id != "*" and ev.replica_id != replica_id:
                continue
            out.append(ev)
        return out

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Bulk-append pre-built events (used by tests and the bench)."""
        for ev in events:
            self._record(ev)

    # -- export -------------------------------------------------------------
    def export_chrome(self, path) -> int:
        """Write the buffer as Chrome trace-event JSON; returns event count."""
        from .chrome import export_chrome

        return export_chrome(self, path)

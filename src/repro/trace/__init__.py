"""repro.trace — end-to-end request tracing and latency attribution.

The observability layer for the cellular-batching stack: a determinism-
safe :class:`TraceRecorder` threaded through the engine, GPU devices,
fault handling, and the cluster; a Chrome trace-event exporter
(:func:`export_chrome`) viewable in Perfetto; and a :class:`CriticalPath`
analyzer that splits each request's end-to-end latency into
``queue / compute / gather / padding / retry / routing`` buckets.

See DESIGN.md §12 for the span model and determinism rules.
"""

from .critical import CriticalPath, RequestBreakdown, build_shadow_map
from .chrome import export_chrome, validate_chrome
from .events import BUCKETS, INSTANT, SPAN, TraceEvent
from .recorder import DEFAULT_CAPACITY, TraceRecorder, TraceScope
from .session import (
    TraceSession,
    active_session,
    end_session,
    start_session,
)

__all__ = [
    "BUCKETS",
    "CriticalPath",
    "DEFAULT_CAPACITY",
    "INSTANT",
    "RequestBreakdown",
    "SPAN",
    "TraceEvent",
    "TraceRecorder",
    "TraceScope",
    "TraceSession",
    "active_session",
    "build_shadow_map",
    "end_session",
    "export_chrome",
    "start_session",
    "validate_chrome",
]

"""Process-global trace session behind the ``--trace PATH`` CLI flag.

A session says "trace every server built from now on, and write Chrome
trace files derived from this base path".  Servers auto-attach at
construction (``InferenceServer._autotrace``), recorders are shared per
event loop (so a cluster and its replicas on one loop record into a
single buffer), and the experiment harness flushes one deterministically
named file per (experiment, server, load point).

The naming rule is what makes ``--trace`` compose with ``--jobs``: a
sweep's fork workers each execute whole load points and derive the file
name from ``(context, server name, rate)`` alone — never from worker
identity, wall time, or pool scheduling — so a parallel sweep writes the
same file set as a serial one.
"""

from __future__ import annotations

import re
import weakref
from pathlib import Path
from typing import List, Optional

from .recorder import DEFAULT_CAPACITY, TraceRecorder


class TraceSession:
    """One ``--trace`` invocation: shared recorders + file-name policy."""

    def __init__(
        self,
        base_path,
        sample_every: int = 1,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.base = Path(base_path)
        self.sample_every = sample_every
        self.capacity = capacity
        self.context = "run"
        self.written: List[Path] = []
        # Weak keys: a recorder lives only as long as its event loop, so a
        # long sweep does not accumulate one buffer per finished point.
        self._recorders: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def set_context(self, name: str) -> None:
        """Label the current experiment (prefixes every flushed file name)."""
        self.context = name

    def recorder_for(self, loop) -> TraceRecorder:
        """The shared recorder for ``loop`` (created on first use)."""
        recorder = self._recorders.get(loop)
        if recorder is None:
            recorder = TraceRecorder(
                loop, capacity=self.capacity, sample_every=self.sample_every
            )
            self._recorders[loop] = recorder
        return recorder

    def trace_path(self, label: str) -> Path:
        """Deterministic output path for one flushed run."""
        slug = _slug(f"{self.context}_{label}")
        if self.base.suffix == ".json":
            return self.base.with_name(f"{self.base.stem}_{slug}.json")
        return self.base / f"{slug}.json"

    def flush(self, recorder: TraceRecorder, label: str) -> Path:
        """Export ``recorder`` to its deterministic path and clear it."""
        path = self.trace_path(label)
        path.parent.mkdir(parents=True, exist_ok=True)
        recorder.export_chrome(path)
        recorder.clear()
        self.written.append(path)
        return path


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")


_SESSION: Optional[TraceSession] = None


def start_session(
    base_path, sample_every: int = 1, capacity: int = DEFAULT_CAPACITY
) -> TraceSession:
    global _SESSION
    _SESSION = TraceSession(base_path, sample_every=sample_every, capacity=capacity)
    return _SESSION


def end_session() -> Optional[TraceSession]:
    global _SESSION
    session, _SESSION = _SESSION, None
    return session


def active_session() -> Optional[TraceSession]:
    return _SESSION

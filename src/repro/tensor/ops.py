"""Tensor operators used by the RNN cells.

Every operator is a plain function on ``numpy.ndarray`` values.  The batch
dimension is always axis 0; this is the invariant cellular batching relies
on — stacking per-request rows along axis 0, running one batched kernel and
splitting the result rows back out is bit-identical to running the requests
one at a time (all ops here are row-wise or affine in the batch dimension).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product; ``a`` is (batch, k), ``b`` is (k, n)."""
    return a @ b


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition with broadcasting (used for bias terms)."""
    return a + b


def multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise (Hadamard) product."""
    return a * b


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    Computed directly in the input's floating dtype (one output buffer, no
    float64 round-trip); the split at zero keeps every ``exp`` argument
    non-positive, so it never overflows even at x = ±500.
    """
    x = np.asarray(x)
    compute_dtype = x.dtype if x.dtype.kind == "f" else np.float64
    out = np.empty(x.shape, dtype=compute_dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos], dtype=compute_dtype))
    ex = np.exp(x[~pos], dtype=compute_dtype)
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False) if out.dtype != x.dtype else out


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shift-invariant softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log of softmax, computed stably."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


def argmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Index of the maximum along ``axis``.

    The paper implements an optimised argmax CUDA kernel for the Seq2Seq
    decoder's feed-previous loop; this is its NumPy counterpart.
    """
    return np.argmax(x, axis=axis)


def concat(tensors: Sequence[np.ndarray], axis: int = -1) -> np.ndarray:
    """Concatenate tensors along ``axis``."""
    return np.concatenate(list(tensors), axis=axis)


def split(x: np.ndarray, sections: int, axis: int = -1) -> list:
    """Split ``x`` into ``sections`` equal parts along ``axis``."""
    return np.split(x, sections, axis=axis)


def embedding_lookup(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Row lookup: ``table`` is (vocab, dim), ``ids`` is (batch,) of ints."""
    ids = np.asarray(ids)
    if ids.ndim != 1:
        raise ValueError(f"ids must be 1-D (batch,), got shape {ids.shape}")
    if ids.size and (ids.min() < 0 or ids.max() >= table.shape[0]):
        raise IndexError(
            f"embedding id out of range [0, {table.shape[0]}): "
            f"min={ids.min()}, max={ids.max()}"
        )
    return table[ids]


def stack_rows(rows: Sequence[np.ndarray]) -> np.ndarray:
    """Gather: stack per-request rows into one batched tensor (axis 0).

    Each row may be shape (d,) or (1, d); the result is (batch, d).  This is
    the NumPy analogue of the contiguous-memory "gather" copy the paper
    performs before a batched kernel launch.
    """
    prepared = []
    for row in rows:
        arr = np.asarray(row)
        if arr.ndim >= 2 and arr.shape[0] == 1:
            arr = arr[0]
        prepared.append(arr)
    return np.stack(prepared, axis=0)


def split_rows(batched: np.ndarray) -> list:
    """Scatter: split a batched tensor back into per-request rows."""
    return [batched[i] for i in range(batched.shape[0])]

"""Parameter (weight) management.

BatchMaker loads pre-trained weights from files at startup and "embeds" them
into cells so that weights are internal state rather than inputs.  This
module is the weight store behind that: seeded initialisers (so examples and
tests are reproducible), named parameter groups, and ``.npz`` save/load so a
"training" program can hand weights to the serving system the way the paper's
MXNet JSON/params files do.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np


def glorot_uniform(
    rng: np.random.Generator, shape: Tuple[int, ...], dtype=np.float32
) -> np.ndarray:
    """Glorot/Xavier uniform initialiser, the default for gate weights."""
    if len(shape) < 2:
        fan_in = fan_out = int(shape[0]) if shape else 1
    else:
        fan_in, fan_out = int(shape[0]), int(shape[1])
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)


def orthogonal(
    rng: np.random.Generator, shape: Tuple[int, ...], dtype=np.float32
) -> np.ndarray:
    """Orthogonal initialiser, commonly used for recurrent weights."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal init requires a 2-D shape, got {shape}")
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].astype(dtype)


class ParameterStore:
    """A flat, named collection of weight arrays.

    Names are hierarchical strings like ``"encoder/lstm/W"``.  The store is
    deliberately simple — a dict with seeded creation helpers and npz
    persistence — because inference never mutates weights.
    """

    def __init__(self, seed: Optional[int] = 0):
        self._params: Dict[str, np.ndarray] = {}
        self._rng = np.random.default_rng(seed)

    # -- creation ---------------------------------------------------------

    def create(
        self,
        name: str,
        shape: Tuple[int, ...],
        init: str = "glorot",
        dtype=np.float32,
    ) -> np.ndarray:
        """Create and register a parameter; returns the array.

        ``init`` is one of ``glorot``, ``orthogonal``, ``zeros``, ``normal``.
        Creating a name twice is an error (weights are immutable identities).
        """
        if name in self._params:
            raise KeyError(f"parameter {name!r} already exists")
        if init == "glorot":
            value = glorot_uniform(self._rng, shape, dtype)
        elif init == "orthogonal":
            value = orthogonal(self._rng, shape, dtype)
        elif init == "zeros":
            value = np.zeros(shape, dtype=dtype)
        elif init == "normal":
            value = (0.1 * self._rng.standard_normal(shape)).astype(dtype)
        else:
            raise ValueError(f"unknown initialiser {init!r}")
        self._params[name] = value
        return value

    def put(self, name: str, value: np.ndarray) -> np.ndarray:
        """Register an externally produced array under ``name``."""
        if name in self._params:
            raise KeyError(f"parameter {name!r} already exists")
        self._params[name] = np.asarray(value)
        return self._params[name]

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> np.ndarray:
        if name not in self._params:
            raise KeyError(f"unknown parameter {name!r}")
        return self._params[name]

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __len__(self) -> int:
        return len(self._params)

    def names(self) -> Iterator[str]:
        return iter(sorted(self._params))

    def total_size(self) -> int:
        """Total number of scalar weights across all parameters."""
        return sum(int(p.size) for p in self._params.values())

    # -- persistence ------------------------------------------------------

    def save(self, path) -> None:
        """Serialise all parameters to an ``.npz`` archive."""
        np.savez(Path(path), **self._params)

    @classmethod
    def load(cls, path) -> "ParameterStore":
        """Load a store previously written by :meth:`save`."""
        store = cls()
        with np.load(Path(path)) as archive:
            for name in archive.files:
                store._params[name] = archive[name]
        return store

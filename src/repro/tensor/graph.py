"""A small static dataflow-graph representation.

The paper defines each RNN cell as a dataflow graph exported to JSON from
MXNet/TensorFlow.  This module is the equivalent here: a cell body can be
described as a :class:`DataflowGraph` of named operators over placeholders
and parameters, executed by topological sort.  The worker uses the graph's
operator count to model per-operator kernel launches, and the JSON round-trip
mirrors the paper's "save the cell's dataflow graph in a JSON file" user
interface.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.tensor import ops

# Registry of operators a graph may reference by name.  Kept explicit so a
# JSON file can only name vetted functions.
OP_REGISTRY: Dict[str, Callable] = {
    "matmul": ops.matmul,
    "add": ops.add,
    "multiply": ops.multiply,
    "sigmoid": ops.sigmoid,
    "tanh": ops.tanh,
    "relu": ops.relu,
    "softmax": ops.softmax,
    "log_softmax": ops.log_softmax,
    "argmax": ops.argmax,
    "concat": lambda *xs: ops.concat(xs, axis=-1),
    "embedding_lookup": ops.embedding_lookup,
}


class Placeholder:
    """A named external input to the graph (batch dimension is axis 0)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Placeholder({self.name!r})"


class OpSpec:
    """Declaration of one operator application inside a graph."""

    __slots__ = ("name", "op", "inputs")

    def __init__(self, name: str, op: str, inputs: Sequence[str]):
        if op not in OP_REGISTRY:
            raise ValueError(f"unknown operator {op!r}")
        self.name = name
        self.op = op
        self.inputs = list(inputs)


class OpNode:
    """An operator instance with resolved input references."""

    __slots__ = ("spec",)

    def __init__(self, spec: OpSpec):
        self.spec = spec


class DataflowGraph:
    """A static graph: placeholders + parameters -> named outputs.

    Construction is declarative; :meth:`run` executes in a topological order
    computed once and cached.  Cycles are rejected at finalisation.
    """

    def __init__(self, name: str):
        self.name = name
        self.placeholders: List[str] = []
        self.param_names: List[str] = []
        self.op_specs: List[OpSpec] = []
        self.outputs: List[str] = []
        self._order: Optional[List[OpSpec]] = None

    # -- construction -----------------------------------------------------

    def placeholder(self, name: str) -> str:
        self._check_fresh(name)
        self.placeholders.append(name)
        return name

    def parameter(self, name: str) -> str:
        self._check_fresh(name)
        self.param_names.append(name)
        return name

    def op(self, name: str, op: str, *inputs: str) -> str:
        self._check_fresh(name)
        self.op_specs.append(OpSpec(name, op, inputs))
        self._order = None
        return name

    def output(self, name: str) -> None:
        if name in self.outputs:
            raise ValueError(f"{name!r} is already an output")
        self.outputs.append(name)

    def _check_fresh(self, name: str) -> None:
        if name in self.placeholders or name in self.param_names or any(
            s.name == name for s in self.op_specs
        ):
            raise ValueError(f"name {name!r} already defined in graph {self.name!r}")

    # -- analysis ---------------------------------------------------------

    def num_operators(self) -> int:
        """Number of operator applications (== GPU kernels per execution)."""
        return len(self.op_specs)

    def topological_order(self) -> List[OpSpec]:
        """Return op specs in dependency order; raises on cycles/dangling refs."""
        if self._order is not None:
            return self._order
        known = set(self.placeholders) | set(self.param_names)
        by_name = {s.name: s for s in self.op_specs}
        for spec in self.op_specs:
            for ref in spec.inputs:
                if ref not in known and ref not in by_name:
                    raise ValueError(
                        f"op {spec.name!r} references undefined value {ref!r}"
                    )
        order: List[OpSpec] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            if name in known or state.get(name) == 1:
                return
            if state.get(name) == 0:
                raise ValueError(f"cycle detected through {name!r}")
            state[name] = 0
            spec = by_name[name]
            for ref in spec.inputs:
                visit(ref)
            state[name] = 1
            order.append(spec)

        for spec in self.op_specs:
            visit(spec.name)
        self._order = order
        return order

    # -- execution --------------------------------------------------------

    def run(
        self,
        inputs: Dict[str, np.ndarray],
        params: Dict[str, np.ndarray],
    ) -> Dict[str, np.ndarray]:
        """Execute the graph; returns a dict of the declared outputs."""
        missing = [p for p in self.placeholders if p not in inputs]
        if missing:
            raise KeyError(f"missing graph inputs: {missing}")
        env: Dict[str, np.ndarray] = {}
        env.update({p: inputs[p] for p in self.placeholders})
        for pname in self.param_names:
            if pname not in params:
                raise KeyError(f"missing parameter {pname!r}")
            env[pname] = params[pname]
        for spec in self.topological_order():
            fn = OP_REGISTRY[spec.op]
            env[spec.name] = fn(*[env[ref] for ref in spec.inputs])
        for out in self.outputs:
            if out not in env:
                raise ValueError(f"declared output {out!r} was never computed")
        return {out: env[out] for out in self.outputs}

    # -- JSON round trip (paper's cell-definition interface) ---------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "placeholders": self.placeholders,
                "parameters": self.param_names,
                "ops": [
                    {"name": s.name, "op": s.op, "inputs": s.inputs}
                    for s in self.op_specs
                ],
                "outputs": self.outputs,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "DataflowGraph":
        data = json.loads(text)
        graph = cls(data["name"])
        for p in data["placeholders"]:
            graph.placeholder(p)
        for p in data["parameters"]:
            graph.parameter(p)
        for o in data["ops"]:
            graph.op(o["name"], o["op"], *o["inputs"])
        for out in data["outputs"]:
            graph.output(out)
        graph.topological_order()  # validate
        return graph

"""Forward-only NumPy neural-network substrate.

The paper builds BatchMaker on MXNet's kernel library; this package is the
equivalent substrate here.  It provides the tensor operators RNN cells need
(`ops`), a tiny static dataflow-graph representation with shape inference and
topological execution (`graph`), and a parameter store with seeded
initialisation and save/load (`parameters`).

Only inference (forward) is implemented — BatchMaker is an inference system
and never computes gradients.
"""

from repro.tensor import ops
from repro.tensor.graph import DataflowGraph, OpNode, OpSpec, Placeholder
from repro.tensor.parameters import ParameterStore, glorot_uniform, orthogonal

__all__ = [
    "ops",
    "DataflowGraph",
    "OpNode",
    "OpSpec",
    "Placeholder",
    "ParameterStore",
    "glorot_uniform",
    "orthogonal",
]

"""The three policy interfaces and the bundle that groups them.

Policies are deliberately thin protocols over the scheduler's *mechanism*
(queues, ready counters, eligibility indexes, pin bookkeeping): a policy
decides, the scheduler/manager machinery executes.  Every instance is
per-server state — construct a fresh bundle per server, never share one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # typing only — core imports this package at runtime
    from repro.core.scheduler import CellTypeQueue
    from repro.core.subgraph import Subgraph
    from repro.core.task import BatchedTask
    from repro.core.worker import Worker

Plan = List[Tuple["Subgraph", int]]


class QueuePriorityPolicy:
    """Which cell-type queue does the next scheduling round serve?"""

    name = "abstract"

    def select(
        self, queues: Sequence["CellTypeQueue"]
    ) -> Optional["CellTypeQueue"]:
        """Pick the queue to batch from, or None when nothing is ready.
        Must be deterministic in the queues' observable state."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PlacementPolicy:
    """Where a subgraph's work runs, and what moving it costs.

    ``optimistic`` tells the request machinery whether internal
    dependencies may advance at *submission* (safe only when every task of
    a subgraph lands on one device, whose FIFO stream order then satisfies
    them — the point of pinning) or must wait for completion.
    """

    name = "abstract"
    optimistic = True

    # Bytes of live state per subgraph hop (h and c vectors at h=1024,
    # fp32) — what a cross-device migration must copy.
    HIDDEN_STATE_BYTES = 2 * 1024 * 4

    def prepare(self, num_workers: int) -> None:
        """Called once by the manager before serving starts."""

    def on_admit(self, sg: "Subgraph") -> None:
        """A released subgraph enters the scheduler's queues."""
        sg.optimistic = self.optimistic

    def bind(self, sg: "Subgraph", worker_id: int) -> None:
        """Nodes of ``sg`` were committed to a task on ``worker_id``."""
        raise NotImplementedError

    def migration_cost(self, task: "BatchedTask", worker: "Worker") -> float:
        """Cross-device copy cost of running ``task`` on ``worker``: charged
        for every subgraph whose live state sits on a different GPU."""
        cost = 0.0
        for subgraph in task.subgraphs():
            if (
                subgraph.last_worker is not None
                and subgraph.last_worker != worker.worker_id
            ):
                cost += worker.device.copy_cost(self.HIDDEN_STATE_BYTES)
        return cost

    def retry_target(
        self, task: "BatchedTask", workers: Sequence["Worker"]
    ) -> Optional["Worker"]:
        """Deterministic retry placement: the original worker when it still
        lives, else the first surviving worker after it in id order."""
        origin = task.worker_id if task.worker_id is not None else 0
        n = len(workers)
        for offset in range(n):
            worker = workers[(origin + offset) % n]
            if worker.alive:
                return worker
        return None

    def on_retry(self, task: "BatchedTask", target: "Worker") -> None:
        """A failed task is about to re-run on ``target`` — fix up any
        placement state (pins) before submission."""

    def on_device_failed(self, dead_worker_id: int) -> None:
        """A device died — drop it from any placement state the policy
        keeps, so future admissions avoid it."""

    def replacement_for(
        self, dead_worker_id: int, workers: Sequence["Worker"]
    ) -> Optional["Worker"]:
        """Survivor that inherits a dead device's queued work: the first
        alive worker after it in id order."""
        n = len(workers)
        for offset in range(1, n + 1):
            worker = workers[(dead_worker_id + offset) % n]
            if worker.alive:
                return worker
        return None

    def repin_target(
        self, sg: "Subgraph", dead_worker_id: int, replacement: Optional[int]
    ) -> Optional[int]:
        """New pin for a queued subgraph stranded on a dead device."""
        return replacement

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class BatchFormationPolicy:
    """Which ready nodes of the chosen queue form the next batched task."""

    name = "abstract"

    def form(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        """Plan (without committing) ``(subgraph, node_count)`` takes, up to
        the queue's max batch.  Planning must leave the queue's observable
        state unchanged — the caller may decline the plan under the
        min-batch rule."""
        raise NotImplementedError

    def attach_engine(self, manager) -> None:
        """The owning manager introduces itself (once, at construction).
        SLA-aware policies that need the clock, the SLA config or a poke
        handle hook this; the default policies ignore it."""

    def on_subgraph_removed(
        self, queue: "CellTypeQueue", sg: "Subgraph"
    ) -> None:
        """``sg`` left ``queue`` (exhausted or evicted).  Policies keeping
        their own indexes hook this; the default lazy-staleness indexes
        need nothing."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class PolicyBundle:
    """One policy of each kind, as the scheduler and manager consume them."""

    def __init__(
        self,
        priority: QueuePriorityPolicy,
        placement: PlacementPolicy,
        formation: BatchFormationPolicy,
    ):
        self.priority = priority
        self.placement = placement
        self.formation = formation

    @classmethod
    def from_config(cls, config) -> "PolicyBundle":
        """The paper's defaults for a :class:`BatchingConfig`: three-tier
        priority, pinning on/off per ``config.pinning``, FIFO formation on
        the fast or brute-force path per ``config.fast_path``.  Runs are
        bit-identical to the pre-policy-layer engine."""
        from repro.policies.defaults import (
            PaperBatchFormation,
            PaperQueuePriority,
            PinnedPlacement,
        )
        from repro.policies.variants import UnpinnedPlacement

        return cls(
            priority=PaperQueuePriority(),
            placement=(
                PinnedPlacement() if config.pinning else UnpinnedPlacement()
            ),
            formation=PaperBatchFormation(
                fast_path=getattr(config, "fast_path", True)
            ),
        )

    def names(self) -> dict:
        """Registry names of the three policies (spec serialisation)."""
        return {
            "priority": self.priority.name,
            "placement": self.placement.name,
            "formation": self.formation.name,
        }

    def __repr__(self) -> str:
        return (
            f"<PolicyBundle priority={self.priority.name!r} "
            f"placement={self.placement.name!r} "
            f"formation={self.formation.name!r}>"
        )

"""The paper's default policies — Algorithm 1, verbatim.

Each class transplants the exact logic the scheduler/manager hard-wired
before the policy layer existed; fixed-seed runs through these defaults
are bit-identical to that engine (``tests/test_policies.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

try:  # backs the vectorized tier selection; optional
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

from repro.policies.base import (
    BatchFormationPolicy,
    Plan,
    PlacementPolicy,
    QueuePriorityPolicy,
)

if TYPE_CHECKING:
    from repro.core.scheduler import CellTypeQueue
    from repro.core.subgraph import Subgraph
    from repro.core.worker import Worker


class PaperQueuePriority(QueuePriorityPolicy):
    """Algorithm 1 lines 5-10: (a) cell types with at least a full maximum
    batch of ready nodes; else (b) cell types with ready nodes and no
    running tasks; else (c) any cell type with ready nodes.  Ties break by
    configured priority (decoder > encoder, internal > leaf), then by name
    for determinism."""

    name = "paper"

    def select(
        self, queues: Sequence["CellTypeQueue"]
    ) -> Optional["CellTypeQueue"]:
        if queues:
            arrays = getattr(queues[0], "arrays", None)
            if arrays is not None and arrays.queues is queues:
                return self._select_vector(queues, arrays)
        return self.select_reference(queues)

    @staticmethod
    def _select_vector(queues, arrays) -> Optional["CellTypeQueue"]:
        """The three tiers over the scheduler's :class:`QueueArrays`
        mirrors: boolean masks per tier, winner = first masked slot in the
        precomputed (priority, name)-descending order — the vector form of
        the scalar ``max`` below, same winner bit for bit."""
        ready = arrays.ready
        nonzero = ready > 0
        if not nonzero.any():
            return None
        mask = ready >= arrays.max_batch
        if not mask.any():
            mask = nonzero & (arrays.running == 0)
            if not mask.any():
                mask = nonzero
        order = arrays.order
        return queues[int(order[_np.argmax(mask[order])])]

    @staticmethod
    def select_reference(
        queues: Sequence["CellTypeQueue"],
    ) -> Optional["CellTypeQueue"]:
        """Scalar reference scan — the oracle the vectorized path is held
        bit-identical to (``tests/test_scheduler_equivalence.py``)."""
        candidates = [
            q for q in queues if q.num_ready_nodes() >= q.config.max_batch
        ]
        if not candidates:
            candidates = [
                q
                for q in queues
                if q.running_tasks == 0 and q.num_ready_nodes() > 0
            ]
        if not candidates:
            candidates = [q for q in queues if q.num_ready_nodes() > 0]
        if not candidates:
            return None
        return max(
            candidates, key=lambda q: (q.config.priority, q.cell_type.name)
        )


class PinnedPlacement(PlacementPolicy):
    """§4.3 locality: the first task binds a subgraph to its worker; until
    its in-flight count returns to zero, follow-up tasks are only eligible
    there — so FIFO stream order resolves internal dependencies
    optimistically and no hidden state ever crosses devices."""

    name = "pinned"
    optimistic = True

    def bind(self, sg: "Subgraph", worker_id: int) -> None:
        sg.pin(worker_id)

    def on_retry(self, task, target: "Worker") -> None:
        # The retry may land on a survivor other than the dead original;
        # drag the affected subgraphs' pins along so their queued remainder
        # stays on one device.
        for sg in task.subgraphs():
            sg.repin(target.worker_id)


class PaperBatchFormation(BatchFormationPolicy):
    """Algorithm 1's ``FormBatchedTask``: scan eligible subgraphs (ready
    nodes, unpinned or pinned to the requesting worker) in arrival order,
    taking ready nodes until the maximum batch size is reached.

    ``fast_path=True`` walks the queue's lazy eligibility heaps (O(batch +
    stale entries)); ``fast_path=False`` is the retained brute-force FIFO
    scan (O(queue)).  Both produce bit-identical plans.
    """

    name = "paper"

    def __init__(self, fast_path: bool = True):
        self.fast_path = fast_path

    def form(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        if not self.fast_path:
            return self._form_reference(queue, worker)
        plan: Plan = []
        budget = queue.config.max_batch
        while budget > 0:
            sg = queue.pop_eligible(worker.worker_id)
            if sg is None:
                break
            take = min(sg.ready_count(), budget)
            plan.append((sg, take))
            budget -= take
        # Planning must not mutate queue state (the caller may decline the
        # plan under the min-batch rule), so restore every popped entry;
        # ``queue_seq`` keys keep the FIFO order intact.
        for sg, _ in plan:
            queue.reinsert(sg)
        return plan

    def _form_reference(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        """Brute-force reference: full FIFO scan past ineligible subgraphs
        (the pre-optimisation implementation, kept for the equivalence test
        and as the benchmark baseline)."""
        plan: Plan = []
        budget = queue.config.max_batch
        for sg in queue.subgraphs.values():
            if budget == 0:
                break
            if sg.pinned is not None and sg.pinned != worker.worker_id:
                continue
            take = min(sg.ready_count(), budget)
            if take > 0:
                plan.append((sg, take))
                budget -= take
        return plan

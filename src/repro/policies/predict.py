"""Online latency prediction for SLA-aware scheduling.

The slack computation behind :class:`~repro.policies.slo.LazyKickPolicy`
(slack = deadline - now - predicted remaining service time) and the
cluster's ``predicted_delay`` routing metric both need a running estimate
of how long work takes.  :class:`LatencyPredictor` keeps that estimate as
a handful of EWMAs fed from three deterministic sources:

* **per-task observations** — the manager folds every completed task's
  per-node service time in (the same sample stream as its load-shedding
  EWMA);
* **per-request observations** — terminal requests contribute their
  end-to-end latency and its queue/compute split;
* **critical-path buckets** — :meth:`sync_from_trace` folds per-request
  :class:`~repro.trace.critical.RequestBreakdown` buckets from an attached
  :class:`~repro.trace.recorder.TraceRecorder`, so a traced run's
  queue/compute/gather/padding/retry/routing attribution refines the
  same estimates the online samples feed.

Every update is driven by a simulation event, never by the wall clock, so
predictor state is a pure function of the event sequence: serial and
``--jobs``-forked sweeps produce bit-identical predictions
(``tests/test_predictor.py`` holds this, plus the prediction properties:
finite, non-negative, monotone in queue depth).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.trace import events as trace_events

BUCKETS = trace_events.BUCKETS


def _usable(sample: float) -> bool:
    """Only finite, non-negative samples enter the EWMAs — the predictions
    inherit finiteness/non-negativity from the state, so garbage must be
    refused at the door."""
    return isinstance(sample, (int, float)) and math.isfinite(sample) and sample >= 0.0


class LatencyPredictor:
    """Deterministic EWMA state over observed service times.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; matches the manager's
        load-shedding estimate's responsiveness by default.
    """

    def __init__(self, alpha: float = 0.05):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = float(alpha)
        # Per-node service seconds (task duration / batch size).
        self.node_time = 0.0
        # Per-request end-to-end latency and its queue/compute split.
        self.request_latency = 0.0
        self.request_queue = 0.0
        self.request_service = 0.0
        # Mean gap between consecutive request completions — the observed
        # service *rate*, which turns an outstanding count into a wait
        # estimate by Little's law (wait ~ outstanding x gap).
        self.completion_gap = 0.0
        # Critical-path bucket means (queue/compute/gather/padding/retry/
        # routing), fed from traced runs.
        self.bucket_ewma: Dict[str, float] = {b: 0.0 for b in BUCKETS}
        self.tasks_observed = 0
        self.requests_observed = 0
        self.trace_requests_observed = 0

    # -- observation ---------------------------------------------------------

    def _fold(self, current: float, sample: float) -> float:
        if current == 0.0:
            return sample
        return current + self.alpha * (sample - current)

    def observe_task(self, duration: float, batch_size: int) -> None:
        """A batched task retired: fold its per-node service time."""
        if not batch_size or not _usable(duration):
            return
        self.node_time = self._fold(self.node_time, duration / batch_size)
        self.tasks_observed += 1

    def observe_request(
        self,
        latency: float,
        queue_time: Optional[float] = None,
        service_time: Optional[float] = None,
    ) -> None:
        """A request reached a terminal state: fold its latency (and, when
        known, the queue/compute split the request object carries)."""
        if not _usable(latency):
            return
        self.request_latency = self._fold(self.request_latency, latency)
        if queue_time is not None and _usable(queue_time):
            self.request_queue = self._fold(self.request_queue, queue_time)
        if service_time is not None and _usable(service_time):
            self.request_service = self._fold(self.request_service, service_time)
        self.requests_observed += 1

    def observe_gap(self, gap: float) -> None:
        """Seconds between two consecutive completions at the observed
        server: the reciprocal throughput behind the Little's-law wait."""
        if _usable(gap):
            self.completion_gap = self._fold(self.completion_gap, gap)

    def observe_buckets(self, buckets: Dict[str, float]) -> None:
        """Fold one request's critical-path bucket attribution."""
        for name in BUCKETS:
            sample = buckets.get(name)
            if sample is not None and _usable(sample):
                self.bucket_ewma[name] = self._fold(self.bucket_ewma[name], sample)

    def sync_from_trace(self, recorder) -> int:
        """Fold the per-request CriticalPath buckets of requests newly
        analysable from ``recorder``; returns how many were folded.  The
        analysis order is the recorder's deterministic event order, so
        repeated syncs fold each request exactly once (cursor on count)."""
        if recorder is None:
            return 0
        from repro.trace.critical import CriticalPath

        path = CriticalPath.from_recorder(recorder)
        fresh = path.requests[self.trace_requests_observed:]
        for breakdown in fresh:
            self.observe_buckets(breakdown.buckets)
            self.observe_request(breakdown.latency)
        self.trace_requests_observed += len(fresh)
        return len(fresh)

    # -- prediction ----------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether any observation has arrived (cold predictors predict 0,
        which callers treat as 'no information, do not delay/reject')."""
        return bool(
            self.tasks_observed
            or self.requests_observed
            or self.trace_requests_observed
        )

    def predicted_service(self, node_count: Optional[int] = None) -> float:
        """Predicted remaining service seconds for ``node_count`` still-
        uncomputed nodes (best available estimate when None): per-node EWMA
        scaled by the remaining work, falling back to the request-level
        compute estimates."""
        if node_count is not None and node_count >= 0 and self.node_time > 0.0:
            return node_count * self.node_time
        if self.request_service > 0.0:
            return self.request_service
        compute = self.bucket_ewma[trace_events.COMPUTE]
        if compute > 0.0:
            return compute
        return self.request_latency

    def predicted_queue_delay(self, queue_depth: float, backlog: float = 0.0) -> float:
        """Predicted seconds until a new arrival behind ``queue_depth``
        units of work completes, plus a known device ``backlog``.  The
        per-unit drain time is the observed inter-completion gap (Little's
        law: wait ~ outstanding x gap), falling back to per-node then
        per-request estimates when no gap has been observed.  Monotone
        non-decreasing in ``queue_depth`` by construction."""
        depth = max(0.0, float(queue_depth))
        base = max(0.0, float(backlog)) if math.isfinite(backlog) else 0.0
        if self.completion_gap > 0.0:
            per_unit = self.completion_gap
        elif self.node_time > 0.0:
            per_unit = self.node_time
        else:
            per_unit = self.request_latency
        return base + depth * per_unit

    def predicted_completion(
        self,
        now: float,
        queue_depth: float = 0.0,
        node_count: Optional[int] = None,
        backlog: float = 0.0,
    ) -> float:
        """Predicted absolute completion time of a request arriving now."""
        return (
            now
            + self.predicted_queue_delay(queue_depth, backlog=backlog)
            + self.predicted_service(node_count)
        )

    # -- identity ------------------------------------------------------------

    def state(self) -> tuple:
        """The full EWMA state as a hashable fingerprint (determinism
        tests compare serial vs forked sweeps on this)."""
        return (
            self.node_time,
            self.request_latency,
            self.request_queue,
            self.request_service,
            self.completion_gap,
            tuple(self.bucket_ewma[b] for b in BUCKETS),
            self.tasks_observed,
            self.requests_observed,
            self.trace_requests_observed,
        )

    def __repr__(self) -> str:
        return (
            f"<LatencyPredictor node={self.node_time * 1e6:.1f}us "
            f"request={self.request_latency * 1e3:.2f}ms "
            f"observed={self.tasks_observed}t/{self.requests_observed}r>"
        )

"""Bundled non-default policies: the §6 ablations as policy swaps.

These express the breakdown runs (`repro.experiments.ablations`) without
forking the engine: priority-off, locality-off, fixed placement and
no-mixing batch formation each replace exactly one seam of the bundle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.policies.base import (
    BatchFormationPolicy,
    Plan,
    PlacementPolicy,
    QueuePriorityPolicy,
)

if TYPE_CHECKING:
    from repro.core.scheduler import CellTypeQueue
    from repro.core.subgraph import Subgraph
    from repro.core.worker import Worker


class FlatQueuePriority(QueuePriorityPolicy):
    """Priority-off ablation: Algorithm 1's three tiers, but the configured
    per-cell-type priorities are ignored — ties break by name alone, so
    decoder-before-encoder (and internal-before-leaf) preferences vanish."""

    name = "flat"

    def select(
        self, queues: Sequence["CellTypeQueue"]
    ) -> Optional["CellTypeQueue"]:
        candidates = [
            q for q in queues if q.num_ready_nodes() >= q.config.max_batch
        ]
        if not candidates:
            candidates = [
                q
                for q in queues
                if q.running_tasks == 0 and q.num_ready_nodes() > 0
            ]
        if not candidates:
            candidates = [q for q in queues if q.num_ready_nodes() > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda q: q.cell_type.name)


class LongestQueueFirst(QueuePriorityPolicy):
    """Throughput-greedy selection (the E-BATCH-style family): always serve
    the queue with the most ready nodes, skipping the paper's starvation
    tier entirely."""

    name = "longest_queue"

    def select(
        self, queues: Sequence["CellTypeQueue"]
    ) -> Optional["CellTypeQueue"]:
        ready = [q for q in queues if q.num_ready_nodes() > 0]
        if not ready:
            return None
        return max(ready, key=lambda q: (q.num_ready_nodes(), q.cell_type.name))


class UnpinnedPlacement(PlacementPolicy):
    """Locality-off ablation: no subgraph-to-worker affinity.  Successive
    tasks of one subgraph may land on different workers and pay the
    cross-device copy cost; internal dependencies advance only on
    completion (no same-stream FIFO guarantee to rely on)."""

    name = "unpinned"
    optimistic = False

    def bind(self, sg: "Subgraph", worker_id: int) -> None:
        sg.inflight += 1


class FixedPlacement(PlacementPolicy):
    """Static placement ablation: each request is hashed to one worker at
    admission and all its subgraphs stay there for life (sticky pin).
    Locality is perfect but load balance is blind — the contrast against
    :class:`~repro.policies.defaults.PinnedPlacement`, whose pins follow
    the idle-driven schedule."""

    name = "fixed"
    optimistic = True

    def __init__(self):
        self._alive: List[int] = []

    def prepare(self, num_workers: int) -> None:
        self._alive = list(range(num_workers))

    def on_device_failed(self, dead_worker_id: int) -> None:
        if dead_worker_id in self._alive:
            self._alive.remove(dead_worker_id)

    def _home(self, request_id: int) -> Optional[int]:
        if not self._alive:
            return None
        return self._alive[request_id % len(self._alive)]

    def on_admit(self, sg: "Subgraph") -> None:
        sg.optimistic = self.optimistic
        home = self._home(sg.request.request_id)
        if home is not None:
            sg.sticky = True
            sg.repin(home)

    def bind(self, sg: "Subgraph", worker_id: int) -> None:
        # ``pin`` enforces the affinity invariant: committing a fixed
        # subgraph to any worker but its home is a bug, not a migration.
        sg.pin(worker_id)

    def retry_target(
        self, task, workers: Sequence["Worker"]
    ) -> Optional["Worker"]:
        for sg in task.subgraphs():
            home = self._home(sg.request.request_id)
            if home is not None and workers[home].alive:
                return workers[home]
        return super().retry_target(task, workers)

    def on_retry(self, task, target: "Worker") -> None:
        for sg in task.subgraphs():
            sg.repin(target.worker_id)


class NoMixFormation(BatchFormationPolicy):
    """Batching-off ablation: a task takes ready nodes from the first
    eligible subgraph only — no cross-request mixing, so the batch size is
    whatever one request has ready (1 for a chain model).  Quantifies how
    much of the win is the mixing itself."""

    name = "no_mix"

    def form(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        sg = queue.pop_eligible(worker.worker_id)
        if sg is None:
            return []
        queue.reinsert(sg)
        return [(sg, min(sg.ready_count(), queue.config.max_batch))]

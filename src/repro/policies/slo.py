"""SLA-aware batch formation: the lazy kick.

The paper's ``FormBatchedTask`` kicks a batch the moment a worker goes
idle, even if only a handful of nodes are ready — minimising latency but
wasting per-batch overhead at moderate load.  LazyBatching (PAPERS.md)
observes that requests with SLO headroom can afford to wait for a denser
batch: :class:`LazyKickPolicy` delays a kick while *every* member of the
planned batch still has slack

    slack = deadline - now - predicted remaining service time

and kicks immediately once any member's slack falls below a safety
margin (or the batch is full — a full batch gains nothing by waiting).
Patience is additionally capped at ``max_hold`` seconds of cumulative
added delay per request (anchored to its arrival), so abundant slack is
spent sparingly instead of burned whole on the first dense batch.

The policy plans through the paper formation (fast or brute-force path),
so a kicked plan is bit-identical to what the paper policy would have
formed at that instant; the only new behaviour is *when* the kick
happens.  Declining a kick returns an empty plan (the scheduler treats it
as "nothing to submit") and arms a wake-up timer at the earliest slack
expiry, which re-pokes the idle workers through the manager's coalesced
dispatch — so a held batch is kicked exactly when its tightest member
runs out of headroom, without polling.

Activation requires both an engine (``attach_engine``, called by the
manager) and an :class:`~repro.faults.SLAConfig`; absent either, ``form``
delegates straight to the paper policy, and a server running this
formation is fingerprint-bit-identical to the paper default
(``tests/test_slo_policies.py``).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional

from repro.policies.base import BatchFormationPolicy, Plan
from repro.policies.defaults import PaperBatchFormation
from repro.policies.predict import LatencyPredictor

if TYPE_CHECKING:
    from repro.core.scheduler import CellTypeQueue
    from repro.core.worker import Worker

# Default slack safety margin / maximum hold (seconds); SLAConfig fields
# override both.  The margin absorbs predictor error; the hold bound caps
# the cumulative delay any request (with or without a deadline) can accrue
# from holds, measured from its arrival.
DEFAULT_KICK_MARGIN = 500e-6
DEFAULT_MAX_HOLD = 1e-3


class LazyKickPolicy(BatchFormationPolicy):
    """Slack-based kick delay over the paper's batch formation."""

    name = "lazy_kick"

    def __init__(
        self,
        fast_path: bool = True,
        margin: Optional[float] = None,
        max_hold: Optional[float] = None,
        predictor: Optional[LatencyPredictor] = None,
    ):
        self.fast_path = fast_path
        self.inner = PaperBatchFormation(fast_path=fast_path)
        self.margin = margin
        self.max_hold = max_hold
        self.predictor = predictor
        self._manager = None
        self._wake = None
        self._wake_at = math.inf
        # Decision counters (observability + the conformance suite).
        self.kicks = 0
        self.holds = 0
        self.forced_full = 0
        self.wakes = 0
        # request_id -> real deadline at the time the request was last held
        # with headroom; the no-late-dispatch conformance assertion reads
        # this after a run.
        self.held_requests: Dict[int, float] = {}

    # -- wiring ---------------------------------------------------------------

    def attach_engine(self, manager) -> None:
        """Called by the manager at construction.  Lazy behaviour switches
        on only when the manager carries an SLA — without one there are no
        deadlines to reason about and the policy stays a pass-through."""
        sla = getattr(manager, "sla", None)
        if sla is None:
            return
        self._manager = manager
        if self.margin is None:
            self.margin = getattr(sla, "kick_margin", None)
            if self.margin is None:
                self.margin = DEFAULT_KICK_MARGIN
        if self.max_hold is None:
            self.max_hold = getattr(sla, "max_hold", None)
            if self.max_hold is None:
                self.max_hold = DEFAULT_MAX_HOLD
        if self.predictor is None:
            self.predictor = getattr(sla, "predictor", None)
            if self.predictor is None:
                self.predictor = LatencyPredictor()
        # The manager feeds the predictor from its task/request events.
        manager.predictor = self.predictor

    @property
    def active(self) -> bool:
        return self._manager is not None

    # -- formation -------------------------------------------------------------

    def form(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        plan = self.inner.form(queue, worker)
        manager = self._manager
        if manager is None or not plan:
            return plan
        batch_size = sum(count for _, count in plan)
        if batch_size >= queue.config.max_batch:
            # Full batch: waiting cannot make it denser.
            self.kicks += 1
            self.forced_full += 1
            return plan
        now = manager.loop.now()
        predictor = self.predictor
        # Per member, the latest acceptable kick instant: its slack expiry
        # (deadline minus predicted remaining service minus the margin),
        # clipped to ``arrival + max_hold`` — abundant slack never buys a
        # request more than ``max_hold`` of *cumulative* added delay, since
        # the clip is anchored to arrival, not to this hold.
        kick_by = math.inf
        for sg, _ in plan:
            request = sg.request
            limit = request.arrival_time + self.max_hold
            if request.deadline is not None:
                remaining = predictor.predicted_service(request.remaining_nodes)
                slack_limit = request.deadline - remaining - self.margin
                if slack_limit < limit:
                    limit = slack_limit
            if limit < kick_by:
                kick_by = limit
        # Kick when the tightest member's patience is spent.  ``<=`` also
        # catches a horizon that rounds back to ``now`` — holding would
        # re-arm the same instant forever instead of advancing the clock.
        if kick_by <= now:
            self.kicks += 1
            return plan
        self.holds += 1
        for sg, _ in plan:
            request = sg.request
            if request.deadline is not None:
                self.held_requests[request.request_id] = request.deadline
        self._schedule_wake(kick_by)
        return []

    # -- wake-up timer ---------------------------------------------------------

    def _schedule_wake(self, when: float) -> None:
        wake = self._wake
        if wake is not None and not wake.fired:
            if self._wake_at <= when:
                return  # an earlier (or equal) wake already covers this hold
            wake.cancel()
        self._wake_at = when
        loop = self._manager.loop
        self._wake = loop.call_at(max(when, loop.now()), self._fire_wake)

    def _fire_wake(self) -> None:
        self._wake = None
        self._wake_at = math.inf
        self.wakes += 1
        # Coalesced end-of-timestamp dispatch, same as an arrival's poke.
        self._manager._poke.kick()

    def __repr__(self) -> str:
        return (
            f"<LazyKickPolicy active={self.active} kicks={self.kicks} "
            f"holds={self.holds} full={self.forced_full} wakes={self.wakes}>"
        )

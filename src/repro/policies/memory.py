"""Memory-aware batch formation and admission: serve within the budget.

The paper's formation kicks every eligible ready node; with a device
memory model (:mod:`repro.gpu.memory`) that can overcommit — each
subgraph landing on a device reserves hidden-state bytes that persist
until its request terminates, and a dynamic decode grows one subgraph per
output step.  :class:`MemoryAwareFormation` wraps the paper formation and
filters each plan against the target device's free bytes:

* members already resident on the device cost nothing and always pass;
* members that would newly reserve pass only while the plan fits in
  ``free()`` — the kick never overcommits;
* a *growing* request (one already holding state on the device) whose
  next step does not fit may **evict-and-restart** the cheapest victim —
  the live request with the least completed work that has nothing in
  flight (``Manager.restart_request`` releases its state and resubmits it
  from scratch after the retry policy's backoff);
* everything else is **deferred**: left queued, retried at the next kick
  (a completion or arrival re-pokes the idle workers);
* when deferring can never make progress — nothing in flight anywhere,
  no pending event, no eligible device that fits — the member's request
  is OOM-cancelled rather than hung.

Arrivals are shed at the manager's front door (``"memory_shed"``) while
every alive device's free memory sits below the spec's
``admission_free_bytes`` threshold.

Activation requires both an engine (``attach_engine``) and a
:class:`~repro.gpu.MemorySpec` on the manager; absent either, ``form``
delegates straight to the paper policy and a server running this
formation is fingerprint-bit-identical to the paper default
(``tests/test_memory_policies.py``) — the same differential-conformance
contract as :class:`~repro.policies.slo.LazyKickPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Set

from repro.policies.base import BatchFormationPolicy, Plan
from repro.policies.defaults import PaperBatchFormation

if TYPE_CHECKING:
    from repro.core.request import InferenceRequest
    from repro.core.scheduler import CellTypeQueue
    from repro.core.subgraph import Subgraph
    from repro.core.worker import Worker


class MemoryAwareFormation(BatchFormationPolicy):
    """Plan through the paper formation, then fit the plan to the budget."""

    name = "memory_aware"

    #: Re-poke cadence after a wholly-deferred round (see ``_arm_retry``).
    defer_retry = 1e-3

    def __init__(self, fast_path: bool = True):
        self.fast_path = fast_path
        self.inner = PaperBatchFormation(fast_path=fast_path)
        self._manager = None
        self.state_bytes = 0
        self._retry_armed = False
        # Decision counters (observability + the conformance suite).
        self.deferrals = 0
        self.evictions = 0
        self.oom_cancels = 0
        self.sheds = 0

    # -- wiring ---------------------------------------------------------------

    def attach_engine(self, manager) -> None:
        """Called by the manager at construction.  Memory awareness switches
        on only when the manager carries a MemorySpec — without one there is
        no budget to respect and the policy stays a pass-through."""
        spec = getattr(manager, "memory_spec", None)
        if spec is None:
            return
        self._manager = manager
        self.state_bytes = spec.state_bytes
        if spec.admission_free_bytes is not None:
            manager.memory_admission = self

    @property
    def active(self) -> bool:
        return self._manager is not None

    # -- admission (front door, via Manager.submit_request) -------------------

    def should_shed(self, request: "InferenceRequest") -> bool:
        """Shed the arrival while *every* alive device's free memory is
        below the admission threshold — accepting it could only deepen the
        pressure the deferral/eviction machinery is already working off."""
        manager = self._manager
        threshold = manager.memory_spec.admission_free_bytes
        for worker in manager.workers:
            if not worker.alive:
                continue
            mem = worker.device.memory
            if mem is None or mem.free() >= threshold:
                return False
        self.sheds += 1
        return True

    # -- formation -------------------------------------------------------------

    def form(self, queue: "CellTypeQueue", worker: "Worker") -> Plan:
        plan = self.inner.form(queue, worker)
        manager = self._manager
        if manager is None or not plan:
            return plan
        mem = worker.device.memory
        if mem is None:
            return plan
        state_bytes = self.state_bytes
        kept: Plan = []
        kept_ids: Set[int] = set()
        earmarked = 0  # bytes the kept members will newly reserve
        deferred = False
        for sg, count in plan:
            request = sg.request
            if request.terminal or sg.owner is not queue:
                # Cancelled or evicted while we processed earlier members.
                continue
            need = 0 if sg.resident_on == worker.worker_id else state_bytes
            if mem.free() - earmarked >= need:
                kept.append((sg, count))
                kept_ids.add(request.request_id)
                earmarked += need
                continue
            # Hopeless: even with every other request's state released the
            # member would not fit — its footprint alone exceeds the device
            # (a decode longer than the budget allows).  Deferring would
            # hold its resident bytes forever and clog the device; triage
            # it now, exactly where the oblivious path would hit the wall.
            if mem.holds(request.request_id) + need > mem.capacity - mem.weight_bytes:
                self.oom_cancels += 1
                manager.fault_counters.oom_cancellations += 1
                manager._cancel_request(request, reason="oom")
                continue
            if mem.holds(request.request_id) > 0:
                # A growing request (dynamic decode mid-flight): evict the
                # cheapest victim rather than strand its resident state.
                # Only victims with *strictly less* completed work qualify
                # — the progress order makes eviction thrash-free (the
                # most-advanced requests always win, finish and release;
                # cycles of mutual preemption cannot form).
                progress = len(request.graph) - request.remaining_nodes
                if self._evict_until_fits(
                    mem,
                    earmarked + need,
                    kept_ids | {request.request_id},
                    max_progress=progress,
                ):
                    kept.append((sg, count))
                    kept_ids.add(request.request_id)
                    earmarked += need
                    continue
            if self._progress_impossible(worker, sg, need, bool(kept)):
                self.oom_cancels += 1
                manager.fault_counters.oom_cancellations += 1
                manager._cancel_request(request, reason="oom")
                continue
            self.deferrals += 1
            deferred = True
        if deferred and not kept:
            # A wholly-deferred round: the members wait for memory that only
            # a completion, cancellation or eviction can free — but every
            # pending event the deferral bet on may belong to *another*
            # server on a shared loop (cluster arrivals, sibling replicas)
            # and never re-poke this manager.  Liveness must not depend on
            # global quiescence, so arm a one-shot retry poke; a round that
            # keeps members needs none (its completions re-kick), and a
            # truly dead-end round re-checks with the loop drained, where
            # ``_progress_impossible`` triages.
            self._arm_retry()
        return kept

    # -- pressure responses ----------------------------------------------------

    def _arm_retry(self) -> None:
        """One retry poke at a time: re-runs the dispatch loop after
        ``defer_retry`` so deferred members are re-examined even when no
        event of this manager's own is coming.  Re-arms only through
        another wholly-deferred round, so a drained run stops cleanly."""
        if self._retry_armed:
            return
        self._retry_armed = True
        manager = self._manager

        def fire() -> None:
            self._retry_armed = False
            manager._poke.kick()

        manager.loop.call_after(self.defer_retry, fire)

    def _evict_until_fits(
        self, mem, needed_free: int, protected: Set[int], max_progress: int
    ) -> bool:
        """Restart cheapest victims until ``mem.free() >= needed_free``.
        Only requests with fewer than ``max_progress`` completed nodes
        qualify (the thrash-free progress order).  Returns False (leaving
        any already-made evictions in place — their freed bytes still
        relieve pressure) when no victim remains."""
        manager = self._manager
        while mem.free() < needed_free:
            victim = self._cheapest_victim(mem, protected, max_progress)
            if victim is None:
                return False
            if manager.restart_request(victim):
                self.evictions += 1
            # A restart past the retry budget cancelled the victim instead;
            # either way its state is released and the loop re-checks.
        return True

    def _cheapest_victim(
        self, mem, protected: Set[int], max_progress: int
    ) -> Optional["InferenceRequest"]:
        """The restartable request holding state on this device that loses
        the least completed work (< ``max_progress``), tie-broken by id
        (deterministic).  A request with any node in flight (including
        awaiting retry) is never a victim — its completions must land in
        the graph they started in."""
        best = None
        best_key = None
        for request in self._manager.processor.live_requests():
            if request.request_id in protected:
                continue
            if mem.holds(request.request_id) == 0:
                continue
            completed = len(request.graph) - request.remaining_nodes
            if completed >= max_progress:
                continue
            if any(
                sg.inflight or sg.uncompleted != sg.unsubmitted
                for sg in request.subgraphs.values()
            ):
                continue
            key = (completed, request.request_id)
            if best_key is None or key < best_key:
                best, best_key = request, key
        return best

    def _progress_impossible(
        self, worker: "Worker", sg: "Subgraph", need: int, kept_any: bool
    ) -> bool:
        """Deferral is safe while *something* can still free memory or
        place the member: this plan's own members, any in-flight task, any
        pending loop event (completion signal, retry, restart, deadline),
        or another eligible device with room.  With none of those, holding
        the member queued would hang the drain — cancel instead."""
        if kept_any:
            return False
        manager = self._manager
        if manager.loop.pending() > 0:
            return False
        for w in manager.workers:
            if not w.alive:
                continue
            if w.outstanding > 0:
                return False
            if sg.pinned is not None and sg.pinned != w.worker_id:
                continue
            mem = w.device.memory
            if mem is None or mem.free() >= need:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"<MemoryAwareFormation active={self.active} "
            f"deferrals={self.deferrals} evictions={self.evictions} "
            f"oom_cancels={self.oom_cancels} sheds={self.sheds}>"
        )

"""Pluggable scheduling policies — Algorithm 1 as composable pieces.

The paper's scheduler interleaves three separable concerns.  This package
factors them into three interfaces so that ablations (§6) and newer
policies (SLA-aware admission as in LazyBatching, energy/throughput
variants as in E-BATCH) are policy swaps rather than code forks:

* :class:`QueuePriorityPolicy` — which cell-type queue to serve next
  (Algorithm 1 lines 5-10: full-batch > starved > any, tie-broken by
  configured priority).
* :class:`PlacementPolicy` — where a subgraph's work runs: pin-to-GPU
  locality, cross-device migration cost, retry placement and device-loss
  repinning.
* :class:`BatchFormationPolicy` — which ready nodes of the chosen queue
  form the next batched task (eligibility, FIFO scan order, max-batch
  cut).

:class:`PolicyBundle` groups one of each.  ``PolicyBundle.from_config``
derives the paper's defaults from a :class:`~repro.core.config.BatchingConfig`
— with those defaults the engine is bit-identical (fixed seed, fast path
on or off) to the pre-policy-layer scheduler, which
``tests/test_policies.py`` fingerprint-checks.

Named constructors (``make_priority("flat")`` etc.) back the declarative
:mod:`repro.registry` specs.
"""

from repro.policies.base import (
    BatchFormationPolicy,
    PlacementPolicy,
    PolicyBundle,
    QueuePriorityPolicy,
)
from repro.policies.defaults import (
    PaperBatchFormation,
    PaperQueuePriority,
    PinnedPlacement,
)
from repro.policies.memory import MemoryAwareFormation
from repro.policies.predict import LatencyPredictor
from repro.policies.slo import LazyKickPolicy
from repro.policies.variants import (
    FixedPlacement,
    FlatQueuePriority,
    LongestQueueFirst,
    NoMixFormation,
    UnpinnedPlacement,
)

PRIORITY_POLICIES = {
    "paper": PaperQueuePriority,
    "flat": FlatQueuePriority,
    "longest_queue": LongestQueueFirst,
}

PLACEMENT_POLICIES = {
    "pinned": PinnedPlacement,
    "unpinned": UnpinnedPlacement,
    "fixed": FixedPlacement,
}

FORMATION_POLICIES = {
    "paper": PaperBatchFormation,
    "no_mix": NoMixFormation,
    "lazy_kick": LazyKickPolicy,
    "memory_aware": MemoryAwareFormation,
}


def make_priority(name: str) -> QueuePriorityPolicy:
    """A fresh queue-priority policy by registry name."""
    return _make(PRIORITY_POLICIES, name, "queue-priority")


def make_placement(name: str) -> PlacementPolicy:
    """A fresh placement policy by registry name."""
    return _make(PLACEMENT_POLICIES, name, "placement")


def make_formation(name: str, fast_path: bool = True) -> BatchFormationPolicy:
    """A fresh batch-formation policy by registry name."""
    cls = FORMATION_POLICIES.get(name)
    if cls is None:
        raise KeyError(
            f"unknown batch-formation policy {name!r} "
            f"(have: {sorted(FORMATION_POLICIES)})"
        )
    if cls in (PaperBatchFormation, LazyKickPolicy, MemoryAwareFormation):
        return cls(fast_path=fast_path)
    return cls()


def _make(registry, name, what):
    cls = registry.get(name)
    if cls is None:
        raise KeyError(f"unknown {what} policy {name!r} (have: {sorted(registry)})")
    return cls()


def bundle_from_names(
    config,
    priority: "str | None" = None,
    placement: "str | None" = None,
    formation: "str | None" = None,
) -> PolicyBundle:
    """A :class:`PolicyBundle` with named overrides over ``config`` defaults.

    Unnamed slots take the paper default derived from ``config`` (so a
    priority-only swap keeps pinning/fast-path behaviour untouched) —
    this is the hook the ablation experiments and :mod:`repro.registry`
    specs use to express policy swaps declaratively.
    """
    base = PolicyBundle.from_config(config)
    return PolicyBundle(
        priority=base.priority if priority is None else make_priority(priority),
        placement=base.placement if placement is None else make_placement(placement),
        formation=(
            base.formation
            if formation is None
            else make_formation(
                formation, fast_path=getattr(config, "fast_path", True)
            )
        ),
    )


__all__ = [
    "QueuePriorityPolicy",
    "PlacementPolicy",
    "BatchFormationPolicy",
    "PolicyBundle",
    "PaperQueuePriority",
    "PinnedPlacement",
    "PaperBatchFormation",
    "FlatQueuePriority",
    "LongestQueueFirst",
    "UnpinnedPlacement",
    "FixedPlacement",
    "NoMixFormation",
    "LazyKickPolicy",
    "MemoryAwareFormation",
    "LatencyPredictor",
    "PRIORITY_POLICIES",
    "PLACEMENT_POLICIES",
    "FORMATION_POLICIES",
    "make_priority",
    "make_placement",
    "make_formation",
    "bundle_from_names",
]

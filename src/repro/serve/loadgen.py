"""Socket-driven load generator for the live front end.

Replays *exactly* the workload the simulator's
:class:`~repro.workload.LoadGenerator` would submit — same seeded Poisson
arrival offsets, same seeded dataset samples, via
``LoadGenerator.plan()`` — but over real TCP connections against a
running :mod:`repro.serve` server, pacing each submit to its arrival
offset on the wall clock.  That shared plan is what makes the sim-vs-live
parity harness (:mod:`repro.serve.parity`) a like-for-like comparison.

Each request carries its plan index as ``tag``; after the submit phase
the generator polls until every request is terminal and reports, per
index, the store's outcome and the *server-reported* latency (terminal
minus submit on the server's clock — the same measurement the simulator
makes, so client-side network time does not pollute parity).

``python -m repro.serve.loadgen --rate 500 --num-requests 1000`` drives a
server started with ``python -m repro.serve``; the process exits 0 only
when every submitted request reached exactly one terminal state and the
server's live counters agree with the loadgen's totals.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.workload.datasets import (
    FixedLengthDataset,
    Seq2SeqDataset,
    SequenceDataset,
)
from repro.workload.loadgen import LoadGenerator

# Datasets whose payloads are JSON-serialisable (ship over the wire as-is).
DATASETS = {
    "lstm": lambda seed: SequenceDataset(seed=seed),
    "fixed": lambda seed: FixedLengthDataset(24),
    "seq2seq": lambda seed: Seq2SeqDataset(seed=seed),
    "seq2seq_dynamic": lambda seed: Seq2SeqDataset(seed=seed, dynamic=True),
}


class HttpConn:
    """One persistent HTTP/1.1 connection speaking the front end's JSON."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "HttpConn":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(
        self, method: str, path: str, obj: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        body = b"" if obj is None else json.dumps(obj).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: repro-serve\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n\r\n"
        )
        self.writer.write(head.encode("latin-1") + body)
        await self.writer.drain()
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        length = 0
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = (
            json.loads(await self.reader.readexactly(length)) if length else {}
        )
        return status, payload

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except Exception:
            pass


class LoadgenReport:
    """Everything one live run produced, keyed by plan index."""

    def __init__(self, num_requests: int):
        self.num_requests = num_requests
        self.rid_of: Dict[int, int] = {}          # plan index -> store rid
        self.records: Dict[int, Dict[str, Any]] = {}  # plan index -> final record
        self.submit_errors: List[str] = []
        self.wall_seconds = 0.0

    @property
    def outcomes(self) -> Dict[int, str]:
        return {i: r["state"] for i, r in self.records.items()}

    @property
    def latencies(self) -> Dict[int, float]:
        """Server-reported latency per SUCCEEDED index (seconds)."""
        return {
            i: r["latency"]
            for i, r in self.records.items()
            if r.get("latency") is not None
        }

    def state_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records.values():
            counts[record["state"]] = counts.get(record["state"], 0) + 1
        return counts

    @property
    def lost(self) -> int:
        """Submitted but never reached a terminal record — must be 0."""
        return len(self.rid_of) - len(self.records)

    def percentile_ms(self, p: float) -> Optional[float]:
        values = sorted(self.latencies.values())
        if not values:
            return None
        index = min(len(values) - 1, max(0, round(p / 100.0 * (len(values) - 1))))
        return 1e3 * values[index]


async def run_loadgen(
    host: str,
    port: int,
    rate: float,
    num_requests: int,
    seed: int = 0,
    dataset: str = "lstm",
    dataset_seed: int = 1,
    concurrency: int = 16,
    time_scale: float = 1.0,
    deadline: Optional[float] = None,
    poll_interval: float = 0.02,
    drain_timeout: float = 60.0,
) -> LoadgenReport:
    """Submit the seeded plan over sockets, wait for every terminal."""
    if dataset not in DATASETS:
        raise ValueError(f"unknown dataset {dataset!r} (have: {sorted(DATASETS)})")
    plan = LoadGenerator(rate=rate, num_requests=num_requests, seed=seed).plan(
        DATASETS[dataset](dataset_seed)
    )
    report = LoadgenReport(num_requests)
    pool: asyncio.Queue = asyncio.Queue()
    conns = [await HttpConn.open(host, port) for _ in range(concurrency)]
    for conn in conns:
        pool.put_nowait(conn)

    aio = asyncio.get_running_loop()
    t0 = aio.time()

    async def submit_one(index: int, when: float, payload: Any) -> None:
        delay = t0 + when * time_scale - aio.time()
        if delay > 0:
            await asyncio.sleep(delay)
        conn = await pool.get()
        try:
            obj: Dict[str, Any] = {"payload": payload, "tag": str(index)}
            if deadline is not None:
                obj["deadline"] = deadline
            status, record = await conn.request("POST", "/v1/requests", obj)
            if status == 201:
                report.rid_of[index] = record["rid"]
                if record["state"] in ("SUCCEEDED", "FAILED", "ABORTED"):
                    report.records[index] = record
            else:
                report.submit_errors.append(
                    f"index {index}: HTTP {status} {record}"
                )
        finally:
            pool.put_nowait(conn)

    await asyncio.gather(
        *(
            submit_one(index, when, payload)
            for index, (when, payload) in enumerate(plan)
        )
    )

    # Poll the stragglers until every submitted request is terminal.
    waiting = {
        index: rid
        for index, rid in report.rid_of.items()
        if index not in report.records
    }
    drain_deadline = aio.time() + drain_timeout
    while waiting and aio.time() < drain_deadline:
        done: List[int] = []

        async def poll_one(index: int, rid: int) -> None:
            conn = await pool.get()
            try:
                status, record = await conn.request("GET", f"/v1/requests/{rid}")
                if status == 200 and record["state"] in (
                    "SUCCEEDED",
                    "FAILED",
                    "ABORTED",
                ):
                    report.records[index] = record
                    done.append(index)
            finally:
                pool.put_nowait(conn)

        await asyncio.gather(
            *(poll_one(index, rid) for index, rid in waiting.items())
        )
        for index in done:
            waiting.pop(index, None)
        if waiting:
            await asyncio.sleep(poll_interval)

    report.wall_seconds = aio.time() - t0
    for conn in conns:
        await conn.close()
    return report


async def fetch_metrics(host: str, port: int) -> Dict[str, Any]:
    conn = await HttpConn.open(host, port)
    try:
        status, payload = await conn.request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"/metrics returned HTTP {status}")
        return payload
    finally:
        await conn.close()


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Replay a seeded simulator workload against a live "
        "repro.serve server and verify every request terminates."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123)
    parser.add_argument("--rate", type=float, default=500.0, metavar="REQ_S")
    parser.add_argument("--num-requests", type=int, default=1000, metavar="N")
    parser.add_argument("--seed", type=int, default=0, help="arrival seed")
    parser.add_argument("--dataset", default="lstm", choices=sorted(DATASETS))
    parser.add_argument("--dataset-seed", type=int, default=1)
    parser.add_argument("--concurrency", type=int, default=16)
    parser.add_argument(
        "--deadline", type=float, default=None, help="per-request SLA seconds"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="stretch (>1) or compress (<1) the arrival schedule",
    )
    parser.add_argument("--drain-timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    async def run() -> Tuple[LoadgenReport, Dict[str, Any]]:
        report = await run_loadgen(
            args.host,
            args.port,
            rate=args.rate,
            num_requests=args.num_requests,
            seed=args.seed,
            dataset=args.dataset,
            dataset_seed=args.dataset_seed,
            concurrency=args.concurrency,
            time_scale=args.time_scale,
            deadline=args.deadline,
            drain_timeout=args.drain_timeout,
        )
        metrics = await fetch_metrics(args.host, args.port)
        return report, metrics

    report, metrics = asyncio.run(run())
    counts = report.state_counts()
    p50, p99 = report.percentile_ms(50), report.percentile_ms(99)
    print(
        f"loadgen: {args.num_requests} requests @ {args.rate:.0f} req/s over "
        f"{report.wall_seconds:.1f}s wall -> {counts}"
    )
    if p50 is not None:
        print(f"server-reported latency: p50 {p50:.2f} ms, p99 {p99:.2f} ms")
    store_counts = metrics["store"]
    live_terminal = metrics["terminal"]
    print(
        f"server counters: records={metrics['records']} terminal={live_terminal} "
        f"store={store_counts} late_fires={metrics['bridge']['late_fires']} "
        f"max_drift={metrics['bridge']['max_drift_ms']:.2f} ms"
    )
    failures: List[str] = []
    if report.submit_errors:
        failures.append(f"{len(report.submit_errors)} submit errors "
                        f"(first: {report.submit_errors[0]})")
    if report.lost:
        failures.append(f"{report.lost} requests never reached a terminal state")
    if len(report.records) != args.num_requests:
        failures.append(
            f"only {len(report.records)}/{args.num_requests} outcomes collected"
        )
    if live_terminal < len(report.rid_of):
        failures.append(
            f"server terminal count {live_terminal} < submitted {len(report.rid_of)}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: zero lost, zero double-terminal, counters reconcile")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""``python -m repro.serve`` — start the live HTTP serving front end.

Builds a :class:`~repro.registry.ServeSpec` from the CLI flags (the
``lstm_serve_spec`` preset by default), binds the socket, and serves
until SIGINT/SIGTERM, at which point in-flight requests are drained
(bounded by ``--drain-grace``) and still-queued ones marked ABORTED
before the process exits 0.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.registry.presets import lstm_serve_spec
    from repro.serve.frontend import ServeApp

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve a BatchMaker engine (or cluster) over HTTP on "
        "the real-time clock.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8123, help="0 picks an ephemeral port"
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="append-only JSONL request journal (crash-safe status store); "
        "omit for in-memory only",
    )
    parser.add_argument("--num-replicas", type=int, default=1)
    parser.add_argument("--num-gpus", type=int, default=1)
    parser.add_argument("--max-batch", type=int, default=512)
    parser.add_argument(
        "--router",
        default="round_robin",
        help="cluster routing policy (used when --num-replicas > 1)",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        help="seconds to wait for in-flight requests on shutdown",
    )
    args = parser.parse_args(argv)

    spec = lstm_serve_spec(
        host=args.host,
        port=args.port,
        journal=args.journal,
        max_batch=args.max_batch,
        num_gpus=args.num_gpus,
        num_replicas=args.num_replicas,
        router=args.router,
    ).replace(drain_grace=args.drain_grace)

    app = ServeApp(spec)

    async def run() -> int:
        def announce() -> None:
            print(
                f"repro.serve: listening on http://{args.host}:{app.port} "
                f"(replicas={args.num_replicas}, journal={args.journal or 'memory'}"
                f"{', recovered ' + str(app.recovered) if app.recovered else ''})",
                flush=True,
            )

        ready: asyncio.Event = asyncio.Event()

        async def watch_ready() -> None:
            await ready.wait()
            announce()

        watcher = asyncio.ensure_future(watch_ready())
        code = await app.serve(ready=ready)
        watcher.cancel()
        return code

    return asyncio.run(run())


if __name__ == "__main__":
    import sys

    sys.exit(main())

"""Event-loop bridge: the engine's timer heap pumped by asyncio.

The whole serving stack — Manager, Scheduler, ClusterServer, baselines —
schedules strictly through :class:`~repro.sim.events.EventLoop`
(``call_at`` / ``call_after`` / ``call_soon``).  :class:`LiveEventLoop`
subclasses it over a :class:`~repro.sim.clock.RealTimeClock` and, on
every schedule, (re)arms a single asyncio timer at the heap's earliest
deadline.  When the timer fires, :meth:`~repro.sim.events.EventLoop.run_due`
pops exactly the events whose wall time has arrived — so the engine runs
*unmodified* against real time: same heap, same tie-breaking sequence
numbers, same callbacks, only the "when do they fire" authority changes
from ``clock.advance_to`` to the operating system.

Timebase mapping: ``RealTimeClock.now()`` is ``time.monotonic()`` rebased
to construction; asyncio's ``loop.time()`` is also monotonic, so loop
timestamps convert to asyncio deadlines by one constant offset measured
at attach.

Drift: the base loop's ``run_due`` counts and logs fires later than
``drift_tolerance`` (default 1 ms); :meth:`LiveEventLoop.drift_stats`
surfaces those counters to the ``/metrics`` endpoint.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.sim.clock import RealTimeClock
from repro.sim.events import Event, EventLoop


class LiveEventLoop(EventLoop):
    """An :class:`EventLoop` over wall time, pumped by asyncio timers.

    Create it, ``attach`` it to a running asyncio loop, then hand it to
    any server constructor in place of a simulated loop.  ``after_pump``
    (optional) runs after every pump that executed at least one event —
    the serve front end hooks its store sync there, so request status
    becomes visible the moment the engine's completion callbacks ran.
    """

    def __init__(self, clock: Optional[RealTimeClock] = None):
        super().__init__(clock if clock is not None else RealTimeClock())
        if self.clock.is_virtual():
            raise ValueError("LiveEventLoop needs a wall clock (RealTimeClock)")
        self._aio: Optional[asyncio.AbstractEventLoop] = None
        self._offset = 0.0  # aio.time() - clock.now(), constant once attached
        self._timer: Optional[asyncio.TimerHandle] = None
        self._timer_at: Optional[float] = None  # loop-time deadline of _timer
        self.after_pump: Optional[Callable[[int], Any]] = None
        self.pumps = 0
        self.events_fired = 0

    # -- asyncio attachment ----------------------------------------------

    def attach(self, aio_loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        """Bind to ``aio_loop`` (default: the running loop) and arm the
        timer for any events scheduled before attachment."""
        self._aio = aio_loop if aio_loop is not None else asyncio.get_running_loop()
        self._offset = self._aio.time() - self.clock.now()
        self._rearm()

    def detach(self) -> None:
        """Cancel the pending timer and drop the asyncio binding (shutdown)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._timer_at = None
        self._aio = None

    @property
    def attached(self) -> bool:
        return self._aio is not None

    # -- scheduling: every path funnels through call_at -------------------

    def call_at(self, when: float, callback: Callable[[], Any]) -> Event:
        event = super().call_at(when, callback)
        # A new earliest deadline must pull the asyncio timer forward;
        # later deadlines leave it alone (the pump re-arms afterwards).
        if self._aio is not None and (
            self._timer_at is None or event.time < self._timer_at
        ):
            self._rearm()
        return event

    def _rearm(self) -> None:
        if self._aio is None:
            return
        next_time = self.peek_time()
        if next_time is None:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._timer_at = None
            return
        if self._timer is not None:
            if self._timer_at is not None and self._timer_at <= next_time:
                return  # already armed at (or before) the earliest event
            self._timer.cancel()
        self._timer_at = next_time
        self._timer = self._aio.call_at(next_time + self._offset, self._pump)

    def _pump(self) -> None:
        """Asyncio timer callback: drain due events, re-arm for the rest."""
        self._timer = None
        self._timer_at = None
        fired = self.run_due()
        self.pumps += 1
        self.events_fired += fired
        if fired and self.after_pump is not None:
            self.after_pump(fired)
        self._rearm()

    def pump_now(self) -> int:
        """Synchronous pump (callers inside the asyncio thread, e.g. the
        front end right after a submit, so the arrival event runs before
        the HTTP response is written)."""
        fired = self.run_due()
        if fired:
            self.pumps += 1
            self.events_fired += fired
            if self.after_pump is not None:
                self.after_pump(fired)
        self._rearm()
        return fired

    # -- reporting ---------------------------------------------------------

    def drift_stats(self) -> dict:
        return {
            "pumps": self.pumps,
            "events_fired": self.events_fired,
            "late_fires": self.late_fires,
            "max_drift_ms": 1e3 * self.max_drift,
            "drift_tolerance_ms": 1e3 * self.drift_tolerance,
            "pending": self.pending(),
        }

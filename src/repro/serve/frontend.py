"""Live HTTP front end over the real-time clock.

``ServeApp`` wires the four serve components together: a
:class:`~repro.serve.bridge.LiveEventLoop` drives the *unmodified* engine
(a bare :func:`~repro.registry.build_server` engine or a
:func:`~repro.cluster.build_cluster` cluster, per the
:class:`~repro.registry.ServeSpec`), a
:class:`~repro.serve.store.RequestStore` journals every request's
lifecycle, and a hand-rolled HTTP/1.1 server on asyncio streams (no
third-party deps, keep-alive supported) exposes it:

===========================  ==========================================
``POST /v1/requests``        submit ``{"payload": ..., "deadline": s,
                             "tag": ...}`` -> 201 + record JSON
``GET /v1/requests/<id>``    lifecycle record (state, timestamps, latency)
``GET /v1/requests/<id>/result``  result payload once SUCCEEDED (409 before)
``POST /v1/requests/<id>/cancel`` abort a non-terminal request
``GET /healthz``             liveness + drain state
``GET /metrics``             JSON counters: store states, engine terminal
                             counts, bridge drift stats, HTTP totals
``POST /v1/shutdown``        graceful drain (same path as SIGINT/SIGTERM)
===========================  ==========================================

Engine outcomes map onto store states at the sync boundary (cursor walk
over the server's terminal lists, run after every timer pump):
``finished -> SUCCEEDED``, ``timed_out -> FAILED``, ``rejected ->
FAILED`` (the reject reason is preserved), client cancels and shutdown
drains -> ``ABORTED``.  A request cancelled out from under the engine is
*detached*: its eventual engine outcome is counted
(``late_terminals``) but can never illegally re-terminalise the record.

Graceful shutdown (SIGINT/SIGTERM or ``POST /v1/shutdown``): new submits
get 503, cluster replicas flip to DRAINING (the autoscaler's
drain-before-retire state), in-flight requests get ``drain_grace``
seconds to finish, stragglers and still-queued requests are marked
ABORTED in the store, and the process exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.cluster.cluster import build_cluster
from repro.cluster.replica import ALIVE, DRAINING
from repro.registry import build_server
from repro.registry.specs import ServeSpec
from repro.serve import store as store_mod
from repro.serve.bridge import LiveEventLoop
from repro.serve.store import RequestStore


class _HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    503: "Service Unavailable",
}


class ServeApp:
    """One live serving deployment (see module docstring)."""

    def __init__(self, spec: ServeSpec):
        self.spec = spec
        self.live = LiveEventLoop()
        self.live.drift_tolerance = spec.drift_tolerance
        if spec.cluster is not None:
            self.server = build_cluster(spec.cluster, loop=self.live)
        else:
            self.server = build_server(spec.server, loop=self.live)
        self.store = RequestStore(spec.journal)
        # Records journalled by a previous life of this journal that never
        # reached a terminal state died with that process: abort them now
        # so no accepted request is ever left unresolved (kill-and-replay
        # safety; tests/test_serve_shutdown.py).
        self.recovered = self.store.abort_non_terminal(
            self.live.clock.now(), reason="crash_recovered"
        )
        # Engine request id -> store rid, dropped at terminal sync or
        # cancel; a dropped id's late engine outcome is counted, not applied.
        self._rid_of: Dict[int, int] = {}
        # Store rid -> live engine request (RUNNING promotion + cancel).
        self._inflight: Dict[int, Any] = {}
        self._cursors = [0, 0, 0]
        self.late_terminals = 0
        self.http_requests = 0
        self.draining = False
        self._started_monotonic = time.monotonic()
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self.port: Optional[int] = spec.port or None
        self.exit_code = 0
        # Status becomes visible the moment the engine's callbacks ran:
        # every pump (timer-driven or inline after a submit) ends in a sync.
        self.live.after_pump = lambda fired: self.sync()

    # -- engine <-> store sync --------------------------------------------

    def sync(self) -> int:
        """Fold newly terminal engine outcomes onto store records and
        promote started-but-unfinished ones to RUNNING.  Cursor-based like
        the cluster's reconciliation, so each outcome is visited once."""
        moved = 0
        buckets = (
            (self.server.finished, store_mod.SUCCEEDED),
            (self.server.timed_out, store_mod.FAILED),
            (self.server.rejected, store_mod.FAILED),
        )
        for index, (bucket, state) in enumerate(buckets):
            cursor = self._cursors[index]
            while cursor < len(bucket):
                request = bucket[cursor]
                cursor += 1
                rid = self._rid_of.pop(request.request_id, None)
                if rid is None:
                    # Detached (client cancel / shutdown abort) or from a
                    # previous store epoch: never re-terminalise.
                    self.late_terminals += 1
                    continue
                self._inflight.pop(rid, None)
                record = self.store.get(rid)
                when = (
                    request.terminal_time
                    if request.terminal_time is not None
                    else self.live.clock.now()
                )
                if (
                    record.state == store_mod.PENDING
                    and request.start_time is not None
                ):
                    self.store.transition(
                        rid, store_mod.RUNNING, request.start_time
                    )
                self.store.transition(
                    rid,
                    state,
                    when,
                    reason=request.cancel_reason
                    if state == store_mod.FAILED
                    else None,
                    result=request.result,
                )
                moved += 1
            self._cursors[index] = cursor
        for rid, request in self._inflight.items():
            if request.start_time is not None:
                record = self.store.get(rid)
                if record.state == store_mod.PENDING:
                    self.store.transition(
                        rid, store_mod.RUNNING, request.start_time
                    )
                    moved += 1
        return moved

    def outstanding(self) -> int:
        """Engine-side in-flight count (drain progress)."""
        manager = getattr(self.server, "manager", None)
        if manager is not None:
            return manager.outstanding()
        replicas = getattr(self.server, "replicas", None)
        if replicas is not None:
            return sum(r.outstanding() for r in replicas)
        return len(self._inflight)

    # -- request operations (transport-independent; the bench drives these
    # -- directly to price the front end without socket noise) -------------

    def submit_payload(
        self,
        payload: Any,
        deadline: Optional[float] = None,
        tag: Optional[str] = None,
    ) -> Dict[str, Any]:
        if self.draining:
            raise _HttpError(503, "server is draining")
        now = self.live.clock.now()
        record = self.store.create(payload, now, tag=tag, deadline=deadline)
        request = self.server.submit(payload, deadline=deadline)
        self._rid_of[request.request_id] = record.rid
        self._inflight[record.rid] = request
        # Run the arrival event (and anything it cascades) before
        # answering, so the response already reflects admission outcomes
        # (e.g. an SLA reject is FAILED in the very submit response).
        self.live.pump_now()
        return self.store.get(record.rid).to_dict()

    def status(self, rid: int) -> Dict[str, Any]:
        record = self.store.get(rid)
        if record is None:
            raise _HttpError(404, f"unknown request id {rid}")
        return record.to_dict()

    def result(self, rid: int) -> Dict[str, Any]:
        record = self.store.get(rid)
        if record is None:
            raise _HttpError(404, f"unknown request id {rid}")
        if record.state != store_mod.SUCCEEDED:
            raise _HttpError(
                409, f"request {rid} is {record.state}, not SUCCEEDED"
            )
        return {"rid": rid, "result": _jsonable(record.result)}

    def cancel(self, rid: int) -> Dict[str, Any]:
        record = self.store.get(rid)
        if record is None:
            raise _HttpError(404, f"unknown request id {rid}")
        if record.terminal:
            raise _HttpError(409, f"request {rid} is already {record.state}")
        request = self._inflight.pop(rid, None)
        if request is not None:
            self._rid_of.pop(request.request_id, None)
        self.store.transition(
            rid, store_mod.ABORTED, self.live.clock.now(), reason="client_cancel"
        )
        return self.store.get(rid).to_dict()

    def metrics(self) -> Dict[str, Any]:
        counts = self.store.counts()
        engine = {
            "finished": len(self.server.finished),
            "timed_out": len(self.server.timed_out),
            "rejected": len(self.server.rejected),
        }
        counters = getattr(self.server, "cluster_counters", None)
        if counters is not None:
            engine["cluster"] = {
                k: v for k, v in vars(counters).items() if isinstance(v, int)
            }
        return {
            "store": counts,
            "terminal": self.store.terminal_count(),
            "records": len(self.store),
            "engine": engine,
            "bridge": self.live.drift_stats(),
            "http_requests": self.http_requests,
            "late_terminals": self.late_terminals,
            "crash_recovered": len(self.recovered),
            "draining": self.draining,
            "uptime_s": time.monotonic() - self._started_monotonic,
        }

    # -- graceful shutdown -------------------------------------------------

    async def shutdown(self) -> None:
        """Drain in-flight work, abort the rest, release everything."""
        if self.draining:
            return
        self.draining = True
        # Cluster: reuse drain-before-retire — replicas stop being routable
        # and retire once their outstanding work telescopes to zero.
        replicas = getattr(self.server, "replicas", None)
        if replicas is not None:
            for replica in replicas:
                if replica.state in (ALIVE,):
                    replica.state = DRAINING
        manager = getattr(self.server, "manager", None)
        if manager is not None:
            manager.wake()
        deadline = time.monotonic() + self.spec.drain_grace
        while self.outstanding() > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        self.live.pump_now()
        self.sync()
        # Whatever is still non-terminal (queued, or mid-compute past the
        # grace) is aborted — exactly once, the store forbids more.
        for record in self.store.abort_non_terminal(
            self.live.clock.now(), reason="shutdown"
        ):
            request = self._inflight.pop(record.rid, None)
            if request is not None:
                self._rid_of.pop(request.request_id, None)
        if self._http_server is not None:
            self._http_server.close()
            try:
                await self._http_server.wait_closed()
            except Exception:
                pass
        self.live.detach()
        self.store.close()
        if self._stopped is not None:
            self._stopped.set()

    # -- HTTP transport ----------------------------------------------------

    async def serve(self, ready: Optional[threading.Event] = None) -> int:
        """Run until shut down; returns the exit code (0 on clean drain)."""
        self.live.attach()
        self._stopped = asyncio.Event()
        self._http_server = await asyncio.start_server(
            self._handle_conn, self.spec.host, self.spec.port
        )
        self.port = self._http_server.sockets[0].getsockname()[1]
        aio = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                aio.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main thread or non-unix loop: tests drive shutdown()
                # directly instead.
                break
        if ready is not None:
            ready.set()
        await self._stopped.wait()
        return self.exit_code

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad request line"})
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                body = b""
                length = int(headers.get("content-length", 0) or 0)
                if length:
                    body = await reader.readexactly(length)
                self.http_requests += 1
                try:
                    status, payload = self._route(method, path, body)
                except _HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                except Exception as exc:  # defensive: never kill the conn
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                keep_alive = headers.get("connection", "keep-alive") != "close"
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "?")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "GET only")
            return 200, {
                "status": "draining" if self.draining else "ok",
                "now": self.live.clock.now(),
            }
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "GET only")
            return 200, self.metrics()
        if path == "/v1/shutdown":
            if method != "POST":
                raise _HttpError(405, "POST only")
            asyncio.ensure_future(self.shutdown())
            return 200, {"status": "draining"}
        if path == "/v1/requests":
            if method != "POST":
                raise _HttpError(405, "POST only")
            data = _parse_json(body)
            if "payload" not in data:
                raise _HttpError(400, "missing 'payload'")
            deadline = data.get("deadline")
            if deadline is not None and (
                not isinstance(deadline, (int, float)) or deadline <= 0
            ):
                raise _HttpError(400, "deadline must be a positive number")
            return 201, self.submit_payload(
                data["payload"], deadline=deadline, tag=data.get("tag")
            )
        if path.startswith("/v1/requests/"):
            rest = path[len("/v1/requests/"):]
            parts = rest.split("/")
            try:
                rid = int(parts[0])
            except ValueError:
                raise _HttpError(404, f"bad request id {parts[0]!r}")
            if len(parts) == 1:
                if method != "GET":
                    raise _HttpError(405, "GET only")
                return 200, self.status(rid)
            if len(parts) == 2 and parts[1] == "result":
                if method != "GET":
                    raise _HttpError(405, "GET only")
                return 200, self.result(rid)
            if len(parts) == 2 and parts[1] == "cancel":
                if method != "POST":
                    raise _HttpError(405, "POST only")
                return 200, self.cancel(rid)
        raise _HttpError(404, f"no route for {method} {path}")


def _parse_json(body: bytes) -> Dict[str, Any]:
    if not body:
        raise _HttpError(400, "empty body (JSON expected)")
    try:
        data = json.loads(body)
    except ValueError as exc:
        raise _HttpError(400, f"bad JSON: {exc}")
    if not isinstance(data, dict):
        raise _HttpError(400, "JSON object expected")
    return data


def _jsonable(value: Any) -> Any:
    """Results may carry numpy arrays (real-compute mode); degrade to
    something JSON can carry rather than 500ing the result endpoint."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


class ServeHandle:
    """A live app running in a daemon thread (tests, parity, bench)."""

    def __init__(self, app: ServeApp, thread: threading.Thread):
        self.app = app
        self.thread = thread

    @property
    def port(self) -> int:
        return self.app.port

    def stop(self, timeout: float = 10.0) -> None:
        if self.app._stopped is not None and not self.app.draining:
            loop = self.app.live._aio
            if loop is not None:
                asyncio.run_coroutine_threadsafe(self.app.shutdown(), loop)
        self.thread.join(timeout)

    def kill(self, timeout: float = 10.0) -> None:
        """Hard stop without the drain (kill-and-replay tests): the journal
        is left exactly as the crash would leave it."""
        loop = self.app.live._aio
        if loop is not None:
            loop.call_soon_threadsafe(self._abandon)
        self.thread.join(timeout)

    def _abandon(self) -> None:
        app = self.app
        app.draining = True  # refuse further submits
        if app._http_server is not None:
            app._http_server.close()
        app.live.detach()
        app.store.close()  # append handle closed; no terminal flush
        if app._stopped is not None:
            app._stopped.set()


def start_in_thread(spec: ServeSpec, timeout: float = 10.0) -> ServeHandle:
    """Run ``ServeApp(spec)`` on a fresh asyncio loop in a daemon thread
    and block until it is accepting connections."""
    app = ServeApp(spec)
    ready = threading.Event()

    def runner() -> None:
        asyncio.run(app.serve(ready=ready))

    thread = threading.Thread(target=runner, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout):
        raise RuntimeError("serve app failed to start listening")
    return ServeHandle(app, thread)

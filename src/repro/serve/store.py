"""Persistent request-status store for the live serving front end.

Every request the server accepts gets a :class:`RequestRecord` with a
lifecycle ``PENDING -> RUNNING -> SUCCEEDED | FAILED | ABORTED`` (the
states mirror ``sky/api/requests``-style task stores; the simulator's
engine states map onto them at the sync boundary).  Transitions are
validated — a terminal record can never move again, so a crash/replay
cycle cannot double-terminate a request.

Crash safety is an append-only JSONL journal: one line per transition,
flushed on write.  On start the store replays the journal; replay is

* **idempotent** — replaying the same journal N times yields the same
  state (duplicate/illegal transitions are skipped and counted, never
  applied), and
* **torn-tail tolerant** — a final line cut mid-write by a crash is
  ignored (any earlier malformed line still raises: that is corruption,
  not a crash artifact).

Records that are non-terminal after replay were in flight when the
process died; :meth:`RequestStore.abort_non_terminal` moves them to
``ABORTED`` (reason ``"crash_recovered"`` on restart, ``"shutdown"``
during a graceful drain) so every accepted request reaches exactly one
terminal state even across kills.
"""

from __future__ import annotations

import io
import json
import os
from typing import Any, Dict, Iterable, List, Optional

PENDING = "PENDING"
RUNNING = "RUNNING"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"
ABORTED = "ABORTED"

STATES = (PENDING, RUNNING, SUCCEEDED, FAILED, ABORTED)
TERMINAL_STATES = frozenset({SUCCEEDED, FAILED, ABORTED})

# The full transition relation; anything absent is illegal (in particular
# terminal states have no successors: no SUCCEEDED -> RUNNING, ever).
# PENDING may jump straight to a terminal state — admission rejects and
# shutdown aborts never run.
LEGAL_TRANSITIONS = {
    PENDING: frozenset({RUNNING, SUCCEEDED, FAILED, ABORTED}),
    RUNNING: frozenset({SUCCEEDED, FAILED, ABORTED}),
    SUCCEEDED: frozenset(),
    FAILED: frozenset(),
    ABORTED: frozenset(),
}


class IllegalTransition(RuntimeError):
    """A lifecycle move the relation forbids (e.g. out of a terminal state)."""


class JournalCorrupt(RuntimeError):
    """A malformed journal line *before* the final one — real corruption,
    not a torn tail."""


class RequestRecord:
    """One request's durable lifecycle state."""

    __slots__ = (
        "rid",
        "state",
        "payload",
        "tag",
        "deadline",
        "submitted_at",
        "started_at",
        "terminal_at",
        "reason",
        "result",
    )

    def __init__(
        self,
        rid: int,
        payload: Any,
        submitted_at: float,
        tag: Optional[str] = None,
        deadline: Optional[float] = None,
    ):
        self.rid = rid
        self.state = PENDING
        self.payload = payload
        self.tag = tag
        self.deadline = deadline
        self.submitted_at = submitted_at
        self.started_at: Optional[float] = None
        self.terminal_at: Optional[float] = None
        self.reason: Optional[str] = None
        self.result: Optional[Any] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency(self) -> Optional[float]:
        """Submit-to-terminal time for successful requests (seconds)."""
        if self.state != SUCCEEDED or self.terminal_at is None:
            return None
        return self.terminal_at - self.submitted_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rid": self.rid,
            "state": self.state,
            "tag": self.tag,
            "deadline": self.deadline,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "terminal_at": self.terminal_at,
            "reason": self.reason,
            "latency": self.latency,
        }

    def __repr__(self) -> str:
        return f"<RequestRecord {self.rid} {self.state}>"


class RequestStore:
    """In-memory record table + append-only JSONL journal.

    ``journal_path=None`` runs fully in memory (tests, benchmarks); with a
    path, every mutation appends one line and an existing journal is
    replayed before the store accepts new work.
    """

    def __init__(self, journal_path: Optional[str] = None):
        self.journal_path = journal_path
        self.records: Dict[int, RequestRecord] = {}
        self._next_rid = 0
        # Replay diagnostics (see _apply): skipped entries are counted,
        # not applied, which is what makes replay idempotent.
        self.replayed_entries = 0
        self.skipped_entries = 0
        self.torn_tail = False
        self._fh: Optional[io.TextIOBase] = None
        if journal_path is not None:
            if os.path.exists(journal_path):
                self._replay_file(journal_path)
            parent = os.path.dirname(journal_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(journal_path, "a", encoding="utf-8")

    # -- journal ----------------------------------------------------------

    def _append(self, entry: Dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._fh.flush()

    def _replay_file(self, path: str) -> None:
        with open(path, "rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entry = json.loads(line.decode("utf-8"))
            except ValueError:
                if index == len(lines) - 1:
                    # Torn tail: the process died mid-append.  The entry
                    # it described never became visible, so dropping it is
                    # the correct recovery — and it must be physically cut
                    # before this process appends, or the next append
                    # would weld onto the fragment and turn a benign torn
                    # tail into mid-file corruption on the *next* replay.
                    self.torn_tail = True
                    keep = len(raw) - len(line)
                    if raw.endswith(b"\n"):
                        keep -= 1
                    with open(path, "r+b") as out:
                        out.truncate(keep)
                    break
                raise JournalCorrupt(
                    f"{path}:{index + 1}: malformed journal line before the tail"
                )
            self._apply(entry)

    def replay_entries(self, entries: Iterable[Dict[str, Any]]) -> None:
        """Apply journal entries tolerantly (tests feed these directly)."""
        for entry in entries:
            self._apply(entry)

    def _apply(self, entry: Dict[str, Any]) -> None:
        """One journal entry, replay semantics: never raises on duplicate
        or illegal entries — a journal written by a crashing process may
        legitimately repeat its tail after a partial recovery — it skips
        them, so replaying a journal any number of times converges."""
        op = entry.get("op")
        if op == "create":
            rid = int(entry["rid"])
            if rid in self.records:
                self.skipped_entries += 1
                return
            record = RequestRecord(
                rid,
                entry.get("payload"),
                float(entry.get("t", 0.0)),
                tag=entry.get("tag"),
                deadline=entry.get("deadline"),
            )
            self.records[rid] = record
            self._next_rid = max(self._next_rid, rid + 1)
            self.replayed_entries += 1
        elif op == "state":
            rid = int(entry["rid"])
            record = self.records.get(rid)
            state = entry.get("state")
            if (
                record is None
                or state not in LEGAL_TRANSITIONS
                or state not in LEGAL_TRANSITIONS[record.state]
            ):
                self.skipped_entries += 1
                return
            self._move(record, state, float(entry.get("t", 0.0)), entry.get("reason"))
            self.replayed_entries += 1
        else:
            self.skipped_entries += 1

    # -- mutations --------------------------------------------------------

    def create(
        self,
        payload: Any,
        now: float,
        tag: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> RequestRecord:
        rid = self._next_rid
        self._next_rid += 1
        record = RequestRecord(rid, payload, now, tag=tag, deadline=deadline)
        self.records[rid] = record
        self._append(
            {
                "op": "create",
                "rid": rid,
                "t": now,
                "payload": payload,
                "tag": tag,
                "deadline": deadline,
            }
        )
        return record

    def transition(
        self,
        rid: int,
        state: str,
        now: float,
        reason: Optional[str] = None,
        result: Optional[Any] = None,
    ) -> RequestRecord:
        """Move ``rid`` to ``state`` (strict: illegal moves raise)."""
        record = self.records.get(rid)
        if record is None:
            raise KeyError(f"unknown request id {rid}")
        if state not in LEGAL_TRANSITIONS:
            raise ValueError(f"unknown state {state!r} (have: {STATES})")
        if state not in LEGAL_TRANSITIONS[record.state]:
            raise IllegalTransition(
                f"request {rid}: {record.state} -> {state} is not a legal "
                "lifecycle transition"
            )
        self._move(record, state, now, reason)
        if result is not None:
            record.result = result
        self._append(
            {"op": "state", "rid": rid, "state": state, "t": now, "reason": reason}
        )
        return record

    def _move(
        self, record: RequestRecord, state: str, now: float, reason: Optional[str]
    ) -> None:
        record.state = state
        if state == RUNNING:
            record.started_at = now
        if state in TERMINAL_STATES:
            record.terminal_at = now
            record.reason = reason

    def abort_non_terminal(self, now: float, reason: str) -> List[RequestRecord]:
        """Terminal-ise every live record (graceful drain leftovers, or
        crash recovery after replay).  Returns the aborted records."""
        aborted = []
        for record in self.records.values():
            if not record.terminal:
                self.transition(record.rid, ABORTED, now, reason=reason)
                aborted.append(record)
        return aborted

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- queries ----------------------------------------------------------

    def get(self, rid: int) -> Optional[RequestRecord]:
        return self.records.get(rid)

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in STATES}
        for record in self.records.values():
            out[record.state] += 1
        return out

    def terminal_count(self) -> int:
        return sum(1 for r in self.records.values() if r.terminal)

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return f"<RequestStore {len(self.records)} records {self.counts()}>"

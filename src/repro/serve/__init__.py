"""Live serving front end over the real-time clock.

Everything below ``repro.serve`` runs the *same* engine objects the
simulator runs (``InferenceServer``, ``ClusterServer``, the Manager and
Scheduler inside them) — unmodified — against wall time:

- :mod:`repro.serve.bridge` — :class:`LiveEventLoop` maps the engine's
  ``call_at`` machinery onto a single re-armed asyncio timer.
- :mod:`repro.serve.store` — :class:`RequestStore`, the persistent
  request-status store with an append-only JSONL journal and
  replay-on-start crash recovery.
- :mod:`repro.serve.frontend` — :class:`ServeApp`, a hand-rolled
  HTTP/1.1 front end (stdlib asyncio streams only) with graceful
  drain-on-signal shutdown; ``python -m repro.serve`` starts one.
- :mod:`repro.serve.loadgen` — socket client that replays the
  simulator's seeded workload plans; ``python -m repro.serve.loadgen``.
- :mod:`repro.serve.parity` — the sim-vs-live parity harness: same seed
  must give the same per-request outcomes, and live p50/p99 must land
  within tolerance bands of the simulator's prediction.

Importing :mod:`repro` (or running any simulated experiment) never
imports this package; simulated runs stay bit-identical with or without
it (guarded by the fingerprint suites).
"""

from repro.serve.bridge import LiveEventLoop
from repro.serve.frontend import ServeApp, ServeHandle, start_in_thread
from repro.serve.store import (
    ABORTED,
    FAILED,
    PENDING,
    RUNNING,
    SUCCEEDED,
    TERMINAL_STATES,
    IllegalTransition,
    JournalCorrupt,
    RequestRecord,
    RequestStore,
)

__all__ = [
    "LiveEventLoop",
    "ServeApp",
    "ServeHandle",
    "start_in_thread",
    "RequestStore",
    "RequestRecord",
    "IllegalTransition",
    "JournalCorrupt",
    "PENDING",
    "RUNNING",
    "SUCCEEDED",
    "FAILED",
    "ABORTED",
    "TERMINAL_STATES",
]

"""Sim-vs-live parity harness.

The contract :mod:`repro.serve` must uphold: running the *same engine*
over the *same seeded workload* on the real-time clock instead of the
virtual one changes **when** things happen on the wall clock, but not
**what** happens.  Concretely, for a seeded plan
(:meth:`repro.workload.LoadGenerator.plan`):

- **Outcome parity (exact)** — every plan index reaches the same
  terminal outcome (SUCCEEDED / FAILED-timeout / FAILED-rejected) in
  both worlds.  The engine's admission and SLA decisions depend only on
  engine time, which the bridge reproduces, so this holds exactly for
  deterministic policies.
- **Latency parity (banded)** — live p50/p99 land within
  ``max(abs_tol, rel_tol * sim)`` of the simulator's prediction.  Live
  latencies pick up asyncio timer jitter (each hop fires up to ~1 ms
  late under load), so the bands are tolerance-, not bit-, exact; the
  defaults here were calibrated on the CI-sized workload and are
  widened further by ``relaxed=True`` for shared CI runners.

``python -m repro.serve.parity`` runs both worlds and exits non-zero on
any violation — the same check ``tests/test_serve_parity.py`` gates.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.serve.store import ABORTED, FAILED, SUCCEEDED

# Calibrated on the default workload (rate=200, n=300, lstm dataset):
# sim predicts p50≈1.7ms / p99≈7.4ms and live lands at p50≈5ms /
# p99≈23-27ms — each request's per-cell event chain accumulates ~0.1-1ms
# of asyncio timer lateness per hop, so the absolute band dominates at
# these small latencies and the relative band takes over at large ones.
DEFAULT_ABS_TOL_MS = 35.0
DEFAULT_REL_TOL = 0.50
RELAXED_ABS_TOL_MS = 100.0
RELAXED_REL_TOL = 2.0


class WorldResult:
    """Per-index outcomes + latencies from one world (sim or live)."""

    def __init__(
        self,
        world: str,
        outcomes: Dict[int, str],
        latencies: Dict[int, float],
        extras: Optional[Dict[str, Any]] = None,
    ):
        self.world = world
        self.outcomes = outcomes
        self.latencies = latencies
        self.extras = dict(extras or {})

    def percentile_ms(self, p: float) -> Optional[float]:
        values = sorted(self.latencies.values())
        if not values:
            return None
        index = min(len(values) - 1, max(0, round(p / 100.0 * (len(values) - 1))))
        return 1e3 * values[index]


class ParityResult:
    """The comparison verdict plus everything needed to debug a miss."""

    def __init__(
        self,
        sim: WorldResult,
        live: WorldResult,
        mismatches: List[str],
        bands: Dict[str, float],
    ):
        self.sim = sim
        self.live = live
        self.mismatches = mismatches
        self.bands = bands

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        lines = [
            f"sim : n={len(self.sim.outcomes)} "
            f"p50={self.sim.percentile_ms(50):.2f}ms "
            f"p99={self.sim.percentile_ms(99):.2f}ms",
            f"live: n={len(self.live.outcomes)} "
            f"p50={self.live.percentile_ms(50):.2f}ms "
            f"p99={self.live.percentile_ms(99):.2f}ms",
            f"bands: p50 ±{self.bands['p50_band_ms']:.2f}ms, "
            f"p99 ±{self.bands['p99_band_ms']:.2f}ms",
        ]
        if self.mismatches:
            lines.append("MISMATCHES:")
            lines.extend(f"  - {m}" for m in self.mismatches)
        else:
            lines.append("parity OK")
        return "\n".join(lines)


def run_sim(
    rate: float,
    num_requests: int,
    seed: int = 0,
    dataset: str = "lstm",
    dataset_seed: int = 1,
    deadline: Optional[float] = None,
    num_replicas: int = 1,
) -> WorldResult:
    """Run the plan on the virtual clock; outcomes keyed by plan index.

    Request ids are assigned in submission order, so the engine's
    ``request_id`` *is* the plan index — the same identity the live
    loadgen carries as ``tag``.
    """
    from repro.cluster.cluster import build_cluster
    from repro.registry.builders import build_server
    from repro.registry.presets import lstm_serve_spec
    from repro.serve.loadgen import DATASETS
    from repro.workload.loadgen import LoadGenerator

    spec = lstm_serve_spec(num_replicas=num_replicas)
    if spec.server is not None:
        server = build_server(spec.server)
    else:
        server = build_cluster(spec.cluster)
    plan = LoadGenerator(rate=rate, num_requests=num_requests, seed=seed).plan(
        DATASETS[dataset](dataset_seed)
    )
    for when, payload in plan:
        server.submit(payload, arrival_time=when, deadline=deadline)
    server.drain()

    outcomes: Dict[int, str] = {}
    latencies: Dict[int, float] = {}
    for request in server.finished:
        outcomes[request.request_id] = SUCCEEDED
        latencies[request.request_id] = request.finish_time - request.arrival_time
    for request in getattr(server, "timed_out", ()):
        outcomes[request.request_id] = FAILED
    for request in getattr(server, "rejected", ()):
        outcomes[request.request_id] = FAILED
    return WorldResult("sim", outcomes, latencies)


def run_live(
    rate: float,
    num_requests: int,
    seed: int = 0,
    dataset: str = "lstm",
    dataset_seed: int = 1,
    deadline: Optional[float] = None,
    num_replicas: int = 1,
    concurrency: int = 16,
    drain_timeout: float = 60.0,
) -> WorldResult:
    """Run the same plan through a real server over localhost sockets."""
    import asyncio

    from repro.registry.presets import lstm_serve_spec
    from repro.serve.frontend import start_in_thread
    from repro.serve.loadgen import run_loadgen

    spec = lstm_serve_spec(port=0, num_replicas=num_replicas)
    handle = start_in_thread(spec)
    try:
        report = asyncio.run(
            run_loadgen(
                spec.host,
                handle.port,
                rate=rate,
                num_requests=num_requests,
                seed=seed,
                dataset=dataset,
                dataset_seed=dataset_seed,
                concurrency=concurrency,
                deadline=deadline,
                drain_timeout=drain_timeout,
            )
        )
    finally:
        handle.stop()
    extras = {
        "submit_errors": list(report.submit_errors),
        "lost": report.lost,
        "wall_seconds": report.wall_seconds,
    }
    return WorldResult("live", dict(report.outcomes), dict(report.latencies), extras)


def compare(
    sim: WorldResult,
    live: WorldResult,
    abs_tol_ms: float = DEFAULT_ABS_TOL_MS,
    rel_tol: float = DEFAULT_REL_TOL,
) -> ParityResult:
    """Exact per-index outcome parity + banded p50/p99 latency parity."""
    mismatches: List[str] = []
    if live.extras.get("submit_errors"):
        mismatches.append(
            f"live submit errors: {live.extras['submit_errors'][:3]}"
        )
    if live.extras.get("lost"):
        mismatches.append(f"live lost {live.extras['lost']} requests")

    sim_keys, live_keys = set(sim.outcomes), set(live.outcomes)
    for index in sorted(sim_keys - live_keys):
        mismatches.append(f"index {index}: sim={sim.outcomes[index]}, live missing")
    for index in sorted(live_keys - sim_keys):
        mismatches.append(f"index {index}: live={live.outcomes[index]}, sim missing")
    disagreements = [
        index
        for index in sorted(sim_keys & live_keys)
        if sim.outcomes[index] != live.outcomes[index]
        and live.outcomes[index] != ABORTED
    ]
    for index in disagreements[:10]:
        mismatches.append(
            f"index {index}: sim={sim.outcomes[index]} live={live.outcomes[index]}"
        )
    if len(disagreements) > 10:
        mismatches.append(f"... and {len(disagreements) - 10} more outcome diffs")
    aborted = [i for i in live_keys if live.outcomes[i] == ABORTED]
    if aborted:
        mismatches.append(f"{len(aborted)} live requests ABORTED mid-run")

    bands: Dict[str, float] = {}
    for p in (50, 99):
        sim_p, live_p = sim.percentile_ms(p), live.percentile_ms(p)
        band = max(abs_tol_ms, rel_tol * (sim_p or 0.0))
        bands[f"p{p}_band_ms"] = band
        if sim_p is None or live_p is None:
            mismatches.append(f"p{p}: missing latencies (sim={sim_p}, live={live_p})")
        elif abs(live_p - sim_p) > band:
            mismatches.append(
                f"p{p}: live {live_p:.2f}ms vs sim {sim_p:.2f}ms "
                f"exceeds band ±{band:.2f}ms"
            )
    return ParityResult(sim, live, mismatches, bands)


def run_parity(
    rate: float = 200.0,
    num_requests: int = 300,
    seed: int = 0,
    dataset: str = "lstm",
    dataset_seed: int = 1,
    deadline: Optional[float] = None,
    num_replicas: int = 1,
    relaxed: bool = False,
) -> ParityResult:
    """Run both worlds on one plan and compare."""
    abs_tol = RELAXED_ABS_TOL_MS if relaxed else DEFAULT_ABS_TOL_MS
    rel_tol = RELAXED_REL_TOL if relaxed else DEFAULT_REL_TOL
    sim = run_sim(
        rate, num_requests, seed, dataset, dataset_seed, deadline, num_replicas
    )
    live = run_live(
        rate, num_requests, seed, dataset, dataset_seed, deadline, num_replicas
    )
    return compare(sim, live, abs_tol_ms=abs_tol, rel_tol=rel_tol)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.serve.loadgen import DATASETS

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.parity",
        description="Same seed, two worlds: virtual-clock simulation vs a "
        "live localhost server. Exits non-zero if outcomes diverge or "
        "live p50/p99 leave the tolerance bands.",
    )
    parser.add_argument("--rate", type=float, default=200.0)
    parser.add_argument("--num-requests", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dataset", default="lstm", choices=sorted(DATASETS))
    parser.add_argument("--dataset-seed", type=int, default=1)
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument("--num-replicas", type=int, default=1)
    parser.add_argument(
        "--relaxed",
        action="store_true",
        help="widen tolerance bands for noisy shared machines (CI)",
    )
    args = parser.parse_args(argv)
    result = run_parity(
        rate=args.rate,
        num_requests=args.num_requests,
        seed=args.seed,
        dataset=args.dataset,
        dataset_seed=args.dataset_seed,
        deadline=args.deadline,
        num_replicas=args.num_replicas,
        relaxed=args.relaxed,
    )
    print(result.describe())
    return 0 if result.ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())

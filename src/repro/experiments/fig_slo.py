"""SLO attainment sweep: eager kick vs lazy kick vs admission shedding.

Beyond the paper's latency-percentile curves: fix a service-level
objective (8 ms end-to-end) and sweep offered load across three
configurations of the same one-replica chain-LSTM cluster:

* **paper** — the eager Algorithm-1 kick (a batch launches the moment a
  worker goes idle), no SLA anywhere.  The PR-6 baseline, bit-identical
  to it.
* **lazy_kick** — the replica carries an :class:`~repro.faults.SLAConfig`
  and runs :class:`~repro.policies.LazyKickPolicy`: kicks are delayed
  while every member of the planned batch has predicted slack, so batches
  densify and the per-task overhead amortises; deadline eviction sheds
  requests that already missed.
* **shed** — SLO-aware admission control at the cluster front door: the
  cluster's SLA plus the ``predicted_delay`` routing metric reject an
  arrival whose predicted completion (Little's law over the per-replica
  inter-completion gap) already overshoots its deadline.

Attainment counts a request as *met* only if it finished within the SLO;
timed-out and shed requests are misses.  The regime that separates the
policies is a per-task-overhead-dominated one (130 us, the ablation
point ``repro.experiments.ablations`` also probes) on fixed-length
sequences, where batch density is pure profit: near saturation the lazy
kick's denser batches buy back queueing headroom, and past saturation
admission shedding keeps the served fraction inside the SLO instead of
letting the queue drown everyone.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.cluster import build_cluster
from repro.experiments import common
from repro.gpu.costmodel import CostModel, v100_lstm_step_table
from repro.metrics.summary import RunSummary, format_table
from repro.registry.presets import lstm_cluster_spec
from repro.server import InferenceServer
from repro.workload import FixedLengthDataset

# End-to-end objective and the lazy hold bound (cumulative added delay).
SLO = 8e-3
MAX_HOLD = 1e-3
# One modest 1-GPU replica (max_batch 32) serving fixed-length-24 chains
# at the 130 us per-task-overhead ablation point; it saturates near
# 5.4K req/s, so the sweep spans ~70% utilisation to past saturation.
MAX_BATCH = 32
SEQUENCE_LENGTH = 24
PER_TASK_OVERHEAD = 130e-6
SATURATION = 5400.0
FULL_RATES: Sequence[float] = (3800, 4400, 4700, 5000, 5600)
QUICK_RATES: Sequence[float] = (4400, 5000, 5600)
SEED = 7

CONFIGS: Sequence[str] = ("paper", "lazy_kick", "shed")


def _cost_model() -> CostModel:
    """The overhead-dominated cost point: 130 us scheduling cost per task,
    gather folded in (fixed-length batches repeat their composition)."""
    model = CostModel(per_task_overhead=PER_TASK_OVERHEAD, gather_overhead=0.0)
    model.register("lstm", v100_lstm_step_table())
    return model


def _spec(config: str):
    spec = lstm_cluster_spec(num_replicas=1, max_batch=MAX_BATCH, seed=SEED)
    if config == "lazy_kick":
        replica = spec.replica.replace(
            policies={"formation": "lazy_kick"},
            sla={"default_deadline": SLO, "max_hold": MAX_HOLD},
        )
        return spec.replace(replica=replica, name="BatchMaker lazy-kick")
    if config == "shed":
        return spec.replace(
            router="predicted_delay",
            sla={"default_deadline": SLO},
            name="BatchMaker shed",
        )
    return spec.replace(name="BatchMaker paper")


def _cluster_factory(config: str) -> Callable[[], InferenceServer]:
    spec = _spec(config)

    def factory() -> InferenceServer:
        return build_cluster(spec, cost_model=_cost_model())

    return factory


def _request_count(quick: bool) -> Callable[[float], int]:
    # Fixed counts (not rate-scaled): attainment compares configurations
    # point for point, so every config must see the same request ids.
    return (lambda rate: 1500) if quick else (lambda rate: 4000)


def attainment(summary: RunSummary, slo: float = SLO) -> float:
    """Fraction of measured-window requests that finished within ``slo``.

    Timed-out (deadline-evicted) and shed (admission-rejected) requests
    are SLO misses — the denominator is every measured-window arrival
    that reached a terminal state, not just the survivors.
    """
    ok = sum(1 for latency in summary.stats.latencies if latency <= slo)
    total = summary.stats.count() + int(
        summary.extras.get("timed_out", 0) + summary.extras.get("rejected", 0)
    )
    return ok / total if total else 0.0


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List[RunSummary]]:
    """One attainment-vs-load curve per configuration."""
    rates = QUICK_RATES if quick else FULL_RATES
    num_requests_for = _request_count(quick)
    results: Dict[str, List[RunSummary]] = {}
    for config in CONFIGS:
        results[config] = common.sweep(
            _cluster_factory(config),
            lambda: FixedLengthDataset(SEQUENCE_LENGTH),
            rates,
            num_requests_for,
            seed=SEED,
            jobs=jobs,
        )
    return results


def main(quick: bool = False, jobs: int = 1):
    results = run(quick=quick, jobs=jobs)
    common.print_sweep(
        "SLO sweep: LSTM, fixed length 24, 130 us/task overhead, 1 replica",
        results,
    )
    print(f"\n== SLO attainment (SLO = {SLO * 1e3:g} ms) ==")
    rows = []
    for config, summaries in results.items():
        for s in summaries:
            rows.append(
                [
                    config,
                    f"{s.offered_rate:.0f}",
                    f"{attainment(s) * 100:.1f}%",
                    f"{int(s.extras.get('timed_out', 0))}",
                    f"{int(s.extras.get('rejected', 0))}",
                ]
            )
    print(
        format_table(
            ["config", "offered req/s", "attainment", "timed out", "shed"],
            rows,
        )
    )
    # The headline comparisons: lazy kick vs the paper's eager kick at
    # >= 80% utilisation, and shedding vs both past saturation.
    for p, lazy in zip(results["paper"], results["lazy_kick"]):
        if p.offered_rate < 0.8 * SATURATION or p.offered_rate > SATURATION:
            continue
        a_p, a_l = attainment(p), attainment(lazy)
        print(
            f"{p.offered_rate / SATURATION * 100:.0f}% load: attainment "
            f"paper {a_p:.3f} vs lazy {a_l:.3f} ({(a_l - a_p) * 100:+.1f} pt)"
        )
    top_paper, top_shed = results["paper"][-1], results["shed"][-1]
    print(
        f"past saturation ({top_paper.offered_rate:.0f} req/s): attainment "
        f"paper {attainment(top_paper):.3f} vs shed {attainment(top_shed):.3f} "
        f"({int(top_shed.extras.get('rejected', 0))} arrivals shed)"
    )
    return results


def plot(results: Dict[str, List[RunSummary]], out_dir) -> List[str]:
    """Attainment and p99 versus offered load, one series per config."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series

    att = Chart(
        f"SLO attainment vs offered load (SLO = {SLO * 1e3:g} ms)",
        x_label="Offered load (req/s)",
        y_label="SLO attainment",
    )
    p99 = Chart(
        "p99 latency vs offered load",
        x_label="Offered load (req/s)",
        y_label="99p latency (ms)",
    )
    p99.cap_y(100.0)
    for config, summaries in results.items():
        att.add(
            Series(config, [(s.offered_rate, attainment(s)) for s in summaries])
        )
        p99.add(Series(config, [(s.offered_rate, s.p99_ms) for s in summaries]))
    paths = []
    for chart, stem in ((att, "fig_slo_attainment"), (p99, "fig_slo_p99")):
        path = Path(out_dir) / f"{stem}.svg"
        chart.save(path)
        paths.append(str(path))
    return paths


if __name__ == "__main__":
    main()

"""Memory-pressure sweep: memory-aware vs oblivious serving (DESIGN.md §15).

Beyond the paper's latency-percentile curves: serve the *dynamic-decode*
Seq2Seq workload (feed-previous decoding; the graph grows one decoder
cell per emitted token, so a request's device-state footprint is unknown
at admission) under a tight per-device memory budget, and sweep offered
load across two configurations of the same 2-GPU BatchMaker:

* **oblivious** — the paper formation with the budget merely *enforced*:
  a kick whose reservation would overcommit OOM-cancels the request on
  the spot.  What a memory-unaware scheduler does when the bytes run out.
* **aware** — :class:`~repro.policies.MemoryAwareFormation`: plans are
  fitted to the device's free bytes, members that don't fit are deferred
  (left queued) until completions release state, growing requests may
  evict-and-restart strictly-less-advanced victims, and requests whose
  footprint alone exceeds the device are triaged at the wall.

Goodput counts only finished requests; an OOM-cancelled request is wasted
work.  Under pressure the oblivious server kills whichever request
happens to kick when the budget is exhausted — transient overcommit
becomes permanent request loss — while the aware server serialises the
overcommit and loses only the requests that could never fit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.experiments import common
from repro.metrics.summary import RunSummary, format_table
from repro.registry import build_server
from repro.registry.presets import seq2seq_dynamic_spec
from repro.server import InferenceServer
from repro.workload import Seq2SeqDataset

# Per-device budget: 64 live hidden states (plus resident weights).  An
# average WMT-length dynamic decode holds ~25 states until completion, so
# two or three concurrent requests per device already flirt with the
# ceiling and transient overcommit is routine at every swept rate.
CAPACITY_REQUESTS = 64
NUM_GPUS = 2
FULL_RATES: Sequence[float] = (100, 200, 300, 400)
QUICK_RATES: Sequence[float] = (200, 300)
SEED = 7
DATASET_SEED = 1

CONFIGS: Sequence[str] = ("oblivious", "aware")


def _spec(config: str):
    return seq2seq_dynamic_spec(
        num_gpus=NUM_GPUS,
        capacity_requests=CAPACITY_REQUESTS,
        memory_aware=(config == "aware"),
    )


def _server_factory(config: str) -> Callable[[], InferenceServer]:
    spec = _spec(config)

    def factory() -> InferenceServer:
        return build_server(spec)

    return factory


def _request_count(quick: bool) -> Callable[[float], int]:
    # Fixed counts (not rate-scaled): goodput compares configurations
    # point for point, so every config must see the same request ids.
    return (lambda rate: 200) if quick else (lambda rate: 400)


def completion_rate(summary: RunSummary) -> float:
    """Fraction of measured-window arrivals that finished (OOM-cancelled
    and deadline-evicted requests are the complement)."""
    finished = summary.stats.count()
    total = finished + int(
        summary.extras.get("timed_out", 0) + summary.extras.get("rejected", 0)
    )
    return finished / total if total else 0.0


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List[RunSummary]]:
    """One goodput-vs-load curve per configuration."""
    rates = QUICK_RATES if quick else FULL_RATES
    num_requests_for = _request_count(quick)
    results: Dict[str, List[RunSummary]] = {}
    for config in CONFIGS:
        results[config] = common.sweep(
            _server_factory(config),
            lambda: Seq2SeqDataset(seed=DATASET_SEED, dynamic=True),
            rates,
            num_requests_for,
            seed=SEED,
            jobs=jobs,
        )
    return results


def main(quick: bool = False, jobs: int = 1):
    results = run(quick=quick, jobs=jobs)
    common.print_sweep(
        f"Memory sweep: dynamic-decode Seq2Seq, {CAPACITY_REQUESTS}-state "
        f"budget/device, {NUM_GPUS} GPUs",
        results,
    )
    print("\n== completion under memory pressure ==")
    rows = []
    for config, summaries in results.items():
        for s in summaries:
            rows.append(
                [
                    config,
                    f"{s.offered_rate:.0f}",
                    f"{s.throughput:.0f}",
                    f"{completion_rate(s) * 100:.1f}%",
                    f"{int(s.extras.get('timed_out', 0))}",
                    f"{s.p99_ms:.1f}",
                ]
            )
    print(
        format_table(
            [
                "config",
                "offered req/s",
                "goodput req/s",
                "completion",
                "oom-cancelled",
                "p99 ms",
            ],
            rows,
        )
    )
    # The headline comparison: requests the aware formation rescues from
    # the oblivious server's overcommit cancellations, point by point.
    for ob, aw in zip(results["oblivious"], results["aware"]):
        lost_ob = int(ob.extras.get("timed_out", 0))
        lost_aw = int(aw.extras.get("timed_out", 0))
        print(
            f"{ob.offered_rate:.0f} req/s: oblivious cancels {lost_ob}, "
            f"aware cancels {lost_aw} ({lost_ob - lost_aw:+d} rescued; "
            f"goodput {ob.throughput:.0f} -> {aw.throughput:.0f} req/s)"
        )
    return results


def plot(results: Dict[str, List[RunSummary]], out_dir) -> List[str]:
    """Goodput and p99 versus offered load, one series per config."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series

    goodput = Chart(
        f"Goodput vs offered load ({CAPACITY_REQUESTS}-state budget/device)",
        x_label="Offered load (req/s)",
        y_label="Goodput (finished req/s)",
    )
    p99 = Chart(
        "p99 latency vs offered load",
        x_label="Offered load (req/s)",
        y_label="99p latency (ms)",
    )
    p99.cap_y(200.0)
    for config, summaries in results.items():
        goodput.add(
            Series(config, [(s.offered_rate, s.throughput) for s in summaries])
        )
        p99.add(Series(config, [(s.offered_rate, s.p99_ms) for s in summaries]))
    paths = []
    for chart, stem in ((goodput, "fig_memory_goodput"), (p99, "fig_memory_p99")):
        path = Path(out_dir) / f"{stem}.svg"
        chart.save(path)
        paths.append(str(path))
    return paths


if __name__ == "__main__":
    main()

"""Fault sweep: tail latency and goodput vs injected kernel-failure rate.

Beyond the paper's evaluation (which assumes healthy hardware): serve the
chain-LSTM workload at a fixed moderate load while injecting kernel
failures at increasing rates, with the SLA machinery retrying failed tasks
(exponential backoff) and cancelling requests whose deadline or failure
budget is spent.  Reported per fault rate: p50/p99 latency of completed
requests, goodput (completed req/s), timeouts and retries — how gracefully
cellular batching degrades when kernels start failing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import BatchMakerServer, BatchingConfig
from repro.faults import FaultPlan, RetryPolicy, SLAConfig
from repro.metrics.summary import RunSummary, format_table
from repro.models import LSTMChainModel
from repro.workload import LoadGenerator, SequenceDataset

FULL_FAULT_RATES: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1)
QUICK_FAULT_RATES: Sequence[float] = (0.0, 0.02, 0.1)

RATE = 4000.0          # req/s: well below saturation, so added tail = faults
DEADLINE = 100e-3      # generous SLO; retries normally beat it
FAULT_SEED = 13


def _server(fault_rate: float, num_gpus: int = 2) -> BatchMakerServer:
    plan = FaultPlan(seed=FAULT_SEED, kernel_failure_rate=fault_rate)
    sla = SLAConfig(
        default_deadline=DEADLINE,
        retry=RetryPolicy(max_retries=3, backoff_base=200e-6),
    )
    return BatchMakerServer(
        LSTMChainModel(),
        config=BatchingConfig.with_max_batch(512),
        num_gpus=num_gpus,
        fault_plan=plan,
        sla=sla,
        name=f"BatchMaker (fault rate {fault_rate:g})",
    )


def run(quick: bool = False, jobs: int = 1) -> Dict[float, RunSummary]:
    fault_rates = QUICK_FAULT_RATES if quick else FULL_FAULT_RATES
    num_requests = 2000 if quick else 8000
    results: Dict[float, RunSummary] = {}
    for fault_rate in fault_rates:
        generator = LoadGenerator(rate=RATE, num_requests=num_requests, seed=7)
        result = generator.run(_server(fault_rate), SequenceDataset(seed=1))
        results[fault_rate] = result.summary
    return results


def main(quick: bool = False, jobs: int = 1) -> Dict[float, RunSummary]:
    results = run(quick=quick, jobs=jobs)
    print(f"\n== Fault sweep: LSTM @ {RATE:.0f} req/s, 2 GPUs, "
          f"{DEADLINE * 1e3:.0f} ms SLO ==")
    rows = []
    for fault_rate, s in results.items():
        rows.append(
            [
                f"{fault_rate:.3f}",
                f"{s.throughput:.0f}",
                f"{s.p50_ms:.2f}",
                f"{s.p99_ms:.2f}",
                f"{s.extras.get('timed_out', 0):.0f}",
                f"{s.extras.get('retries', 0):.0f}",
            ]
        )
    print(
        format_table(
            ["fault rate", "goodput req/s", "p50 ms", "p99 ms",
             "timeouts", "retries"],
            rows,
        )
    )
    healthy = results.get(0.0)
    worst = results[max(results)]
    if healthy is not None:
        print(
            f"p99 inflation at fault rate {max(results):g}: "
            f"{worst.p99_ms / healthy.p99_ms:.2f}x "
            f"({healthy.p99_ms:.2f} -> {worst.p99_ms:.2f} ms)"
        )
    return results


def plot(results: Dict[float, RunSummary], out_dir) -> List[str]:
    """Render the fault sweep: p99 latency vs fault rate, goodput inset."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series

    chart = Chart(
        "Fault sweep: tail latency vs kernel failure rate",
        x_label="Kernel failure rate",
        y_label="Latency (ms)",
    )
    rates = sorted(results)
    chart.add(Series("p99", [(r, results[r].p99_ms) for r in rates]))
    chart.add(Series("p50", [(r, results[r].p50_ms) for r in rates]))
    path = Path(out_dir) / "fig_faults_latency.svg"
    chart.save(path)

    goodput = Chart(
        "Fault sweep: goodput vs kernel failure rate",
        x_label="Kernel failure rate",
        y_label="Goodput (req/s)",
    )
    goodput.add(Series("goodput", [(r, results[r].throughput) for r in rates]))
    goodput_path = Path(out_dir) / "fig_faults_goodput.svg"
    goodput.save(goodput_path)
    return [str(path), str(goodput_path)]


if __name__ == "__main__":
    main()

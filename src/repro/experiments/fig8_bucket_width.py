"""Figure 8: the bucket-width trade-off for the padding baseline (MXNet).

Fine buckets (width 1) minimise padding waste but multiply the number of
buckets a request waits behind under round-robin; coarse buckets (width 40)
shorten the wait but waste computation.  Width 10 is the paper's chosen
compromise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.workload import SequenceDataset

WIDTHS: Sequence[int] = (1, 5, 10, 20, 40)
FULL_RATES: Sequence[float] = (1000, 2000, 5000, 8000, 12000, 16000)
QUICK_RATES: Sequence[float] = (2000, 8000)


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List]:
    rates = QUICK_RATES if quick else FULL_RATES
    count = common.default_request_count(quick)
    dataset = lambda: SequenceDataset(seed=1)
    results = {}
    for width in WIDTHS:
        results[f"bw {width}"] = common.sweep(
            lambda w=width: common.lstm_padded("MXNet", bucket_width=w),
            dataset,
            rates,
            count,
            jobs=jobs,
        )
    return results


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = run(quick=quick, jobs=jobs)
    common.print_sweep("Fig 8: MXNet bucket-width sweep (bmax=512, 1 GPU)", results)
    for label, summaries in results.items():
        low_load = summaries[0]
        print(
            f"{label}: low-load p90 {low_load.p90_ms:.2f} ms, "
            f"peak {common.peak_throughput(summaries):.0f} req/s"
        )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir) -> List[str]:
    """Render Fig 8 as an SVG throughput-latency chart."""
    from pathlib import Path

    from repro.plot import sweep_chart

    chart = sweep_chart("Fig 8: MXNet bucket-width sweep", results)
    path = Path(out_dir) / "fig8_bucket_width.svg"
    chart.save(path)
    return [str(path)]

"""Experiment harness: one module per table/figure of the paper's evaluation.

Each ``figN_*`` module exposes ``run(quick=False) -> dict`` returning the
figure's series, and a module-level ``main()`` that prints them as text
tables.  ``repro.experiments.runner`` is the CLI entry point
(``python -m repro.experiments.runner <fig|all> [--quick]``).

Scale note: ``quick=True`` shrinks request counts and sweep points so the
whole suite runs in seconds (used by the pytest benchmarks); the default
scale reproduces the paper-shaped curves in minutes.
"""

"""Figure 13: Seq2Seq on 2 and 4 GPUs.

BatchMaker-512,256 (per-cell-type max batch: encoder 512, decoder 256) and
BatchMaker-256,256 vs the padding baselines at max batch 256 (graph
batching forces one batch size for the whole graph, so the baselines run
at the decoder-optimal 256).  Expected shape: BatchMaker peaks ~2x the
baselines and stays flat far longer; the 512,256 configuration adds a few
percent of throughput over 256,256.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.workload import Seq2SeqDataset

FULL_RATES_2GPU: Sequence[float] = (1000, 2000, 4000, 6000, 8000, 9500, 11000)
FULL_RATES_4GPU: Sequence[float] = (2000, 4000, 8000, 12000, 16000, 19000, 22000)
QUICK_RATES_2GPU: Sequence[float] = (2000, 6000, 10000)
QUICK_RATES_4GPU: Sequence[float] = (4000, 12000, 20000)


def run(quick: bool = False, num_gpus: int = 2, jobs: int = 1) -> Dict[str, List]:
    if num_gpus == 2:
        rates = QUICK_RATES_2GPU if quick else FULL_RATES_2GPU
    else:
        rates = QUICK_RATES_4GPU if quick else FULL_RATES_4GPU
    count = common.default_request_count(quick)
    dataset = lambda: Seq2SeqDataset(seed=5)
    return {
        "BatchMaker-512,256": common.sweep(
            lambda: common.seq2seq_batchmaker(512, 256, num_gpus),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
        "BatchMaker-256,256": common.sweep(
            lambda: common.seq2seq_batchmaker(256, 256, num_gpus),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
        "MXNet": common.sweep(
            lambda: common.seq2seq_padded("MXNet", num_gpus),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
        "TensorFlow": common.sweep(
            lambda: common.seq2seq_padded("TensorFlow", num_gpus),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = {}
    for num_gpus in (2, 4):
        sub = run(quick=quick, num_gpus=num_gpus, jobs=jobs)
        results[num_gpus] = sub
        common.print_sweep(
            f"Fig 13{'a' if num_gpus == 2 else 'b'}: Seq2Seq, {num_gpus} GPUs", sub
        )
        best = common.peak_throughput(sub["BatchMaker-512,256"])
        alt = common.peak_throughput(sub["BatchMaker-256,256"])
        base = max(
            common.peak_throughput(sub["MXNet"]),
            common.peak_throughput(sub["TensorFlow"]),
        )
        print(
            f"peaks: BM-512,256 {best:.0f}, BM-256,256 {alt:.0f}, best baseline "
            f"{base:.0f} req/s; 512,256 vs 256,256: {best / alt - 1:+.1%} "
            "(paper: +3.5-6%)"
        )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir):
    """Render Fig 13a/13b as SVG throughput-latency charts."""
    from pathlib import Path

    from repro.plot import sweep_chart

    paths = []
    for num_gpus, by_system in results.items():
        suffix = "a" if num_gpus == 2 else "b"
        chart = sweep_chart(
            f"Fig 13{suffix}: Seq2Seq, {num_gpus} GPUs",
            by_system,
            latency_cap_ms=800,
        )
        path = Path(out_dir) / f"fig13{suffix}_seq2seq_{num_gpus}gpu.svg"
        chart.save(path)
        paths.append(str(path))
    return paths

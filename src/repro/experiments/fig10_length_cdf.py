"""Figure 10: CDF of sentence lengths in the (synthetic) WMT-15 dataset.

The sampler is calibrated to the statistics the paper publishes: average
length 24, maximum 330, ~99% of sentences shorter than 100.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.metrics.summary import format_table
from repro.workload.lengths import WMTLengthSampler

CHECKPOINTS = (10, 24, 50, 100, 200, 330)


def run(quick: bool = False) -> Dict:
    n = 10000 if quick else 100000
    lengths = WMTLengthSampler(seed=0).sample(n)
    return {
        "n": n,
        "mean": float(np.mean(lengths)),
        "p50": float(np.percentile(lengths, 50)),
        "p90": float(np.percentile(lengths, 90)),
        "p99": float(np.percentile(lengths, 99)),
        "max": int(np.max(lengths)),
        "cdf": {c: float(np.mean(lengths <= c)) for c in CHECKPOINTS},
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # dataset CDF only; no simulation sweep
    result = run(quick=quick)
    print("\n== Fig 10: sequence-length CDF (synthetic WMT-15 Europarl) ==")
    rows = [[str(c), f"{result['cdf'][c] * 100:.1f}%"] for c in CHECKPOINTS]
    print(format_table(["length <=", "fraction"], rows))
    print(
        f"mean {result['mean']:.1f} (paper 24), max {result['max']} (paper 330), "
        f"P(len<100) {result['cdf'][100] * 100:.1f}% (paper ~99%)"
    )
    return result


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir):
    """Render Fig 10 as an SVG CDF chart."""
    from pathlib import Path

    import numpy as np

    from repro.plot import cdf_chart
    from repro.workload.lengths import WMTLengthSampler, length_cdf

    lengths = WMTLengthSampler(seed=0).sample(results["n"])
    points = length_cdf(lengths)
    chart = cdf_chart(
        "Fig 10: sequence-length CDF (synthetic WMT-15)",
        {"WMT-15-like lengths": [(float(v), f) for v, f in points]},
        x_label="Sequence length",
        x_log=False,
    )
    path = Path(out_dir) / "fig10_length_cdf.svg"
    chart.save(path)
    return [str(path)]

"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import FoldServer, PaddedServer
from repro.core import BatchMakerServer
from repro.metrics.summary import RunSummary, format_table
from repro.registry import build_server, presets
from repro.registry.presets import (  # re-exported for compatibility
    MXNET_BATCH_OVERHEAD,
    TENSORFLOW_BATCH_OVERHEAD,
)
from repro.server import InferenceServer
from repro.workload import LoadGenerator

# Every server below is built through the registry from a declarative
# ServerSpec (see repro.registry.presets) — one construction path shared
# with the ablations and the registry tests.


def lstm_batchmaker(max_batch: int = 512, num_gpus: int = 1) -> BatchMakerServer:
    """BatchMaker serving the chain LSTM with the paper's defaults."""
    return build_server(
        presets.lstm_batchmaker_spec(max_batch=max_batch, num_gpus=num_gpus)
    )


def lstm_padded(
    system: str = "MXNet",
    bucket_width: int = 10,
    max_batch: int = 512,
    num_gpus: int = 1,
) -> PaddedServer:
    """MXNet- or TensorFlow-flavoured padding baseline for the chain LSTM."""
    return build_server(
        presets.lstm_padded_spec(
            system,
            bucket_width=bucket_width,
            max_batch=max_batch,
            num_gpus=num_gpus,
        )
    )


def seq2seq_batchmaker(
    encoder_batch: int = 512, decoder_batch: int = 256, num_gpus: int = 2
) -> BatchMakerServer:
    """BatchMaker-<enc>,<dec> configuration from Figure 13."""
    return build_server(
        presets.seq2seq_batchmaker_spec(
            encoder_batch=encoder_batch,
            decoder_batch=decoder_batch,
            num_gpus=num_gpus,
        )
    )


def seq2seq_padded(system: str = "MXNet", num_gpus: int = 2) -> PaddedServer:
    return build_server(presets.seq2seq_padded_spec(system, num_gpus=num_gpus))


def tree_batchmaker(max_batch: int = 64, num_gpus: int = 1) -> BatchMakerServer:
    return build_server(
        presets.tree_batchmaker_spec(max_batch=max_batch, num_gpus=num_gpus)
    )


def tree_dynet(num_gpus: int = 1) -> FoldServer:
    return build_server(presets.tree_dynet_spec(num_gpus=num_gpus))


def tree_tensorflow_fold(num_gpus: int = 1) -> FoldServer:
    return build_server(presets.tree_tensorflow_fold_spec(num_gpus=num_gpus))


def run_point(
    server: InferenceServer,
    dataset_factory: Callable[[], Any],
    rate: float,
    num_requests: int,
    seed: int = 7,
) -> RunSummary:
    """One load point: fresh dataset, Poisson arrivals, full drain."""
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=seed)
    result = generator.run(server, dataset_factory())
    _flush_trace(server, rate)
    return result.summary


def _flush_trace(server: InferenceServer, rate: float) -> None:
    """Write this load point's trace file if a ``--trace`` session is on.

    The file name comes from (experiment context, server name, rate) only,
    so a forked ``--jobs`` sweep produces the same file set as a serial one.
    """
    from repro.trace.session import active_session

    session = active_session()
    if session is None or server.trace_recorder is None:
        return
    path = session.flush(server.trace_recorder, f"{server.name}_r{rate:g}")
    print(f"[trace -> {path}]")


# Sweep context for worker processes.  Load points are independent fresh-
# server simulations, so the pool fans them out; the factories are often
# lambdas (unpicklable), so they travel to the children via fork inheritance
# of this module-level slot rather than through pickled task arguments.
_SWEEP_CONTEXT: Optional[Tuple[Callable, Callable, int]] = None


def _sweep_point(point: Tuple[float, int]) -> RunSummary:
    """Run one load point of the sweep described by ``_SWEEP_CONTEXT``."""
    rate, num_requests = point
    server_factory, dataset_factory, seed = _SWEEP_CONTEXT
    return run_point(
        server_factory(), dataset_factory, rate, num_requests, seed=seed
    )


def parallel_sweep_supported() -> bool:
    """Lambdas reach the children only by fork inheritance, so parallel
    sweeps need the fork start method (POSIX default); elsewhere ``sweep``
    silently falls back to the serial loop."""
    return multiprocessing.get_start_method(allow_none=False) == "fork"


def sweep(
    server_factory: Callable[[], InferenceServer],
    dataset_factory: Callable[[], Any],
    rates: Sequence[float],
    num_requests_for: Callable[[float], int],
    seed: int = 7,
    jobs: int = 1,
) -> List[RunSummary]:
    """A throughput-latency curve: one fresh server per load point.

    With ``jobs > 1`` the points run on a ``multiprocessing`` pool (each
    point is an independent deterministic simulation); results keep the
    ``rates`` order, so a parallel sweep returns exactly what the serial
    loop would.
    """
    global _SWEEP_CONTEXT
    points = [(rate, num_requests_for(rate)) for rate in rates]
    if jobs > 1 and len(points) > 1 and parallel_sweep_supported():
        _SWEEP_CONTEXT = (server_factory, dataset_factory, seed)
        try:
            with multiprocessing.Pool(min(jobs, len(points))) as pool:
                return pool.map(_sweep_point, points, chunksize=1)
        finally:
            _SWEEP_CONTEXT = None
    summaries = []
    for rate, num_requests in points:
        summaries.append(
            run_point(
                server_factory(),
                dataset_factory,
                rate,
                num_requests,
                seed=seed,
            )
        )
    return summaries


def default_request_count(quick: bool) -> Callable[[float], int]:
    """Scale the request count with the rate so every point simulates a
    comparable time horizon (~1 s quick / ~2 s full, floor applied)."""
    if quick:
        return lambda rate: int(max(1500, min(rate * 0.6, 6000)))
    return lambda rate: int(max(4000, min(rate * 2.0, 40000)))


def print_sweep(title: str, summaries_by_system: Dict[str, List[RunSummary]]) -> None:
    """Render Figure-7-style curves as a text table."""
    print(f"\n== {title} ==")
    rows = []
    for system, summaries in summaries_by_system.items():
        for s in summaries:
            rows.append(
                [
                    system,
                    f"{s.offered_rate:.0f}",
                    f"{s.throughput:.0f}",
                    f"{s.p50_ms:.2f}",
                    f"{s.p90_ms:.2f}",
                    f"{s.p99_ms:.2f}",
                ]
            )
    print(
        format_table(
            ["system", "offered req/s", "achieved req/s", "p50 ms", "p90 ms", "p99 ms"],
            rows,
        )
    )


def peak_throughput(summaries: List[RunSummary], latency_cap_ms: float = 500.0) -> float:
    """Peak achieved throughput among points whose p90 stays under the cap —
    how the paper quotes 'peak throughput' (curves are cut at ~500 ms)."""
    eligible = [s.throughput for s in summaries if s.p90_ms <= latency_cap_ms]
    if not eligible:
        eligible = [min(s.throughput for s in summaries)]
    return max(eligible)

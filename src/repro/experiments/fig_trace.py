"""fig_trace: critical-path latency breakdown vs offered load (LSTM).

For each load point, trace a full BatchMaker run and attribute every
request's latency into the six critical-path buckets (queue / compute /
gather / padding / retry / routing).  The figure shows *where* latency
grows with load: requests ride in larger batches (wider per-request
compute windows, more gather time) and queueing climbs as the offered
rate approaches the knee — the same story Figure 9 tells with CDFs at
one rate, here swept across rates from the trace subsystem's attribution
instead of the latency-stats series.

Each point is an independent deterministic simulation, so ``--jobs``
fans the points out exactly like the throughput sweeps; with ``--trace``
the per-point Chrome trace files are written as a side effect.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import multiprocessing

from repro.experiments import common
from repro.metrics.summary import format_table
from repro.sim.timebase import seconds_to_ms
from repro.trace import BUCKETS, CriticalPath, TraceRecorder
from repro.trace.session import active_session
from repro.workload import LoadGenerator, SequenceDataset

RATES = (2000.0, 5000.0, 8000.0)
PERCENTILES = (50.0, 99.0)


def run_point(rate: float, num_requests: int) -> Dict:
    """One traced load point -> breakdown dict (picklable for the pool)."""
    server = common.lstm_batchmaker()
    recorder = server.trace_recorder
    if recorder is None:
        # Standalone run (no --trace session): trace into a local buffer.
        recorder = TraceRecorder(server.loop)
        server.attach_trace(recorder)
    generator = LoadGenerator(rate=rate, num_requests=num_requests, seed=7)
    result = generator.run(server, SequenceDataset(seed=1))
    path = CriticalPath.from_recorder(recorder)
    session = active_session()
    if session is not None:
        out = session.flush(recorder, f"{server.name}_r{rate:g}")
        print(f"[trace -> {out}]")
    mean = path.mean_breakdown()
    return {
        "rate": rate,
        "throughput": result.summary.throughput,
        "requests": len(path.requests),
        "mean_ms": {b: seconds_to_ms(mean[b]) for b in BUCKETS},
        "percentile_ms": {
            f"p{p:g}": {
                b: seconds_to_ms(path.bucket_percentile(b, p)) for b in BUCKETS
            }
            for p in PERCENTILES
        },
        "mean_latency_ms": seconds_to_ms(sum(mean.values())),
    }


def _pool_point(point: Tuple[float, int]) -> Dict:
    rate, num_requests = point
    return run_point(rate, num_requests)


def run(quick: bool = False, jobs: int = 1) -> List[Dict]:
    num_requests_for = common.default_request_count(quick)
    points = [(rate, num_requests_for(rate)) for rate in RATES]
    if jobs > 1 and len(points) > 1 and common.parallel_sweep_supported():
        with multiprocessing.Pool(min(jobs, len(points))) as pool:
            return pool.map(_pool_point, points, chunksize=1)
    return [run_point(rate, n) for rate, n in points]


def main(quick: bool = False, jobs: int = 1) -> Dict:
    points = run(quick=quick, jobs=jobs)
    rows = []
    for point in points:
        rows.append(
            [f"{point['rate']:.0f}", f"{point['throughput']:.0f}"]
            + [f"{point['mean_ms'][b]:.3f}" for b in BUCKETS]
            + [f"{point['mean_latency_ms']:.3f}"]
        )
    print("\n== fig_trace: mean latency attribution vs load (LSTM, ms) ==")
    print(
        format_table(
            ["offered req/s", "achieved req/s"] + list(BUCKETS) + ["total"],
            rows,
        )
    )
    lo, hi = points[0], points[-1]
    grew = max(BUCKETS, key=lambda b: hi["mean_ms"][b] - lo["mean_ms"][b])
    print(
        f"\nFrom {lo['rate']:.0f} to {hi['rate']:.0f} req/s mean latency rises "
        f"{lo['mean_latency_ms']:.3f} -> {hi['mean_latency_ms']:.3f} ms; the "
        f"{grew!r} bucket grows most "
        f"(+{hi['mean_ms'][grew] - lo['mean_ms'][grew]:.3f} ms)."
    )
    return {"points": points}


def plot(results: Dict, out_dir):
    """One line per bucket: mean milliseconds vs offered load."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series

    points = results["points"]
    chart = Chart(
        "fig_trace: critical-path latency attribution vs load",
        x_label="Offered load (req/s)",
        y_label="Mean time per request (ms)",
    )
    for bucket in BUCKETS:
        series = [(p["rate"], p["mean_ms"][bucket]) for p in points]
        if all(y == 0.0 for _, y in series):
            continue  # retry/routing are zero without faults; skip the clutter
        chart.add(Series(bucket, series))
    chart.add(
        Series("total", [(p["rate"], p["mean_latency_ms"]) for p in points])
    )
    path = Path(out_dir) / "fig_trace_breakdown.svg"
    chart.save(path)
    return [str(path)]


if __name__ == "__main__":
    main()

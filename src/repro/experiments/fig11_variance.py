"""Figure 11: sensitivity to sequence-length variance (LSTM, 1 GPU).

Three datasets: fixed length 24 (top), WMT clipped to max 50 (middle), and
clipped to max 100 (bottom).  Expected shape: with zero variance the
padding baselines reach the analytic maximum (~27.1K req/s = 512 / (24 x
784 us)) and slightly beat BatchMaker, which pays scheduling/gather
overhead (~87% of ideal); as variance grows the baselines degrade sharply
while BatchMaker holds its latency and throughput.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.workload import FixedLengthDataset, SequenceDataset

FULL_RATES: Sequence[float] = (2000, 5000, 10000, 15000, 20000, 24000, 27000)
QUICK_RATES: Sequence[float] = (5000, 15000, 24000)

# 512-batches of fixed-length-24 inputs, back to back (§7.3's arithmetic).
ANALYTIC_MAX_FIXED24 = 512 / (24 * 784e-6)

DATASETS = {
    "fixed length 24": lambda: FixedLengthDataset(24),
    "max length 50": lambda: SequenceDataset(seed=1, max_length=50),
    "max length 100": lambda: SequenceDataset(seed=1, max_length=100),
}


def run(quick: bool = False, jobs: int = 1) -> Dict[str, Dict[str, List]]:
    rates = QUICK_RATES if quick else FULL_RATES
    count = common.default_request_count(quick)
    results = {}
    for label, dataset in DATASETS.items():
        # On the fixed-length artificial dataset the tuned baseline pads
        # nothing: one exact-length graph (width-1 bucketing).  That is how
        # the paper's baselines "closely match" the analytic maximum
        # (512/(24 x 784us) ~= 27.1K req/s) in Figure 11 (top).
        width = 1 if label == "fixed length 24" else 10
        results[label] = {
            "BatchMaker": common.sweep(
                common.lstm_batchmaker, dataset, rates, count, jobs=jobs
            ),
            "MXNet": common.sweep(
                lambda w=width: common.lstm_padded("MXNet", bucket_width=w),
                dataset,
                rates,
                count,
                jobs=jobs,
            ),
            "TensorFlow": common.sweep(
                lambda w=width: common.lstm_padded("TensorFlow", bucket_width=w),
                dataset,
                rates,
                count,
                jobs=jobs,
            ),
        }
    return results


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = run(quick=quick, jobs=jobs)
    for label, by_system in results.items():
        common.print_sweep(f"Fig 11: {label}", by_system)
        bm = common.peak_throughput(by_system["BatchMaker"])
        mx = common.peak_throughput(by_system["MXNet"])
        print(f"peaks: BatchMaker {bm:.0f}, MXNet {mx:.0f} req/s")
        if label == "fixed length 24":
            print(
                f"analytic max {ANALYTIC_MAX_FIXED24:.0f} req/s; BatchMaker at "
                f"{bm / ANALYTIC_MAX_FIXED24:.0%} of it (paper: ~87%)"
            )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir):
    """Render Fig 11 as three SVG throughput-latency charts."""
    from pathlib import Path

    from repro.plot import sweep_chart

    paths = []
    for label, by_system in results.items():
        slug = label.replace(" ", "_")
        chart = sweep_chart(f"Fig 11: {label}", by_system)
        path = Path(out_dir) / f"fig11_{slug}.svg"
        chart.save(path)
        paths.append(str(path))
    return paths

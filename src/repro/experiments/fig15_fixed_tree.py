"""Figure 15: TreeLSTM on identical complete binary trees (16 leaves).

Against an "ideal" baseline that hard-codes the fixed tree as one dataflow
graph with zero scheduling overhead.  Expected shape: BatchMaker's peak is
~30% below ideal (it pays per-task scheduling/gather overhead), but its
latency is *lower* than ideal's — a request can leave as soon as its root
finishes and can join mid-flight instead of waiting out whole batches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines import IdealServer
from repro.experiments import common
from repro.registry import build_server, presets
from repro.workload import TreeDataset

FULL_RATES: Sequence[float] = (500, 1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000)
QUICK_RATES: Sequence[float] = (1000, 4000, 8000)
NUM_LEAVES = 16


def _ideal_server() -> IdealServer:
    return build_server(presets.fixed_tree_ideal_spec(num_leaves=NUM_LEAVES))


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List]:
    rates = QUICK_RATES if quick else FULL_RATES
    count = lambda rate: int(max(1500, min(rate * (0.8 if quick else 2.0), 10000)))
    dataset = lambda: TreeDataset(seed=2, fixed_complete_leaves=NUM_LEAVES)
    return {
        "Ideal": common.sweep(_ideal_server, dataset, rates, count, jobs=jobs),
        "BatchMaker": common.sweep(
            common.tree_batchmaker, dataset, rates, count, jobs=jobs
        ),
        "DyNet": common.sweep(common.tree_dynet, dataset, rates, count, jobs=jobs),
        "TF Fold": common.sweep(
            common.tree_tensorflow_fold, dataset, rates, count, jobs=jobs
        ),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = run(quick=quick, jobs=jobs)
    common.print_sweep(
        f"Fig 15: identical complete binary trees ({NUM_LEAVES} leaves)", results
    )
    ideal = common.peak_throughput(results["Ideal"])
    bm = common.peak_throughput(results["BatchMaker"])
    print(
        f"peaks: Ideal {ideal:.0f}, BatchMaker {bm:.0f} req/s — BatchMaker at "
        f"{bm / ideal:.0%} of ideal (paper: ~70%)"
    )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir) -> List[str]:
    """Render Fig 15 as an SVG throughput-latency chart."""
    from pathlib import Path

    from repro.plot import sweep_chart

    chart = sweep_chart(
        "Fig 15: identical complete binary trees (16 leaves)",
        results,
        latency_cap_ms=200,
    )
    path = Path(out_dir) / "fig15_fixed_tree.svg"
    chart.save(path)
    return [str(path)]

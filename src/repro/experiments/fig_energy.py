"""Energy sweep: DVFS governors and heterogeneous replica mixes (§17).

Beyond the paper's latency-percentile curves: account every joule the
fleet spends (per-kernel active energy from the calibrated latency
tables, plus idle power over sim time) and ask what it costs to meet a
p99 target.  Two questions, two sweeps:

* **Pareto frontier** — the chain-LSTM BatchMaker with a V100-class
  energy envelope, swept across offered load under five clocking
  policies: the max clock pinned (``fixed@1.0``, what an unmanaged
  device does), each reduced clock pinned (``fixed@0.8`` / ``fixed@0.6``
  — kernel time scales 1/f but dynamic power scales f^3, so energy per
  kernel falls as f^2), the utilization-EWMA ``race_to_idle`` governor,
  and the ``headroom`` governor that stretches kernels into the
  utilization headroom (the slowest clock that keeps queues stable).
  The frontier shows the adaptive governor matching the low clock's
  joules where load allows while holding the max clock's p99
  attainment — the dominance claim
  :func:`governor_dominates_fixed_max` checks.

* **Replica-mix sweep** — a heterogeneous fleet (cheap slow ``eco``
  devices next to full-power ``v100`` replicas, energy-aware routing)
  under a *diurnal* MMPP arrival trace, across mixes from all-v100 to
  mostly-eco.  The cost-optimal mix trades eco watts against v100 speed:
  the sweep reports joules per finished request next to p99 and
  completion so the economics are read off one table.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.experiments import common
from repro.metrics.summary import RunSummary, format_table
from repro.registry import build_server
from repro.registry.presets import lstm_energy_spec, lstm_hetero_cluster_spec
from repro.server import InferenceServer
from repro.workload import LoadGenerator, SequenceDataset

SEED = 7
DATASET_SEED = 1

# Pareto sweep: one curve per clocking policy, shared rates.  The low
# rate is where DVFS has room to work (the device has real idle time);
# the high rate is where an adaptive governor must hold the max clock.
FULL_RATES: Sequence[float] = (300, 1000, 3000)
QUICK_RATES: Sequence[float] = (300, 2000)
# (label, frequencies, governor): pinned states are one-element ladders.
CONFIGS: Sequence = (
    ("fixed@1.0", (1.0,), "fixed"),
    ("fixed@0.8", (0.8,), "fixed"),
    ("fixed@0.6", (0.6,), "fixed"),
    ("race_to_idle", (0.6, 0.8, 1.0), "race_to_idle"),
    ("headroom", (0.6, 0.8, 1.0), "headroom"),
)
# p99 attainment target for the dominance check: generous enough that
# the max clock always meets it at the swept rates, tight enough that
# pinning 0.6x at high load does not.
SLO_P99_MS = 25.0

# Replica-mix sweep: (eco, v100) counts, three replicas total, under the
# diurnal arrival trace (period chosen so a run spans multiple cycles).
MIXES: Sequence = ((0, 3), (1, 2), (2, 1))
MIX_RATE = 4000.0
DIURNAL_PARAMS = {"period": 0.25, "amplitude": 0.6}


def _server_factory(config) -> Callable[[], InferenceServer]:
    label, frequencies, governor = config
    spec = lstm_energy_spec(frequencies=frequencies, governor=governor)
    spec = spec.replace(name=f"BatchMaker {label}")

    def factory() -> InferenceServer:
        return build_server(spec)

    return factory


def _request_count(quick: bool) -> Callable[[float], int]:
    # Fixed horizon per rate (not rate-scaled): joules integrate idle
    # power over the run's span, so every config must see the same
    # arrival sequence for an apples-to-apples energy comparison.
    return (lambda rate: 400) if quick else (lambda rate: 1200)


def _mix_spec(eco: int, v100: int):
    if eco == 0:
        # Degenerate mix: a single-class fleet (device_classes still set,
        # so per-class stats and energy stay on).
        spec = lstm_hetero_cluster_spec(eco_replicas=1, v100_replicas=v100)
        classes = [c for c in spec.device_classes if c["name"] == "v100"]
        classes[0]["replicas"] = v100
        return spec.replace(num_replicas=v100, device_classes=classes)
    return lstm_hetero_cluster_spec(eco_replicas=eco, v100_replicas=v100)


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List[RunSummary]]:
    """The Pareto sweep: one energy/latency curve per clocking policy."""
    rates = QUICK_RATES if quick else FULL_RATES
    num_requests_for = _request_count(quick)
    results: Dict[str, List[RunSummary]] = {}
    for config in CONFIGS:
        results[config[0]] = common.sweep(
            _server_factory(config),
            lambda: SequenceDataset(seed=DATASET_SEED),
            rates,
            num_requests_for,
            seed=SEED,
            jobs=jobs,
        )
    return results


def run_mixes(quick: bool = False) -> Dict[str, RunSummary]:
    """The replica-mix sweep under the diurnal trace, one point per mix."""
    num_requests = 600 if quick else 2000
    results: Dict[str, RunSummary] = {}
    for eco, v100 in MIXES:
        from repro.cluster import build_cluster

        cluster = build_cluster(_mix_spec(eco, v100))
        generator = LoadGenerator(
            rate=MIX_RATE,
            num_requests=num_requests,
            seed=SEED,
            arrivals="diurnal",
            arrival_params=dict(DIURNAL_PARAMS),
        )
        result = generator.run(cluster, SequenceDataset(seed=DATASET_SEED))
        results[f"{eco}eco+{v100}v100"] = result.summary
    return results


def governor_dominates_fixed_max(
    results: Dict[str, List[RunSummary]],
    governor: str = "headroom",
    fixed_max: str = "fixed@1.0",
    slo_ms: float = SLO_P99_MS,
    margin: float = 0.10,
) -> bool:
    """The frontier's dominance claim: at every swept rate where the
    pinned max clock meets the p99 target, ``governor`` meets it too and
    spends no more energy (Pareto ``<=``); and at some such rate it saves
    at least ``margin`` of the joules (strict improvement).  Energy saved
    at equal p99 attainment."""
    strict_win = False
    for gov, fix in zip(results[governor], results[fixed_max]):
        if fix.p99_ms > slo_ms:  # the baseline itself misses: no claim
            continue
        if gov.p99_ms > slo_ms:
            return False  # governor trades away attainment: not dominance
        gov_j = gov.extras["energy_joules"]
        fix_j = fix.extras["energy_joules"]
        if gov_j > fix_j:
            return False
        if gov_j <= (1.0 - margin) * fix_j:
            strict_win = True
    return strict_win


def main(quick: bool = False, jobs: int = 1):
    results = run(quick=quick, jobs=jobs)
    print("\n== energy vs p99 Pareto sweep: chain LSTM, V100 envelope ==")
    rows = []
    for label, summaries in results.items():
        for s in summaries:
            rows.append(
                [
                    label,
                    f"{s.offered_rate:.0f}",
                    f"{s.p99_ms:.2f}",
                    "yes" if s.p99_ms <= SLO_P99_MS else "no",
                    f"{s.extras.get('energy_joules', 0.0):.2f}",
                    f"{s.extras.get('joules_per_request', 0.0) * 1e3:.2f}",
                ]
            )
    print(
        format_table(
            [
                "policy",
                "offered req/s",
                "p99 ms",
                f"p99<={SLO_P99_MS:g}ms",
                "joules",
                "mJ/req",
            ],
            rows,
        )
    )
    dominated = governor_dominates_fixed_max(results)
    print(
        f"headroom dominates fixed@1.0 on energy at equal p99 "
        f"attainment: {'yes' if dominated else 'NO'}"
    )

    mixes = run_mixes(quick=quick)
    print(
        f"\n== replica-mix sweep: diurnal arrivals @ {MIX_RATE:.0f} req/s "
        f"(period {DIURNAL_PARAMS['period']} s, "
        f"amplitude {DIURNAL_PARAMS['amplitude']}) =="
    )
    mix_rows = []
    for mix, s in mixes.items():
        finished = s.stats.count()
        total = finished + int(
            s.extras.get("timed_out", 0) + s.extras.get("rejected", 0)
        )
        mix_rows.append(
            [
                mix,
                f"{s.throughput:.0f}",
                f"{s.p99_ms:.2f}",
                f"{finished / total * 100 if total else 0:.1f}%",
                f"{s.extras.get('energy_joules', 0.0):.2f}",
                f"{s.extras.get('joules_per_request', 0.0) * 1e3:.2f}",
            ]
        )
    print(
        format_table(
            ["mix", "req/s", "p99 ms", "completion", "joules", "mJ/req"],
            mix_rows,
        )
    )
    return results


def plot(results: Dict[str, List[RunSummary]], out_dir) -> List[str]:
    """The frontier itself: energy per request versus p99, one point per
    (policy, rate); plus p99 versus offered load per policy."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series

    frontier = Chart(
        "Energy vs p99 (one point per policy x rate)",
        x_label="99p latency (ms)",
        y_label="Energy (mJ/request)",
    )
    p99 = Chart(
        "p99 latency vs offered load",
        x_label="Offered load (req/s)",
        y_label="99p latency (ms)",
    )
    for label, summaries in results.items():
        frontier.add(
            Series(
                label,
                [
                    (
                        s.p99_ms,
                        s.extras.get("joules_per_request", 0.0) * 1e3,
                    )
                    for s in summaries
                ],
            )
        )
        p99.add(Series(label, [(s.offered_rate, s.p99_ms) for s in summaries]))
    paths = []
    for chart, stem in ((frontier, "fig_energy_frontier"), (p99, "fig_energy_p99")):
        path = Path(out_dir) / f"{stem}.svg"
        chart.save(path)
        paths.append(str(path))
    return paths


if __name__ == "__main__":
    main()

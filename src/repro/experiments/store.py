"""Persistence for experiment results.

Serialises the sweep structures the ``figN`` modules return (dicts of
system -> [RunSummary]) to JSON, reloads them as lightweight records, and
diffs two result sets — so a full run can be archived and regression-
checked against a previous one (or against the paper's reference shape).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.metrics.summary import RunSummary


class StoredPoint:
    """One persisted load point (a deserialised RunSummary)."""

    __slots__ = ("system", "offered_rate", "throughput", "p50_ms", "p90_ms", "p99_ms")

    def __init__(self, system, offered_rate, throughput, p50_ms, p90_ms, p99_ms):
        self.system = system
        self.offered_rate = offered_rate
        self.throughput = throughput
        self.p50_ms = p50_ms
        self.p90_ms = p90_ms
        self.p99_ms = p99_ms

    @classmethod
    def from_summary(cls, summary: RunSummary) -> "StoredPoint":
        return cls(
            summary.system,
            summary.offered_rate,
            summary.throughput,
            summary.p50_ms,
            summary.p90_ms,
            summary.p99_ms,
        )

    def to_dict(self) -> Dict:
        return {
            "system": self.system,
            "offered_rate": self.offered_rate,
            "throughput": self.throughput,
            "p50_ms": self.p50_ms,
            "p90_ms": self.p90_ms,
            "p99_ms": self.p99_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "StoredPoint":
        return cls(
            data["system"],
            data["offered_rate"],
            data["throughput"],
            data["p50_ms"],
            data["p90_ms"],
            data["p99_ms"],
        )


class ResultStore:
    """A named collection of sweeps persisted as one JSON document."""

    def __init__(self):
        self._sweeps: Dict[str, Dict[str, List[StoredPoint]]] = {}

    def put_sweep(self, name: str, summaries_by_system: Dict[str, List]) -> None:
        """Store a figure's sweep (accepts RunSummary or StoredPoint lists)."""
        converted: Dict[str, List[StoredPoint]] = {}
        for system, summaries in summaries_by_system.items():
            converted[system] = [
                s if isinstance(s, StoredPoint) else StoredPoint.from_summary(s)
                for s in summaries
            ]
        self._sweeps[name] = converted

    def sweep(self, name: str) -> Dict[str, List[StoredPoint]]:
        if name not in self._sweeps:
            raise KeyError(f"no stored sweep {name!r}; have {sorted(self._sweeps)}")
        return self._sweeps[name]

    def names(self) -> List[str]:
        return sorted(self._sweeps)

    # -- persistence ------------------------------------------------------------

    def save(self, path) -> None:
        document = {
            name: {
                system: [p.to_dict() for p in points]
                for system, points in by_system.items()
            }
            for name, by_system in self._sweeps.items()
        }
        Path(path).write_text(json.dumps(document, indent=2))

    @classmethod
    def load(cls, path) -> "ResultStore":
        store = cls()
        document = json.loads(Path(path).read_text())
        for name, by_system in document.items():
            store._sweeps[name] = {
                system: [StoredPoint.from_dict(p) for p in points]
                for system, points in by_system.items()
            }
        return store

    # -- comparison --------------------------------------------------------------

    def compare(
        self,
        other: "ResultStore",
        tolerance: float = 0.10,
    ) -> List[str]:
        """Differences beyond ``tolerance`` relative change; empty == match.

        Compares throughput and p90 at matching (sweep, system, rate)
        points; points present on one side only are reported too.
        """
        issues: List[str] = []
        for name in set(self.names()) | set(other.names()):
            if name not in self._sweeps or name not in other._sweeps:
                issues.append(f"sweep {name!r} missing on one side")
                continue
            mine, theirs = self._sweeps[name], other._sweeps[name]
            for system in set(mine) | set(theirs):
                if system not in mine or system not in theirs:
                    issues.append(f"{name}: system {system!r} missing on one side")
                    continue
                by_rate_a = {p.offered_rate: p for p in mine[system]}
                by_rate_b = {p.offered_rate: p for p in theirs[system]}
                for rate in set(by_rate_a) | set(by_rate_b):
                    if rate not in by_rate_a or rate not in by_rate_b:
                        issues.append(
                            f"{name}/{system}: rate {rate} missing on one side"
                        )
                        continue
                    a, b = by_rate_a[rate], by_rate_b[rate]
                    for field in ("throughput", "p90_ms"):
                        va, vb = getattr(a, field), getattr(b, field)
                        denom = max(abs(va), abs(vb), 1e-12)
                        if abs(va - vb) / denom > tolerance:
                            issues.append(
                                f"{name}/{system}@{rate:g}: {field} "
                                f"{va:.2f} vs {vb:.2f}"
                            )
        return issues

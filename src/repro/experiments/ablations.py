"""Ablations of BatchMaker's design choices (DESIGN.md §5).

Not figures from the paper, but quantifications of the mechanisms the paper
argues for:

* **MaxTasksToSubmit** — §7.3 bounds new-request queuing by
  MaxTasksToSubmit x per-step time; larger values trade join latency for
  fewer scheduling rounds.
* **Subgraph pinning** — §4.3 pins subgraphs to workers for locality; the
  ablation disables pinning (dependencies then advance on completion, and
  cross-GPU copies are charged).
* **Per-task overhead** — §7.3 measures ~65 us of scheduling+gather per
  task; sweeping it shows how close BatchMaker gets to ideal throughput.
* **Priority** — decoder-priority vs flat priority for Seq2Seq.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import BatchMakerServer, BatchingConfig
from repro.experiments import common
from repro.gpu.costmodel import CostModel, v100_lstm_step_table
from repro.metrics.summary import format_table
from repro.models import LSTMChainModel, Seq2SeqModel
from repro.workload import Seq2SeqDataset, SequenceDataset


def max_tasks_sweep(quick: bool = False) -> List[Dict]:
    """p99 queuing time vs MaxTasksToSubmit at moderate LSTM load."""
    rate = 5000.0
    num = 3000 if quick else 12000
    rows = []
    for limit in (1, 2, 5, 10, 20):
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(512, max_tasks_to_submit=limit),
            name=f"BM(mts={limit})",
        )
        summary = common.run_point(
            server, lambda: SequenceDataset(seed=1), rate, num
        )
        rows.append(
            {
                "max_tasks_to_submit": limit,
                "p99_queuing_ms": 1e3 * summary.stats.p(99, "queuing"),
                "p90_latency_ms": summary.p90_ms,
                "throughput": summary.throughput,
            }
        )
    return rows


def pinning_ablation(quick: bool = False) -> List[Dict]:
    """Pinned vs unpinned subgraph scheduling on 4 GPUs (LSTM)."""
    num = 3000 if quick else 12000
    rows = []
    for rate in (10000.0,) if quick else (10000.0, 30000.0, 50000.0):
        for pinning in (True, False):
            server = BatchMakerServer(
                LSTMChainModel(),
                config=BatchingConfig.with_max_batch(512, pinning=pinning),
                num_gpus=4,
                name=f"BM(pinning={'on' if pinning else 'off'})",
            )
            summary = common.run_point(
                server, lambda: SequenceDataset(seed=1), rate, num
            )
            rows.append(
                {
                    "rate": rate,
                    "pinning": pinning,
                    "p90_latency_ms": summary.p90_ms,
                    "throughput": summary.throughput,
                }
            )
    return rows


def overhead_sweep(quick: bool = False) -> List[Dict]:
    """Fixed-length throughput vs per-task scheduling/gather overhead."""
    from repro.workload import FixedLengthDataset

    rate = 26000.0
    num = 4000 if quick else 20000
    rows = []
    for overhead_us in (0, 35, 65, 130, 260):
        # Sweep the *total* per-task overhead (scheduling + gather).
        cost = CostModel(
            per_task_overhead=overhead_us * 1e-6, gather_overhead=0.0
        )
        cost.register("lstm", v100_lstm_step_table())
        server = BatchMakerServer(
            LSTMChainModel(),
            config=BatchingConfig.with_max_batch(512),
            cost_model=cost,
            name=f"BM(ovh={overhead_us}us)",
        )
        summary = common.run_point(
            server, lambda: FixedLengthDataset(24), rate, num
        )
        rows.append(
            {
                "overhead_us": overhead_us,
                "throughput": summary.throughput,
                "fraction_of_analytic_max": summary.throughput
                / (512 / (24 * 784e-6)),
            }
        )
    return rows


def priority_ablation(quick: bool = False) -> List[Dict]:
    """Decoder-priority vs flat priority for Seq2Seq (2 GPUs).

    Run near saturation, where the choice of which cell type to execute
    first actually binds."""
    rate = 7500.0
    num = 3000 if quick else 10000
    rows = []
    for decoder_priority in (1, 0):
        config = BatchingConfig.with_max_batch(
            512,
            per_cell_max={"decoder": 256},
            per_cell_priority={"decoder": decoder_priority, "encoder": 0},
        )
        server = BatchMakerServer(
            Seq2SeqModel(),
            config=config,
            num_gpus=2,
            name=f"BM(dec-prio={decoder_priority})",
        )
        summary = common.run_point(
            server, lambda: Seq2SeqDataset(seed=5), rate, num
        )
        rows.append(
            {
                "decoder_priority": decoder_priority,
                "p90_latency_ms": summary.p90_ms,
                "throughput": summary.throughput,
            }
        )
    return rows


def run(quick: bool = False) -> Dict[str, List[Dict]]:
    return {
        "max_tasks_to_submit": max_tasks_sweep(quick),
        "pinning": pinning_ablation(quick),
        "overhead": overhead_sweep(quick),
        "priority": priority_ablation(quick),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # ablation points vary config, not rate; kept serial
    results = run(quick=quick)
    print("\n== Ablation: MaxTasksToSubmit (LSTM @5K req/s) ==")
    print(
        format_table(
            ["limit", "p99 queuing ms", "p90 latency ms", "throughput"],
            [
                [
                    str(r["max_tasks_to_submit"]),
                    f"{r['p99_queuing_ms']:.2f}",
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["max_tasks_to_submit"]
            ],
        )
    )
    print("\n== Ablation: subgraph pinning (LSTM, 4 GPUs) ==")
    print(
        format_table(
            ["rate", "pinning", "p90 latency ms", "throughput"],
            [
                [
                    f"{r['rate']:.0f}",
                    "on" if r["pinning"] else "off",
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["pinning"]
            ],
        )
    )
    print("\n== Ablation: per-task overhead (fixed-length LSTM @26K req/s) ==")
    print(
        format_table(
            ["overhead us", "throughput", "fraction of analytic max"],
            [
                [
                    str(r["overhead_us"]),
                    f"{r['throughput']:.0f}",
                    f"{r['fraction_of_analytic_max']:.0%}",
                ]
                for r in results["overhead"]
            ],
        )
    )
    print("\n== Ablation: decoder priority (Seq2Seq @4K req/s, 2 GPUs) ==")
    print(
        format_table(
            ["decoder priority", "p90 latency ms", "throughput"],
            [
                [
                    str(r["decoder_priority"]),
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["priority"]
            ],
        )
    )
    return results


if __name__ == "__main__":
    main()

"""Ablations of BatchMaker's design choices (DESIGN.md §5, §10).

Not figures from the paper, but quantifications of the mechanisms the paper
argues for.  Every server here is built through :mod:`repro.registry`, and
every mechanism ablation is a *policy swap* (see :mod:`repro.policies`) —
the engine code has no ablation forks:

* **MaxTasksToSubmit** — §7.3 bounds new-request queuing by
  MaxTasksToSubmit x per-step time; larger values trade join latency for
  fewer scheduling rounds.
* **Subgraph pinning** — §4.3 pins subgraphs to workers for locality; the
  ablation swaps in the ``unpinned`` placement policy (dependencies then
  advance on completion, and cross-GPU copies are charged).
* **Per-task overhead** — §7.3 measures ~65 us of scheduling+gather per
  task; sweeping it shows how close BatchMaker gets to ideal throughput.
* **Priority** — decoder-priority (``paper`` queue policy + configured
  priorities) vs the ``flat`` queue policy for Seq2Seq.
* **Policy breakdown** — a Figure-9-style table knocking out one policy
  at a time (priority off, locality off, fixed placement) on Seq2Seq
  near saturation.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import common
from repro.gpu.costmodel import CostModel, v100_lstm_step_table
from repro.metrics.summary import format_table
from repro.registry import build_server, presets
from repro.workload import Seq2SeqDataset, SequenceDataset


def max_tasks_sweep(quick: bool = False) -> List[Dict]:
    """p99 queuing time vs MaxTasksToSubmit at moderate LSTM load."""
    rate = 5000.0
    num = 3000 if quick else 12000
    rows = []
    for limit in (1, 2, 5, 10, 20):
        spec = presets.lstm_batchmaker_spec()
        spec = spec.replace(
            config={**spec.config, "max_tasks_to_submit": limit},
            name=f"BM(mts={limit})",
        )
        summary = common.run_point(
            build_server(spec), lambda: SequenceDataset(seed=1), rate, num
        )
        rows.append(
            {
                "max_tasks_to_submit": limit,
                "p99_queuing_ms": 1e3 * summary.stats.p(99, "queuing"),
                "p90_latency_ms": summary.p90_ms,
                "throughput": summary.throughput,
            }
        )
    return rows


def pinning_ablation(quick: bool = False) -> List[Dict]:
    """Pinned vs unpinned placement policy on 4 GPUs (LSTM)."""
    num = 3000 if quick else 12000
    rows = []
    for rate in (10000.0,) if quick else (10000.0, 30000.0, 50000.0):
        for pinning in (True, False):
            spec = presets.lstm_batchmaker_spec(
                num_gpus=4,
                policies=None if pinning else {"placement": "unpinned"},
            )
            spec = spec.replace(name=f"BM(pinning={'on' if pinning else 'off'})")
            summary = common.run_point(
                build_server(spec), lambda: SequenceDataset(seed=1), rate, num
            )
            rows.append(
                {
                    "rate": rate,
                    "pinning": pinning,
                    "p90_latency_ms": summary.p90_ms,
                    "throughput": summary.throughput,
                }
            )
    return rows


def overhead_sweep(quick: bool = False) -> List[Dict]:
    """Fixed-length throughput vs per-task scheduling/gather overhead."""
    from repro.workload import FixedLengthDataset

    rate = 26000.0
    num = 4000 if quick else 20000
    rows = []
    for overhead_us in (0, 35, 65, 130, 260):
        # Sweep the *total* per-task overhead (scheduling + gather); the
        # cost model is a runtime-only object, passed as a build override.
        cost = CostModel(
            per_task_overhead=overhead_us * 1e-6, gather_overhead=0.0
        )
        cost.register("lstm", v100_lstm_step_table())
        spec = presets.lstm_batchmaker_spec().replace(name=f"BM(ovh={overhead_us}us)")
        server = build_server(spec, cost_model=cost)
        summary = common.run_point(
            server, lambda: FixedLengthDataset(24), rate, num
        )
        rows.append(
            {
                "overhead_us": overhead_us,
                "throughput": summary.throughput,
                "fraction_of_analytic_max": summary.throughput
                / (512 / (24 * 784e-6)),
            }
        )
    return rows


def priority_ablation(quick: bool = False) -> List[Dict]:
    """Decoder-priority vs the flat queue policy for Seq2Seq (2 GPUs).

    Run near saturation, where the choice of which cell type to execute
    first actually binds.  The flat policy ignores configured priorities
    in the tie-break, which is exactly equivalent to setting every
    priority to zero — so this is a pure policy swap."""
    rate = 7500.0
    num = 3000 if quick else 10000
    rows = []
    for decoder_priority, priority_policy in ((1, None), (0, "flat")):
        policies = None if priority_policy is None else {"priority": priority_policy}
        spec = presets.seq2seq_batchmaker_spec(policies=policies)
        spec = spec.replace(name=f"BM(dec-prio={decoder_priority})")
        summary = common.run_point(
            build_server(spec), lambda: Seq2SeqDataset(seed=5), rate, num
        )
        rows.append(
            {
                "decoder_priority": decoder_priority,
                "p90_latency_ms": summary.p90_ms,
                "throughput": summary.throughput,
            }
        )
    return rows


# One knockout per row: the policy-name overrides applied to the default
# Seq2Seq BatchMaker spec (None = the paper's full Algorithm 1).
BREAKDOWN_VARIANTS: List = [
    ("all on (paper)", None),
    ("priority off", {"priority": "flat"}),
    ("locality off", {"placement": "unpinned"}),
    ("fixed placement", {"placement": "fixed"}),
]


def policy_breakdown(quick: bool = False) -> List[Dict]:
    """Figure-9-style mechanism breakdown via policy swaps (Seq2Seq, 2 GPUs).

    Each row disables one scheduling mechanism by swapping a single
    policy on the same spec — no server or scheduler code forks."""
    rate = 7500.0
    num = 2500 if quick else 10000
    rows = []
    for label, overrides in BREAKDOWN_VARIANTS:
        spec = presets.seq2seq_batchmaker_spec(policies=overrides)
        spec = spec.replace(name=f"BM({label})")
        server = build_server(spec)
        summary = common.run_point(
            server, lambda: Seq2SeqDataset(seed=5), rate, num
        )
        rows.append(
            {
                "variant": label,
                "policies": server.policies.names(),
                "throughput": summary.throughput,
                "p50_latency_ms": summary.p50_ms,
                "p90_latency_ms": summary.p90_ms,
                "p99_latency_ms": summary.p99_ms,
                "p99_queuing_ms": 1e3 * summary.stats.p(99, "queuing"),
            }
        )
    return rows


def run(quick: bool = False) -> Dict[str, List[Dict]]:
    return {
        "max_tasks_to_submit": max_tasks_sweep(quick),
        "pinning": pinning_ablation(quick),
        "overhead": overhead_sweep(quick),
        "priority": priority_ablation(quick),
        "policy_breakdown": policy_breakdown(quick),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # ablation points vary config, not rate; kept serial
    results = run(quick=quick)
    print("\n== Ablation: MaxTasksToSubmit (LSTM @5K req/s) ==")
    print(
        format_table(
            ["limit", "p99 queuing ms", "p90 latency ms", "throughput"],
            [
                [
                    str(r["max_tasks_to_submit"]),
                    f"{r['p99_queuing_ms']:.2f}",
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["max_tasks_to_submit"]
            ],
        )
    )
    print("\n== Ablation: subgraph pinning (LSTM, 4 GPUs) ==")
    print(
        format_table(
            ["rate", "pinning", "p90 latency ms", "throughput"],
            [
                [
                    f"{r['rate']:.0f}",
                    "on" if r["pinning"] else "off",
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["pinning"]
            ],
        )
    )
    print("\n== Ablation: per-task overhead (fixed-length LSTM @26K req/s) ==")
    print(
        format_table(
            ["overhead us", "throughput", "fraction of analytic max"],
            [
                [
                    str(r["overhead_us"]),
                    f"{r['throughput']:.0f}",
                    f"{r['fraction_of_analytic_max']:.0%}",
                ]
                for r in results["overhead"]
            ],
        )
    )
    print("\n== Ablation: decoder priority (Seq2Seq @7.5K req/s, 2 GPUs) ==")
    print(
        format_table(
            ["decoder priority", "p90 latency ms", "throughput"],
            [
                [
                    str(r["decoder_priority"]),
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['throughput']:.0f}",
                ]
                for r in results["priority"]
            ],
        )
    )
    print("\n== Policy breakdown (Seq2Seq @7.5K req/s, 2 GPUs) ==")
    print(
        format_table(
            [
                "variant",
                "throughput",
                "p50 ms",
                "p90 ms",
                "p99 ms",
                "p99 queuing ms",
            ],
            [
                [
                    r["variant"],
                    f"{r['throughput']:.0f}",
                    f"{r['p50_latency_ms']:.2f}",
                    f"{r['p90_latency_ms']:.2f}",
                    f"{r['p99_latency_ms']:.2f}",
                    f"{r['p99_queuing_ms']:.2f}",
                ]
                for r in results["policy_breakdown"]
            ],
        )
    )
    return results


if __name__ == "__main__":
    import sys

    main(quick="--quick" in sys.argv)

"""Cluster sweep: routing policy x replica count x offered load.

Beyond the paper's single-server evaluation: serve the chain-LSTM
workload on a simulated ``repro.cluster`` of N BatchMaker replicas and
sweep offered load for each front-end routing policy.  Near saturation
the policies separate on tail latency: the balanced policies
(``round_robin``, ``least_outstanding``, ``shortest_queue``) track each
other closely — Poisson arrivals over identical replicas leave little
imbalance to exploit — while ``length_bucketed``, which trades balance
for denser same-length batches, overloads its long-band replica and its
p99/goodput fall off a cliff one load point before everyone else's.

Each (policy, replicas, rate) point is an independent fixed-seed
simulation, so the sweep parallelises across ``--jobs`` worker processes
exactly like the single-server figures.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster import build_cluster
from repro.experiments import common
from repro.metrics.summary import RunSummary
from repro.registry.presets import lstm_cluster_spec
from repro.server import InferenceServer
from repro.workload import SequenceDataset

ROUTERS: Sequence[str] = (
    "round_robin",
    "least_outstanding",
    "shortest_queue",
    "length_bucketed",
)
# The affinity router segregates by length band; 32 covers the bulk of the
# WMT distribution in bucket 0, so its load imbalance (~63/37 across two
# replicas) is visible rather than accidental.
ROUTER_PARAMS = {"length_bucketed": {"bucket_width": 32}}

# Each replica is a 1-GPU chain-LSTM BatchMaker with max_batch=32, which
# saturates near 7.5K req/s — a deliberately modest replica, so routing
# imbalance shows up as queueing instead of being absorbed by ever-larger
# batches.  Offered load per replica (cluster rate is this x replicas);
# the top point puts a *balanced* cluster at ~90% utilisation, where an
# imbalanced policy already has its hot replica past saturation.
MAX_BATCH = 32
FULL_RATES_PER_REPLICA: Sequence[float] = (3000, 4500, 5500, 6250, 6750)
QUICK_RATES_PER_REPLICA: Sequence[float] = (4000, 5500, 6750)
FULL_REPLICAS: Sequence[int] = (2, 4)
QUICK_REPLICAS: Sequence[int] = (2,)

SEED = 7


def _cluster_factory(num_replicas: int, router: str):
    def factory() -> InferenceServer:
        return build_cluster(
            lstm_cluster_spec(
                num_replicas=num_replicas,
                router=router,
                max_batch=MAX_BATCH,
                seed=SEED,
                router_params=ROUTER_PARAMS.get(router),
            )
        )

    return factory


def run(
    quick: bool = False, jobs: int = 1
) -> Dict[Tuple[int, str], List[RunSummary]]:
    """One throughput-latency curve per (replica count, routing policy)."""
    rates_per_replica = QUICK_RATES_PER_REPLICA if quick else FULL_RATES_PER_REPLICA
    replica_counts = QUICK_REPLICAS if quick else FULL_REPLICAS
    num_requests_for = common.default_request_count(quick)
    results: Dict[Tuple[int, str], List[RunSummary]] = {}
    for num_replicas in replica_counts:
        rates = [rate * num_replicas for rate in rates_per_replica]
        for router in ROUTERS:
            results[(num_replicas, router)] = common.sweep(
                _cluster_factory(num_replicas, router),
                lambda: SequenceDataset(seed=1),
                rates,
                num_requests_for,
                seed=SEED,
                jobs=jobs,
            )
    return results


def _label(num_replicas: int, router: str) -> str:
    return f"{router} x{num_replicas}"


def main(quick: bool = False, jobs: int = 1):
    results = run(quick=quick, jobs=jobs)
    by_label = {_label(n, r): s for (n, r), s in results.items()}
    common.print_sweep(
        "Cluster sweep: LSTM, routing policy x replicas (1 GPU each)",
        by_label,
    )
    # Policy separation at the highest load point, per replica count.
    for num_replicas in sorted({n for n, _ in results}):
        tail = {
            router: results[(num_replicas, router)][-1].p99_ms
            for router in ROUTERS
        }
        best = min(tail, key=tail.get)
        worst = max(tail, key=tail.get)
        print(
            f"{num_replicas} replicas @ top load: p99 best={best} "
            f"({tail[best]:.2f} ms), worst={worst} ({tail[worst]:.2f} ms), "
            f"spread {tail[worst] / max(tail[best], 1e-9):.2f}x"
        )
    return results


def plot(results: Dict[Tuple[int, str], List[RunSummary]], out_dir) -> List[str]:
    """Throughput-vs-p90 curves plus p99-vs-offered-load per policy."""
    from pathlib import Path

    from repro.plot.chart import Chart, Series, sweep_chart

    paths = []
    for num_replicas in sorted({n for n, _ in results}):
        by_label = {
            _label(num_replicas, router): results[(num_replicas, router)]
            for router in ROUTERS
            if (num_replicas, router) in results
        }
        chart = sweep_chart(
            f"Cluster sweep: {num_replicas} replicas, routing policies",
            by_label,
        )
        path = Path(out_dir) / f"fig_cluster_sweep_x{num_replicas}.svg"
        chart.save(path)
        paths.append(str(path))

        p99 = Chart(
            f"Cluster p99 vs offered load: {num_replicas} replicas",
            x_label="Offered load (req/s)",
            y_label="99p latency (ms)",
        )
        p99.cap_y(500.0)
        for router in ROUTERS:
            summaries = results.get((num_replicas, router))
            if not summaries:
                continue
            p99.add(
                Series(router, [(s.offered_rate, s.p99_ms) for s in summaries])
            )
        p99_path = Path(out_dir) / f"fig_cluster_p99_x{num_replicas}.svg"
        p99.save(p99_path)
        paths.append(str(p99_path))
    return paths


if __name__ == "__main__":
    main()

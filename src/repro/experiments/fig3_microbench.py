"""Figure 3: latency vs throughput of one LSTM step across batch sizes.

Reports the calibrated cost-model curves for the simulated GPU (V100-like)
and CPU (Xeon-like), and optionally measures the actual NumPy LSTM cell at
h=1024 on the host to show the same flat -> sublinear -> linear shape.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.gpu.costmodel import cpu_lstm_step_table, v100_lstm_step_table
from repro.metrics.summary import format_table

BATCH_SIZES = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]


def run(quick: bool = False, measure_numpy: bool = False) -> Dict:
    """Return {'gpu': [(b, time_s, throughput)], 'cpu': [...], 'numpy': [...]}"""
    gpu = v100_lstm_step_table()
    cpu = cpu_lstm_step_table()
    batches = BATCH_SIZES[: 8 if quick else len(BATCH_SIZES)]
    result = {
        "gpu": [(b, gpu(b), gpu.throughput(b)) for b in batches],
        "cpu": [(b, cpu(b), cpu.throughput(b)) for b in batches],
        "gpu_best_batch": gpu.best_batch(BATCH_SIZES),
        "cpu_best_batch": cpu.best_batch(BATCH_SIZES),
    }
    if measure_numpy:
        result["numpy"] = _measure_numpy(batches[: 6 if quick else 9])
    return result


def _measure_numpy(batches: List[int], hidden: int = 1024) -> List[tuple]:
    """Wall-clock one fused LSTM step on the host BLAS."""
    from repro.cells.lstm import LSTMCell
    from repro.tensor.parameters import ParameterStore

    cell = LSTMCell("bench", hidden, hidden, ParameterStore(seed=0))
    points = []
    for b in batches:
        x = np.random.default_rng(0).standard_normal((b, hidden)).astype(np.float32)
        state = cell.zero_state(b)
        inputs = {"x": x, "h": state["h"], "c": state["c"]}
        cell(inputs)  # warm up
        reps = max(1, int(2e6 / (b * hidden)))
        start = time.perf_counter()
        for _ in range(reps):
            cell(inputs)
        elapsed = (time.perf_counter() - start) / reps
        points.append((b, elapsed, b / elapsed))
    return points


def main(quick: bool = False, measure_numpy: bool = False, jobs: int = 1) -> Dict:
    del jobs  # single-point microbench; nothing to parallelise
    result = run(quick=quick, measure_numpy=measure_numpy)
    for device in ("gpu", "cpu"):
        rows = [
            [str(b), f"{t * 1e6:.0f}", f"{thr:.0f}"]
            for b, t, thr in result[device]
        ]
        print(f"\n== Fig 3 ({device.upper()} model): single LSTM step, h=1024 ==")
        print(format_table(["batch", "exec time (us)", "throughput (ops/s)"], rows))
        print(f"throughput-optimal batch: {result[f'{device}_best_batch']}")
    if "numpy" in result:
        rows = [
            [str(b), f"{t * 1e6:.0f}", f"{thr:.0f}"] for b, t, thr in result["numpy"]
        ]
        print("\n== Fig 3 (measured host NumPy LSTM step, h=1024) ==")
        print(format_table(["batch", "exec time (us)", "throughput (ops/s)"], rows))
    return result


if __name__ == "__main__":
    main(measure_numpy=True)

"""Figure 9: CDFs of queuing time and computation time at ~5K req/s (LSTM).

Shows where BatchMaker's latency win comes from: queuing time collapses
(requests join the running batch within a few scheduling rounds — the
paper's bound is MaxTasksToSubmit x per-step time ~= 1.25 ms) while
computation time also drops because short requests leave without waiting
for padded peers.  Reduced queuing is the dominant factor.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import common
from repro.metrics.summary import format_table
from repro.workload import LoadGenerator, SequenceDataset

RATE = 5000.0


def run(quick: bool = False) -> Dict[str, Dict[str, Dict[str, float]]]:
    num_requests = 4000 if quick else 20000
    servers = {
        "BatchMaker": common.lstm_batchmaker(),
        "MXNet": common.lstm_padded("MXNet"),
        "TensorFlow": common.lstm_padded("TensorFlow"),
    }
    results = {}
    for name, server in servers.items():
        generator = LoadGenerator(rate=RATE, num_requests=num_requests, seed=7)
        outcome = generator.run(server, SequenceDataset(seed=1))
        stats = outcome.stats
        results[name] = {
            series: {
                "p50_ms": 1e3 * stats.p(50, series),
                "p90_ms": 1e3 * stats.p(90, series),
                "p99_ms": 1e3 * stats.p(99, series),
                "mean_ms": 1e3 * stats.mean(series),
                "cdf": _downsample(stats.cdf(series)),
            }
            for series in ("queuing", "computation", "latency")
        }
    return results


def _downsample(points, keep: int = 200):
    """Thin a CDF to ~``keep`` points (in ms) for plotting/serialisation."""
    if len(points) <= keep:
        return [(1e3 * v, f) for v, f in points]
    stride = len(points) / keep
    sampled = [points[int(i * stride)] for i in range(keep)]
    sampled.append(points[-1])
    return [(1e3 * v, f) for v, f in sampled]


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # two single load points; nothing to parallelise
    results = run(quick=quick)
    for series, title in (
        ("queuing", "Fig 9a: queuing time CDF summary @5K req/s"),
        ("computation", "Fig 9b: computation time CDF summary @5K req/s"),
    ):
        rows = [
            [
                system,
                f"{values[series]['p50_ms']:.2f}",
                f"{values[series]['p90_ms']:.2f}",
                f"{values[series]['p99_ms']:.2f}",
            ]
            for system, values in results.items()
        ]
        print(f"\n== {title} ==")
        print(format_table(["system", "p50 ms", "p90 ms", "p99 ms"], rows))
    bm_q99 = results["BatchMaker"]["queuing"]["p99_ms"]
    mx_q99 = results["MXNet"]["queuing"]["p99_ms"]
    print(
        f"\n99p queuing: BatchMaker {bm_q99:.2f} ms vs MXNet {mx_q99:.2f} ms "
        "(paper: 1.38 ms vs >100 ms)"
    )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir):
    """Render Fig 9a/9b as SVG CDF charts."""
    from pathlib import Path

    from repro.plot import cdf_chart

    paths = []
    for series, suffix in (("queuing", "a"), ("computation", "b")):
        chart = cdf_chart(
            f"Fig 9{suffix}: {series} time CDF @5K req/s",
            {
                system: [(max(ms, 1e-3), f) for ms, f in values[series]["cdf"]]
                for system, values in results.items()
            },
        )
        path = Path(out_dir) / f"fig9{suffix}_{series}_cdf.svg"
        chart.save(path)
        paths.append(str(path))
    return paths

"""Figure 5: the 8-request timeline example, graph vs cellular batching.

Unit-cost cells (every batched LSTM step takes exactly 1 time unit), batch
size 4, one device.  Requests req1(2), req2(3), req3(3), req4(5) arrive at
t=0; req5(5), req6(7), req7(3), req8(1) arrive while the first four run.
Under graph batching the first batch completes at t=5 and the second at
t=12; under cellular batching requests join mid-flight and leave early.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.fold import FoldServer
from repro.core import BatchMakerServer, BatchingConfig
from repro.gpu.costmodel import CostModel, LatencyTable
from repro.metrics.summary import format_table
from repro.models import LSTMChainModel

# (name, length, arrival time) — arrivals chosen to match the figure: req5
# is present by t=2 (it joins the third cellular task), req6/req7 by t=3,
# req8 by t=5.
REQUESTS: List[Tuple[str, int, float]] = [
    ("req1", 2, 0.0),
    ("req2", 3, 0.0),
    ("req3", 3, 0.0),
    ("req4", 5, 0.0),
    ("req5", 5, 1.5),
    ("req6", 7, 2.5),
    ("req7", 3, 2.5),
    ("req8", 1, 4.5),
]


def _unit_cost_model() -> CostModel:
    table = LatencyTable({1: 1e6, 512: 1e6})  # 1 second per step, any batch
    model = CostModel(per_task_overhead=0.0, gather_overhead=0.0)
    model.register("lstm", table)
    return model


def run(quick: bool = False) -> Dict:
    """Returns per-request (arrival, start, finish) for both systems."""
    # Cellular batching: batch 4, one task per scheduling round so arrivals
    # can join between every step, exactly as the figure draws it.
    bm = BatchMakerServer(
        LSTMChainModel(),
        config=BatchingConfig.with_max_batch(4, max_tasks_to_submit=1),
        cost_model=_unit_cost_model(),
    )
    handles = {}
    for name, length, arrival in REQUESTS:
        handles[name] = bm.submit(length, arrival_time=arrival)
    bm.drain()
    cellular = {
        name: (req.arrival_time, req.start_time, req.finish_time)
        for name, req in handles.items()
    }

    # Graph batching: batches of 4 whole requests, each executing to the
    # longest member's length (merge has no cost in this idealised example).
    gb = FoldServer(
        LSTMChainModel(),
        max_requests=4,
        merge_overhead_per_request=0.0,
        per_level_overhead=0.0,
        name="GraphBatching",
    )
    gb.cost_model = _unit_cost_model()
    handles = {}
    for name, length, arrival in REQUESTS:
        handles[name] = gb.submit(length, arrival_time=arrival)
    gb.drain()
    graph = {
        name: (req.arrival_time, req.start_time, req.finish_time)
        for name, req in handles.items()
    }
    return {"cellular": cellular, "graph": graph}


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # one worked 8-request example; nothing to parallelise
    result = run(quick=quick)
    for system in ("graph", "cellular"):
        rows = []
        for name, length, _ in REQUESTS:
            arrival, start, finish = result[system][name]
            rows.append(
                [
                    f"{name}({length})",
                    f"{arrival:.1f}",
                    f"{start:.1f}",
                    f"{finish:.1f}",
                    f"{finish - arrival:.1f}",
                ]
            )
        print(f"\n== Fig 5 ({system} batching): unit-cost timeline ==")
        print(format_table(["request", "arrival", "start", "finish", "latency"], rows))
    return result


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir):
    """Render Fig 5 as SVG per-request timelines."""
    from pathlib import Path

    from repro.plot import timeline_chart

    paths = []
    for system in ("graph", "cellular"):
        windows = {
            f"{name}({length})": results[system][name]
            for name, length, _ in REQUESTS
        }
        chart = timeline_chart(f"Fig 5: {system} batching timeline", windows)
        path = Path(out_dir) / f"fig5_{system}_timeline.svg"
        chart.save(path)
        paths.append(str(path))
    return paths

"""Figure 14: TreeLSTM on the (synthetic) TreeBank dataset, max batch 64.

BatchMaker vs DyNet vs TensorFlow Fold.  Expected shape (paper): TF Fold
saturates first (~0.8K req/s; its graph construction/merge dominates),
DyNet reaches ~2.1K, BatchMaker ~3.1K — i.e. ~1.8x DyNet and ~4x TF Fold —
and at moderate load (1K req/s) BatchMaker's p90 beats DyNet's by ~28%.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.workload import TreeDataset

FULL_RATES: Sequence[float] = (250, 500, 1000, 1500, 2000, 2500, 3000, 3500)
QUICK_RATES: Sequence[float] = (500, 1500, 3500)


def run(quick: bool = False, jobs: int = 1) -> Dict[str, List]:
    rates = QUICK_RATES if quick else FULL_RATES
    count = lambda rate: int(max(1000, min(rate * (0.8 if quick else 2.0), 7000)))
    dataset = lambda: TreeDataset(seed=2)
    return {
        "BatchMaker": common.sweep(
            common.tree_batchmaker, dataset, rates, count, jobs=jobs
        ),
        "DyNet": common.sweep(common.tree_dynet, dataset, rates, count, jobs=jobs),
        "TF Fold": common.sweep(
            common.tree_tensorflow_fold, dataset, rates, count, jobs=jobs
        ),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = run(quick=quick, jobs=jobs)
    common.print_sweep("Fig 14: TreeLSTM on TreeBank-like trees, bmax=64", results)
    bm = common.peak_throughput(results["BatchMaker"])
    dy = common.peak_throughput(results["DyNet"])
    tf = common.peak_throughput(results["TF Fold"], latency_cap_ms=3000)
    print(
        f"peaks: BatchMaker {bm:.0f}, DyNet {dy:.0f}, TF Fold {tf:.0f} req/s; "
        f"BM/DyNet {bm / dy:.1f}x (paper 1.8x), BM/Fold {bm / tf:.1f}x (paper 4x)"
    )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir) -> List[str]:
    """Render Fig 14 as an SVG throughput-latency chart."""
    from pathlib import Path

    from repro.plot import sweep_chart

    chart = sweep_chart(
        "Fig 14: TreeLSTM on TreeBank-like trees", results, latency_cap_ms=200
    )
    path = Path(out_dir) / "fig14_treelstm.svg"
    chart.save(path)
    return [str(path)]

"""Figure 7: LSTM latency vs throughput on 1 GPU (bmax 512 and 64).

BatchMaker vs the MXNet- and TensorFlow-flavoured padding baselines (bucket
width 10) on the WMT-15-like dataset.  Expected shape: BatchMaker's p90
stays low and flat until high load with peak ~20K req/s; the baselines
start higher (~25 ms) and blow past 500 ms well before BatchMaker peaks.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments import common
from repro.workload import SequenceDataset

FULL_RATES: Sequence[float] = (1000, 2000, 5000, 8000, 12000, 16000, 20000, 22000)
QUICK_RATES: Sequence[float] = (2000, 8000, 16000)


def run(quick: bool = False, max_batch: int = 512, jobs: int = 1) -> Dict[str, List]:
    rates = QUICK_RATES if quick else FULL_RATES
    count = common.default_request_count(quick)
    dataset = lambda: SequenceDataset(seed=1)
    return {
        "BatchMaker": common.sweep(
            lambda: common.lstm_batchmaker(max_batch=max_batch),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
        "MXNet": common.sweep(
            lambda: common.lstm_padded("MXNet", max_batch=max_batch),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
        "TensorFlow": common.sweep(
            lambda: common.lstm_padded("TensorFlow", max_batch=max_batch),
            dataset,
            rates,
            count,
            jobs=jobs,
        ),
    }


def main(quick: bool = False, jobs: int = 1) -> Dict:
    results = {}
    for max_batch in (512, 64):
        sub = run(quick=quick, max_batch=max_batch, jobs=jobs)
        results[max_batch] = sub
        common.print_sweep(
            f"Fig 7{'a' if max_batch == 512 else 'b'}: LSTM, 1 GPU, bmax={max_batch}",
            sub,
        )
        bm_peak = common.peak_throughput(sub["BatchMaker"])
        base_peak = max(
            common.peak_throughput(sub["MXNet"]),
            common.peak_throughput(sub["TensorFlow"]),
        )
        print(
            f"peak throughput: BatchMaker {bm_peak:.0f} req/s vs best baseline "
            f"{base_peak:.0f} req/s ({bm_peak / base_peak - 1:+.0%}; paper: +25%)"
        )
    return results


if __name__ == "__main__":
    main()


def plot(results: Dict, out_dir) -> List[str]:
    """Render Fig 7a/7b as SVG throughput-latency charts."""
    from pathlib import Path

    from repro.plot import sweep_chart

    paths = []
    for max_batch, by_system in results.items():
        suffix = "a" if max_batch == 512 else "b"
        chart = sweep_chart(
            f"Fig 7{suffix}: LSTM, 1 GPU, bmax={max_batch}", by_system
        )
        path = Path(out_dir) / f"fig7{suffix}_lstm_bmax{max_batch}.svg"
        chart.save(path)
        paths.append(str(path))
    return paths

"""CLI entry point for the experiment harness.

Usage::

    python -m repro.experiments.runner all --quick
    python -m repro.experiments.runner fig7 fig14
    batchmaker-experiments fig13          # via the console script
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    ablations,
    common,
    fig3_microbench,
    fig5_timeline,
    fig7_lstm,
    fig8_bucket_width,
    fig9_breakdown,
    fig10_length_cdf,
    fig11_variance,
    fig13_seq2seq,
    fig14_treelstm,
    fig15_fixed_tree,
    fig_cluster,
    fig_energy,
    fig_faults,
    fig_memory,
    fig_slo,
    fig_trace,
    summary,
)

EXPERIMENTS: Dict[str, Callable[..., dict]] = {
    "fig3": fig3_microbench.main,
    "fig5": fig5_timeline.main,
    "fig7": fig7_lstm.main,
    "fig8": fig8_bucket_width.main,
    "fig9": fig9_breakdown.main,
    "fig10": fig10_length_cdf.main,
    "fig11": fig11_variance.main,
    "fig13": fig13_seq2seq.main,
    "fig14": fig14_treelstm.main,
    "fig15": fig15_fixed_tree.main,
    "fig_cluster": fig_cluster.main,
    "fig_energy": fig_energy.main,
    "fig_faults": fig_faults.main,
    "fig_memory": fig_memory.main,
    "fig_slo": fig_slo.main,
    "fig_trace": fig_trace.main,
    "ablations": ablations.main,
    "summary": summary.main,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment names ({', '.join(EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small request counts / fewer sweep points (seconds instead of minutes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run each sweep's load points on N worker processes "
        "(each point is an independent simulation; results are identical "
        "to --jobs 1, needs the 'fork' start method)",
    )
    parser.add_argument(
        "--plot-dir",
        default=None,
        help="also render each figure as SVG into this directory",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record every simulated server and write one Chrome trace JSON "
        "per (experiment, server, load point) under PATH (a directory, or a "
        ".json base name); composes with --jobs — file names depend only on "
        "the load point, never on worker identity",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --trace, keep spans for every Nth request id (default 1)",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.jobs > 1 and not common.parallel_sweep_supported():
        print(
            f"[--jobs {args.jobs} ignored: multiprocessing start method is "
            "not 'fork'; running serially]"
        )
        args.jobs = 1
    if args.plot_dir is not None:
        import os

        os.makedirs(args.plot_dir, exist_ok=True)
    session = None
    if args.trace is not None:
        if args.trace_sample < 1:
            parser.error(f"--trace-sample must be >= 1, got {args.trace_sample}")
        from repro.trace.session import start_session

        session = start_session(args.trace, sample_every=args.trace_sample)
    try:
        for name in names:
            start = time.time()
            print(f"\n######## {name} ########")
            if session is not None:
                # Set before any sweep pool forks, so the children inherit
                # the experiment context and derive the same file names a
                # serial run would.
                session.set_context(name)
            results = EXPERIMENTS[name](quick=args.quick, jobs=args.jobs)
            if args.plot_dir is not None:
                module = sys.modules[EXPERIMENTS[name].__module__]
                if hasattr(module, "plot"):
                    for path in module.plot(results, args.plot_dir):
                        print(f"[wrote {path}]")
            print(f"[{name} done in {time.time() - start:.1f}s]")
    finally:
        if session is not None:
            from repro.trace.session import end_session

            end_session()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Headline-claims summary (§1 / §7 highlights).

Derives the paper's headline numbers from the per-figure runs:

* LSTM:   latency -37.5..-90.5% at moderate load, throughput +25%
* Seq2Seq: latency -17.5..-82.6% at moderate load, throughput +60%
* TreeLSTM: throughput 4x TF Fold / 1.8x DyNet; latency -87% / -28%
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments import common, fig7_lstm, fig13_seq2seq, fig14_treelstm
from repro.metrics.summary import format_table


def _moderate_latency_reduction(bm_summaries, base_summaries, base_peak) -> List[float]:
    """Latency reductions at load points under half the baseline's peak
    (the paper's definition of "moderate load").  Falls back to the
    lowest-load point when the sweep has no point under that threshold."""
    reductions = []
    for bm, base in zip(bm_summaries, base_summaries):
        if base.offered_rate <= base_peak / 2:
            reductions.append(1.0 - bm.p90_ms / base.p90_ms)
    if not reductions:
        bm, base = bm_summaries[0], base_summaries[0]
        reductions.append(1.0 - bm.p90_ms / base.p90_ms)
    return reductions


def run(quick: bool = False) -> Dict:
    out: Dict[str, Dict] = {}

    lstm = fig7_lstm.run(quick=quick, max_batch=512)
    lstm_bm_peak = common.peak_throughput(lstm["BatchMaker"])
    lstm_base_peak = max(
        common.peak_throughput(lstm["MXNet"]),
        common.peak_throughput(lstm["TensorFlow"]),
    )
    reductions = _moderate_latency_reduction(
        lstm["BatchMaker"], lstm["MXNet"], lstm_base_peak
    ) + _moderate_latency_reduction(
        lstm["BatchMaker"], lstm["TensorFlow"], lstm_base_peak
    )
    out["lstm"] = {
        "latency_reduction_range": (min(reductions), max(reductions)),
        "throughput_improvement": lstm_bm_peak / lstm_base_peak - 1,
        "paper": {"latency": (0.375, 0.905), "throughput": 0.25},
    }

    s2s = fig13_seq2seq.run(quick=quick, num_gpus=2)
    s2s_bm_peak = common.peak_throughput(s2s["BatchMaker-512,256"])
    s2s_base_peak = max(
        common.peak_throughput(s2s["MXNet"]),
        common.peak_throughput(s2s["TensorFlow"]),
    )
    reductions = _moderate_latency_reduction(
        s2s["BatchMaker-512,256"], s2s["MXNet"], s2s_base_peak
    ) + _moderate_latency_reduction(
        s2s["BatchMaker-512,256"], s2s["TensorFlow"], s2s_base_peak
    )
    out["seq2seq"] = {
        "latency_reduction_range": (min(reductions), max(reductions)),
        "throughput_improvement": s2s_bm_peak / s2s_base_peak - 1,
        "paper": {"latency": (0.175, 0.826), "throughput": 0.60},
    }

    tree = fig14_treelstm.run(quick=quick)
    bm_peak = common.peak_throughput(tree["BatchMaker"])
    dynet_peak = common.peak_throughput(tree["DyNet"])
    fold_peak = common.peak_throughput(tree["TF Fold"], latency_cap_ms=3000)
    # Latency comparison at the moderate-load point (~1K req/s in the paper).
    idx = min(range(len(tree["BatchMaker"])), key=lambda i: abs(
        tree["BatchMaker"][i].offered_rate - 1000
    ))
    out["treelstm"] = {
        "throughput_vs_dynet": bm_peak / dynet_peak,
        "throughput_vs_fold": bm_peak / fold_peak,
        "latency_reduction_vs_dynet": 1
        - tree["BatchMaker"][idx].p90_ms / tree["DyNet"][idx].p90_ms,
        "latency_reduction_vs_fold": 1
        - tree["BatchMaker"][idx].p90_ms / tree["TF Fold"][idx].p90_ms,
        "paper": {
            "throughput_vs_dynet": 1.8,
            "throughput_vs_fold": 4.0,
            "latency_vs_dynet": 0.28,
            "latency_vs_fold": 0.87,
        },
    }
    return out


def main(quick: bool = False, jobs: int = 1) -> Dict:
    del jobs  # headline single points; nothing to parallelise
    results = run(quick=quick)
    rows = []
    lstm = results["lstm"]
    rows.append(
        [
            "LSTM p90 latency reduction",
            f"{lstm['latency_reduction_range'][0]:.0%}..{lstm['latency_reduction_range'][1]:.0%}",
            "37.5%..90.5%",
        ]
    )
    rows.append(
        ["LSTM throughput improvement", f"{lstm['throughput_improvement']:+.0%}", "+25%"]
    )
    s2s = results["seq2seq"]
    rows.append(
        [
            "Seq2Seq p90 latency reduction",
            f"{s2s['latency_reduction_range'][0]:.0%}..{s2s['latency_reduction_range'][1]:.0%}",
            "17.5%..82.6%",
        ]
    )
    rows.append(
        [
            "Seq2Seq throughput improvement",
            f"{s2s['throughput_improvement']:+.0%}",
            "+60%",
        ]
    )
    tree = results["treelstm"]
    rows.append(
        ["TreeLSTM throughput vs DyNet", f"{tree['throughput_vs_dynet']:.1f}x", "1.8x"]
    )
    rows.append(
        ["TreeLSTM throughput vs TF Fold", f"{tree['throughput_vs_fold']:.1f}x", "4x"]
    )
    rows.append(
        [
            "TreeLSTM latency reduction vs DyNet",
            f"{tree['latency_reduction_vs_dynet']:.0%}",
            "28%",
        ]
    )
    rows.append(
        [
            "TreeLSTM latency reduction vs TF Fold",
            f"{tree['latency_reduction_vs_fold']:.0%}",
            "87%",
        ]
    )
    print("\n== Headline claims: measured vs paper ==")
    print(format_table(["claim", "measured", "paper"], rows))
    return results


if __name__ == "__main__":
    main()

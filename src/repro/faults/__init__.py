"""Fault injection and SLA enforcement (DESIGN.md §8).

The serving stack keeps its latency story only if it keeps its *liveness*
story when hardware misbehaves.  This package provides:

* :class:`FaultPlan` — a deterministic, seedable schedule of kernel
  failures, stragglers and device losses, injected through the simulated
  GPU at task granularity;
* :class:`SLAConfig` / :class:`RetryPolicy` — per-request deadlines,
  batch-level retry with exponential backoff, and admission-time load
  shedding;
* :class:`FaultCounters` — the reconciliation surface between what the
  engine did and what happened to each request.

All hooks are no-ops by default: a server constructed without a plan or an
SLA is bit-identical to the pre-fault engine.
"""

from repro.faults.plan import (
    KERNEL_FAIL,
    STRAGGLER,
    DeviceFailure,
    FaultPlan,
    TaskFault,
    mix64,
)
from repro.faults.sla import RetryPolicy, SLAConfig
from repro.metrics.counters import FaultCounters

__all__ = [
    "FaultPlan",
    "TaskFault",
    "DeviceFailure",
    "KERNEL_FAIL",
    "STRAGGLER",
    "RetryPolicy",
    "SLAConfig",
    "FaultCounters",
    "mix64",
]

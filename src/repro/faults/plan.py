"""Deterministic fault plans.

A :class:`FaultPlan` decides, ahead of time or pseudo-randomly, which
batched tasks fail or straggle and which devices drop mid-run.  Every
decision is a pure function of ``(seed, task_id, attempt)`` — *not* of the
order in which the engine happens to ask — so the same plan yields
bit-identical fault timestamps under the scheduler's ``fast_path`` on and
off (which produce the same task stream by PR 1's equivalence guarantee),
and across retries of unrelated tasks.

With the default arguments the plan injects nothing, and a server built
without a plan skips the hooks entirely: fault injection disabled is
bit-identical to the pre-fault engine.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple

# Fault kinds a task draw can produce.
KERNEL_FAIL = "fail"
STRAGGLER = "slow"


class TaskFault:
    """Outcome drawn for one (task, attempt) execution."""

    __slots__ = ("kind", "slowdown")

    def __init__(self, kind: str, slowdown: float = 1.0):
        if kind not in (KERNEL_FAIL, STRAGGLER):
            raise ValueError(f"unknown fault kind {kind!r}")
        if kind == STRAGGLER and slowdown <= 1.0:
            raise ValueError("a straggler must slow the task down (> 1.0)")
        self.kind = kind
        self.slowdown = slowdown

    def __repr__(self) -> str:
        extra = f" x{self.slowdown:g}" if self.kind == STRAGGLER else ""
        return f"<TaskFault {self.kind}{extra}>"


class DeviceFailure:
    """One device dropping dead at a virtual time."""

    __slots__ = ("time", "device_id")

    def __init__(self, time: float, device_id: int):
        if time < 0:
            raise ValueError("device failure time must be non-negative")
        self.time = float(time)
        self.device_id = int(device_id)

    def __repr__(self) -> str:
        return f"<DeviceFailure gpu{self.device_id} at t={self.time:g}>"


def mix64(seed: int, *parts: int) -> int:
    """Stable integer mix of a draw key (no ``hash()``: that would vary
    with PYTHONHASHSEED and break cross-run determinism).

    Shared by the fault plan's per-task draws and the cluster router's
    tie-breaks — every pseudo-random decision in the repo that must be a
    pure function of its key goes through this mix.
    """
    x = (seed & 0xFFFFFFFFFFFFFFFF) ^ 0x9E3779B97F4A7C15
    for part in parts:
        x = (x * 6364136223846793005 + part + 1442695040888963407) % (1 << 64)
        x ^= x >> 31
    return x


def _mix(seed: int, task_id: int, attempt: int) -> int:
    return mix64(seed, task_id, attempt)


class FaultPlan:
    """Seedable schedule of kernel failures, stragglers and device losses.

    Parameters
    ----------
    seed:
        Base seed for the per-task draws.
    kernel_failure_rate:
        Probability that any one task execution's kernel fails (detected at
        the task's retire time; the device time is still consumed).
    straggler_rate:
        Probability that a task runs slow by ``straggler_multiplier``.
        Failure is drawn first; a task is never both.
    device_failures:
        Explicit ``(time, device_id)`` pairs (or :class:`DeviceFailure`
        instances) — devices die deterministically, not randomly, so chaos
        tests can place the loss exactly where it hurts.
    task_overrides:
        Explicit ``{(task_id, attempt): TaskFault or None}`` entries that
        take precedence over the random draws — pin a specific execution to
        fail (or force it healthy) regardless of the rates.
    """

    def __init__(
        self,
        seed: int = 0,
        kernel_failure_rate: float = 0.0,
        straggler_rate: float = 0.0,
        straggler_multiplier: float = 4.0,
        device_failures: Sequence = (),
        task_overrides: Optional[Dict[Tuple[int, int], Optional[TaskFault]]] = None,
    ):
        for name, rate in (
            ("kernel_failure_rate", kernel_failure_rate),
            ("straggler_rate", straggler_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if straggler_multiplier <= 1.0:
            raise ValueError("straggler_multiplier must be > 1.0")
        self.seed = int(seed)
        self.kernel_failure_rate = float(kernel_failure_rate)
        self.straggler_rate = float(straggler_rate)
        self.straggler_multiplier = float(straggler_multiplier)
        self._device_failures = tuple(
            sorted(
                (
                    f
                    if isinstance(f, DeviceFailure)
                    else DeviceFailure(f[0], f[1])
                    for f in device_failures
                ),
                key=lambda f: (f.time, f.device_id),
            )
        )
        self._task_overrides = dict(task_overrides or {})

    # -- queries (all pure) -------------------------------------------------

    def task_fault(self, task_id: int, attempt: int) -> Optional[TaskFault]:
        """The fault (if any) injected into execution ``attempt`` of task
        ``task_id``.  Attempt 0 is the original submission."""
        key = (task_id, attempt)
        if key in self._task_overrides:
            return self._task_overrides[key]
        if self.kernel_failure_rate == 0.0 and self.straggler_rate == 0.0:
            return None
        rng = random.Random(_mix(self.seed, task_id, attempt))
        roll = rng.random()
        if roll < self.kernel_failure_rate:
            return TaskFault(KERNEL_FAIL)
        if roll < self.kernel_failure_rate + self.straggler_rate:
            return TaskFault(STRAGGLER, self.straggler_multiplier)
        return None

    def device_failures(self) -> Tuple[DeviceFailure, ...]:
        return self._device_failures

    def injects_anything(self) -> bool:
        """False when this plan can never produce a fault (a no-op plan is
        exactly as cheap as no plan at all)."""
        return bool(
            self.kernel_failure_rate
            or self.straggler_rate
            or self._device_failures
            or any(f is not None for f in self._task_overrides.values())
        )

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} kernel_fail={self.kernel_failure_rate:g} "
            f"straggle={self.straggler_rate:g} "
            f"device_failures={len(self._device_failures)}>"
        )

"""SLA machinery: deadlines, retry/backoff policy, load shedding.

These are the knobs the manager reads when it reacts to injected (or, in a
real deployment, actual) faults.  Everything defaults to "off": a server
built without an :class:`SLAConfig` behaves exactly like the pre-fault
engine — no timers are scheduled, no admission check runs, and a failed
task is retried with the default policy only when a fault plan is present
to fail it in the first place.
"""

from __future__ import annotations

from typing import Optional


class RetryPolicy:
    """Batch-level retry with exponential backoff.

    A failed task is re-submitted after ``backoff_base * factor**attempt``
    seconds (attempt 0 = first retry), at most ``max_retries`` times; after
    that every surviving request in the task is cancelled with a terminal
    timed-out status ("retries exhausted" — the request's failure budget is
    an SLA resource just like its deadline).
    """

    def __init__(
        self,
        max_retries: int = 3,
        backoff_base: float = 200e-6,
        backoff_factor: float = 2.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt + 1`` (attempt counts the
        retries already performed)."""
        return self.backoff_base * self.backoff_factor ** attempt

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_base={self.backoff_base:g}, "
            f"backoff_factor={self.backoff_factor:g})"
        )


class SLAConfig:
    """Per-server service-level agreement.

    Parameters
    ----------
    default_deadline:
        Relative deadline (seconds from arrival) applied to every request
        that does not carry its own; ``None`` means requests without an
        explicit deadline never time out.
    max_queue_delay:
        Load-shedding threshold: a new arrival is rejected (terminal
        REJECTED status, never enters the pipeline) when the projected
        queueing delay — device backlog plus a running estimate of the
        drain time of the scheduler's ready nodes — exceeds this bound.
        ``None`` disables shedding.
    retry:
        The :class:`RetryPolicy` for failed tasks.
    """

    def __init__(
        self,
        default_deadline: Optional[float] = None,
        max_queue_delay: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if max_queue_delay is not None and max_queue_delay <= 0:
            raise ValueError("max_queue_delay must be positive")
        self.default_deadline = default_deadline
        self.max_queue_delay = max_queue_delay
        self.retry = retry if retry is not None else RetryPolicy()

    def __repr__(self) -> str:
        return (
            f"SLAConfig(default_deadline={self.default_deadline}, "
            f"max_queue_delay={self.max_queue_delay}, retry={self.retry})"
        )

"""SLA machinery: deadlines, retry/backoff policy, load shedding.

These are the knobs the manager reads when it reacts to injected (or, in a
real deployment, actual) faults.  Everything defaults to "off": a server
built without an :class:`SLAConfig` behaves exactly like the pre-fault
engine — no timers are scheduled, no admission check runs, and a failed
task is retried with the default policy only when a fault plan is present
to fail it in the first place.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class RetryPolicy:
    """Batch-level retry with exponential backoff.

    A failed task is re-submitted after ``backoff_base * factor**attempt``
    seconds (attempt 0 = first retry), at most ``max_retries`` times; after
    that every surviving request in the task is cancelled with a terminal
    timed-out status ("retries exhausted" — the request's failure budget is
    an SLA resource just like its deadline).
    """

    def __init__(
        self,
        max_retries: int = 3,
        backoff_base: float = 200e-6,
        backoff_factor: float = 2.0,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_factor = float(backoff_factor)

    def backoff(self, attempt: int) -> float:
        """Delay before retry number ``attempt + 1`` (attempt counts the
        retries already performed)."""
        return self.backoff_base * self.backoff_factor ** attempt

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RetryPolicy":
        return cls(
            max_retries=data.get("max_retries", 3),
            backoff_base=data.get("backoff_base", 200e-6),
            backoff_factor=data.get("backoff_factor", 2.0),
        )

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_retries={self.max_retries}, "
            f"backoff_base={self.backoff_base:g}, "
            f"backoff_factor={self.backoff_factor:g})"
        )


class SLAConfig:
    """Per-server service-level agreement.

    Parameters
    ----------
    default_deadline:
        Relative deadline (seconds from arrival) applied to every request
        that does not carry its own; ``None`` means requests without an
        explicit deadline never time out.
    max_queue_delay:
        Load-shedding threshold: a new arrival is rejected (terminal
        REJECTED status, never enters the pipeline) when the projected
        queueing delay — device backlog plus a running estimate of the
        drain time of the scheduler's ready nodes — exceeds this bound.
        ``None`` disables shedding.
    retry:
        The :class:`RetryPolicy` for failed tasks.
    kick_margin:
        Slack safety margin (seconds) for slack-aware batch formation
        (:class:`~repro.policies.LazyKickPolicy`): a held batch is kicked
        once any member's slack falls to this margin.  ``None`` lets the
        policy use its default; the field is inert unless the server runs
        the lazy-kick formation.
    max_hold:
        Upper bound (seconds) on the cumulative delay lazy-kick may add
        to any one request, measured from its arrival — slack beyond this
        is never spent waiting; also inert without the policy.
    predictor:
        Optional :class:`~repro.policies.LatencyPredictor` instance (a
        runtime object, never serialised) shared between the lazy-kick
        slack computation and external observers; ``None`` lets the
        policy create its own.
    """

    def __init__(
        self,
        default_deadline: Optional[float] = None,
        max_queue_delay: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        kick_margin: Optional[float] = None,
        max_hold: Optional[float] = None,
        predictor: Optional[Any] = None,
    ):
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError("default_deadline must be positive")
        if max_queue_delay is not None and max_queue_delay <= 0:
            raise ValueError("max_queue_delay must be positive")
        if kick_margin is not None and kick_margin < 0:
            raise ValueError("kick_margin must be >= 0")
        if max_hold is not None and max_hold <= 0:
            raise ValueError("max_hold must be positive")
        self.default_deadline = default_deadline
        self.max_queue_delay = max_queue_delay
        self.retry = retry if retry is not None else RetryPolicy()
        self.kick_margin = kick_margin
        self.max_hold = max_hold
        self.predictor = predictor

    def to_dict(self) -> Dict[str, Any]:
        """Serialisable form (the predictor is runtime state and stays
        out); backs the ``sla`` field on registry specs."""
        return {
            "default_deadline": self.default_deadline,
            "max_queue_delay": self.max_queue_delay,
            "retry": self.retry.to_dict(),
            "kick_margin": self.kick_margin,
            "max_hold": self.max_hold,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLAConfig":
        retry = data.get("retry")
        return cls(
            default_deadline=data.get("default_deadline"),
            max_queue_delay=data.get("max_queue_delay"),
            retry=RetryPolicy.from_dict(retry) if retry is not None else None,
            kick_margin=data.get("kick_margin"),
            max_hold=data.get("max_hold"),
        )

    def __repr__(self) -> str:
        return (
            f"SLAConfig(default_deadline={self.default_deadline}, "
            f"max_queue_delay={self.max_queue_delay}, retry={self.retry}, "
            f"kick_margin={self.kick_margin}, max_hold={self.max_hold})"
        )

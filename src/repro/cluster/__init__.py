"""``repro.cluster`` — a simulated multi-replica serving cluster.

N replicas (each an independent server built from the cluster spec's
:class:`~repro.registry.ServerSpec` template) share one deterministic
event loop behind a front-end router.  The cluster presents the ordinary
``InferenceServer`` interface, so every existing harness — load
generator, chaos helpers, experiment sweeps — drives a cluster unchanged.

Entry points:

* :func:`build_cluster` / :class:`ClusterServer` — construct and run.
* :class:`~repro.registry.ClusterSpec` — the serialisable description.
* :data:`~repro.cluster.routing.ROUTERS` — the routing-policy registry
  (``round_robin``, ``least_outstanding``, ``shortest_queue``,
  ``predicted_delay``, ``most_free_memory``, ``length_bucketed``).
* :class:`AutoscalerConfig` — EWMA-load autoscaling knobs.
* :class:`ReplicaFailure` — deterministic replica-loss injection.
"""

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.cluster import ClusterServer, build_cluster
from repro.cluster.faults import ReplicaFailure, normalize_failures
from repro.cluster.load_index import LoadIndex
from repro.cluster.metrics import ClusterCounters, ClusterStats, aggregate_fault_counters
from repro.cluster.replica import ALIVE, DEAD, DRAINING, RETIRED, WARMING, Replica
from repro.cluster.routing import (
    ROUTERS,
    LeastOutstandingRouter,
    LengthBucketedRouter,
    MostFreeMemoryRouter,
    PredictedDelayRouter,
    RoundRobinRouter,
    RoutingPolicy,
    ShortestQueueRouter,
    make_router,
    payload_length,
    tie_break,
)
from repro.registry import ClusterSpec

__all__ = [
    "ALIVE",
    "DEAD",
    "DRAINING",
    "RETIRED",
    "WARMING",
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterCounters",
    "ClusterServer",
    "ClusterSpec",
    "ClusterStats",
    "LeastOutstandingRouter",
    "LengthBucketedRouter",
    "LoadIndex",
    "MostFreeMemoryRouter",
    "PredictedDelayRouter",
    "ROUTERS",
    "Replica",
    "ReplicaFailure",
    "RoundRobinRouter",
    "RoutingPolicy",
    "ShortestQueueRouter",
    "aggregate_fault_counters",
    "build_cluster",
    "make_router",
    "normalize_failures",
    "payload_length",
    "tie_break",
]

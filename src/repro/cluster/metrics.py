"""Cross-replica metric aggregation.

One replica's engine already tallies its own :class:`FaultCounters`;
cluster reporting needs those *summed across replicas* plus the
cluster-only events (losses, re-routes, scale actions) that no single
engine can see.  ``ClusterStats`` renders the per-replica breakdown the
way ``ServerStats`` does for one server.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.counters import FaultCounters
from repro.metrics.latency import percentile
from repro.metrics.summary import format_table


class ClusterCounters:
    """Monotonic tallies of cluster-level events (the engine-level fault
    counters live per replica and are aggregated separately)."""

    FIELDS = (
        "replicas_lost",        # replica failures injected
        "requests_rerouted",    # live logical requests re-routed off a dead replica
        "requests_lost",        # in-flight requests rejected on total loss
        "cluster_rejections",   # arrivals rejected with no routable replica
        "replicas_spawned",     # autoscaler scale-ups
        "replicas_retired",     # autoscaler drains completed
        "sla_rejections",       # arrivals shed by SLO admission control
        "memory_rejections",    # arrivals shed by memory admission control
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{field}={getattr(self, field)}"
            for field in self.FIELDS
            if getattr(self, field)
        )
        return f"<ClusterCounters {parts or 'clean'}>"


def aggregate_fault_counters(replicas) -> FaultCounters:
    """Sum every replica engine's fault counters (replicas without fault
    machinery — the graph-batching baselines — contribute zeros)."""
    total = FaultCounters()
    for replica in replicas:
        counters = getattr(replica.server, "fault_counters", None)
        if counters is None:
            continue
        for field, value in counters().as_dict().items():
            setattr(total, field, getattr(total, field) + value)
    return total


class ClusterStats:
    """Snapshot of a cluster's per-replica and aggregate state.

    On a heterogeneous fleet (replicas carrying a ``device_class``),
    ``by_class`` additionally breaks the fleet down per device class —
    replica counts, routed/finished tallies, the p99 over finished shadow
    latencies and the class's integrated joules — so energy experiments
    can read the replica-mix economics off one snapshot instead of only
    fleet-wide totals.  Empty for homogeneous clusters."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.rows: List[List[str]] = []
        self.by_class: Dict[str, Dict[str, float]] = {}
        self.total_joules = 0.0
        for replica in cluster.replicas:
            server = replica.server
            self.rows.append(
                [
                    str(replica.replica_id),
                    replica.state,
                    str(replica.routed),
                    str(len(server.finished)),
                    str(len(server.timed_out)),
                    str(len(server.rejected)),
                    str(replica.outstanding()),
                    f"{replica.ewma_latency * 1e3:.2f}",
                ]
            )
            self.total_joules += replica.energy_joules()
            if replica.device_class is None:
                continue
            entry = self.by_class.setdefault(
                replica.device_class,
                {
                    "replicas": 0,
                    "routed": 0,
                    "finished": 0,
                    "p99_ms": 0.0,
                    "joules": 0.0,
                    "_latencies": [],
                },
            )
            entry["replicas"] += 1
            entry["routed"] += replica.routed
            entry["finished"] += len(server.finished)
            entry["joules"] += replica.energy_joules()
            entry["_latencies"].extend(
                r.finish_time - r.arrival_time for r in server.finished
            )
        for entry in self.by_class.values():
            latencies = entry.pop("_latencies")
            if latencies:
                entry["p99_ms"] = percentile(latencies, 99.0) * 1e3

    def report(self) -> str:
        lines = [
            f"== {self.cluster.name}: {len(self.cluster.replicas)} replicas, "
            f"router={self.cluster.router.name} ==",
            format_table(
                [
                    "replica", "state", "routed", "finished", "timed_out",
                    "rejected", "outstanding", "ewma ms",
                ],
                self.rows,
            ),
        ]
        if self.by_class:
            lines.append(
                format_table(
                    ["class", "replicas", "routed", "finished", "p99 ms", "joules"],
                    [
                        [
                            name,
                            str(int(entry["replicas"])),
                            str(int(entry["routed"])),
                            str(int(entry["finished"])),
                            f"{entry['p99_ms']:.2f}",
                            f"{entry['joules']:.2f}",
                        ]
                        for name, entry in sorted(self.by_class.items())
                    ],
                )
            )
        if self.total_joules > 0:
            lines.append(f"energy: {self.total_joules:.2f} J integrated")
        cluster_counts = self.cluster.cluster_counters.as_dict()
        if any(cluster_counts.values()):
            lines.append(
                "cluster events: "
                + ", ".join(f"{k}={v}" for k, v in cluster_counts.items() if v)
            )
        engine = self.cluster.fault_counters()
        if engine.any_faults():
            lines.append(f"engine faults (aggregated): {engine!r}")
        index = getattr(self.cluster, "load_index", None)
        if index is not None and index.stats.queries:
            stats = index.stats
            hit_pct = 100.0 * stats.cached_queries / stats.queries
            lines.append(
                f"load index: {stats.queries} queries "
                f"({hit_pct:.0f}% cached), {stats.repairs} repairs, "
                f"{stats.stale_pops} stale pops, "
                f"{stats.compactions} compactions"
            )
        return "\n".join(lines)

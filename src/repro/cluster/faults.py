"""Cluster-level fault handling: replica loss.

Replica failures reuse the :mod:`repro.faults` machinery one level up:
like device losses, they are *scheduled deterministically* — explicit
``(time, replica_id)`` pairs, so chaos tests can place the loss exactly
where it hurts — and the engine-side teardown of a dying BatchMaker
replica goes through the same total-device-loss path the faults layer
already guarantees leaves the event loop clean.

What the cluster adds on top (see ``ClusterServer._replica_failed``):

* the dead replica stops being routable immediately;
* its still-live logical requests are *re-routed* — fresh shadows on
  surviving replicas, chosen by the cluster's own routing policy in
  deterministic shadow-id order — rather than failed;
* only when no serving replica remains are requests rejected
  (``"no_replicas"``), mirroring the single-server ``"no_devices"``
  behaviour.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.faults import DeviceFailure


class ReplicaFailure(DeviceFailure):
    """One replica dropping out at a virtual time.  Shares the
    :class:`~repro.faults.DeviceFailure` shape — a replica is a device at
    cluster granularity."""

    @property
    def replica_id(self) -> int:
        return self.device_id

    def __repr__(self) -> str:
        return f"<ReplicaFailure replica{self.replica_id} at t={self.time:g}>"


def normalize_failures(failures: Sequence) -> List[ReplicaFailure]:
    """Accept ``ReplicaFailure`` / ``DeviceFailure`` instances or bare
    ``(time, replica_id)`` pairs; return them sorted by (time, id) so the
    injection order never depends on caller iteration order."""
    normalized = []
    for failure in failures:
        if isinstance(failure, DeviceFailure):
            normalized.append(ReplicaFailure(failure.time, failure.device_id))
        else:
            time, replica_id = failure
            normalized.append(ReplicaFailure(time, replica_id))
    return sorted(normalized, key=lambda f: (f.time, f.replica_id))

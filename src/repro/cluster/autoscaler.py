"""EWMA-load autoscaling.

The autoscaler watches the cluster's outstanding-requests-per-alive-replica
through an EWMA and adds or drains replicas when the smoothed load crosses
its watermarks.  It is *event-driven*: the signal is sampled after every
routing decision rather than on a timer, so an idle cluster schedules no
wake-ups and a drained event loop still terminates — the only events the
autoscaler ever schedules are warm-up completions, which are finite.

Scaling up pays a configurable warm-up cost: the new replica is built
immediately (so its parameters, queues and devices exist) but becomes
routable only ``warmup`` virtual seconds later — the moral equivalent of
loading weights onto a fresh GPU.  Scaling down never kills work: the
victim replica stops receiving new requests (DRAINING) and retires once
its outstanding count reaches zero.

Every decision is a deterministic function of the cluster's observed
state, so fixed-seed runs replay the exact same scaling timeline
(``cluster.scale_events``).
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class AutoscalerConfig:
    """Autoscaling knobs, JSON round-trippable (nested in ``ClusterSpec``).

    Parameters
    ----------
    min_replicas / max_replicas:
        Hard bounds on the serving replica count (warming replicas count
        toward ``max`` so a burst can't spawn unboundedly during warm-up).
    high_watermark / low_watermark:
        EWMA outstanding-requests-per-alive-replica thresholds for scaling
        up / down.
    alpha:
        EWMA smoothing factor in (0, 1]; higher reacts faster.
    warmup:
        Virtual seconds between spawning a replica and it becoming
        routable.
    cooldown:
        Minimum virtual seconds between scaling actions (prevents
        thrashing between the watermarks).
    """

    def __init__(
        self,
        min_replicas: int = 1,
        max_replicas: int = 8,
        high_watermark: float = 64.0,
        low_watermark: float = 8.0,
        alpha: float = 0.2,
        warmup: float = 5e-3,
        cooldown: float = 20e-3,
    ):
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ValueError("need 0 <= low_watermark < high_watermark")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if warmup < 0 or cooldown < 0:
            raise ValueError("warmup and cooldown must be >= 0")
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.alpha = float(alpha)
        self.warmup = float(warmup)
        self.cooldown = float(cooldown)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "min_replicas": self.min_replicas,
            "max_replicas": self.max_replicas,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "alpha": self.alpha,
            "warmup": self.warmup,
            "cooldown": self.cooldown,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AutoscalerConfig":
        return cls(**data)

    def __repr__(self) -> str:
        return (
            f"AutoscalerConfig([{self.min_replicas}, {self.max_replicas}], "
            f"watermarks=({self.low_watermark:g}, {self.high_watermark:g}), "
            f"warmup={self.warmup:g}s, cooldown={self.cooldown:g}s)"
        )


class Autoscaler:
    """Watches one cluster and drives its replica count."""

    def __init__(self, cluster, config: AutoscalerConfig):
        self.cluster = cluster
        self.config = config
        self.ewma: Optional[float] = None
        self._last_action_at = float("-inf")

    def observe(self, now: float) -> None:
        """Fold the current load sample into the EWMA and act on it.
        Called by the cluster after each routing decision."""
        alive = [r for r in self.cluster.replicas if r.routable]
        if not alive:
            return  # replica failure handling owns this regime
        load = sum(r.outstanding() for r in alive) / len(alive)
        if self.ewma is None:
            self.ewma = load
        else:
            self.ewma += self.config.alpha * (load - self.ewma)
        if now - self._last_action_at < self.config.cooldown:
            return
        warming = sum(1 for r in self.cluster.replicas if r.state == "warming")
        if (
            self.ewma > self.config.high_watermark
            and len(alive) + warming < self.config.max_replicas
        ):
            self.cluster._spawn_replica(now)
            self._last_action_at = now
        elif (
            self.ewma < self.config.low_watermark
            and warming == 0
            and len(alive) > self.config.min_replicas
        ):
            self.cluster._drain_replica(now)
            self._last_action_at = now

    def __repr__(self) -> str:
        ewma = "unprimed" if self.ewma is None else f"{self.ewma:.2f}"
        return f"<Autoscaler ewma={ewma} {self.config!r}>"

"""Front-end routing policies.

A routing policy picks the replica that serves a newly arrived request.
Candidates are always presented in ascending ``replica_id`` order — never
dict/set iteration order — and every tie between equally attractive
replicas is broken by :func:`tie_break`, a pure function of
``(seed, request_id)`` over the tied ids (the determinism rule in
DESIGN.md §11).  Re-running a workload therefore reproduces the exact
routing decision sequence bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Type

from repro.cluster.replica import Replica
from repro.core.request import InferenceRequest
from repro.faults import mix64


def tie_break(seed: int, request_id: int, tied: Sequence[Replica]) -> Replica:
    """Deterministic choice among equally good replicas: a stable integer
    mix of ``(seed, request_id)`` indexes the tied list (which callers keep
    in replica-id order).  No ``hash()``, no iteration-order dependence."""
    if len(tied) == 1:
        return tied[0]
    return tied[mix64(seed, request_id) % len(tied)]


def payload_length(payload: Any) -> int:
    """A request's scheduling-relevant length, for length-bucketed routing.

    Covers every payload shape the workloads produce: bare int lengths
    (chain models), token lists, seq2seq ``{"src", "tgt_len"}`` dicts and
    tree payloads (node count); anything else buckets as length 0.
    """
    if isinstance(payload, bool):
        return 0
    if isinstance(payload, int):
        return payload
    if isinstance(payload, dict):
        return int(payload.get("src", 0)) + int(payload.get("tgt_len", 0))
    num_nodes = getattr(payload, "num_nodes", None)
    if callable(num_nodes):
        return int(num_nodes())
    try:
        return len(payload)
    except TypeError:
        return 0


class RoutingPolicy:
    """Picks one of the candidate replicas for an arriving request.

    ``candidates`` is non-empty and sorted by ``replica_id``; the policy
    must not mutate it.  A policy may keep internal state (the round-robin
    cursor), but that state must evolve only through ``choose`` calls so
    a fixed workload replays to the same decisions.
    """

    name = "?"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.decisions = 0

    def choose(
        self, request: InferenceRequest, candidates: List[Replica]
    ) -> Replica:
        self.decisions += 1
        return self._choose(request, candidates)

    def _choose(
        self, request: InferenceRequest, candidates: List[Replica]
    ) -> Replica:
        raise NotImplementedError

    def _best(
        self,
        request: InferenceRequest,
        candidates: List[Replica],
        key: Callable[[Replica], float],
    ) -> Replica:
        """Min-by-key with the seeded tie-break over all minimisers."""
        best = min(key(replica) for replica in candidates)
        tied = [replica for replica in candidates if key(replica) == best]
        return tie_break(self.seed, request.request_id, tied)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} seed={self.seed} decisions={self.decisions}>"


class RoundRobinRouter(RoutingPolicy):
    """Cycle through the candidates in replica-id order.  Oblivious to
    load and length — the baseline every smarter policy is judged against."""

    name = "round_robin"

    def _choose(self, request, candidates):
        # decisions was already incremented; index with the pre-increment
        # value so the cycle starts at replica 0.
        return candidates[(self.decisions - 1) % len(candidates)]


class LeastOutstandingRouter(RoutingPolicy):
    """Send to the replica with the fewest in-flight requests — the classic
    front-end balancer (ties seeded)."""

    name = "least_outstanding"

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.outstanding())


class ShortestQueueRouter(RoutingPolicy):
    """Join the shortest queue by *projected delay* rather than raw count:
    each replica reports its EWMA-estimated queueing delay (device backlog
    plus estimated drain time of queued work), so a replica stuck behind a
    few long sequences looks longer than one with many short ones."""

    name = "shortest_queue"

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.projected_delay())


class LengthBucketedRouter(RoutingPolicy):
    """Send similar-length requests to the same replica.

    Requests whose lengths fall in the same ``bucket_width``-wide band
    land on the same replica (bucket index modulo the candidate count), so
    each replica's queues hold cells at similar progress — denser batches
    at the cost of ignoring instantaneous load.  Deterministic with no
    ties: the decision is a pure function of the payload length and the
    candidate count.
    """

    name = "length_bucketed"

    def __init__(self, seed: int = 0, bucket_width: int = 16):
        super().__init__(seed)
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.bucket_width = int(bucket_width)

    def _choose(self, request, candidates):
        bucket = payload_length(request.payload) // self.bucket_width
        return candidates[bucket % len(candidates)]


ROUTERS: Dict[str, Type[RoutingPolicy]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    ShortestQueueRouter.name: ShortestQueueRouter,
    LengthBucketedRouter.name: LengthBucketedRouter,
}


def make_router(name: str, seed: int = 0, **params: Any) -> RoutingPolicy:
    """Instantiate a routing policy by registered name."""
    cls = ROUTERS.get(name)
    if cls is None:
        raise KeyError(f"unknown routing policy {name!r} (have: {sorted(ROUTERS)})")
    return cls(seed=seed, **params)

"""Front-end routing policies.

A routing policy picks the replica that serves a newly arrived request.
Candidates are always presented in ascending ``replica_id`` order — never
dict/set iteration order — and every tie between equally attractive
replicas is broken by :func:`tie_break`, a pure function of
``(seed, request_id)`` over the tied ids (the determinism rule in
DESIGN.md §11).  Re-running a workload therefore reproduces the exact
routing decision sequence bit for bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Type

from repro.cluster.replica import Replica
from repro.core.request import InferenceRequest
from repro.faults import mix64


def tie_break(seed: int, request_id: int, tied: Sequence[Replica]) -> Replica:
    """Deterministic choice among equally good replicas: a stable integer
    mix of ``(seed, request_id)`` indexes the tied list (which callers keep
    in replica-id order).  No ``hash()``, no iteration-order dependence."""
    if len(tied) == 1:
        return tied[0]
    return tied[mix64(seed, request_id) % len(tied)]


def payload_length(payload: Any) -> int:
    """A request's scheduling-relevant length, for length-bucketed routing.

    Covers every payload shape the workloads produce: bare int lengths
    (chain models), token lists, seq2seq ``{"src", "tgt_len"}`` dicts and
    tree payloads (node count); anything else buckets as length 0.
    """
    if isinstance(payload, bool):
        return 0
    if isinstance(payload, int):
        return payload
    if isinstance(payload, dict):
        return int(payload.get("src", 0)) + int(payload.get("tgt_len", 0))
    num_nodes = getattr(payload, "num_nodes", None)
    if callable(num_nodes):
        return int(num_nodes())
    try:
        return len(payload)
    except TypeError:
        return 0


class RoutingPolicy:
    """Picks one of the candidate replicas for an arriving request.

    ``candidates`` is non-empty and sorted by ``replica_id``; the policy
    must not mutate it.  A policy may keep internal state (the round-robin
    cursor), but that state must evolve only through ``choose`` calls so
    a fixed workload replays to the same decisions.

    Load-aware policies (``metric`` set) can route off an attached
    :class:`~repro.cluster.load_index.LoadIndex` instead of re-deriving
    every candidate's load per decision: when ``fast_path`` is on and the
    candidate list is exactly the index's routable pool, the tied minimum
    is popped from the index's lazy heap.  The index computes keys with the
    same functions the scan calls and enumerates *all* minimisers in the
    same candidate order, so the decision sequence — tie-breaks included —
    is bit-identical either way (``fast_path=False`` keeps the scan).
    """

    name = "?"
    # Load-index metric this policy minimises; None = not load-aware.
    metric: Optional[str] = None

    def __init__(self, seed: int = 0, fast_path: bool = True):
        self.seed = seed
        self.fast_path = fast_path
        self.decisions = 0
        self._index = None
        self._mindex = None
        self._stats = None
        # mix64's whole seed-dependent prefix — pre-mix times the LCG
        # multiplier plus the increment — hoisted out of the per-decision
        # path (the 128-bit multiply is the expensive op).  The inlined
        # tie-break below must stay bit-identical to
        # ``tie_break(seed, request_id, tied)``
        # (tests/test_cluster_load_index.py guards the equivalence).
        self._tie_premix = (
            ((seed & 0xFFFFFFFFFFFFFFFF) ^ 0x9E3779B97F4A7C15)
            * 6364136223846793005
            + 1442695040888963407
        )

    def attach_index(self, index) -> None:
        """Route off ``index`` when it covers the candidate list."""
        self._index = index
        # None unless this policy is load-aware AND the fast path is on —
        # a single gate attribute for the inlined hot path.
        self._mindex = (
            index.metric_index(self.metric)
            if (self.metric is not None and self.fast_path)
            else None
        )
        self._stats = index.stats

    def choose(
        self, request: InferenceRequest, candidates: List[Replica]
    ) -> Replica:
        self.decisions += 1
        return self._choose(request, candidates)

    def _choose(
        self, request: InferenceRequest, candidates: List[Replica]
    ) -> Replica:
        raise NotImplementedError

    def _best(
        self,
        request: InferenceRequest,
        candidates: List[Replica],
        key: Callable[[Replica], float],
    ) -> Replica:
        """Min-by-key with the seeded tie-break over all minimisers."""
        index = self._index
        if (
            self.fast_path
            and index is not None
            and self.metric is not None
            and index.covers(candidates)
        ):
            tied = index.tied_min(self.metric)
        else:
            tied = self._tied_scan(candidates, key)
        return tie_break(self.seed, request.request_id, tied)

    @staticmethod
    def _tied_scan(
        candidates: List[Replica], key: Callable[[Replica], float]
    ) -> List[Replica]:
        """Brute-force reference: one key evaluation per candidate, then
        keep every minimiser (candidate order = replica-id order)."""
        keys = [key(replica) for replica in candidates]
        best = min(keys)
        return [
            replica for replica, k in zip(candidates, keys) if k == best
        ]

    def __repr__(self) -> str:
        return f"<{type(self).__name__} seed={self.seed} decisions={self.decisions}>"


class RoundRobinRouter(RoutingPolicy):
    """Cycle through the candidates in replica-id order.  Oblivious to
    load and length — the baseline every smarter policy is judged against."""

    name = "round_robin"

    def _choose(self, request, candidates):
        # decisions was already incremented; index with the pre-increment
        # value so the cycle starts at replica 0.
        return candidates[(self.decisions - 1) % len(candidates)]


class LeastOutstandingRouter(RoutingPolicy):
    """Send to the replica with the fewest in-flight requests — the classic
    front-end balancer (ties seeded)."""

    name = "least_outstanding"
    metric = "outstanding"

    def choose(self, request, candidates):
        # Clean-cache hit fully inlined — covers check, tied_min's cached
        # non-volatile branch, and the mix64 tie-break arithmetic (seed
        # prefix hoisted into ``_tie_premix``): at ~0.2 us/decision the
        # Python call chain IS the cost, so the common case makes no
        # calls at all.  Anything else falls through to the layered path.
        self.decisions += 1
        m = self._mindex
        if m is not None:
            tied = m.hot
            if tied is not None and candidates is m.hot_pool:
                self._stats.cached_queries += 1
                if len(tied) == 1:
                    return tied[0]
                x = (self._tie_premix + request.request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                return tied[x % len(tied)]
        return self._choose(request, candidates)

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.outstanding())


class ShortestQueueRouter(RoutingPolicy):
    """Join the shortest queue by *projected delay* rather than raw count:
    each replica reports its EWMA-estimated queueing delay (device backlog
    plus estimated drain time of queued work), so a replica stuck behind a
    few long sequences looks longer than one with many short ones."""

    name = "shortest_queue"
    metric = "projected_delay"

    def choose(self, request, candidates):
        # Same inlined clean-cache hit as LeastOutstandingRouter; volatile
        # (clock-decaying) keys always take the full tied_min path.
        self.decisions += 1
        m = self._mindex
        if m is not None:
            tied = m.hot
            if tied is not None and candidates is m.hot_pool:
                self._stats.cached_queries += 1
                if len(tied) == 1:
                    return tied[0]
                x = (self._tie_premix + request.request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                return tied[x % len(tied)]
        return self._choose(request, candidates)

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.projected_delay())


class PredictedDelayRouter(RoutingPolicy):
    """Join the queue with the smallest *predicted* wait: each replica's
    online :class:`~repro.policies.LatencyPredictor` (fed from observed
    shadow latencies) scaled by its outstanding count.  Falls back to the
    projected-delay estimate per replica until its predictor has seen a
    completion, so the first decisions match ``shortest_queue``."""

    name = "predicted_delay"
    metric = "predicted_delay"

    def choose(self, request, candidates):
        # Same inlined clean-cache hit as LeastOutstandingRouter; volatile
        # (clock-decaying) keys always take the full tied_min path.
        self.decisions += 1
        m = self._mindex
        if m is not None:
            tied = m.hot
            if tied is not None and candidates is m.hot_pool:
                self._stats.cached_queries += 1
                if len(tied) == 1:
                    return tied[0]
                x = (self._tie_premix + request.request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                return tied[x % len(tied)]
        return self._choose(request, candidates)

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.predicted_delay())


class MostFreeMemoryRouter(RoutingPolicy):
    """Send to the replica with the most free device memory — the routing
    arm of memory-aware serving (DESIGN.md §15).  A dynamic-decode request
    holds hidden-state bytes for an unknown number of steps, so spreading
    by free bytes (rather than in-flight count) keeps any one replica from
    evicting while others have headroom.  Replicas without a memory model
    report infinite free bytes: they all tie and the seeded tie-break
    degrades this to uniform routing."""

    name = "most_free_memory"
    metric = "free_memory"

    def choose(self, request, candidates):
        # Same inlined clean-cache hit as LeastOutstandingRouter; the
        # free-memory key is event-driven (never volatile), so the cache
        # holds between reserve/release deltas.
        self.decisions += 1
        m = self._mindex
        if m is not None:
            tied = m.hot
            if tied is not None and candidates is m.hot_pool:
                self._stats.cached_queries += 1
                if len(tied) == 1:
                    return tied[0]
                x = (self._tie_premix + request.request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                return tied[x % len(tied)]
        return self._choose(request, candidates)

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: -r.free_memory())


class CheapestEnergyRouter(RoutingPolicy):
    """Send to the replica with the cheapest estimated marginal joules —
    the routing arm of energy-aware serving (DESIGN.md §17).  A replica's
    key is its cheapest alive device's dynamic power times its EWMA
    per-node service time, so a fleet mixing device classes (or DVFS
    states) steers work toward low-power replicas until their queues push
    the delay-side cost up.  Replicas without an energy model report 0.0:
    they all tie and the seeded tie-break degrades this to uniform
    routing (the free-memory inertness pattern)."""

    name = "cheapest_energy"
    metric = "energy_cost"

    def choose(self, request, candidates):
        # Same inlined clean-cache hit as LeastOutstandingRouter; the
        # energy-cost key is event-driven (never volatile) — both factors
        # move only on task completion or a batch-boundary DVFS change.
        self.decisions += 1
        m = self._mindex
        if m is not None:
            tied = m.hot
            if tied is not None and candidates is m.hot_pool:
                self._stats.cached_queries += 1
                if len(tied) == 1:
                    return tied[0]
                x = (self._tie_premix + request.request_id) & 0xFFFFFFFFFFFFFFFF
                x ^= x >> 31
                return tied[x % len(tied)]
        return self._choose(request, candidates)

    def _choose(self, request, candidates):
        return self._best(request, candidates, lambda r: r.energy_cost())


class LengthBucketedRouter(RoutingPolicy):
    """Send similar-length requests to the same replica.

    Requests whose lengths fall in the same ``bucket_width``-wide band
    land on the same replica (bucket index modulo the candidate count), so
    each replica's queues hold cells at similar progress — denser batches
    at the cost of ignoring instantaneous load.  Deterministic with no
    ties: the decision is a pure function of the payload length and the
    candidate count.
    """

    name = "length_bucketed"

    def __init__(self, seed: int = 0, bucket_width: int = 16, fast_path: bool = True):
        super().__init__(seed, fast_path=fast_path)
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.bucket_width = int(bucket_width)

    def _choose(self, request, candidates):
        bucket = payload_length(request.payload) // self.bucket_width
        return candidates[bucket % len(candidates)]


class ClassAffinityRouter(RoutingPolicy):
    """Length-bucketed routing that respects heterogeneous device classes.

    Each candidate carries the ``class_rank`` its replica was built with
    (declaration order in the cluster spec's ``device_classes``; 0 for a
    homogeneous fleet).  The request's length bucket indexes the sorted
    distinct ranks present among the candidates — bucket 0 lands on the
    first-declared class, bucket 1 on the second, and buckets past the
    last class saturate there.  Declare the cheap/slow class first and
    short requests stay on it while long ones graduate to the fast
    expensive class.  Within the chosen class, ``bucket % group size``
    keeps similar lengths together (the length-bucketed property).
    Deterministic with no ties: a pure function of the payload length and
    the candidates' class ranks.  On a homogeneous fleet every candidate
    has rank 0 and this degrades to :class:`LengthBucketedRouter`.
    """

    name = "class_affinity"

    def __init__(self, seed: int = 0, bucket_width: int = 16, fast_path: bool = True):
        super().__init__(seed, fast_path=fast_path)
        if bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        self.bucket_width = int(bucket_width)

    def _choose(self, request, candidates):
        bucket = payload_length(request.payload) // self.bucket_width
        ranks = sorted({replica.class_rank for replica in candidates})
        rank = ranks[min(bucket, len(ranks) - 1)]
        group = [r for r in candidates if r.class_rank == rank]
        return group[bucket % len(group)]


ROUTERS: Dict[str, Type[RoutingPolicy]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    ShortestQueueRouter.name: ShortestQueueRouter,
    PredictedDelayRouter.name: PredictedDelayRouter,
    MostFreeMemoryRouter.name: MostFreeMemoryRouter,
    CheapestEnergyRouter.name: CheapestEnergyRouter,
    LengthBucketedRouter.name: LengthBucketedRouter,
    ClassAffinityRouter.name: ClassAffinityRouter,
}


def make_router(name: str, seed: int = 0, **params: Any) -> RoutingPolicy:
    """Instantiate a routing policy by registered name."""
    cls = ROUTERS.get(name)
    if cls is None:
        raise KeyError(f"unknown routing policy {name!r} (have: {sorted(ROUTERS)})")
    return cls(seed=seed, **params)

"""Event-driven per-replica load indexes for the front-end router.

The load-aware routing policies (``least_outstanding``, ``shortest_queue``)
are min-by-key selections over the routable replicas.  The brute-force
implementation re-derives every candidate's load on every decision —
``Replica.outstanding()`` and ``Replica.projected_delay()`` per candidate
per request — which BENCH_engine.json showed costing 4.0/5.8 us per
decision against ~0.2 us for the stateless routers.  This module keeps the
decision off the critical path with the same invalidate-and-repair trick
the scheduler's eligibility heaps use (DESIGN.md §7): replicas push O(1)
*dirty marks* whenever an event changes their load, and the router pops a
lazily repaired min-heap instead of scanning.

Invariants (DESIGN.md §13):

* **One valid entry per routable replica per metric.**  Heap entries are
  ``(key, replica_id, version)``; only the entry whose version matches
  ``_versions[replica_id]`` is live, anything else is discarded when it
  surfaces.  Tuples give a total order, so the pop sequence — and with it
  the enumerated tie set — is independent of heap-array layout.
* **Every load-changing event produces a delta.**  Routing a shadow,
  a shadow reaching a terminal list, a batch kicked to a device, a task
  completing/failing/retrying, eviction, device loss and EWMA updates all
  mark the replica dirty (see ``Replica.attach_index`` for the hooks);
  dirty replicas are recomputed — with the *exact brute-force key
  function* — before the next query, so fast-path keys are bit-identical
  to a scan's.
* **Time-decaying keys never sit in the heap across timestamps.**  A
  manager-backed ``projected_delay`` includes the device backlog
  ``max(0, free_at - now)``, which decreases as the virtual clock runs
  even with no events; entries whose key had a positive backlog share are
  flagged *volatile* and recomputed once per distinct query timestamp
  (cheap at simulation scale: queries only happen at arrival/re-route
  events).  Zero-backlog keys are pure functions of event-driven state and
  stay cached.
* **Ties are enumerated exactly.**  A query returns *all* minimisers in
  ascending replica-id order — the same candidate order the brute-force
  scan produces — so the seeded ``tie_break`` sees an identical tied list
  and the decision sequence is fingerprint-bit-identical.

The index is owned by :class:`~repro.cluster.cluster.ClusterServer`
(and by the routing benchmarks); replicas are registered on creation and
drop out of the routable pool through their state transitions.  The
retained brute-force scan (``fast_path=False`` on the router) bypasses the
index entirely.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple

# Replica states are plain strings (repro.cluster.replica); imported lazily
# there to avoid a cycle — the index only needs the routable state name.
_ALIVE = "alive"


class LoadMetric:
    """One load signal: the exact key function the brute-force scan uses,
    plus the volatility predicate deciding whether a cached key can decay
    with time (and must therefore be recomputed each query timestamp)."""

    __slots__ = ("name", "compute", "is_volatile", "never_volatile")

    def __init__(
        self,
        name: str,
        compute: Callable[["object"], float],
        is_volatile: Callable[["object"], bool],
    ):
        self.name = name
        self.compute = compute
        self.is_volatile = is_volatile
        # Repair skips the per-replica volatility probe entirely for
        # metrics that can never decay (pure event-driven integers).
        self.never_volatile = is_volatile is _never_volatile

    def __repr__(self) -> str:
        return f"<LoadMetric {self.name!r}>"


def _outstanding_key(replica) -> int:
    return replica.outstanding()


def _never_volatile(replica) -> bool:
    return False


def _projected_key(replica) -> float:
    return replica.projected_delay()


def _projected_volatile(replica) -> bool:
    """True when the replica's projected delay includes a positive device
    backlog — the only component that changes without an event (it decays
    as the clock advances).  Engine-free replicas (EWMA x outstanding) and
    idle managers are event-driven, so their keys stay cached."""
    manager = getattr(replica.server, "manager", None)
    if manager is None:
        return False
    backlogs = [w.device.backlog() for w in manager.workers if w.alive]
    return bool(backlogs) and min(backlogs) > 0.0


def _free_memory_key(replica) -> float:
    """Negated so the shared min-heap maximises free bytes.  Replicas
    without a memory model report infinite free memory, so they all tie at
    -inf and the seeded tie-break takes over — the metric is inert unless
    the replica spec carries a MemorySpec."""
    return -replica.free_memory()


def _energy_cost_key(replica) -> float:
    """Marginal joules per cell on the replica's cheapest alive device.
    Replicas without an energy model report 0.0, so they all tie and the
    seeded tie-break takes over — the metric is inert unless the replica
    spec carries an EnergySpec.  Event-driven: dynamic watts move only at
    batch-boundary DVFS decisions and the node-time EWMA on completions,
    both of which fire ``on_load_changed``."""
    return replica.energy_cost()


def _predicted_key(replica) -> float:
    return replica.predicted_delay()


def _predicted_volatile(replica) -> bool:
    """The predictor-backed key (EWMA x outstanding) is pure event-driven
    state; only the projected-delay *fallback* — used until the replica's
    predictor has observed a completion — can carry a decaying backlog."""
    predictor = getattr(replica, "predictor", None)
    if predictor is not None and predictor.ready:
        return False
    return _projected_volatile(replica)


OUTSTANDING = LoadMetric("outstanding", _outstanding_key, _never_volatile)
PROJECTED_DELAY = LoadMetric(
    "projected_delay", _projected_key, _projected_volatile
)
PREDICTED_DELAY = LoadMetric(
    "predicted_delay", _predicted_key, _predicted_volatile
)
# Event-driven, never decays with time: bytes move only on reserve/release,
# and every reserving/releasing engine path fires ``on_load_changed``.
FREE_MEMORY = LoadMetric("free_memory", _free_memory_key, _never_volatile)
# Event-driven, never decays with time: see _energy_cost_key.
ENERGY_COST = LoadMetric("energy_cost", _energy_cost_key, _never_volatile)
METRICS: Dict[str, LoadMetric] = {
    OUTSTANDING.name: OUTSTANDING,
    PROJECTED_DELAY.name: PROJECTED_DELAY,
    PREDICTED_DELAY.name: PREDICTED_DELAY,
    FREE_MEMORY.name: FREE_MEMORY,
    ENERGY_COST.name: ENERGY_COST,
}


class IndexStats:
    """Observability counters; no behavioural role.

    Cache hits are counted with a single increment (the router's inlined
    hot path pays for every attribute store), so the total is derived:
    ``queries = cached_queries + uncached_queries``.
    """

    __slots__ = ("cached_queries", "uncached_queries", "repairs", "stale_pops", "compactions")

    def __init__(self):
        self.cached_queries = 0
        self.uncached_queries = 0
        self.repairs = 0
        self.stale_pops = 0
        self.compactions = 0

    @property
    def queries(self) -> int:
        return self.cached_queries + self.uncached_queries

    def as_dict(self) -> Dict[str, int]:
        stats = {name: getattr(self, name) for name in self.__slots__}
        stats["queries"] = self.queries
        return stats

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"<IndexStats {parts}>"


class _MetricIndex:
    """The lazy min-heap for one metric."""

    __slots__ = (
        "metric",
        "heap",
        "versions",
        "keys",
        "computed_at",
        "dirty",
        "volatile",
        "cache",
        "cache_at",
        "hot",
        "hot_pool",
    )

    def __init__(self, metric: LoadMetric):
        self.metric = metric
        self.heap: List[Tuple[float, int, int]] = []
        # replica_id -> version of its live heap entry; absent = no live
        # entry (not routable, or never computed).
        self.versions: Dict[int, int] = {}
        self.keys: Dict[int, float] = {}
        self.computed_at: Dict[int, float] = {}
        self.dirty: Set[int] = set()
        self.volatile: Set[int] = set()
        # Memoised tie set: valid while no dirty marks arrived and (when
        # volatile keys exist) the query timestamp is unchanged.
        self.cache: Optional[List] = None
        self.cache_at: float = float("nan")
        # ``cache`` again, but only while it is valid at ANY timestamp
        # (no volatile keys): the single-attribute gate the router's
        # inlined hot path tests, paired with the routable pool it was
        # computed over (any pool change clears ``hot``, so the pair
        # stays consistent).  Cleared wherever ``cache`` is.
        self.hot: Optional[List] = None
        self.hot_pool: Optional[List] = None

    def invalidate(self, rid: int) -> None:
        self.versions.pop(rid, None)
        self.keys.pop(rid, None)
        self.computed_at.pop(rid, None)
        self.dirty.discard(rid)
        self.volatile.discard(rid)
        self.cache = None
        self.hot = None


class LoadIndex:
    """Per-metric lazy min-heaps over the routable replicas of one cluster.

    ``now`` is the shared virtual clock (``loop.now``); volatile entries
    are keyed to it.  All mutation entry points are O(1) or amortised
    O(log R); :meth:`tied_min` is O(1) when nothing changed since the last
    query and O((dirty + volatile + ties) * log R) otherwise.
    """

    # Rebuild a metric heap once stale entries outnumber live ones by this
    # factor — keeps memory bounded by O(replicas) across long runs.
    COMPACT_FACTOR = 4

    def __init__(self, now: Callable[[], float] = lambda: 0.0):
        self._now = now
        self._replicas: Dict[int, "object"] = {}
        self._routable_ids: Set[int] = set()
        self._routable_list: List = []
        self._metrics: Dict[str, _MetricIndex] = {
            name: _MetricIndex(metric) for name, metric in METRICS.items()
        }
        self.stats = IndexStats()

    # -- membership ----------------------------------------------------------

    def register(self, replica) -> None:
        """Track ``replica`` and wire its delta hooks (idempotent)."""
        self._replicas[replica.replica_id] = replica
        replica.attach_index(self)
        self.on_state(replica)

    def on_state(self, replica) -> None:
        """``replica``'s lifecycle state changed: update the routable pool.
        Leaving the pool invalidates the replica's entries (they would
        otherwise validate against a non-candidate); entering marks it
        dirty so the next query computes a fresh key."""
        rid = replica.replica_id
        routable = replica.state == _ALIVE
        if routable and rid not in self._routable_ids:
            self._routable_ids.add(rid)
            self._rebuild_routable()
            for m in self._metrics.values():
                m.dirty.add(rid)
                m.cache = None
                m.hot = None
        elif not routable and rid in self._routable_ids:
            self._routable_ids.discard(rid)
            self._rebuild_routable()
            for m in self._metrics.values():
                m.invalidate(rid)

    def _rebuild_routable(self) -> None:
        self._routable_list = [
            self._replicas[rid] for rid in sorted(self._routable_ids)
        ]

    def routable(self) -> List:
        """The current routable replicas, ascending replica-id order.  The
        returned list is the index's own cache — callers must not mutate
        it (the routing contract already forbids mutating candidates)."""
        return self._routable_list

    def covers(self, candidates) -> bool:
        """True when ``candidates`` is exactly this index's routable pool —
        the identity check that gates the router's fast path."""
        return candidates is self._routable_list

    def metric_index(self, name: str) -> _MetricIndex:
        """The per-metric lazy heap.  Handed to an attached router so its
        per-decision hot path can inline this module's clean-cache hit
        (``cache`` valid, no volatile keys) without paying for the call
        chain — at sub-microsecond decision costs the Python calls are
        the bill.  Everything else still goes through :meth:`tied_min`."""
        return self._metrics[name]

    # -- deltas --------------------------------------------------------------

    def touch(self, replica) -> None:
        """An event changed any of ``replica``'s load signals."""
        rid = replica.replica_id
        for m in self._metrics.values():
            m.dirty.add(rid)
            m.cache = None
            m.hot = None

    def touch_projected(self, replica) -> None:
        """An engine event changed the engine-derived signals only (batch
        kicked, task completed/failed, device lost, memory reserved or
        released, EWMA/predictor update) — the outstanding count is
        untouched, but the delay metrics and free memory move."""
        rid = replica.replica_id
        for name in (
            PROJECTED_DELAY.name,
            PREDICTED_DELAY.name,
            FREE_MEMORY.name,
            ENERGY_COST.name,
        ):
            m = self._metrics[name]
            m.dirty.add(rid)
            m.cache = None
            m.hot = None

    # -- queries -------------------------------------------------------------

    def tied_min(self, metric_name: str) -> List:
        """All minimisers of ``metric_name`` over the routable pool, in
        ascending replica-id order — bit-identical keys (and therefore an
        identical tie set) to the brute-force scan's.

        The lazy heap locates the minimum *key* (stale tops discarded on
        the way down, cost amortised against the pushes that created
        them); the tie *set* is then read off the exact live-key table —
        ties are a result whose size can reach R anyway, and a table scan
        with pure number comparisons is far cheaper than popping and
        re-pushing equal-key heap entries one by one.
        """
        m = self._metrics[metric_name]
        stats = self.stats
        # Volatile keys decay with the clock; consult it only when any
        # exist.  A clean non-volatile index answers without a clock read.
        if m.volatile:
            now = self._now()
            if m.cache is not None and m.cache_at == now:
                stats.cached_queries += 1
                return m.cache
        else:
            now = 0.0
            if m.cache is not None:
                stats.cached_queries += 1
                return m.cache
        stats.uncached_queries += 1

        if m.dirty:
            dirty = (
                m.dirty if len(m.dirty) == 1 else sorted(m.dirty)
            )
            for rid in dirty:
                if rid in self._routable_ids:
                    self._refresh(m, rid, now)
            m.dirty.clear()
        if m.volatile:
            for rid in sorted(m.volatile):
                if m.computed_at.get(rid) != now:
                    self._refresh(m, rid, now)

        heap = m.heap
        versions = m.versions
        while heap:
            top = heap[0]
            if versions.get(top[1]) == top[2]:
                break
            heapq.heappop(heap)
            stats.stale_pops += 1
        if not heap:
            tied: List = []
            m.cache = tied
            m.cache_at = now
            # Never hot: the router's inline path indexes the tie set.
            return tied

        min_key = heap[0][0]
        # Common case: the top is the unique minimum — both children (the
        # only possible second-smallest entries) exceed it, so no scan.
        n = len(heap)
        if (n < 2 or heap[1][0] > min_key) and (n < 3 or heap[2][0] > min_key):
            tied = [self._replicas[heap[0][1]]]
        else:
            # Ties (or stale equal-key children): enumerate the minimisers
            # from the live-key table in ascending replica-id order — the
            # brute-force candidate order.
            replicas = self._replicas
            tied = [
                replicas[rid]
                for rid in sorted(
                    rid for rid, key in m.keys.items() if key == min_key
                )
            ]

        if len(heap) > self.COMPACT_FACTOR * len(self._routable_ids) + 16:
            self._compact(m)
        m.cache = tied
        m.cache_at = now
        if not m.volatile:
            m.hot = tied
            m.hot_pool = self._routable_list
        return tied

    def _refresh(self, m: _MetricIndex, rid: int, now: float) -> None:
        """Recompute ``rid``'s key with the exact brute-force function and
        install it as the replica's single live entry."""
        metric = m.metric
        replica = self._replicas[rid]
        key = metric.compute(replica)
        if not metric.never_volatile:
            if metric.is_volatile(replica):
                m.volatile.add(rid)
                m.computed_at[rid] = now
            else:
                m.volatile.discard(rid)
        current = m.versions.get(rid)
        if current is not None and m.keys[rid] == key:
            return  # live entry already carries this key
        version = 0 if current is None else current + 1
        m.versions[rid] = version
        m.keys[rid] = key
        heapq.heappush(m.heap, (key, rid, version))
        self.stats.repairs += 1

    def _compact(self, m: _MetricIndex) -> None:
        """Drop stale entries in one pass (amortised against the pushes
        that grew the heap)."""
        m.heap = [e for e in m.heap if m.versions.get(e[1]) == e[2]]
        heapq.heapify(m.heap)
        self.stats.compactions += 1

    def __repr__(self) -> str:
        sizes = {
            name: len(m.heap) for name, m in self._metrics.items()
        }
        return (
            f"<LoadIndex replicas={len(self._replicas)} "
            f"routable={len(self._routable_ids)} heaps={sizes}>"
        )

"""The serving cluster: N replicas behind a front-end router.

``ClusterServer`` implements the common :class:`InferenceServer` interface
— ``submit`` / ``drain`` / ``finished`` — so the load generator and the
experiment harness drive a whole cluster exactly like one server.  All
replicas share one deterministic event loop; the cluster routes each
request to a replica at its arrival time (when queue states are real, not
at submission time when they are not), and lazily *reconciles* replica
outcomes back onto its own logical requests.

Life of a request:

1. ``submit`` creates the logical :class:`InferenceRequest` (cluster-wide
   id) and schedules its arrival.
2. At arrival, the router picks a replica among the routable candidates
   (replica-id order, seeded tie-breaks — DESIGN.md §11) and the replica
   materialises a *shadow* request that runs on its engine.
3. Reconciliation (amortised O(1), on each arrival and on terminal-list
   access) copies the shadow's terminal outcome onto the logical request.
4. If the replica dies first, the cluster re-routes the logical request
   as a fresh shadow on a survivor; only with no survivor is it rejected.

With one replica and no autoscaler the cluster adds *zero* events and
*zero* decisions: the shadow stream equals a bare ``build_server()`` run
event for event, so the fixed-seed outcome fingerprint is bit-identical
(``tests/test_cluster_identity.py``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.cluster.autoscaler import Autoscaler, AutoscalerConfig
from repro.cluster.faults import normalize_failures
from repro.cluster.load_index import LoadIndex
from repro.cluster.metrics import ClusterCounters, ClusterStats, aggregate_fault_counters
from repro.cluster.replica import ALIVE, DEAD, DRAINING, RETIRED, WARMING, Replica
from repro.cluster.routing import make_router
from repro.core.request import InferenceRequest
from repro.faults.sla import SLAConfig
from repro.gpu.memory import MemorySpec
from repro.policies.predict import LatencyPredictor
from repro.registry import build_server
from repro.registry.specs import ClusterSpec
from repro.server import InferenceServer, ensure_loop
from repro.sim.events import EventLoop
from repro.trace import events as trace_events


class ClusterServer(InferenceServer):
    """N replicas of one :class:`~repro.registry.ServerSpec`, one front end.

    Parameters
    ----------
    spec:
        The :class:`~repro.registry.ClusterSpec` describing the cluster.
    loop:
        Shared event loop (default: a fresh one).
    replica_failures:
        ``(time, replica_id)`` pairs (or :class:`ReplicaFailure`
        instances): replicas die deterministically at scheduled virtual
        times, mirroring ``FaultPlan.device_failures`` one level up.
    replica_runtime:
        Runtime-only keyword overrides passed to every replica's
        ``build_server`` call (``sla=...``, ``fault_plan=...``,
        ``cost_model=...``); never serialised, applied uniformly.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        loop: Optional[EventLoop] = None,
        replica_failures: Sequence = (),
        **replica_runtime: Any,
    ):
        name = spec.name or f"Cluster[{spec.router} x{spec.num_replicas}]"
        super().__init__(ensure_loop(loop), name)
        self.spec = spec
        self.seed = spec.seed
        self.router = make_router(spec.router, seed=spec.seed, **spec.router_params)
        self._replica_runtime = dict(replica_runtime)
        # Front-door SLO admission (DESIGN.md §14): when the spec carries a
        # cluster-level SLA, a cluster-wide predictor (fed from observed
        # logical completions) estimates each arrival's completion time and
        # sheds the ones that cannot make their deadline.  ``None`` = off:
        # _accept then runs the exact pre-SLA path.
        self.sla: Optional[SLAConfig] = (
            SLAConfig.from_dict(spec.sla) if spec.sla else None
        )
        self.predictor: Optional[LatencyPredictor] = (
            LatencyPredictor() if self.sla is not None else None
        )
        # Front-door memory admission (DESIGN.md §15): with a cluster-level
        # MemorySpec carrying ``admission_free_bytes``, arrivals are shed
        # while no candidate replica has that much free device memory.
        # ``None`` (or no threshold) = off: _accept runs the exact prior path.
        self.memory: Optional[MemorySpec] = (
            MemorySpec.from_dict(spec.memory) if spec.memory else None
        )
        self.replicas: List[Replica] = []
        self._next_replica_id = 0
        # Heterogeneous fleets (DESIGN.md §17): the initial replica ids'
        # class ranks, expanded from ``device_classes`` in declaration
        # order; None keeps the exact homogeneous construction path.
        # Class cost models are built once and shared by the class's
        # replicas (read-only: the manager derives its own DVFS-scaled
        # copies).
        self._class_plan: Optional[List[int]] = None
        self._class_cost_models: dict = {}
        if spec.device_classes is not None:
            self._class_plan = []
            for rank, cls in enumerate(spec.device_classes):
                self._class_plan.extend([rank] * int(cls["replicas"]))
        # Event-driven per-replica load index (DESIGN.md §13): replicas push
        # deltas, load-aware routers pop the tied minimum instead of
        # scanning.  ``fast_path=False`` on the router keeps the scan.
        self.load_index = LoadIndex(now=self.loop.now)
        self.router.attach_index(self.load_index)
        self.cluster_counters = ClusterCounters()
        # Deterministic (time, action, replica_id) log of scaling/fault
        # lifecycle transitions; fixed-seed runs replay it exactly.
        self.scale_events: List[tuple] = []
        for _ in range(spec.num_replicas):
            self._add_replica(state=ALIVE)

        self.autoscaler: Optional[Autoscaler] = None
        if spec.autoscaler is not None:
            config = AutoscalerConfig.from_dict(spec.autoscaler)
            if spec.num_replicas < config.min_replicas:
                raise ValueError(
                    f"num_replicas={spec.num_replicas} is below the "
                    f"autoscaler's min_replicas={config.min_replicas}"
                )
            self.autoscaler = Autoscaler(self, config)

        for failure in normalize_failures(replica_failures):
            self.loop.call_at(
                max(failure.time, self.loop.now()),
                lambda rid=failure.replica_id: self._replica_failed(rid),
            )
        self._autotrace()

    # -- tracing -------------------------------------------------------------

    def _apply_trace_scope(self, scope) -> None:
        """The cluster records routing/lifecycle events under its own scope
        (replica_id None) and re-attaches every replica's engine to the
        shared recorder under that replica's id, so one buffer holds the
        whole cluster with per-replica lineage."""
        recorder = self.trace_recorder
        for replica in self.replicas:
            replica.server.attach_trace(
                recorder,
                replica_id=replica.replica_id if recorder is not None else None,
            )

    # -- terminal lists: reconciled views -----------------------------------
    # The base class assigns plain lists in __init__; these properties keep
    # that storage (the setters) but make every read reconcile replica
    # outcomes first, so ``finished``/``timed_out``/``rejected`` are always
    # consistent with the replicas' current state.

    @property
    def finished(self) -> List[InferenceRequest]:
        self._reconcile()
        return self._finished

    @finished.setter
    def finished(self, value) -> None:
        self._finished = list(value)

    @property
    def timed_out(self) -> List[InferenceRequest]:
        self._reconcile()
        return self._timed_out

    @timed_out.setter
    def timed_out(self, value) -> None:
        self._timed_out = list(value)

    @property
    def rejected(self) -> List[InferenceRequest]:
        self._reconcile()
        return self._rejected

    @rejected.setter
    def rejected(self, value) -> None:
        self._rejected = list(value)

    # -- replica lifecycle ---------------------------------------------------

    def _add_replica(self, state: str) -> Replica:
        replica_id = self._next_replica_id
        self._next_replica_id += 1
        template = self.spec.replica
        base = template.name if template.name is not None else template.kind
        runtime = dict(self._replica_runtime)
        # Heterogeneous / energy-defaulted build (DESIGN.md §17), gated so
        # a spec with neither device_classes nor a cluster-level energy
        # default takes the exact pre-energy path (the bit-identity rule).
        cls = None
        class_rank = 0
        if self._class_plan is not None:
            if replica_id < len(self._class_plan):
                class_rank = self._class_plan[replica_id]
            else:  # autoscaler spawn: rebalance toward the declared mix
                class_rank = self._pick_spawn_class()
            cls = self.spec.device_classes[class_rank]
        if cls is not None or self.spec.energy is not None:
            # Energy precedence: class energy > cluster default > the
            # template's own (the default only fills an absent field).
            energy = cls.get("energy") if cls is not None else None
            if energy is None and template.energy is None:
                energy = self.spec.energy
            if energy is not None:
                template = template.replace(energy=dict(energy))
            if cls is not None and "cost_model" not in runtime:
                cost_model = self._class_cost_model(class_rank)
                if cost_model is not None:
                    runtime["cost_model"] = cost_model
        server = build_server(
            template.replace(name=f"{base}#r{replica_id}"),
            loop=self.loop,
            **runtime,
        )
        replica = Replica(
            replica_id, server, state=state, created_at=self.loop.now()
        )
        if cls is not None:
            replica.device_class = cls["name"]
            replica.class_rank = class_rank
            replica.latency_scale = float(cls.get("latency_scale", 1.0))
        # Per-replica predictor behind the predicted_delay routing metric —
        # per replica (not the cluster's) so one completion dirties one
        # index key.  Left None otherwise: the metric then falls back to
        # projected_delay and the replica's event stream is unchanged.
        if self.router.metric == "predicted_delay" or self.sla is not None:
            replica.predictor = LatencyPredictor()
        self.replicas.append(replica)
        self.load_index.register(replica)
        if self.trace_recorder is not None:
            server.attach_trace(self.trace_recorder, replica_id=replica_id)
        return replica

    def _pick_spawn_class(self) -> int:
        """The class an autoscaler spawn should build: the one most
        under-provisioned relative to the declared mix (min serving
        count over declared count; declaration order breaks ties —
        deterministic, no iteration-order dependence)."""
        classes = self.spec.device_classes
        counts = [0] * len(classes)
        for replica in self.replicas:
            if replica.state in (WARMING, ALIVE):
                counts[replica.class_rank] += 1
        return min(
            range(len(classes)),
            key=lambda rank: (counts[rank] / int(classes[rank]["replicas"]), rank),
        )

    def _class_cost_model(self, class_rank: int):
        """The class's re-calibrated cost model, built once and shared by
        the class's replicas: the replica model's calibrated default,
        with the class's named-table overrides registered on top
        (:data:`repro.gpu.costmodel.NAMED_TABLES`), then uniformly
        slowed by ``latency_scale``.  None when the class declares no
        re-calibration (the replica then builds its own default — the
        homogeneous path)."""
        if class_rank in self._class_cost_models:
            return self._class_cost_models[class_rank]
        cls = self.spec.device_classes[class_rank]
        tables = cls.get("tables") or {}
        scale = float(cls.get("latency_scale", 1.0))
        if not tables and scale == 1.0:
            cost_model = None
        else:
            from repro.gpu.costmodel import make_table
            from repro.registry.models import make_model

            template = self.spec.replica
            model = make_model(template.model, **template.model_args)
            cost_model = model.default_cost_model()
            for cell in sorted(tables):
                cost_model.register(cell, make_table(tables[cell]))
            if scale != 1.0:
                cost_model = cost_model.scaled(scale)
        self._class_cost_models[class_rank] = cost_model
        return cost_model

    def _spawn_replica(self, now: float) -> Replica:
        """Autoscaler scale-up: build a replica, make it routable after the
        configured warm-up."""
        warmup = self.autoscaler.config.warmup if self.autoscaler else 0.0
        replica = self._add_replica(state=WARMING if warmup > 0 else ALIVE)
        self.cluster_counters.replicas_spawned += 1
        self.scale_events.append((now, "spawn", replica.replica_id))
        if self._trace is not None:
            self._trace.instant(
                trace_events.REPLICA_SPAWN,
                trace_events.CLUSTER,
                args={"replica": replica.replica_id, "warmup": warmup},
            )
        if warmup > 0:
            self.loop.call_after(
                warmup, lambda: self._activate_replica(replica)
            )
        else:
            replica.activated_at = now
            self.scale_events.append((now, "activate", replica.replica_id))
        return replica

    def _activate_replica(self, replica: Replica) -> None:
        if replica.state != WARMING:  # lost or retired while warming
            return
        replica.state = ALIVE
        replica.activated_at = self.loop.now()
        self.scale_events.append(
            (self.loop.now(), "activate", replica.replica_id)
        )
        if self._trace is not None:
            now = self.loop.now()
            self._trace.instant(
                trace_events.REPLICA_ACTIVATE,
                trace_events.CLUSTER,
                args={"replica": replica.replica_id},
            )
            # The autoscale warm-up window, from build to routable.
            self._trace.span(
                trace_events.REPLICA_WARMUP,
                trace_events.CLUSTER,
                replica.created_at,
                now - replica.created_at,
                args={"replica": replica.replica_id},
            )

    def _drain_replica(self, now: float) -> None:
        """Autoscaler scale-down: stop routing to the least-loaded alive
        replica (newest id on ties — retire the most recently added) and
        let it serve out its outstanding work."""
        alive = [r for r in self.replicas if r.state == ALIVE]
        min_replicas = self.autoscaler.config.min_replicas if self.autoscaler else 1
        if len(alive) <= min_replicas:
            return
        victim = min(alive, key=lambda r: (r.outstanding(), -r.replica_id))
        victim.state = DRAINING
        self.scale_events.append((now, "drain", victim.replica_id))
        self._maybe_retire(victim)

    def _maybe_retire(self, replica: Replica) -> None:
        if replica.state == DRAINING and replica.outstanding() == 0:
            replica.state = RETIRED
            self.cluster_counters.replicas_retired += 1
            self.scale_events.append(
                (self.loop.now(), "retire", replica.replica_id)
            )

    # -- request path --------------------------------------------------------

    def _candidates(self) -> List[Replica]:
        """Routable replicas in replica-id order (creation order — never a
        dict/set walk).  The common case returns the load index's cached
        ALIVE pool — the exact list object the router's fast path identity-
        checks against.  With no ALIVE replica, DRAINING ones still serve
        rather than dropping traffic below the autoscaler's floor (a
        different list, so the router falls back to the scan)."""
        alive = self.load_index.routable()
        if alive:
            return alive
        return [r for r in self.replicas if r.state == DRAINING]

    def _accept(self, request: InferenceRequest) -> None:
        self._reconcile()
        candidates = self._candidates()
        now = self.loop.now()
        if self._trace is not None:
            self._trace.instant(
                trace_events.REQUEST_ARRIVAL,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
            )
        if not candidates:
            request.mark_rejected(now, reason="no_replicas")
            self.cluster_counters.cluster_rejections += 1
            self._rejected.append(request)
            if self._trace is not None:
                self._trace.instant(
                    trace_events.REQUEST_REJECTED,
                    trace_events.LIFECYCLE,
                    request_id=request.request_id,
                    args={"reason": "no_replicas"},
                )
            return
        if self.sla is not None and self._sla_reject(request, candidates, now):
            return
        if self.memory is not None and self._memory_reject(request, candidates, now):
            return
        replica = self.router.choose(request, candidates)
        shadow = replica.route(request, now)
        if self._trace is not None:
            # The (replica, shadow) -> logical mapping: what lets the
            # analyzers stitch a request's cross-replica tree back together.
            self._trace.instant(
                trace_events.CLUSTER_ROUTE,
                trace_events.CLUSTER,
                request_id=request.request_id,
                args={
                    "logical": request.request_id,
                    "replica": replica.replica_id,
                    "shadow": shadow.request_id,
                },
            )
        if self.autoscaler is not None:
            self.autoscaler.observe(now)

    # -- admission control ---------------------------------------------------

    def _sla_reject(
        self, request: InferenceRequest, candidates: List[Replica], now: float
    ) -> bool:
        """Shed ``request`` at the front door when its predicted completion
        misses its deadline (or the best predicted wait exceeds the SLA's
        queue-delay bound).  Consumes no router decision, so the routed /
        decision accounting of admitted traffic is untouched.  Returns True
        when the request was rejected (terminal, appended to ``rejected``)."""
        sla = self.sla
        # Predicted completion wait of the best candidate (outstanding x
        # EWMA inter-completion gap — Little's law — once the replica
        # predictors have observations; projected queue delay before).
        best_wait = min(r.predicted_delay() for r in candidates)
        over = (
            sla.max_queue_delay is not None and best_wait > sla.max_queue_delay
        )
        if not over:
            if request.deadline is not None:
                deadline = request.deadline
            elif sla.default_deadline is not None:
                deadline = now + sla.default_deadline
            else:
                deadline = None
            if deadline is not None and self.predictor.ready:
                over = now + best_wait > deadline
        if not over:
            return False
        request.mark_rejected(now, reason="sla_reject")
        self.cluster_counters.sla_rejections += 1
        self._rejected.append(request)
        if self._trace is not None:
            self._trace.instant(
                trace_events.REQUEST_REJECTED,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
                args={"reason": "sla_reject"},
            )
        return True

    def _memory_reject(
        self, request: InferenceRequest, candidates: List[Replica], now: float
    ) -> bool:
        """Shed ``request`` at the front door while no candidate replica
        has ``admission_free_bytes`` of free device memory — routing it
        anywhere could only trigger evictions the replicas are already
        working off.  Replicas without a memory model report infinite free
        bytes, so the check is inert unless the replica spec carries a
        MemorySpec.  Returns True when the request was rejected."""
        threshold = self.memory.admission_free_bytes
        if threshold is None:
            return False
        if max(r.free_memory() for r in candidates) >= threshold:
            return False
        request.mark_rejected(now, reason="memory_reject")
        self.cluster_counters.memory_rejections += 1
        self._rejected.append(request)
        if self._trace is not None:
            self._trace.instant(
                trace_events.REQUEST_REJECTED,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
                args={"reason": "memory_reject"},
            )
        return True

    # -- reconciliation ------------------------------------------------------

    def _reconcile(self) -> None:
        for replica in self.replicas:
            self._reconcile_replica(replica)
            self._maybe_retire(replica)

    def _reconcile_replica(self, replica: Replica) -> None:
        """Fold the replica's newly terminal shadows onto their logical
        requests.  Shadows without a live mapping (re-routed away on
        replica loss, or cancelled during the loss teardown) are skipped."""
        server = replica.server
        buckets = (
            (server.finished, self._logical_finished),
            (server.timed_out, self._logical_timed_out),
            (server.rejected, self._logical_rejected),
        )
        for index, (bucket, finalize) in enumerate(buckets):
            cursor = replica.cursors[index]
            while cursor < len(bucket):
                shadow = bucket[cursor]
                cursor += 1
                logical = replica.shadow_of.pop(shadow.request_id, None)
                if logical is not None:
                    finalize(logical, shadow, replica)
            replica.cursors[index] = cursor

    @staticmethod
    def _copy_progress(logical: InferenceRequest, shadow: InferenceRequest) -> None:
        if shadow.start_time is not None:
            logical.mark_started(shadow.start_time)
        logical.retries += shadow.retries

    def _logical_finished(self, logical, shadow, replica) -> None:
        self._copy_progress(logical, shadow)
        logical.result = shadow.result
        logical.mark_finished(shadow.finish_time)
        self._finished.append(logical)
        replica.observe_latency(
            shadow.finish_time - shadow.arrival_time,
            finish_time=shadow.finish_time,
        )
        if self.predictor is not None:  # the admission predictor
            self.predictor.observe_request(
                shadow.finish_time - shadow.arrival_time,
                shadow.queuing_time,
                shadow.computation_time,
            )

    def _logical_timed_out(self, logical, shadow, replica) -> None:
        self._copy_progress(logical, shadow)
        logical.mark_timed_out(shadow.terminal_time, reason=shadow.cancel_reason)
        self._timed_out.append(logical)

    def _logical_rejected(self, logical, shadow, replica) -> None:
        logical.mark_rejected(shadow.terminal_time, reason=shadow.cancel_reason)
        self._rejected.append(logical)

    # -- replica loss --------------------------------------------------------

    def _replica_failed(self, replica_id: int) -> None:
        """A replica drops out of the cluster fault plan's sky: drain its
        observed outcomes, tear its engine down, re-route its live work."""
        replica = next(
            (r for r in self.replicas if r.replica_id == replica_id), None
        )
        if replica is None or replica.state in (DEAD, RETIRED):
            return
        now = self.loop.now()
        # 1. Outcomes that happened strictly before the loss are real —
        #    reconcile them first so they are not mistaken for casualties.
        self._reconcile_replica(replica)
        replica.state = DEAD
        self.cluster_counters.replicas_lost += 1
        self.scale_events.append((now, "lost", replica.replica_id))
        if self._trace is not None:
            self._trace.instant(
                trace_events.REPLICA_LOST,
                trace_events.CLUSTER,
                args={"replica": replica.replica_id},
            )
        # 2. Claim the still-live logical requests (deterministic shadow-id
        #    order) *before* the teardown pushes their shadows into the
        #    replica's timed_out list — reconciliation then skips those
        #    unmapped shadows, and any late completions from a zombie
        #    engine (baselines have no teardown hook) are ignored too.
        orphans = replica.orphan_logicals()
        manager = getattr(replica.server, "manager", None)
        if manager is not None:
            # BatchMaker: the faults layer's total-device-loss path cancels
            # in-flight work and leaves no replica events on the shared loop.
            manager.fail_all_devices()
        # 3. Re-route through the cluster's own routing policy; reject only
        #    on total loss.
        for logical in orphans:
            if logical.terminal:
                continue
            candidates = self._candidates()
            if candidates:
                target = self.router.choose(logical, candidates)
                shadow = target.route(logical, now)
                self.cluster_counters.requests_rerouted += 1
                if self._trace is not None:
                    self._trace.instant(
                        trace_events.CLUSTER_REROUTE,
                        trace_events.CLUSTER,
                        request_id=logical.request_id,
                        args={
                            "logical": logical.request_id,
                            "replica": target.replica_id,
                            "shadow": shadow.request_id,
                            "from": replica.replica_id,
                        },
                    )
            else:
                logical.mark_rejected(now, reason="no_replicas")
                self.cluster_counters.requests_lost += 1
                self._rejected.append(logical)
                if self._trace is not None:
                    self._trace.instant(
                        trace_events.REQUEST_REJECTED,
                        trace_events.LIFECYCLE,
                        request_id=logical.request_id,
                        args={"reason": "no_replicas"},
                    )

    # -- reporting -----------------------------------------------------------

    def fault_counters(self):
        """Engine-level fault counters aggregated across all replicas."""
        return aggregate_fault_counters(self.replicas)

    def stats(self) -> ClusterStats:
        return ClusterStats(self)

    def energy_joules(self) -> float:
        """Integrated joules summed over every replica's engine — active
        kernel energy plus idle power over sim time (0.0 when no replica
        carries an energy model, so loadgen extras stay absent)."""
        return sum(replica.energy_joules() for replica in self.replicas)

    def tasks_submitted(self) -> int:
        return sum(
            replica.server.tasks_submitted()
            for replica in self.replicas
            if hasattr(replica.server, "tasks_submitted")
        )

    def mean_batch_size(self) -> float:
        sizes = [
            replica.server.mean_batch_size()
            for replica in self.replicas
            if hasattr(replica.server, "mean_batch_size") and replica.routed
        ]
        if not sizes:
            return 0.0
        return sum(sizes) / len(sizes)

    def __repr__(self) -> str:
        states = ", ".join(
            f"r{r.replica_id}:{r.state}" for r in self.replicas
        )
        return f"<ClusterServer {self.name!r} [{states}]>"


def build_cluster(
    spec: ClusterSpec,
    loop: Optional[EventLoop] = None,
    replica_failures: Sequence = (),
    **replica_runtime: Any,
) -> ClusterServer:
    """Construct the cluster a :class:`ClusterSpec` describes (the cluster
    analogue of :func:`repro.registry.build_server`)."""
    return ClusterServer(
        spec, loop=loop, replica_failures=replica_failures, **replica_runtime
    )

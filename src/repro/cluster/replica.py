"""One replica of the serving cluster.

A :class:`Replica` wraps a server built from the cluster spec's replica
template and tracks the *shadow* requests the cluster routed to it.  The
cluster's logical requests never enter a replica engine directly — each
routing decision materialises a fresh shadow :class:`InferenceRequest`
(replica-local id, same payload, same absolute deadline) and hands it to
the replica server's ``_accept`` at the logical arrival time.  That
indirection is what makes replica loss recoverable: when a replica dies,
the shadows die with it and the cluster re-routes the still-live logical
requests as *new* shadows on survivors, while each logical request still
reaches exactly one terminal state.

With a single replica the shadow stream is, event for event, the stream a
bare ``build_server()`` run would see (same ids, same arrival times, same
event-loop sequence numbers), which is why a 1-replica cluster is
bit-identical to the standalone server (``tests/test_cluster_identity``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.request import InferenceRequest
from repro.server import InferenceServer

# Replica lifecycle.  WARMING: built, paying the autoscaler's warm-up cost,
# not yet routable.  ALIVE: routable.  DRAINING: autoscaler is retiring it —
# no new work, serving out its outstanding shadows.  RETIRED: drained empty.
# DEAD: lost to a replica failure.
WARMING = "warming"
ALIVE = "alive"
DRAINING = "draining"
RETIRED = "retired"
DEAD = "dead"


class Replica:
    """A cluster member: one server plus the routing-side bookkeeping."""

    def __init__(
        self,
        replica_id: int,
        server: InferenceServer,
        state: str = ALIVE,
        created_at: float = 0.0,
    ):
        self.replica_id = replica_id
        self.server = server
        # Routing index subscription (repro.cluster.load_index); must exist
        # before the first ``state`` assignment — the setter notifies it.
        self._index = None
        self.state = state
        self.created_at = created_at
        self.activated_at: Optional[float] = created_at if state == ALIVE else None
        # Shadows routed here whose logical request is still this replica's
        # responsibility; reconciliation pops an entry when its shadow turns
        # terminal, replica loss pops them all (re-route), after which any
        # late completions from this replica are ignored.
        self.shadow_of: Dict[int, InferenceRequest] = {}
        self.routed = 0
        self._next_shadow_id = 0
        # Reconciliation cursors into the server's finished / timed_out /
        # rejected lists (list order is deterministic, so lazy reconcile is
        # deterministic too).
        self.cursors = [0, 0, 0]
        # EWMA of observed shadow latency; the shortest-queue router's
        # projected-delay fallback for engines without a manager.
        self.ewma_latency = 0.0
        # Optional per-replica LatencyPredictor behind the predicted_delay
        # routing metric; per-replica (not cluster-shared) so a completion
        # dirties one replica's index key, not all of them.  The previous
        # completion instant turns finish times into inter-completion gaps.
        self.predictor = None
        self._last_finish: Optional[float] = None
        # Heterogeneous-fleet identity (repro.registry ClusterSpec
        # ``device_classes``): the class name, its rank in declaration
        # order (0 = first declared; class-affinity routing maps length
        # buckets onto ranks) and the uniform cost-model slowdown applied
        # at build time.  Defaults describe a homogeneous cluster.
        self.device_class: Optional[str] = None
        self.class_rank = 0
        self.latency_scale = 1.0

    # -- routing interface ----------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @state.setter
    def state(self, value: str) -> None:
        """Lifecycle transitions flow through here so the routing index
        sees every entry to / exit from the routable pool (DESIGN.md §13)."""
        self._state = value
        if self._index is not None:
            self._index.on_state(self)

    def attach_index(self, index) -> None:
        """Subscribe ``index`` to this replica's load deltas.

        Two delta sources feed it: the server's ``load_listener`` fires on
        every terminal-list append (the outstanding-count events), and — for
        BatchMaker engines — the manager's ``on_load_changed`` fires on every
        event that moves the projected queueing delay (batch kicked, task
        completed/failed/retried, device lost).  ``route``/``observe_latency``
        push their deltas directly.  Idempotent; one index per replica.
        """
        self._index = index
        self.server.load_listener = lambda: index.touch(self)
        manager = getattr(self.server, "manager", None)
        if manager is not None:
            manager.on_load_changed = lambda: index.touch_projected(self)

    @property
    def routable(self) -> bool:
        return self.state == ALIVE

    @property
    def serving(self) -> bool:
        return self.state in (ALIVE, DRAINING)

    def outstanding(self) -> int:
        """Shadows routed here that are not yet terminal (O(1): every shadow
        ends up in exactly one of the server's terminal lists)."""
        server = self.server
        return self.routed - (
            len(server.finished) + len(server.timed_out) + len(server.rejected)
        )

    def projected_delay(self) -> float:
        """Seconds a new request would plausibly wait on this replica.

        BatchMaker replicas expose the manager's projected queueing delay
        (min device backlog + EWMA drain time of queued ready nodes); other
        engines fall back to outstanding-requests x EWMA request latency.
        """
        manager = getattr(self.server, "manager", None)
        if manager is not None:
            if not any(w.alive for w in manager.workers):
                return float("inf")
            return manager.projected_queue_delay()
        return self.ewma_latency * self.outstanding()

    def free_memory(self) -> float:
        """Free device-memory bytes summed over the engine's alive workers.

        Infinite for engines without a memory model (no ``MemorySpec`` —
        the ``free_memory`` routing metric and memory admission are then
        inert: every replica ties at infinity), zero for a memory-modelled
        engine with no alive device.
        """
        manager = getattr(self.server, "manager", None)
        if manager is None or getattr(manager, "memory_spec", None) is None:
            return float("inf")
        total = 0
        for worker in manager.workers:
            if not worker.alive:
                continue
            memory = worker.device.memory
            if memory is None:
                return float("inf")
            total += memory.free()
        return float(total)

    def energy_cost(self) -> float:
        """Estimated marginal joules to serve one cell on this replica:
        the cheapest alive device's dynamic power times the engine's EWMA
        per-node service time (power x time = energy).  Zero for engines
        without an energy model (no ``EnergySpec`` — every replica ties at
        0.0 and the ``cheapest_energy`` metric is inert, exactly like the
        free-memory metric without a MemorySpec); infinite for an
        energy-modelled engine with no alive device.  Event-driven: both
        factors move only on task completion or a batch-boundary DVFS
        change, and both paths fire ``on_load_changed``."""
        manager = getattr(self.server, "manager", None)
        if manager is None or getattr(manager, "energy_spec", None) is None:
            return 0.0
        watts = [
            worker.device.energy.dynamic_watts
            for worker in manager.workers
            if worker.alive and worker.device.energy is not None
        ]
        if not watts:
            return float("inf")
        return min(watts) * manager._node_time_estimate

    def energy_joules(self) -> float:
        """Integrated joules on this replica's engine (0.0 without an
        energy model)."""
        joules = getattr(self.server, "energy_joules", None)
        return joules() if joules is not None else 0.0

    def predicted_delay(self) -> float:
        """Predicted seconds until a request newly routed here completes:
        the outstanding shadow count times the per-replica predictor's EWMA
        inter-completion gap (Little's law — the ``predicted_delay``
        routing metric and the admission estimate), falling back to
        :meth:`projected_delay` until the predictor has seen a completion."""
        predictor = self.predictor
        if predictor is not None and predictor.ready:
            return predictor.predicted_queue_delay(self.outstanding())
        return self.projected_delay()

    def observe_latency(self, latency: float, finish_time: Optional[float] = None) -> None:
        if self.ewma_latency == 0.0:
            self.ewma_latency = latency
        else:
            self.ewma_latency += 0.2 * (latency - self.ewma_latency)
        if self.predictor is not None:
            self.predictor.observe_request(latency)
            if finish_time is not None:
                if self._last_finish is not None:
                    self.predictor.observe_gap(finish_time - self._last_finish)
                self._last_finish = finish_time
        if self._index is not None:  # the EWMA feeds the projected-delay key
            self._index.touch_projected(self)

    # -- shadow lifecycle ------------------------------------------------------

    def route(self, logical: InferenceRequest, now: float) -> InferenceRequest:
        """Materialise a shadow for ``logical`` and start serving it."""
        shadow = InferenceRequest(self._next_shadow_id, logical.payload, now)
        self._next_shadow_id += 1
        shadow.deadline = logical.deadline  # absolute; shared virtual clock
        self.shadow_of[shadow.request_id] = logical
        self.routed += 1
        self.server._accept(shadow)
        if self._index is not None:  # routed moved both load metrics
            self._index.touch(self)
        return shadow

    def orphan_logicals(self):
        """Pop and return every still-owned logical request in shadow-id
        (= routing) order — the deterministic re-route order on replica
        loss."""
        orphans = [self.shadow_of[sid] for sid in sorted(self.shadow_of)]
        self.shadow_of.clear()
        return orphans

    def __repr__(self) -> str:
        return (
            f"<Replica {self.replica_id} {self.state} "
            f"routed={self.routed} outstanding={self.outstanding()}>"
        )

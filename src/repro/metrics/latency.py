"""Latency statistics.

The paper reports 50/90/99-percentile latency (Figure 7's error bars are
the 50p and 99p around the 90p line) and full CDFs of queuing and
computation time (Figure 9).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.sim.timebase import seconds_to_ms


def percentile(values: Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100), linear interpolation."""
    if len(values) == 0:
        raise ValueError("no values")
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    return float(np.percentile(np.asarray(values, dtype=np.float64), p))


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as [(value, cumulative fraction)] sorted by value."""
    if len(values) == 0:
        raise ValueError("no values")
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    fractions = np.arange(1, len(ordered) + 1) / len(ordered)
    return list(zip(ordered.tolist(), fractions.tolist()))


class LatencyStats:
    """Accumulates per-request latency decompositions."""

    def __init__(self):
        self.latencies: List[float] = []
        self.queuing: List[float] = []
        self.computation: List[float] = []

    def add_request(self, request) -> None:
        """Record a finished :class:`~repro.core.request.InferenceRequest`."""
        if request.latency is None:
            raise ValueError(f"request {request.request_id} has not finished")
        self.latencies.append(request.latency)
        self.queuing.append(request.queuing_time)
        self.computation.append(request.computation_time)

    def extend(self, requests: Iterable) -> "LatencyStats":
        for request in requests:
            self.add_request(request)
        return self

    def count(self) -> int:
        return len(self.latencies)

    def p(self, p: float, series: str = "latency") -> float:
        return percentile(self._series(series), p)

    def p_ms(self, p: float, series: str = "latency") -> float:
        """The ``p``-th percentile in milliseconds (the reporting unit),
        converted through the shared :mod:`repro.sim.timebase` helpers so
        every layer agrees on the seconds->ms rule."""
        return seconds_to_ms(self.p(p, series))

    def mean(self, series: str = "latency") -> float:
        values = self._series(series)
        if not values:
            raise ValueError("no values")
        return float(np.mean(values))

    def cdf(self, series: str = "latency") -> List[Tuple[float, float]]:
        return cdf_points(self._series(series))

    def _series(self, series: str) -> List[float]:
        try:
            return {
                "latency": self.latencies,
                "queuing": self.queuing,
                "computation": self.computation,
            }[series]
        except KeyError:
            raise ValueError(
                f"unknown series {series!r}; expected latency/queuing/computation"
            ) from None

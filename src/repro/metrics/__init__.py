"""Measurement: latency percentiles, CDFs, throughput-latency sweeps."""

from repro.metrics.latency import LatencyStats, cdf_points, percentile
from repro.metrics.summary import RunSummary, SweepPoint, format_table
from repro.metrics.timeline import TaskRecord, TaskTrace

__all__ = [
    "LatencyStats",
    "percentile",
    "cdf_points",
    "RunSummary",
    "SweepPoint",
    "format_table",
    "TaskRecord",
    "TaskTrace",
]

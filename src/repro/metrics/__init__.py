"""Measurement: latency percentiles, CDFs, sweeps, fault/SLA counters."""

from repro.metrics.counters import FaultCounters
from repro.metrics.latency import LatencyStats, cdf_points, percentile
from repro.metrics.summary import RunSummary, SweepPoint, format_table
from repro.metrics.timeline import TaskRecord, TaskTrace

__all__ = [
    "FaultCounters",
    "LatencyStats",
    "percentile",
    "cdf_points",
    "RunSummary",
    "SweepPoint",
    "format_table",
    "TaskRecord",
    "TaskTrace",
]

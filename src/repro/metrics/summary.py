"""Run summaries and text tables for the experiment harness."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.metrics.latency import LatencyStats


class RunSummary:
    """Summary of one load point: offered load, achieved throughput and the
    latency percentiles the paper plots."""

    def __init__(
        self,
        system: str,
        offered_rate: float,
        throughput: float,
        stats: LatencyStats,
        extras: Optional[Dict[str, float]] = None,
    ):
        self.system = system
        self.offered_rate = offered_rate
        self.throughput = throughput
        self.stats = stats
        self.extras = dict(extras or {})

    @property
    def p50_ms(self) -> float:
        return self.stats.p_ms(50)

    @property
    def p90_ms(self) -> float:
        return self.stats.p_ms(90)

    @property
    def p99_ms(self) -> float:
        return self.stats.p_ms(99)

    def row(self) -> List[str]:
        return [
            self.system,
            f"{self.offered_rate:.0f}",
            f"{self.throughput:.0f}",
            f"{self.p50_ms:.2f}",
            f"{self.p90_ms:.2f}",
            f"{self.p99_ms:.2f}",
        ]

    def __repr__(self) -> str:
        return (
            f"<RunSummary {self.system} rate={self.offered_rate:.0f} "
            f"thr={self.throughput:.0f} p90={self.p90_ms:.2f}ms>"
        )


class SweepPoint:
    """One (throughput, latency) point in a Figure-7-style curve."""

    def __init__(self, throughput: float, p50_ms: float, p90_ms: float, p99_ms: float):
        self.throughput = throughput
        self.p50_ms = p50_ms
        self.p90_ms = p90_ms
        self.p99_ms = p99_ms

    @classmethod
    def from_summary(cls, summary: RunSummary) -> "SweepPoint":
        return cls(summary.throughput, summary.p50_ms, summary.p90_ms, summary.p99_ms)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Simple aligned text table (the harness prints these to stdout)."""
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [
        "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)

"""Task-level execution traces and an ASCII Gantt renderer.

Attach a :class:`TaskTrace` to a BatchMaker server to record every batched
task (cell type, batch size, worker, submit/finish times), then render the
per-worker timeline — the tooling behind Figure-5-style visualisations and
general scheduling debugging.

Since the :mod:`repro.trace` subsystem landed, this module is a *view* over
its recorder rather than a second instrumentation layer: ``attach`` ensures
the server records into a :class:`~repro.trace.recorder.TraceRecorder` and
materialises :class:`TaskRecord` rows from the recorder's task spans on
demand.  One source of truth; the public API (``records`` / ``by_worker`` /
``batch_size_histogram`` / ``span`` / ``render_gantt``) is unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

# Submodule imports (not the package) so repro.metrics and repro.trace can
# import each other's leaves without a cycle.
from repro.trace.events import COMPUTE, TASK
from repro.trace.recorder import TraceRecorder


class TaskRecord:
    """One executed batched task."""

    __slots__ = ("task_id", "cell_type", "batch_size", "worker_id", "start", "end")

    def __init__(self, task_id, cell_type, batch_size, worker_id, start, end):
        self.task_id = task_id
        self.cell_type = cell_type
        self.batch_size = batch_size
        self.worker_id = worker_id
        self.start = start
        self.end = end

    def __repr__(self) -> str:
        return (
            f"<TaskRecord {self.task_id} {self.cell_type}x{self.batch_size} "
            f"w{self.worker_id} [{self.start:.6f},{self.end:.6f}]>"
        )


class TaskTrace:
    """Records every task a BatchMaker server executes.

    Usage::

        server = BatchMakerServer(model)
        trace = TaskTrace.attach(server)
        ... submit and drain ...
        print(trace.render_gantt())
    """

    def __init__(self):
        self._records: List[TaskRecord] = []
        self._recorder: Optional[TraceRecorder] = None
        self._cursor = 0

    @classmethod
    def attach(cls, server) -> "TaskTrace":
        """View the server's trace recorder as task records (attaching a
        fresh recorder if the server is not being traced yet)."""
        trace = cls()
        recorder = server.trace_recorder
        if recorder is None:
            recorder = TraceRecorder(server.loop)
            server.attach_trace(recorder)
        trace._recorder = recorder
        trace._cursor = len(recorder)
        return trace

    @property
    def records(self) -> List[TaskRecord]:
        self._sync()
        return self._records

    def _sync(self) -> None:
        """Fold the recorder's new task spans into the record list.

        Only successful executions (category ``compute``) become records —
        the same set the pre-trace hook captured from the completion path;
        failed attempts live in the trace's retry spans instead.
        """
        if self._recorder is None:
            return
        events = list(self._recorder)
        for event in events[self._cursor:]:
            if event.name == TASK and event.cat == COMPUTE:
                self._records.append(
                    TaskRecord(
                        event.task_id,
                        event.args["cell"],
                        event.args["batch"],
                        event.device_id,
                        event.ts,
                        event.end,
                    )
                )
        self._cursor = len(events)

    # -- analysis -----------------------------------------------------------

    def by_worker(self) -> Dict[int, List[TaskRecord]]:
        grouped: Dict[int, List[TaskRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.worker_id, []).append(record)
        for records in grouped.values():
            records.sort(key=lambda r: r.start)
        return grouped

    def batch_size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for record in self.records:
            histogram[record.batch_size] = histogram.get(record.batch_size, 0) + 1
        return histogram

    def span(self) -> Tuple[float, float]:
        if not self.records:
            raise ValueError("empty trace")
        return (
            min(r.start for r in self.records),
            max(r.end for r in self.records),
        )

    # -- rendering ------------------------------------------------------------

    def render_gantt(self, width: int = 80, legend: bool = True) -> str:
        """ASCII Gantt chart: one row per worker, one letter per cell type,
        batch size shown where it fits."""
        if not self.records:
            return "(empty trace)"
        start, end = self.span()
        scale = width / max(end - start, 1e-12)
        letters: Dict[str, str] = {}
        for record in self.records:
            if record.cell_type not in letters:
                letters[record.cell_type] = chr(ord("A") + len(letters) % 26)
        lines = []
        for worker_id, records in sorted(self.by_worker().items()):
            row = [" "] * width
            for record in records:
                lo = int((record.start - start) * scale)
                hi = max(lo + 1, int((record.end - start) * scale))
                label = letters[record.cell_type]
                for i in range(lo, min(hi, width)):
                    row[i] = label
                size_text = str(record.batch_size)
                if hi - lo >= len(size_text) + 2 and lo + 1 + len(size_text) < width:
                    for j, ch in enumerate(size_text):
                        row[lo + 1 + j] = ch
            lines.append(f"gpu{worker_id} |{''.join(row)}|")
        if legend:
            pairs = ", ".join(f"{v}={k}" for k, v in letters.items())
            lines.append(f"      {pairs}; span [{start:.4f}s, {end:.4f}s]")
        return "\n".join(lines)

"""Task-level execution traces and an ASCII Gantt renderer.

Attach a :class:`TaskTrace` to a BatchMaker server to record every batched
task (cell type, batch size, worker, submit/finish times), then render the
per-worker timeline — the tooling behind Figure-5-style visualisations and
general scheduling debugging.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class TaskRecord:
    """One executed batched task."""

    __slots__ = ("task_id", "cell_type", "batch_size", "worker_id", "start", "end")

    def __init__(self, task_id, cell_type, batch_size, worker_id, start, end):
        self.task_id = task_id
        self.cell_type = cell_type
        self.batch_size = batch_size
        self.worker_id = worker_id
        self.start = start
        self.end = end

    def __repr__(self) -> str:
        return (
            f"<TaskRecord {self.task_id} {self.cell_type}x{self.batch_size} "
            f"w{self.worker_id} [{self.start:.6f},{self.end:.6f}]>"
        )


class TaskTrace:
    """Records every task a BatchMaker server executes.

    Usage::

        server = BatchMakerServer(model)
        trace = TaskTrace.attach(server)
        ... submit and drain ...
        print(trace.render_gantt())
    """

    def __init__(self):
        self.records: List[TaskRecord] = []

    @classmethod
    def attach(cls, server) -> "TaskTrace":
        """Wrap the manager's completion hook to capture retired tasks."""
        trace = cls()
        manager = server.manager
        original = manager._task_complete

        def recording(worker, task):
            trace.records.append(
                TaskRecord(
                    task.task_id,
                    task.cell_type.name,
                    task.batch_size,
                    worker.worker_id,
                    task.finish_time - (task.duration or 0.0),
                    task.finish_time,
                )
            )
            original(worker, task)

        manager._task_complete = recording
        for worker in manager.workers:
            worker._on_task_complete = recording
        return trace

    # -- analysis -----------------------------------------------------------

    def by_worker(self) -> Dict[int, List[TaskRecord]]:
        grouped: Dict[int, List[TaskRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.worker_id, []).append(record)
        for records in grouped.values():
            records.sort(key=lambda r: r.start)
        return grouped

    def batch_size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for record in self.records:
            histogram[record.batch_size] = histogram.get(record.batch_size, 0) + 1
        return histogram

    def span(self) -> Tuple[float, float]:
        if not self.records:
            raise ValueError("empty trace")
        return (
            min(r.start for r in self.records),
            max(r.end for r in self.records),
        )

    # -- rendering ------------------------------------------------------------

    def render_gantt(self, width: int = 80, legend: bool = True) -> str:
        """ASCII Gantt chart: one row per worker, one letter per cell type,
        batch size shown where it fits."""
        if not self.records:
            return "(empty trace)"
        start, end = self.span()
        scale = width / max(end - start, 1e-12)
        letters: Dict[str, str] = {}
        for record in self.records:
            if record.cell_type not in letters:
                letters[record.cell_type] = chr(ord("A") + len(letters) % 26)
        lines = []
        for worker_id, records in sorted(self.by_worker().items()):
            row = [" "] * width
            for record in records:
                lo = int((record.start - start) * scale)
                hi = max(lo + 1, int((record.end - start) * scale))
                label = letters[record.cell_type]
                for i in range(lo, min(hi, width)):
                    row[i] = label
                size_text = str(record.batch_size)
                if hi - lo >= len(size_text) + 2 and lo + 1 + len(size_text) < width:
                    for j, ch in enumerate(size_text):
                        row[lo + 1 + j] = ch
            lines.append(f"gpu{worker_id} |{''.join(row)}|")
        if legend:
            pairs = ", ".join(f"{v}={k}" for k, v in letters.items())
            lines.append(f"      {pairs}; span [{start:.4f}s, {end:.4f}s]")
        return "\n".join(lines)

"""Fault, retry and SLA counters.

One :class:`FaultCounters` instance per manager tallies what the failure
machinery actually did, so the chaos tests can reconcile engine-side
counts against per-request terminal outcomes and the stats report can
surface them next to throughput and latency.
"""

from __future__ import annotations

from typing import Dict


class FaultCounters:
    """Monotonic tallies of injected faults and SLA reactions."""

    FIELDS = (
        "kernel_failures_injected",   # draws that came up "fail"
        "stragglers_injected",        # draws that came up "slow"
        "device_failures",            # devices dropped by the plan
        "tasks_failed",               # task executions that did not retire OK
        "retries_attempted",          # task re-submissions scheduled
        "requests_timed_out",         # terminal: deadline or retries exhausted
        "requests_rejected",          # terminal: shed at admission
        "requests_completed",         # terminal: finished normally
        "memory_evictions",           # evict-and-restart preemptions
        "oom_cancellations",          # terminal: a reservation overcommitted
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def any_faults(self) -> bool:
        """True when anything beyond normal completions was recorded."""
        return any(
            getattr(self, field)
            for field in self.FIELDS
            if field != "requests_completed"
        )

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{field}={getattr(self, field)}"
            for field in self.FIELDS
            if getattr(self, field)
        )
        return f"<FaultCounters {parts or 'clean'}>"

"""Workers: one per GPU device.

A worker receives batched tasks from the scheduler, launches their kernels
asynchronously on its device's FIFO stream (so dependent tasks submitted in
order need no synchronisation, §5), and reports completions back to the
manager through the signal-kernel callback — the simulation analogue of the
pinned-host signal variable the polling thread watches.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.task import BatchedTask
from repro.gpu.costmodel import CostModel
from repro.gpu.device import GPUDevice
from repro.sim.events import EventLoop


class Worker:
    """Executes batched tasks on one (simulated) GPU."""

    def __init__(
        self,
        worker_id: int,
        device: GPUDevice,
        cost_model: CostModel,
        loop: EventLoop,
        on_task_complete: Callable[["Worker", BatchedTask], None],
        real_compute: bool = False,
    ):
        self.worker_id = worker_id
        self.device = device
        self.cost_model = cost_model
        self.loop = loop
        self._on_task_complete = on_task_complete
        self.real_compute = real_compute
        self.outstanding = 0
        self.tasks_executed = 0
        self.busy_time = 0.0
        self.gathers_performed = 0
        # Batch composition (subgraph-id set) of the most recently submitted
        # task: an identical composition needs no gather copy (§4.3).
        self._last_composition = None

    def submit(self, task: BatchedTask, extra_cost: float = 0.0) -> None:
        """Accept a task: run the (NumPy) computation in stream order and
        reserve the modelled device time.

        In real-compute mode the gather/compute/scatter happens here, at
        submission: tasks are submitted in dependency order (FIFO stream on
        a pinned worker; cross-subgraph release only after completion), so
        every input row is already materialised.
        """
        if task.worker_id is not None:
            raise RuntimeError(f"task {task.task_id} submitted twice")
        task.worker_id = self.worker_id
        task.submit_time = self.loop.now()
        if self.real_compute:
            task.execute()
        else:
            task.mark_launched_sim()
        composition = frozenset(
            subgraph.subgraph_id for subgraph in task.subgraphs()
        )
        needs_gather = composition != self._last_composition
        self._last_composition = composition
        if needs_gather:
            self.gathers_performed += 1
        duration = self.cost_model.task_time(
            task.cell_type.name,
            task.batch_size,
            num_operators=task.cell_type.num_operators(),
            include_gather=needs_gather,
        ) + extra_cost
        task.duration = duration
        self.outstanding += 1
        self.device.run_for(
            duration,
            on_complete=lambda: self._complete(task),
            tag=(task.cell_type.name, task.batch_size),
        )

    def _complete(self, task: BatchedTask) -> None:
        task.finish_time = self.loop.now()
        self.outstanding -= 1
        self.tasks_executed += 1
        self.busy_time += task.duration or 0.0
        self._on_task_complete(self, task)

    def is_idle(self) -> bool:
        """No submitted-but-unretired tasks; the scheduler refills on idle."""
        return self.outstanding == 0

    def __repr__(self) -> str:
        return f"<Worker {self.worker_id} outstanding={self.outstanding}>"

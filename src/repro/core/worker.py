"""Workers: one per GPU device.

A worker receives batched tasks from the scheduler, launches their kernels
asynchronously on its device's FIFO stream (so dependent tasks submitted in
order need no synchronisation, §5), and reports completions back to the
manager through the signal-kernel callback — the simulation analogue of the
pinned-host signal variable the polling thread watches.

Failure semantics (DESIGN.md §8): a task execution can carry an injected
:class:`~repro.faults.plan.TaskFault`.  A *straggler* fault stretches the
kernel time; a *kernel failure* consumes the device time but delivers a
failure signal instead of a completion, which the manager turns into a
retry or a cancellation.  A dead device (:meth:`fail_device`) cancels every
in-flight completion and fails the corresponding tasks immediately.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.task import BatchedTask
from repro.faults.plan import KERNEL_FAIL, STRAGGLER, TaskFault
from repro.gpu.costmodel import CostModel
from repro.gpu.device import GPUDevice
from repro.sim.events import EventLoop


class Worker:
    """Executes batched tasks on one (simulated) GPU."""

    def __init__(
        self,
        worker_id: int,
        device: GPUDevice,
        cost_model: CostModel,
        loop: EventLoop,
        on_task_complete: Callable[["Worker", BatchedTask], None],
        real_compute: bool = False,
        on_task_failed: Optional[
            Callable[["Worker", BatchedTask, str], None]
        ] = None,
    ):
        self.worker_id = worker_id
        self.device = device
        self.cost_model = cost_model
        self.loop = loop
        self._on_task_complete = on_task_complete
        self._on_task_failed = on_task_failed
        self.real_compute = real_compute
        self.alive = True
        self.outstanding = 0
        self.tasks_executed = 0
        self.tasks_failed = 0
        self.busy_time = 0.0
        self.gathers_performed = 0
        # Submission-ordered in-flight tasks, so device loss can fail them
        # in the same deterministic order their completions would have fired.
        self._inflight: "Dict[int, BatchedTask]" = {}
        # Batch composition (subgraph-id set) of the most recently submitted
        # task: an identical composition needs no gather copy (§4.3).
        self._last_composition = None

    def submit(
        self,
        task: BatchedTask,
        extra_cost: float = 0.0,
        fault: Optional[TaskFault] = None,
    ) -> None:
        """Accept a task: run the (NumPy) computation in stream order and
        reserve the modelled device time.

        In real-compute mode the gather/compute/scatter happens here, at
        submission: tasks are submitted in dependency order (FIFO stream on
        a pinned worker; cross-subgraph release only after completion), so
        every input row is already materialised.
        """
        if task.worker_id is not None:
            raise RuntimeError(f"task {task.task_id} submitted twice")
        if not self.alive:
            raise RuntimeError(
                f"task {task.task_id} submitted to dead worker {self.worker_id}"
            )
        task.worker_id = self.worker_id
        task.submit_time = self.loop.now()
        will_fail = fault is not None and fault.kind == KERNEL_FAIL
        if self.real_compute and not will_fail:
            task.execute()
        else:
            task.mark_launched_sim()
        composition = frozenset(
            subgraph.subgraph_id for subgraph in task.subgraphs()
        )
        needs_gather = composition != self._last_composition
        self._last_composition = composition
        if needs_gather:
            self.gathers_performed += 1
        task.gather_time = self.cost_model.gather_overhead if needs_gather else 0.0
        task.migration_time = extra_cost
        duration = self.cost_model.task_time(
            task.cell_type.name,
            task.batch_size,
            num_operators=task.cell_type.num_operators(),
            include_gather=needs_gather,
        ) + extra_cost
        if fault is not None and fault.kind == STRAGGLER:
            duration *= fault.slowdown
        task.duration = duration
        if self.device.energy is not None:
            # Charge the batched kernel at the frequency in effect now;
            # stragglers and gather/migration copies burn power too, so the
            # final wall duration is the right integrand.  Joules split
            # evenly across the task's distinct member requests.
            task.energy_joules = self.device.energy.charge_task(
                duration,
                [sg.request.request_id for sg in task.subgraphs()],
            )
        self.outstanding += 1
        self._inflight[task.task_id] = task
        on_retire = (
            (lambda: self._fail(task, "kernel_fault"))
            if will_fail
            else (lambda: self._complete(task))
        )
        self.device.run_for(
            duration,
            on_complete=on_retire,
            tag=(task.cell_type.name, task.batch_size),
        )

    def _complete(self, task: BatchedTask) -> None:
        task.finish_time = self.loop.now()
        self._inflight.pop(task.task_id, None)
        self.outstanding -= 1
        self.tasks_executed += 1
        self.busy_time += task.duration or 0.0
        self._on_task_complete(self, task)

    def _fail(self, task: BatchedTask, reason: str) -> None:
        """A task execution did not retire cleanly (kernel fault at its
        retire time, or the device died under it)."""
        self._inflight.pop(task.task_id, None)
        self.outstanding -= 1
        self.tasks_failed += 1
        if reason != "device_lost":
            # A kernel fault is detected at retire time: the device time was
            # consumed.  A lost device never retires the kernel; its
            # timeline is truncated at the death instant instead.
            self.busy_time += task.duration or 0.0
        if self._on_task_failed is None:
            raise RuntimeError(
                f"task {task.task_id} failed ({reason}) but worker "
                f"{self.worker_id} has no failure handler"
            )
        self._on_task_failed(self, task, reason)

    def fail_device(self) -> List[BatchedTask]:
        """The device died: cancel pending completions and fail every
        in-flight task, in submission order.  Returns the failed tasks."""
        if not self.alive:
            return []
        self.alive = False
        self.device.fail()
        doomed = list(self._inflight.values())
        for task in doomed:
            self._fail(task, "device_lost")
        self._inflight.clear()
        return doomed

    def is_idle(self) -> bool:
        """No submitted-but-unretired tasks; the scheduler refills on idle."""
        return self.outstanding == 0

    def __repr__(self) -> str:
        state = "" if self.alive else " DEAD"
        return f"<Worker {self.worker_id} outstanding={self.outstanding}{state}>"

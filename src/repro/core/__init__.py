"""Cellular batching — the paper's core contribution.

The pipeline mirrors Figure 6 of the paper:

* a :class:`~repro.core.request.InferenceRequest` arrives and the
  **request processor** unfolds it into a :class:`~repro.core.cell_graph.CellGraph`
  and partitions it into same-cell-type :class:`~repro.core.subgraph.Subgraph`\\ s;
* subgraphs whose external dependencies are satisfied are handed to the
  **scheduler**, which implements the paper's Algorithm 1: it forms
  :class:`~repro.core.task.BatchedTask`\\ s out of ready cells of one type —
  possibly from many requests that arrived at different times — and submits
  up to ``MaxTasksToSubmit`` of them to a **worker**;
* each worker owns one (simulated) GPU, launches kernels asynchronously and
  reports completions back to the **manager**, which updates dependencies,
  releases newly-ready subgraphs, and returns each request the moment its
  last cell finishes.
"""

from repro.core.batchmaker import BatchMakerServer
from repro.core.cell import CellType
from repro.core.cell_graph import CellGraph, CellNode, NodeOutput, ValueInput
from repro.core.config import BatchingConfig, CellTypeConfig
from repro.core.request import InferenceRequest, RequestState
from repro.core.scheduler import Scheduler
from repro.core.subgraph import Subgraph
from repro.core.task import BatchedTask

__all__ = [
    "BatchMakerServer",
    "BatchingConfig",
    "CellTypeConfig",
    "CellType",
    "CellGraph",
    "CellNode",
    "NodeOutput",
    "ValueInput",
    "InferenceRequest",
    "RequestState",
    "Scheduler",
    "Subgraph",
    "BatchedTask",
]

"""The manager: glue between request processor, scheduler and workers.

Mirrors Figure 6: arriving requests flow through the request processor into
the scheduler's per-cell-type queues; whenever a worker goes idle the
scheduler is invoked for it; task completions flow back through the request
processor, which may release new subgraphs and finish requests — after
which idle workers are poked again so freshly released work starts
immediately.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.config import BatchingConfig
from repro.core.request import InferenceRequest
from repro.core.request_processor import RequestProcessor
from repro.core.scheduler import Scheduler
from repro.core.subgraph import Subgraph
from repro.core.task import BatchedTask
from repro.core.worker import Worker
from repro.gpu.costmodel import CostModel
from repro.gpu.device import GPUDevice
from repro.sim.events import EventLoop

if TYPE_CHECKING:  # avoids a circular import (models depend on core)
    from repro.models.base import Model


class Manager:
    """Owns the serving pipeline for one model."""

    def __init__(
        self,
        loop: EventLoop,
        model: Model,
        config: BatchingConfig,
        cost_model: CostModel,
        num_workers: int = 1,
        real_compute: bool = False,
        on_request_finished: Optional[Callable[[InferenceRequest], None]] = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.loop = loop
        self.model = model
        self.config = config
        self.cost_model = cost_model
        self._on_request_finished = on_request_finished

        self.scheduler = Scheduler(config, submit=self._submit_task)
        for cell_type in model.cell_types():
            self.scheduler.register_cell_type(cell_type)

        self.processor = RequestProcessor(
            model,
            on_release=self.scheduler.add_subgraph,
            on_finished=self._finished,
            collect_results=real_compute,
        )

        self.workers: List[Worker] = []
        for i in range(num_workers):
            device = GPUDevice(loop, device_id=i)
            self.workers.append(
                Worker(
                    worker_id=i,
                    device=device,
                    cost_model=cost_model,
                    loop=loop,
                    on_task_complete=self._task_complete,
                    real_compute=real_compute,
                )
            )
        self.finished_requests: List[InferenceRequest] = []
        self._poke_pending = False

    # -- request entry -----------------------------------------------------

    def submit_request(self, request: InferenceRequest) -> None:
        """Accept a request at its arrival time (already 'now').

        Scheduling is deferred to the end of the current timestamp so that
        simultaneously-arriving requests can be batched together instead of
        the first one grabbing an idle worker alone.
        """
        self.processor.add_request(request)
        if not self._poke_pending:
            self._poke_pending = True
            self.loop.call_soon(self._deferred_poke)

    def _deferred_poke(self) -> None:
        self._poke_pending = False
        self._poke_idle_workers()

    # -- scheduler -> worker -------------------------------------------------

    def _submit_task(self, task: BatchedTask, worker: Worker) -> None:
        extra = self._migration_cost(task, worker)
        for subgraph, _ in task.entries:
            subgraph.request.mark_started(self.loop.now())
            subgraph.last_worker = worker.worker_id
        worker.submit(task, extra_cost=extra)

    def _migration_cost(self, task: BatchedTask, worker: Worker) -> float:
        """Cross-device copy cost for subgraphs whose live state sits on a
        different GPU — zero under pinning, which is the point of pinning."""
        cost = 0.0
        hidden_bytes = 2 * 1024 * 4  # h and c vectors at h=1024, fp32
        for subgraph in task.subgraphs():
            if (
                subgraph.last_worker is not None
                and subgraph.last_worker != worker.worker_id
            ):
                cost += worker.device.copy_cost(hidden_bytes)
        return cost

    # -- worker -> manager ---------------------------------------------------

    def _task_complete(self, worker: Worker, task: BatchedTask) -> None:
        self.scheduler.task_completed(task)
        self.processor.handle_task_completion(task, self.loop.now())
        self._poke_idle_workers()

    def _finished(self, request: InferenceRequest) -> None:
        request.mark_finished(self.loop.now())
        self.finished_requests.append(request)
        if self._on_request_finished is not None:
            self._on_request_finished(request)

    # -- idle-driven scheduling ------------------------------------------------

    def _poke_idle_workers(self) -> None:
        for worker in self.workers:
            if worker.is_idle():
                self.scheduler.schedule(worker)

"""The manager: glue between request processor, scheduler and workers.

Mirrors Figure 6: arriving requests flow through the request processor into
the scheduler's per-cell-type queues; whenever a worker goes idle the
scheduler is invoked for it; task completions flow back through the request
processor, which may release new subgraphs and finish requests — after
which idle workers are poked again so freshly released work starts
immediately.

Failure handling (DESIGN.md §8) is layered on top and inert by default:

* a :class:`~repro.faults.FaultPlan` can fail or slow individual task
  executions and drop whole devices at scheduled times;
* an :class:`~repro.faults.SLAConfig` arms per-request deadline timers
  (cancellation unwinds the request's queued subgraphs without disturbing
  the scheduler's incremental counters), retries failed tasks with
  exponential backoff on a surviving device, and sheds load at admission
  when the projected queueing delay exceeds the SLO.

Every request reaches exactly one terminal state — FINISHED, TIMED_OUT or
REJECTED — and the :class:`~repro.metrics.FaultCounters` reconcile with
those outcomes; the chaos suite (``tests/test_faults_*``) holds both
invariants under randomized fault schedules.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.core.config import BatchingConfig
from repro.core.request import InferenceRequest
from repro.core.request_processor import RequestProcessor
from repro.core.scheduler import Scheduler
from repro.core.task import BatchedTask
from repro.core.worker import Worker
from repro.faults.plan import FaultPlan, KERNEL_FAIL, STRAGGLER
from repro.faults.sla import RetryPolicy, SLAConfig
from repro.gpu.costmodel import CostModel
from repro.gpu.device import make_devices
from repro.gpu.energy import EnergyModel, EnergySpec, make_governor
from repro.gpu.memory import MemoryModel, MemorySpec
from repro.metrics.counters import FaultCounters
from repro.policies import PolicyBundle
from repro.server import DeferredKick
from repro.sim.events import EventLoop
from repro.trace import events as trace_events

if TYPE_CHECKING:  # avoids a circular import (models depend on core)
    from repro.models.base import Model


class Manager:
    """Owns the serving pipeline for one model."""

    def __init__(
        self,
        loop: EventLoop,
        model: Model,
        config: BatchingConfig,
        cost_model: CostModel,
        num_workers: int = 1,
        real_compute: bool = False,
        on_request_finished: Optional[Callable[[InferenceRequest], None]] = None,
        fault_plan: Optional[FaultPlan] = None,
        sla: Optional[SLAConfig] = None,
        on_request_timed_out: Optional[Callable[[InferenceRequest], None]] = None,
        on_request_rejected: Optional[Callable[[InferenceRequest], None]] = None,
        policies: Optional[PolicyBundle] = None,
        memory: Optional[MemorySpec] = None,
        energy: Optional[EnergySpec] = None,
    ):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.loop = loop
        self.model = model
        self.config = config
        self.cost_model = cost_model
        self._on_request_finished = on_request_finished
        self._on_request_timed_out = on_request_timed_out
        self._on_request_rejected = on_request_rejected

        # Failure machinery; inert (and unqueried) when left at None.
        self.fault_plan = (
            fault_plan if fault_plan is not None and fault_plan.injects_anything()
            else None
        )
        self.sla = sla
        # Latency predictor (repro.policies.predict): fed from completed
        # tasks/requests when present.  Installed from the SLA config, or by
        # an SLA-aware formation policy's attach_engine (lazy kick); None
        # means no predictions are maintained (zero-cost default).
        self.predictor = sla.predictor if sla is not None else None
        self.fault_counters = FaultCounters()
        self.timed_out_requests: List[InferenceRequest] = []
        self.rejected_requests: List[InferenceRequest] = []
        # Running per-node service-time estimate (EWMA) for the projected
        # queueing delay used by load shedding.
        self._node_time_estimate = 0.0
        # Load-delta hook (repro.cluster.load_index): fired after any event
        # that can move ``projected_queue_delay`` — admission, batch kicked,
        # task completed/failed/retried, device lost, cancellation.  None
        # for a standalone server (one attribute load per event).
        self.on_load_changed = None
        # Memory budget (repro.gpu.memory); None keeps the time-only device
        # model and skips every byte-accounting branch below.  A memory-aware
        # formation policy may install itself as ``memory_admission`` from
        # its attach_engine to shed arrivals at the front door.
        self.memory_spec = memory
        self.memory_admission = None
        # Joule accounting + DVFS (repro.gpu.energy); None skips every
        # energy branch below, keeping runs bit-identical to the
        # energy-blind engine.
        self.energy_spec = energy

        self.policies = (
            policies if policies is not None else PolicyBundle.from_config(config)
        )
        self.policies.placement.prepare(num_workers)
        self.scheduler = Scheduler(
            config, submit=self._submit_task, policies=self.policies
        )
        # SLA-aware formation policies (lazy kick) need the engine's clock,
        # SLA config and poke handle; the default policies ignore the hook.
        self.policies.formation.attach_engine(self)
        for cell_type in model.cell_types():
            self.scheduler.register_cell_type(cell_type)

        self.processor = RequestProcessor(
            model,
            on_release=self.scheduler.add_subgraph,
            on_finished=self._finished,
            collect_results=real_compute,
        )

        self.workers: List[Worker] = [
            Worker(
                worker_id=device.device_id,
                device=device,
                cost_model=cost_model,
                loop=loop,
                on_task_complete=self._task_complete,
                real_compute=real_compute,
                on_task_failed=self._task_failed,
            )
            for device in make_devices(loop, num_workers)
        ]
        if self.memory_spec is not None:
            for worker in self.workers:
                worker.device.memory = MemoryModel.from_spec(self.memory_spec)
        if self.energy_spec is not None:
            # One scaled cost model per DVFS state: kernel time goes as 1/f
            # relative to the calibrated table (tables carry ``@x`` names so
            # traces stay attributable), precomputed so a frequency change
            # is a pointer swap at the batch boundary.
            self._freq_cost_models = {
                f: cost_model if f == 1.0 else cost_model.scaled(1.0 / f)
                for f in self.energy_spec.frequencies
            }
            self._governors = {}
            now = loop.now()
            for worker in self.workers:
                worker.device.energy = EnergyModel.from_spec(
                    self.energy_spec, start_time=now
                )
                governor = make_governor(
                    self.energy_spec.governor,
                    self.energy_spec.frequencies,
                    **self.energy_spec.governor_params,
                )
                self._governors[worker.worker_id] = governor
                self._apply_frequency(worker, governor.initial_frequency())
        # Tracing scope (repro.trace), pushed down by the owning server's
        # attach_trace; None = record nothing (the zero-cost default).
        self.trace = None
        self.finished_requests: List[InferenceRequest] = []
        # Same coalesced end-of-timestamp dispatch the graph-batching
        # baselines use (repro.server.DeferredKick): simultaneous arrivals
        # batch together instead of the first grabbing an idle worker alone.
        self._poke = DeferredKick(loop, self._poke_idle_workers)

        if self.fault_plan is not None:
            for failure in self.fault_plan.device_failures():
                if failure.device_id >= num_workers:
                    raise ValueError(
                        f"fault plan kills device {failure.device_id} but the "
                        f"server only has {num_workers}"
                    )
                worker = self.workers[failure.device_id]
                self.loop.call_at(
                    max(failure.time, self.loop.now()),
                    lambda w=worker: self._device_failed(w),
                )

    # -- request entry -----------------------------------------------------

    def submit_request(self, request: InferenceRequest) -> None:
        """Accept a request at its arrival time (already 'now').

        Scheduling is deferred to the end of the current timestamp so that
        simultaneously-arriving requests can be batched together instead of
        the first one grabbing an idle worker alone.
        """
        if self.trace is not None:
            self.trace.instant(
                trace_events.REQUEST_ARRIVAL,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
            )
        reject_reason = None
        if self.fault_plan is not None and not any(w.alive for w in self.workers):
            # Every device is dead: without this check a request arriving
            # after total device loss would queue forever (devices only die
            # through the fault plan, so the healthy hot path skips it).
            reject_reason = "no_devices"
        elif self.sla is not None and self._should_shed(request):
            reject_reason = "load_shed"
        elif (
            self.memory_admission is not None
            and self.memory_admission.should_shed(request)
        ):
            reject_reason = "memory_shed"
        if reject_reason is not None:
            request.mark_rejected(self.loop.now(), reason=reject_reason)
            self.fault_counters.requests_rejected += 1
            self.rejected_requests.append(request)
            if self.trace is not None:
                self.trace.instant(
                    trace_events.REQUEST_REJECTED,
                    trace_events.LIFECYCLE,
                    request_id=request.request_id,
                    args={"reason": reject_reason},
                )
            if self._on_request_rejected is not None:
                self._on_request_rejected(request)
            return
        if self.sla is not None:
            if request.deadline is None and self.sla.default_deadline is not None:
                request.deadline = self.loop.now() + self.sla.default_deadline
        if request.deadline is not None:
            request._timeout_event = self.loop.call_at(
                max(request.deadline, self.loop.now()),
                lambda: self._deadline_expired(request),
            )
        self.processor.add_request(request)
        self._poke.kick()
        self._notify_load()

    def _notify_load(self) -> None:
        """Tell the subscriber (a cluster's load index) that this engine's
        projected queueing delay may have moved.  Every call site is an
        *event* — the only other way the delay changes is device backlog
        decaying with the clock, which the index handles as volatility
        (DESIGN.md §13)."""
        if self.on_load_changed is not None:
            self.on_load_changed()

    # -- SLA: admission control ---------------------------------------------

    def _should_shed(self, request: InferenceRequest) -> bool:
        if not any(w.alive for w in self.workers):
            return True  # no devices left: reject rather than hang
        if self.sla.max_queue_delay is None:
            return False
        return self.projected_queue_delay() > self.sla.max_queue_delay

    def projected_queue_delay(self) -> float:
        """Seconds a new arrival would plausibly wait before computing:
        the least-loaded surviving device's backlog plus the estimated
        drain time of everything already queued in the scheduler."""
        backlog = min(
            w.device.backlog() for w in self.workers if w.alive
        )
        queued = self.scheduler.total_ready_nodes() * self._node_time_estimate
        alive = sum(1 for w in self.workers if w.alive)
        return backlog + queued / alive

    def _observe_task(self, task: BatchedTask) -> None:
        """Fold a completed task into the per-node service-time EWMA."""
        if not task.duration or not task.batch_size:
            return
        if self.predictor is not None:
            self.predictor.observe_task(task.duration, task.batch_size)
        sample = task.duration / task.batch_size
        if self._node_time_estimate == 0.0:
            self._node_time_estimate = sample
        else:
            self._node_time_estimate += 0.05 * (sample - self._node_time_estimate)

    # -- scheduler -> worker -------------------------------------------------

    def _submit_task(self, task: BatchedTask, worker: Worker) -> None:
        if self.energy_spec is not None:
            # DVFS decisions happen only here, at the batch boundary, so
            # the schedule stays deterministic and the energy-off fast path
            # stays bit-identical (this branch is never taken without a
            # spec).  Retries reuse whatever frequency is then in effect.
            self._govern_frequency(worker)
        extra = self._migration_cost(task, worker)
        if self.memory_spec is not None:
            self._reserve_for_task(task, worker)
        for subgraph, _ in task.entries:
            subgraph.request.mark_started(self.loop.now())
            subgraph.last_worker = worker.worker_id
        worker.submit(task, extra_cost=extra, fault=self._draw_fault(task))
        self._notify_load()

    def _draw_fault(self, task: BatchedTask):
        if self.fault_plan is None:
            return None
        fault = self.fault_plan.task_fault(task.task_id, task.attempt)
        if fault is not None:
            if fault.kind == KERNEL_FAIL:
                self.fault_counters.kernel_failures_injected += 1
            elif fault.kind == STRAGGLER:
                self.fault_counters.stragglers_injected += 1
        return fault

    def _migration_cost(self, task: BatchedTask, worker: Worker) -> float:
        """Cross-device copy cost (placement policy) — zero under pinning,
        which is the point of pinning."""
        return self.policies.placement.migration_cost(task, worker)

    # -- energy accounting and DVFS (DESIGN.md §17) --------------------------

    def _govern_frequency(self, worker: Worker) -> None:
        """Let the worker's governor re-pick its DVFS state (batch boundary
        only).  A change swaps in the precomputed frequency-scaled cost
        model and re-rates the device's dynamic power; a trace instant
        carries the scaled table names so Chrome traces show which clock
        each kernel ran at."""
        governor = self._governors[worker.worker_id]
        frequency = governor.decide(self.loop.now(), worker.busy_time)
        if frequency != worker.device.energy.frequency:
            self._apply_frequency(worker, frequency)
            if self.trace is not None:
                self.trace.instant(
                    trace_events.DVFS_FREQUENCY,
                    trace_events.SCHED,
                    device_id=worker.worker_id,
                    args={
                        "frequency": frequency,
                        "tables": sorted(
                            t.name
                            for t in worker.cost_model.tables().values()
                        ),
                    },
                )

    def _apply_frequency(self, worker: Worker, frequency: float) -> None:
        worker.cost_model = self._freq_cost_models[frequency]
        worker.device.energy.set_frequency(frequency)

    def total_energy_joules(self) -> float:
        """Integrated energy across alive devices at the current sim time
        (active charges plus idle power; 0.0 without an energy spec)."""
        if self.energy_spec is None:
            return 0.0
        now = self.loop.now()
        total = 0.0
        for worker in self.workers:
            model = worker.device.energy
            if model is None or not worker.alive:
                continue
            busy = worker.device.timeline.busy_time(
                since=model.start_time, until=now
            )
            total += model.integrated_joules(now, busy)
        return total

    # -- memory accounting (DESIGN.md §15) -----------------------------------

    def _reserve_for_task(self, task: BatchedTask, worker: Worker) -> None:
        """Reserve hidden-state bytes on ``worker`` for every subgraph the
        task lands there (kick and retry paths both come through here).
        A subgraph migrating between devices releases on the old one first;
        a reservation the device refuses (it would overcommit — possible
        when a memory-*oblivious* formation policy planned the batch)
        OOM-cancels the owning request.  The kernel still runs: the abort
        happens at launch, after the batch was formed."""
        mem = worker.device.memory
        if mem is None:
            return
        state_bytes = self.memory_spec.state_bytes
        seen = set()
        for sg, _ in task.entries:
            if sg.subgraph_id in seen:
                continue
            seen.add(sg.subgraph_id)
            request = sg.request
            if request.terminal or sg.resident_on == worker.worker_id:
                continue
            if sg.resident_on is not None:
                old_mem = self.workers[sg.resident_on].device.memory
                if old_mem is not None:
                    old_mem.release(request.request_id, sg.resident_bytes)
                sg.resident_on = None
                sg.resident_bytes = 0
            if mem.reserve(request.request_id, state_bytes):
                sg.resident_on = worker.worker_id
                sg.resident_bytes = state_bytes
            else:
                self.fault_counters.oom_cancellations += 1
                self._cancel_request(request, reason="oom")

    def _release_memory(self, request: InferenceRequest) -> None:
        """Free every device-state reservation the request holds (terminal
        states and evict-and-restart); accounting telescopes to zero."""
        if self.memory_spec is None:
            return
        for sg in request.subgraphs.values():
            if sg.resident_on is not None:
                mem = self.workers[sg.resident_on].device.memory
                if mem is not None:
                    mem.release(request.request_id, sg.resident_bytes)
                sg.resident_on = None
                sg.resident_bytes = 0

    def _drop_residency(self, worker_id: int) -> None:
        """A device is about to die: its MemoryModel resets wholesale, so
        clear the per-subgraph residency markers pointing at it (otherwise a
        later release would underflow against the reset model)."""
        for request in self.processor.live_requests():
            for sg in request.subgraphs.values():
                if sg.resident_on == worker_id:
                    sg.resident_on = None
                    sg.resident_bytes = 0

    def restart_request(self, request: InferenceRequest) -> bool:
        """Evict-and-restart: preempt a non-terminal request under memory
        pressure, releasing its device state and unwinding its queued
        subgraphs, then resubmit it from scratch after the retry policy's
        backoff.  The caller (the ``memory_aware`` formation policy)
        guarantees no node is in flight; restarts beyond the retry budget
        cancel terminally instead (``"oom"``).  Returns True when the
        request was restarted, False when it was cancelled."""
        if request.terminal:
            return False
        for sg in request.subgraphs.values():
            if sg.inflight or sg.uncompleted != sg.unsubmitted:
                raise ValueError(
                    f"cannot restart request {request.request_id}: "
                    f"subgraph {sg.subgraph_id} has nodes in flight"
                )
        retry = self.sla.retry if self.sla is not None else _DEFAULT_RETRY
        if request.restarts >= retry.max_retries:
            self.fault_counters.oom_cancellations += 1
            self._cancel_request(request, reason="oom")
            return False
        request.restarts += 1
        self.fault_counters.memory_evictions += 1
        self.scheduler.evict_request(request)
        self._release_memory(request)
        self.processor.forget(request)
        request.graph = None
        request.subgraphs = {}
        request.remaining_nodes = 0
        if self.trace is not None:
            self.trace.instant(
                trace_events.REQUEST_RESTARTED,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
                args={"restarts": request.restarts},
            )
        delay = retry.backoff(request.restarts - 1)
        self.loop.call_after(delay, lambda: self._resubmit_restarted(request))
        self._notify_load()
        return True

    def _resubmit_restarted(self, request: InferenceRequest) -> None:
        """Backoff elapsed: re-enter the restarted request (fresh unfold).
        A deadline that fired during the backoff wins — the request is
        already terminal and stays that way."""
        if request.terminal:
            return
        self.processor.add_request(request)
        self._poke.kick()
        self._notify_load()

    # -- worker -> manager ---------------------------------------------------

    def _task_complete(self, worker: Worker, task: BatchedTask) -> None:
        self.scheduler.task_completed(task)
        if self.trace is not None:
            self._trace_task_span(task, trace_events.COMPUTE, self.loop.now())
        self._observe_task(task)
        self.processor.handle_task_completion(task, self.loop.now())
        self._poke_idle_workers()
        self._notify_load()

    def _trace_task_span(self, task: BatchedTask, cat: str, end: float) -> None:
        """One span per task execution, ending at its retire time.  The
        device queued and ran it back-to-back on a FIFO stream, so the span
        is ``[end - duration, end)``; the gather/migration share is carried
        in args for the critical-path split."""
        self.trace.span(
            trace_events.TASK,
            cat,
            end - (task.duration or 0.0),
            task.duration or 0.0,
            device_id=task.worker_id,
            task_id=task.task_id,
            args={
                "requests": [sg.request.request_id for sg in task.subgraphs()],
                "gather": task.gather_time,
                "migration": task.migration_time,
                "cell": task.cell_type.name,
                "batch": task.batch_size,
                "attempt": task.attempt,
            },
        )

    def _finished(self, request: InferenceRequest) -> None:
        request.mark_finished(self.loop.now())
        self._disarm_timeout(request)
        self._release_memory(request)
        if self.predictor is not None:
            self.predictor.observe_request(
                request.latency, request.queuing_time, request.computation_time
            )
        self.fault_counters.requests_completed += 1
        self.finished_requests.append(request)
        if self.trace is not None:
            self.trace.instant(
                trace_events.REQUEST_FINISHED,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
            )
        if self._on_request_finished is not None:
            self._on_request_finished(request)

    # -- failure paths -------------------------------------------------------

    def _task_failed(self, worker: Worker, task: BatchedTask, reason: str) -> None:
        """A task execution did not retire: retry the surviving requests'
        portion of the batch with exponential backoff, or cancel them when
        the failure budget is spent."""
        self.scheduler.task_completed(task)
        self.fault_counters.tasks_failed += 1
        self._notify_load()
        if self.trace is not None:
            if reason == "device_lost":
                # The kernel never retired: the device timeline is truncated
                # at the death instant, so no execution span — an instant
                # marks the casualty.
                self.trace.instant(
                    trace_events.TASK_DEVICE_LOST,
                    trace_events.RETRY,
                    device_id=task.worker_id,
                    task_id=task.task_id,
                    args={
                        "requests": [
                            sg.request.request_id for sg in task.subgraphs()
                        ],
                    },
                )
            else:
                # Kernel fault detected at retire time: the device time was
                # consumed, but by a failed attempt — charge it to retry.
                self._trace_task_span(task, trace_events.RETRY, self.loop.now())
        retry = self.sla.retry if self.sla is not None else _DEFAULT_RETRY
        entries = [
            (sg, node) for sg, node in task.entries if not sg.request.terminal
        ]
        if not entries:
            self._poke_idle_workers()
            return
        if task.attempt >= retry.max_retries:
            for request in _distinct_requests(entries):
                self._cancel_request(request, reason="retries_exhausted")
            self._poke_idle_workers()
            return
        task.entries = entries
        delay = retry.backoff(task.attempt)
        task.prepare_retry()
        self.fault_counters.retries_attempted += 1
        for request in _distinct_requests(entries):
            request.retries += 1
        if self.trace is not None:
            self.trace.span(
                trace_events.RETRY_BACKOFF,
                trace_events.RETRY,
                self.loop.now(),
                delay,
                task_id=task.task_id,
                args={
                    "requests": [
                        r.request_id for r in _distinct_requests(entries)
                    ],
                    "attempt": task.attempt,
                },
            )
        self.loop.call_after(delay, lambda: self._run_retry(task))
        self._poke_idle_workers()

    def _run_retry(self, task: BatchedTask) -> None:
        """Re-submit a failed task (backoff elapsed).  Requests that turned
        terminal during the backoff are dropped from the batch; if no alive
        device remains, the survivors are cancelled instead."""
        entries = [
            (sg, node) for sg, node in task.entries if not sg.request.terminal
        ]
        if not entries:
            return
        task.entries = entries
        target = self._retry_target(task)
        if target is None:
            for request in _distinct_requests(entries):
                self._cancel_request(request, reason="no_devices")
            return
        # Cross-device copy cost applies when the retry lands on a different
        # GPU than the one holding the subgraphs' live state.
        extra = self._migration_cost(task, target)
        self.policies.placement.on_retry(task, target)
        if self.memory_spec is not None:
            # The retry may land on a different device than the original
            # kick reserved on; move the reservations along with the work.
            self._reserve_for_task(task, target)
            task.entries = [
                (sg, node) for sg, node in task.entries
                if not sg.request.terminal
            ]
            if not task.entries:
                return
        for sg in task.subgraphs():
            sg.last_worker = target.worker_id
        self.scheduler.resubmit(task)
        target.submit(task, extra_cost=extra, fault=self._draw_fault(task))
        self._notify_load()

    def _retry_target(self, task: BatchedTask) -> Optional[Worker]:
        """Retry placement (placement policy): by default the original
        worker when it still lives, else the first survivor after it."""
        return self.policies.placement.retry_target(task, self.workers)

    def _device_failed(self, worker: Worker) -> None:
        """A device dropped out of the fault plan's sky."""
        if not worker.alive:
            return
        self.fault_counters.device_failures += 1
        if self.trace is not None:
            self.trace.instant(
                trace_events.DEVICE_FAILED,
                trace_events.LIFECYCLE,
                device_id=worker.worker_id,
            )
        # Failing the device fails its in-flight tasks (in submission
        # order), which individually enter the retry path above.  Residency
        # markers pointing at it are cleared first: the MemoryModel resets
        # wholesale with the device, so per-subgraph releases against it
        # would underflow.
        if self.memory_spec is not None:
            self._drop_residency(worker.worker_id)
        worker.fail_device()
        self.policies.placement.on_device_failed(worker.worker_id)
        # Queued subgraphs pinned to the dead device migrate to the first
        # survivor (the same deterministic choice the retries make), so
        # their remaining cells stay schedulable.
        replacement = self._replacement_for(worker.worker_id)
        if replacement is not None:
            self.scheduler.repin_queued(worker.worker_id, replacement.worker_id)
            self._poke_idle_workers()
        else:
            # No devices left: everything still in flight is unservable.
            for request in list(self.processor.live_requests()):
                self._cancel_request(request, reason="no_devices")
        self._notify_load()

    def _replacement_for(self, dead_worker_id: int) -> Optional[Worker]:
        return self.policies.placement.replacement_for(
            dead_worker_id, self.workers
        )

    def fail_all_devices(self) -> None:
        """Whole-server loss (``repro.cluster`` replica failure): drop every
        device.  The last loss takes the total-loss path — live requests are
        cancelled (``"no_devices"``) and the loop is left clean, so a dead
        replica schedules no further work."""
        for worker in self.workers:
            if worker.alive:
                self._device_failed(worker)

    # -- SLA: deadlines and cancellation ------------------------------------

    def _deadline_expired(self, request: InferenceRequest) -> None:
        request._timeout_event = None
        if request.terminal:
            return
        self._cancel_request(request, reason="deadline")

    def _cancel_request(self, request: InferenceRequest, reason: str) -> bool:
        """Terminal cancellation: mark the request timed out, unwind its
        queued subgraphs from the scheduler, and disarm its timer.  Nodes
        already in flight are left to retire; the processor ignores
        completions for terminal requests."""
        if request.terminal:
            return False
        request.mark_timed_out(self.loop.now(), reason=reason)
        self._disarm_timeout(request)
        self.scheduler.evict_request(request)
        self._release_memory(request)
        self.processor.abandon(request)
        self.fault_counters.requests_timed_out += 1
        self.timed_out_requests.append(request)
        if self.trace is not None:
            self.trace.instant(
                trace_events.REQUEST_TIMED_OUT,
                trace_events.LIFECYCLE,
                request_id=request.request_id,
                args={"reason": reason},
            )
        if self._on_request_timed_out is not None:
            self._on_request_timed_out(request)
        if self.memory_spec is not None:
            # The freed state can make deferred members fit, and a
            # cancellation may be the last event alive (the memory-aware
            # formation triages dead-end members from within a dispatch
            # round) — re-run the dispatch loop or the drain hangs with
            # work still queued.  Without a memory model a cancellation
            # never creates newly schedulable work, so the kick stays
            # gated to keep the no-spec path bit-identical.
            self._poke.kick()
        self._notify_load()
        return True

    @staticmethod
    def _disarm_timeout(request: InferenceRequest) -> None:
        if request._timeout_event is not None:
            request._timeout_event.cancel()
            request._timeout_event = None

    # -- idle-driven scheduling ------------------------------------------------

    def wake(self) -> None:
        """External wake hook: re-arm the coalesced dispatch kick.

        The engine normally kicks itself on every arrival/completion; a
        live front end (:mod:`repro.serve`) calls this after out-of-band
        state changes — shutdown drains and journal-replay resumes — so
        any formable work dispatches on the next timestamp without
        waiting for the next natural engine event.
        """
        self._poke.kick()

    def outstanding(self) -> int:
        """Requests accepted but not yet terminal (live drain progress)."""
        return self.processor.live_request_count()

    def _poke_idle_workers(self) -> None:
        for worker in self.workers:
            if worker.alive and worker.is_idle():
                self.scheduler.schedule(worker)


def _distinct_requests(entries) -> List[InferenceRequest]:
    """Distinct requests contributing entries, in first-seen order."""
    seen: Dict[int, InferenceRequest] = {}
    for sg, _ in entries:
        seen.setdefault(sg.request.request_id, sg.request)
    return list(seen.values())


# Used when a fault plan fails tasks but no SLAConfig was given.
_DEFAULT_RETRY = RetryPolicy()

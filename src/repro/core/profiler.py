"""Offline profiling: choose per-cell-type batch sizes.

BatchMaker determines each cell type's desired maximum batch size "through
offline benchmarking" (§4.2) — run one step of the cell at each candidate
batch size, then pick the smallest size whose throughput is within a
tolerance of the best (larger batches past saturation only add latency,
§2.2).  This module implements that procedure both against a calibrated
:class:`~repro.gpu.costmodel.CostModel` (simulation) and against a real
NumPy cell measured on the host.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cells.base import Cell
from repro.core.config import BatchingConfig, CellTypeConfig
from repro.gpu.costmodel import CostModel
from repro.sim.timebase import measure_best

DEFAULT_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class ProfileResult:
    """Per-cell-type profiling outcome."""

    def __init__(self, cell_name: str, points: List[Tuple[int, float]]):
        if not points:
            raise ValueError("profile needs at least one measurement")
        self.cell_name = cell_name
        self.points = sorted(points)  # (batch, seconds per step)

    def throughput(self, batch: int) -> float:
        for b, t in self.points:
            if b == batch:
                return b / t
        raise KeyError(f"batch {batch} was not profiled")

    def best_batch(self, tolerance: float = 0.001) -> int:
        """Smallest batch within ``tolerance`` of the peak throughput."""
        best = max(b / t for b, t in self.points)
        for b, t in self.points:
            if b / t >= (1.0 - tolerance) * best:
                return b
        raise AssertionError("unreachable")  # pragma: no cover

    def __repr__(self) -> str:
        return (
            f"<ProfileResult {self.cell_name!r} best={self.best_batch()} "
            f"({len(self.points)} points)>"
        )


def profile_cost_model(
    cost_model: CostModel,
    cell_names: Iterable[str],
    candidates: Sequence[int] = DEFAULT_CANDIDATES,
) -> Dict[str, ProfileResult]:
    """Profile cell types against their calibrated latency tables."""
    results = {}
    for name in cell_names:
        points = [(b, cost_model.kernel_time(name, b)) for b in candidates]
        results[name] = ProfileResult(name, points)
    return results


def profile_cell(
    cell: Cell,
    candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    input_maker=None,
    repeats: int = 3,
    seed: int = 0,
) -> ProfileResult:
    """Measure a real NumPy cell on the host at each candidate batch size.

    ``input_maker(batch) -> inputs dict`` builds the batched inputs; the
    default synthesises standard-normal tensors from the cell's declared
    input shapes (which must all be known).
    """
    rng = np.random.default_rng(seed)

    def default_inputs(batch: int):
        inputs = {}
        for name in cell.input_names:
            shape = cell.input_shape(name)
            if shape is None:
                raise ValueError(
                    f"cell {cell.name!r} input {name!r} has unknown shape; "
                    "pass input_maker"
                )
            if shape == ():
                inputs[name] = np.zeros(batch, dtype=np.int64)
            else:
                inputs[name] = rng.standard_normal((batch,) + shape).astype(
                    np.float32
                )
        return inputs

    maker = input_maker if input_maker is not None else default_inputs
    points = []
    for batch in candidates:
        inputs = maker(batch)
        cell(inputs)  # warm-up
        points.append((batch, measure_best(lambda: cell(inputs), repeats=repeats)))
    return ProfileResult(cell.name, points)


def recommend_config(
    profiles: Dict[str, ProfileResult],
    priorities: Optional[Dict[str, int]] = None,
    max_tasks_to_submit: int = 5,
    tolerance: float = 0.001,
) -> BatchingConfig:
    """Build a :class:`BatchingConfig` from profiling results — the offline
    step that produced the paper's 512 (LSTM/encoder) and 256 (decoder)."""
    per_cell = {}
    for name, profile in profiles.items():
        best = profile.best_batch(tolerance)
        sizes = [b for b, _ in profile.points if b <= best]
        per_cell[name] = CellTypeConfig(
            batch_sizes=sizes, priority=(priorities or {}).get(name, 0)
        )
    return BatchingConfig(
        per_cell=per_cell, max_tasks_to_submit=max_tasks_to_submit
    )

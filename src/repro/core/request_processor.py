"""Request processor: unfolding, dependency tracking, subgraph release.

This is the manager submodule of Figure 6 that "tracks the progress of
execution for each request": it unfolds arriving requests into cell graphs,
partitions them into subgraphs, releases subgraphs to the scheduler once
their external dependencies are satisfied, consumes task completions, and
returns a request the moment its last cell finishes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Set

from repro.core.cell_graph import CellGraph
from repro.core.request import InferenceRequest
from repro.core.subgraph import Subgraph, partition_into_subgraphs
from repro.core.task import BatchedTask

if TYPE_CHECKING:  # avoids a circular import (models depend on core)
    from repro.models.base import Model


class RequestProcessor:
    """Tracks per-request execution state and feeds the scheduler.

    Parameters
    ----------
    model:
        Supplies ``unfold`` (and optionally ``extend`` for dynamic graphs).
    on_release:
        Called with each subgraph whose external dependencies are satisfied;
        the manager forwards these to the scheduler.
    on_finished:
        Called with each request whose last cell has completed.
    collect_results:
        Whether to materialise ``request.result`` from node outputs
        (real-compute mode only; in pure simulation nodes have no values).
    """

    def __init__(
        self,
        model: Model,
        on_release: Callable[[Subgraph], None],
        on_finished: Callable[[InferenceRequest], None],
        collect_results: bool = False,
    ):
        self.model = model
        self._on_release = on_release
        self._on_finished = on_finished
        self._collect_results = collect_results
        self._next_subgraph_id = 0
        # Live (not fully completed) subgraphs by id, per request.
        self._live_requests: Set[int] = set()
        self._requests: Dict[int, InferenceRequest] = {}
        self.total_nodes_processed = 0

    # -- arrival ----------------------------------------------------------------

    def add_request(self, request: InferenceRequest) -> List[Subgraph]:
        """Unfold, partition, and release the initially-ready subgraphs."""
        if request.request_id in self._requests:
            raise ValueError(f"request {request.request_id} already added")
        graph = CellGraph()
        self.model.unfold(graph, request.payload)
        if len(graph) == 0:
            raise ValueError(
                f"model {self.model.name!r} unfolded request "
                f"{request.request_id} into an empty graph"
            )
        request.graph = graph
        request.remaining_nodes = len(graph)
        self._requests[request.request_id] = request
        self._live_requests.add(request.request_id)

        subgraphs = partition_into_subgraphs(
            graph, request, start_id=self._next_subgraph_id
        )
        self._next_subgraph_id += len(subgraphs)
        request.subgraphs = {sg.subgraph_id: sg for sg in subgraphs}
        released = []
        for sg in subgraphs:
            if sg.is_releasable():
                self._release(sg)
                released.append(sg)
        return released

    def _release(self, sg: Subgraph) -> None:
        sg.released = True
        self._on_release(sg)

    # -- cancellation -------------------------------------------------------

    def abandon(self, request: InferenceRequest) -> None:
        """Stop tracking a cancelled request.  Its in-flight nodes may still
        retire; :meth:`handle_task_completion` skips all bookkeeping for
        terminal requests, so nothing can resurrect or double-finish it."""
        self._live_requests.discard(request.request_id)

    def forget(self, request: InferenceRequest) -> None:
        """Drop a *non-terminal* request entirely so it can be re-added
        (evict-and-restart under memory pressure).  Unlike :meth:`abandon`
        the id becomes reusable; the caller guarantees the request has no
        nodes in flight, so no stale completion can reference the old
        graph."""
        self._live_requests.discard(request.request_id)
        self._requests.pop(request.request_id, None)

    def live_requests(self) -> List[InferenceRequest]:
        """Snapshot of not-yet-terminal tracked requests (id order)."""
        return [
            self._requests[rid] for rid in sorted(self._live_requests)
        ]

    # -- completion -------------------------------------------------------------

    def handle_task_completion(self, task: BatchedTask, now: float) -> List[InferenceRequest]:
        """Update dependencies for a retired task; returns requests that
        finished as a result."""
        affected_requests: Dict[int, InferenceRequest] = {}

        # 1. Mark nodes completed and update per-subgraph counters.  Nodes
        # of cancelled (terminal) requests retire without bookkeeping: the
        # request was written off whole at cancellation time, and nothing
        # below may resurrect it.
        for subgraph, node in task.entries:
            request = subgraph.request
            if request.terminal:
                continue
            if node.completed:
                raise RuntimeError(f"node {node.node_id} completed twice")
            node.completed = True
            request.remaining_nodes -= 1
            self.total_nodes_processed += 1
            affected_requests[request.request_id] = request
        for subgraph, count in self._per_subgraph(task).items():
            subgraph.task_done(count)

        # 2. Dynamic unfolding: give the model a chance to grow each graph.
        for subgraph, node in task.entries:
            request = subgraph.request
            if request.terminal:
                continue
            new_nodes = self.model.extend(subgraph.graph, node, request.payload)
            if new_nodes:
                request.remaining_nodes += len(new_nodes)
                new_subgraphs = partition_into_subgraphs(
                    subgraph.graph,
                    request,
                    nodes=new_nodes,
                    start_id=self._next_subgraph_id,
                )
                self._next_subgraph_id += len(new_subgraphs)
                for sg in new_subgraphs:
                    request.subgraphs[sg.subgraph_id] = sg
                    if sg.is_releasable():
                        self._release(sg)

        # 3. Propagate completions across subgraph boundaries.  External
        # edges never cross requests, so skipping terminal requests here
        # cannot starve anyone else.
        for subgraph, node in task.entries:
            if subgraph.request.terminal:
                continue
            graph = subgraph.graph
            for succ_id in graph.successors(node.node_id):
                succ = graph.node(succ_id)
                if succ.subgraph_id == subgraph.subgraph_id:
                    continue  # internal edges are handled by the scheduler
                succ_sg = subgraph.request.subgraphs[succ.subgraph_id]
                if succ_sg.satisfy_external(node.node_id, succ_id):
                    self._release(succ_sg)
            # Non-optimistic (unpinned) mode: internal readiness advances on
            # completion instead of on submission.
            if not getattr(subgraph, "optimistic", True):
                subgraph.mark_completed_internal([node.node_id])

        # 4. Finish requests whose graphs are fully executed.
        finished = []
        for request in affected_requests.values():
            if request.remaining_nodes == 0:
                if self._collect_results:
                    request.result = request.graph.collect_results()
                self._live_requests.discard(request.request_id)
                finished.append(request)
                self._on_finished(request)
        return finished

    @staticmethod
    def _per_subgraph(task: BatchedTask) -> Dict[Subgraph, int]:
        counts: Dict[Subgraph, int] = {}
        for subgraph, _ in task.entries:
            counts[subgraph] = counts.get(subgraph, 0) + 1
        return counts

    # -- introspection ------------------------------------------------------------

    def live_request_count(self) -> int:
        return len(self._live_requests)

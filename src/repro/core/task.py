"""Batched tasks: what the scheduler submits to workers.

A task is one batched execution of a single cell type: a list of
``(subgraph, node)`` entries gathered from possibly many requests.  In
real-compute mode the task gathers each entry's input rows into contiguous
batched tensors (the paper's "gather" memory copy), runs the cell once, and
scatters the output rows back to the nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cell import CellType
from repro.core.cell_graph import CellNode, NodeOutput, ValueInput
from repro.core.subgraph import Subgraph
from repro.tensor import ops


class BatchedTask:
    """A batch of same-type cell invocations destined for one worker."""

    def __init__(
        self,
        task_id: int,
        cell_type: CellType,
        entries: List[Tuple[Subgraph, CellNode]],
    ):
        if not entries:
            raise ValueError("a batched task needs at least one entry")
        for _, node in entries:
            if node.cell_type.name != cell_type.name:
                raise ValueError(
                    f"task {task_id}: node {node.node_id} has type "
                    f"{node.cell_type.name!r}, expected {cell_type.name!r}"
                )
        self.task_id = task_id
        self.cell_type = cell_type
        self.entries = entries
        self.worker_id: Optional[int] = None
        self.submit_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.duration: Optional[float] = None
        # How much of ``duration`` went to the gather copy and to the
        # cross-device migration copy (set by the worker at submission;
        # consumed by the critical-path trace attribution).
        self.gather_time = 0.0
        self.migration_time = 0.0
        # Joules charged for the most recent execution attempt (set by the
        # worker when the device has an EnergyModel; 0.0 otherwise).
        self.energy_joules = 0.0
        # Retry bookkeeping: 0 for the original submission, incremented by
        # the manager for each re-submission after a failed execution.
        self.attempt = 0

    def prepare_retry(self) -> None:
        """Reset per-execution state so the task can be submitted again."""
        self.attempt += 1
        self.worker_id = None
        self.submit_time = None
        self.finish_time = None
        self.duration = None
        self.gather_time = 0.0
        self.migration_time = 0.0

    @property
    def batch_size(self) -> int:
        return len(self.entries)

    def subgraphs(self) -> List[Subgraph]:
        """Distinct subgraphs contributing nodes, in first-seen order."""
        seen: Dict[int, Subgraph] = {}
        for subgraph, _ in self.entries:
            seen.setdefault(subgraph.subgraph_id, subgraph)
        return list(seen.values())

    def nodes_per_subgraph(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for subgraph, _ in self.entries:
            counts[subgraph.subgraph_id] = counts.get(subgraph.subgraph_id, 0) + 1
        return counts

    # -- real-compute execution ---------------------------------------------

    def execute(self) -> None:
        """Gather -> batched compute -> scatter (real-compute mode).

        Requires every NodeOutput dependency to have been executed already;
        the scheduler guarantees this via FIFO submission order on a pinned
        worker plus release-after-external-completion.
        """
        cell = self.cell_type
        batched_inputs: Dict[str, np.ndarray] = {}
        for name in cell.input_names:
            rows = []
            for subgraph, node in self.entries:
                ref = node.inputs[name]
                if isinstance(ref, ValueInput):
                    rows.append(np.asarray(ref.value))
                else:
                    producer = subgraph.graph.node(ref.node_id)
                    if producer.outputs is None:
                        raise RuntimeError(
                            f"task {self.task_id}: node {node.node_id} input "
                            f"{name!r} depends on unexecuted node {ref.node_id}"
                        )
                    rows.append(np.asarray(producer.outputs[ref.output]))
            batched_inputs[name] = ops.stack_rows(rows)
        batched_outputs = cell.compute(batched_inputs)
        for name in cell.output_names:
            out = batched_outputs[name]
            for i, (_, node) in enumerate(self.entries):
                if node.outputs is None:
                    node.outputs = {}
                node.outputs[name] = out[i]
        for _, node in self.entries:
            node.launched = True

    def mark_launched_sim(self) -> None:
        """Simulation-only mode: record launch without computing values."""
        for _, node in self.entries:
            node.launched = True

    def __repr__(self) -> str:
        return (
            f"<BatchedTask {self.task_id} type={self.cell_type.name!r} "
            f"batch={self.batch_size} worker={self.worker_id}>"
        )

"""Subgraphs: the scheduler's unit of queuing, pinning and locality.

The request processor partitions each cell graph into maximal connected
components of same-cell-type nodes (§4.3: "a subgraph contains a single node
or a number of connected nodes ... all nodes of a subgraph must be of the
same cell type").  A subgraph is *released* to the scheduler only once all
its external dependencies are satisfied, so within a subgraph the only
unsatisfied dependencies are internal — which the scheduler resolves
optimistically because tasks pinned to one worker execute in FIFO order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.cell_graph import CellGraph, CellNode


class Subgraph:
    """A same-type connected group of one request's cells.

    Scheduling state:

    * ``ready``: nodes whose in-subgraph predecessors have all been
      *submitted* (the optimistic readiness of Algorithm 1's
      ``UpdateNodesDependency``), not yet submitted themselves.
    * ``pinned``: worker id this subgraph is currently bound to; set when a
      task containing its nodes is submitted, cleared when ``inflight``
      returns to zero (paper §4.3, last paragraph).
    """

    def __init__(
        self,
        subgraph_id: int,
        request,  # InferenceRequest; untyped to avoid a circular import
        cell_type_name: str,
        nodes: Sequence[CellNode],
        graph: CellGraph,
    ):
        self.subgraph_id = subgraph_id
        self.request = request
        self.cell_type_name = cell_type_name
        self.graph = graph
        self.node_ids = [n.node_id for n in nodes]
        node_id_set = set(self.node_ids)
        for node in nodes:
            node.subgraph_id = subgraph_id

        # In-subgraph predecessor counts (for optimistic readiness) and the
        # set of unsatisfied external (cross-subgraph) dependency edges
        # (pred_node_id, succ_node_id) gating release.
        self._internal_pending: Dict[int, int] = {}
        self._external_edges = set()
        for node in nodes:
            internal = 0
            for pred in node.predecessors():
                if pred in node_id_set:
                    internal += 1
                elif not graph.node(pred).completed:
                    self._external_edges.add((pred, node.node_id))
            self._internal_pending[node.node_id] = internal

        self.ready: List[int] = [
            nid for nid in self.node_ids if self._internal_pending[nid] == 0
        ]
        self.unsubmitted = len(self.node_ids)
        self.uncompleted = len(self.node_ids)
        self.pinned: Optional[int] = None
        self.inflight = 0
        # A sticky pin survives the inflight count returning to zero —
        # static placement policies (repro.policies.FixedPlacement) use it
        # to keep a subgraph's home for life.
        self.sticky = False
        self.released = False
        # Owning CellTypeQueue while enqueued: receives incremental
        # ready-count deltas and pin transitions so the scheduler never has
        # to rescan the queue (see scheduler.CellTypeQueue).  The queue sets
        # both fields in ``add`` and clears the owner when the subgraph is
        # dropped (exhausted).
        self.owner = None
        self.queue_seq: int = -1
        # Optimistic readiness (advance internal deps at submission, relying
        # on same-worker FIFO order).  The scheduler flips this off when
        # pinning is disabled, in which case internal deps advance only on
        # actual completion.
        self.optimistic = True
        # Device the data of this subgraph currently lives on; used to model
        # the cross-GPU copy cost when pinning is disabled.
        self.last_worker: Optional[int] = None
        # Memory residency (repro.gpu.memory): the device holding this
        # subgraph's reserved hidden-state bytes, or None when nothing is
        # reserved (no memory model, or released).  The manager keeps these
        # in lockstep with the devices' MemoryModel accounting.
        self.resident_on: Optional[int] = None
        self.resident_bytes: int = 0

    # -- release bookkeeping (driven by the request processor) -------------

    @property
    def external_pending(self) -> int:
        return len(self._external_edges)

    def satisfy_external(self, pred_id: int, succ_id: int) -> bool:
        """The external predecessor ``pred_id`` of our node ``succ_id``
        completed; returns True when the subgraph has just become
        releasable.  Edges not tracked (e.g. the predecessor was already
        complete when this subgraph was created) are ignored."""
        self._external_edges.discard((pred_id, succ_id))
        return self.external_pending == 0 and not self.released

    def is_releasable(self) -> bool:
        return self.external_pending == 0 and not self.released

    # -- scheduling bookkeeping (driven by the scheduler) -------------------

    def ready_count(self) -> int:
        return len(self.ready)

    def take_ready(self, limit: int) -> List[int]:
        """Pop up to ``limit`` ready node ids (FIFO within the subgraph)."""
        if limit <= 0:
            return []
        taken, self.ready = self.ready[:limit], self.ready[limit:]
        if taken and self.owner is not None:
            self.owner.on_ready_delta(self, -len(taken))
        return taken

    def mark_submitted(self, node_ids: Sequence[int]) -> int:
        """Algorithm 1's ``UpdateNodesDependency``: after the given nodes are
        submitted, in-subgraph successors whose predecessors have now all
        been submitted become ready (optimistic mode only).  Returns how many
        became ready."""
        newly_ready = 0
        for nid in node_ids:
            self.unsubmitted -= 1
            if self.optimistic:
                newly_ready += self._advance_internal(nid)
        if self.unsubmitted < 0:
            raise RuntimeError(f"subgraph {self.subgraph_id}: oversubmitted")
        if newly_ready and self.owner is not None:
            self.owner.on_ready_delta(self, newly_ready)
        return newly_ready

    def mark_completed_internal(self, node_ids: Sequence[int]) -> int:
        """Non-optimistic mode: advance internal readiness on completion."""
        if self.optimistic:
            raise RuntimeError(
                f"subgraph {self.subgraph_id} is optimistic; internal deps "
                "advance at submission"
            )
        newly_ready = 0
        for nid in node_ids:
            newly_ready += self._advance_internal(nid)
        if newly_ready and self.owner is not None:
            self.owner.on_ready_delta(self, newly_ready)
        return newly_ready

    def _advance_internal(self, nid: int) -> int:
        newly_ready = 0
        for succ in self.graph.successors(nid):
            if succ in self._internal_pending:
                if self.graph.node(succ).subgraph_id == self.subgraph_id:
                    self._internal_pending[succ] -= 1
                    if self._internal_pending[succ] == 0:
                        self.ready.append(succ)
                        newly_ready += 1
        return newly_ready

    def exhausted(self) -> bool:
        """No nodes left to submit — the scheduler drops it from its queue."""
        return self.unsubmitted == 0

    def pin(self, worker_id: int) -> None:
        if self.pinned is not None and self.pinned != worker_id:
            raise RuntimeError(
                f"subgraph {self.subgraph_id} already pinned to worker "
                f"{self.pinned}, cannot pin to {worker_id}"
            )
        newly_pinned = self.pinned is None
        self.pinned = worker_id
        self.inflight += 1
        if newly_pinned and self.owner is not None:
            self.owner.on_pin_changed(self)

    def repin(self, worker_id: Optional[int]) -> None:
        """Forcibly move the pin to another worker (or clear it) without
        touching ``inflight`` — the failure path uses this when the pinned
        device dies and the subgraph's remaining work must migrate to a
        survivor.  Normal scheduling must use :meth:`pin`, which enforces
        single-worker affinity."""
        if self.pinned == worker_id:
            return
        self.pinned = worker_id
        if self.owner is not None:
            self.owner.on_pin_changed(self)

    def task_done(self, completed_nodes: int) -> None:
        """A task containing this subgraph's nodes retired; unpin at zero."""
        self.uncompleted -= completed_nodes
        self.inflight -= 1
        if self.inflight < 0 or self.uncompleted < 0:
            raise RuntimeError(f"subgraph {self.subgraph_id}: completion underflow")
        if self.inflight == 0 and self.pinned is not None and not self.sticky:
            self.pinned = None
            if self.owner is not None:
                self.owner.on_pin_changed(self)

    def __repr__(self) -> str:
        return (
            f"<Subgraph {self.subgraph_id} type={self.cell_type_name!r} "
            f"nodes={len(self.node_ids)} ready={len(self.ready)} "
            f"pinned={self.pinned}>"
        )


def partition_into_subgraphs(
    graph: CellGraph,
    request,
    nodes: Optional[Sequence[CellNode]] = None,
    start_id: int = 0,
) -> List[Subgraph]:
    """Split ``nodes`` (default: the whole graph) into maximal connected
    components of equal cell type.

    Connectivity follows dataflow edges in both directions but only through
    nodes of the same cell type, giving exactly the paper's partition: an
    LSTM chain is one subgraph; Seq2Seq yields one encoder and one decoder
    subgraph; a TreeLSTM yields one subgraph per leaf plus one subgraph of
    all internal nodes.
    """
    pool = list(nodes) if nodes is not None else list(graph.nodes())
    pool_ids = {n.node_id for n in pool}
    visited = set()
    subgraphs: List[Subgraph] = []
    next_id = start_id
    for seed in pool:
        if seed.node_id in visited:
            continue
        component = []
        stack = [seed.node_id]
        visited.add(seed.node_id)
        while stack:
            nid = stack.pop()
            node = graph.node(nid)
            component.append(node)
            neighbours = list(node.predecessors()) + list(graph.successors(nid))
            for other_id in neighbours:
                if other_id in visited or other_id not in pool_ids:
                    continue
                other = graph.node(other_id)
                if other.cell_type.name == seed.cell_type.name:
                    visited.add(other_id)
                    stack.append(other_id)
        component.sort(key=lambda n: n.node_id)
        subgraphs.append(
            Subgraph(next_id, request, seed.cell_type.name, component, graph)
        )
        next_id += 1
    return subgraphs

"""Serving statistics: what the engine actually did.

Aggregates per-cell-type task counts and batch sizes, per-worker
utilisation and gather rates, and latency percentiles into a readable
report — the observability surface a production deployment of BatchMaker
would expose.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.latency import LatencyStats
from repro.metrics.summary import format_table


class ServerStats:
    """Snapshot of a BatchMaker server's counters."""

    def __init__(self, server):
        manager = server.manager
        self.server_name = server.name
        self.finished_requests = len(server.finished)
        self.tasks_submitted = manager.scheduler.tasks_submitted
        self.batch_size_counts = dict(manager.scheduler.batch_size_counts)
        self.nodes_processed = manager.processor.total_nodes_processed
        self.live_requests = manager.processor.live_request_count()
        # Fault/SLA counters (all zero on a healthy run).
        self.faults = manager.fault_counters.as_dict()
        self.any_faults = manager.fault_counters.any_faults()
        self.timed_out_requests = len(getattr(server, "timed_out", ()))
        self.rejected_requests = len(getattr(server, "rejected", ()))
        now = manager.loop.now()
        self.energy_enabled = getattr(manager, "energy_spec", None) is not None
        self.total_joules = 0.0
        self.workers = []
        for worker in manager.workers:
            busy = worker.device.timeline.busy_time(until=now)
            row = {
                "worker_id": worker.worker_id,
                "tasks": worker.tasks_executed,
                "busy_time": busy,
                "utilization": busy / now if now > 0 else 0.0,
                "gathers": worker.gathers_performed,
                "gather_rate": (
                    worker.gathers_performed / worker.tasks_executed
                    if worker.tasks_executed
                    else 0.0
                ),
            }
            energy = worker.device.energy
            if energy is not None:
                window_busy = worker.device.timeline.busy_time(
                    since=energy.start_time, until=now
                )
                joules = energy.integrated_joules(now, window_busy)
                row["joules"] = joules
                row["active_joules"] = energy.active_joules
                row["frequency"] = energy.frequency
                if worker.alive:
                    self.total_joules += joules
            self.workers.append(row)
        self.latency: Optional[LatencyStats] = None
        if server.finished:
            self.latency = LatencyStats().extend(server.finished)

    # -- derived ------------------------------------------------------------------

    def mean_batch_size(self) -> float:
        total = sum(b * c for b, c in self.batch_size_counts.items())
        count = sum(self.batch_size_counts.values())
        return total / count if count else 0.0

    def batch_size_percentile(self, p: float) -> int:
        """Request-weighted batch-size percentile (what a typical *cell*
        experienced, not a typical task)."""
        if not self.batch_size_counts:
            raise ValueError("no tasks executed")
        weighted = []
        for batch, count in sorted(self.batch_size_counts.items()):
            weighted.append((batch, batch * count))
        total = sum(w for _, w in weighted)
        threshold = total * p / 100.0
        running = 0.0
        for batch, weight in weighted:
            running += weight
            if running >= threshold:
                return batch
        return weighted[-1][0]

    # -- rendering -----------------------------------------------------------------

    def report(self) -> str:
        lines = [f"=== {self.server_name} serving report ==="]
        lines.append(
            f"requests: {self.finished_requests} finished, "
            f"{self.live_requests} live; cells executed: {self.nodes_processed}; "
            f"tasks: {self.tasks_submitted} "
            f"(mean batch {self.mean_batch_size():.1f}, "
            f"cell-weighted p50 batch {self.batch_size_percentile(50)})"
        )
        headers = ["worker", "tasks", "busy ms", "utilization", "gather rate"]
        if self.energy_enabled:
            headers += ["joules", "freq"]
        rows = []
        for w in self.workers:
            row = [
                f"gpu{w['worker_id']}",
                str(w["tasks"]),
                f"{w['busy_time'] * 1e3:.1f}",
                f"{w['utilization']:.0%}",
                f"{w['gather_rate']:.0%}",
            ]
            if self.energy_enabled:
                row += [
                    f"{w.get('joules', 0.0):.2f}",
                    f"{w.get('frequency', 0.0):g}x",
                ]
            rows.append(row)
        lines.append(format_table(headers, rows))
        if self.energy_enabled:
            lines.append(f"energy: {self.total_joules:.2f} J integrated")
        if self.latency is not None:
            lines.append(
                "latency ms: "
                f"p50 {1e3 * self.latency.p(50):.2f}, "
                f"p90 {1e3 * self.latency.p(90):.2f}, "
                f"p99 {1e3 * self.latency.p(99):.2f} "
                f"(queuing p99 {1e3 * self.latency.p(99, 'queuing'):.2f})"
            )
        if self.any_faults or self.timed_out_requests or self.rejected_requests:
            f = self.faults
            lines.append(
                "faults: "
                f"{f['kernel_failures_injected']} kernel failures, "
                f"{f['stragglers_injected']} stragglers, "
                f"{f['device_failures']} device losses; "
                f"{f['retries_attempted']} retries; "
                f"{self.timed_out_requests} timed out, "
                f"{self.rejected_requests} rejected (load shed)"
            )
        return "\n".join(lines)
